//! Arrival processes.
//!
//! * [`Poisson`] — homogeneous Poisson arrivals (exponential inter-arrivals).
//! * [`DiurnalPoisson`] — non-homogeneous Poisson with day/night and
//!   weekday/weekend modulation, sampled by Lewis–Shedler thinning. Human-
//!   driven modalities (interactive, gateway portals) follow office hours;
//!   machine-driven ones don't.
//! * [`Mmpp2`] — a two-state Markov-modulated Poisson process for bursty
//!   streams (workflow engines dumping task batches).
//!
//! All processes are driven by a caller-supplied [`SimRng`] stream and
//! produce the *next arrival instant after* a given time, so generators can
//! interleave many processes deterministically.

use tg_des::{SimDuration, SimRng, SimTime};

/// The clock has microsecond resolution; a sampled gap that rounds to zero
/// ticks would produce two arrivals at the same instant (or no progress at
/// all in thinning loops). Every process advances by at least one tick.
#[inline]
fn at_least_one_tick(gap_secs: f64) -> SimDuration {
    SimDuration::from_secs_f64(gap_secs).max(SimDuration::from_micros(1))
}

/// A stochastic point process over simulation time.
pub trait ArrivalProcess {
    /// The first arrival strictly after `after`. Returns `None` if the
    /// process has ended (never, for the processes here, but trace replay
    /// uses it).
    fn next_after(&mut self, after: SimTime, rng: &mut SimRng) -> Option<SimTime>;

    /// Long-run average rate in arrivals per second (for load calculations).
    fn mean_rate(&self) -> f64;
}

/// Homogeneous Poisson process.
#[derive(Debug, Clone)]
pub struct Poisson {
    rate_per_sec: f64,
}

impl Poisson {
    /// A Poisson process with the given rate (arrivals per second).
    pub fn new(rate_per_sec: f64) -> Self {
        assert!(
            rate_per_sec.is_finite() && rate_per_sec > 0.0,
            "rate must be positive"
        );
        Poisson { rate_per_sec }
    }

    /// Convenience: rate given per hour.
    pub fn per_hour(rate: f64) -> Self {
        Poisson::new(rate / 3600.0)
    }

    /// Convenience: rate given per day.
    pub fn per_day(rate: f64) -> Self {
        Poisson::new(rate / 86_400.0)
    }
}

impl ArrivalProcess for Poisson {
    fn next_after(&mut self, after: SimTime, rng: &mut SimRng) -> Option<SimTime> {
        let gap = -(1.0 - rng.uniform()).ln() / self.rate_per_sec;
        Some(after + at_least_one_tick(gap))
    }

    fn mean_rate(&self) -> f64 {
        self.rate_per_sec
    }
}

/// Diurnal/weekly-modulated non-homogeneous Poisson process.
///
/// The instantaneous rate is `base_rate · d(t) · w(t)` where `d(t)` is a
/// smooth day-shape (cosine, peaking at `peak_hour`, with `day_night_ratio`
/// between peak and trough) and `w(t)` is `weekend_factor` on days 5–6 of
/// each week, 1 otherwise. Sampled by thinning against the rate's upper
/// bound, which is exact for NHPPs.
#[derive(Debug, Clone)]
pub struct DiurnalPoisson {
    base_rate_per_sec: f64,
    day_night_ratio: f64,
    peak_hour: f64,
    weekend_factor: f64,
}

impl DiurnalPoisson {
    /// A diurnal process averaging `mean_rate_per_day` arrivals per day, with
    /// peak/trough ratio `day_night_ratio ≥ 1`, peaking at `peak_hour`
    /// (0–24), and weekends scaled by `weekend_factor ∈ (0, 1]`.
    pub fn new(
        mean_rate_per_day: f64,
        day_night_ratio: f64,
        peak_hour: f64,
        weekend_factor: f64,
    ) -> Self {
        assert!(mean_rate_per_day > 0.0, "rate must be positive");
        assert!(day_night_ratio >= 1.0, "ratio must be >= 1");
        assert!((0.0..24.0).contains(&peak_hour), "peak hour out of range");
        assert!(
            weekend_factor > 0.0 && weekend_factor <= 1.0,
            "weekend factor in (0,1]"
        );
        DiurnalPoisson {
            base_rate_per_sec: mean_rate_per_day / 86_400.0,
            day_night_ratio,
            peak_hour,
            weekend_factor,
        }
    }

    /// The modulation factor at `t` (mean 1 over a week, up to weekend dip).
    fn modulation(&self, t: SimTime) -> f64 {
        // Cosine day shape normalized to mean 1:
        //   d(h) = 1 + a·cos(2π(h - peak)/24),  a = (r-1)/(r+1)
        let r = self.day_night_ratio;
        let a = (r - 1.0) / (r + 1.0);
        let h = t.second_of_day() as f64 / 3600.0;
        let day = 1.0 + a * ((h - self.peak_hour) * std::f64::consts::TAU / 24.0).cos();
        let week = if t.day_of_week() >= 5 {
            self.weekend_factor
        } else {
            1.0
        };
        day * week
    }

    /// Upper bound on the instantaneous rate (for thinning).
    fn rate_bound(&self) -> f64 {
        let r = self.day_night_ratio;
        let a = (r - 1.0) / (r + 1.0);
        self.base_rate_per_sec * (1.0 + a)
    }
}

impl ArrivalProcess for DiurnalPoisson {
    fn next_after(&mut self, after: SimTime, rng: &mut SimRng) -> Option<SimTime> {
        // Lewis–Shedler thinning.
        let bound = self.rate_bound();
        let mut t = after;
        loop {
            let gap = -(1.0 - rng.uniform()).ln() / bound;
            t += at_least_one_tick(gap);
            let rate = self.base_rate_per_sec * self.modulation(t);
            if rng.uniform() < rate / bound {
                return Some(t);
            }
        }
    }

    fn mean_rate(&self) -> f64 {
        // Weekday mean 1, weekend mean weekend_factor → 5/7 + 2/7·wf.
        self.base_rate_per_sec * (5.0 + 2.0 * self.weekend_factor) / 7.0
    }
}

/// Two-state Markov-modulated Poisson process: a *quiet* state with rate
/// `rate_quiet` and a *burst* state with rate `rate_burst`, with exponential
/// state holding times.
#[derive(Debug, Clone)]
pub struct Mmpp2 {
    rate_quiet: f64,
    rate_burst: f64,
    mean_quiet: f64,
    mean_burst: f64,
    in_burst: bool,
    state_until: SimTime,
}

impl Mmpp2 {
    /// An MMPP(2) starting in the quiet state. Rates in arrivals/second,
    /// mean state durations in seconds.
    pub fn new(rate_quiet: f64, rate_burst: f64, mean_quiet_s: f64, mean_burst_s: f64) -> Self {
        assert!(rate_quiet >= 0.0 && rate_burst > 0.0, "bad rates");
        assert!(mean_quiet_s > 0.0 && mean_burst_s > 0.0, "bad durations");
        Mmpp2 {
            rate_quiet,
            rate_burst,
            mean_quiet: mean_quiet_s,
            mean_burst: mean_burst_s,
            in_burst: false,
            state_until: SimTime::ZERO,
        }
    }

    fn advance_state(&mut self, t: SimTime, rng: &mut SimRng) {
        while t >= self.state_until {
            let mean = if self.in_burst {
                self.mean_burst
            } else {
                self.mean_quiet
            };
            // On first use state_until is 0: initialize rather than flip.
            let hold = -(1.0 - rng.uniform()).ln() * mean;
            if self.state_until > SimTime::ZERO {
                self.in_burst = !self.in_burst;
            }
            self.state_until = self.state_until.max(t) + SimDuration::from_secs_f64(hold);
        }
    }
}

impl ArrivalProcess for Mmpp2 {
    fn next_after(&mut self, after: SimTime, rng: &mut SimRng) -> Option<SimTime> {
        let mut t = after;
        loop {
            self.advance_state(t, rng);
            let rate = if self.in_burst {
                self.rate_burst
            } else {
                self.rate_quiet
            };
            if rate <= 0.0 {
                // Quiet state emits nothing; jump to the state change.
                t = self.state_until;
                continue;
            }
            let gap = -(1.0 - rng.uniform()).ln() / rate;
            let cand = t + at_least_one_tick(gap);
            if cand <= self.state_until {
                return Some(cand);
            }
            // Arrival would fall past the state change; restart from there.
            t = self.state_until;
        }
    }

    fn mean_rate(&self) -> f64 {
        let total = self.mean_quiet + self.mean_burst;
        (self.rate_quiet * self.mean_quiet + self.rate_burst * self.mean_burst) / total
    }
}

/// Drain a process into a vector of arrivals in `[start, horizon)` — the
/// form the offline generator consumes.
pub fn arrivals_in(
    process: &mut dyn ArrivalProcess,
    start: SimTime,
    horizon: SimTime,
    rng: &mut SimRng,
) -> Vec<SimTime> {
    let mut out = Vec::new();
    let mut t = start;
    while let Some(next) = process.next_after(t, rng) {
        if next >= horizon {
            break;
        }
        out.push(next);
        t = next;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_rate_matches() {
        let mut p = Poisson::per_hour(60.0); // 1 per minute
        let mut rng = SimRng::seeded(1);
        let horizon = SimTime::from_days(10);
        let arrivals = arrivals_in(&mut p, SimTime::ZERO, horizon, &mut rng);
        let expect = 60.0 * 24.0 * 10.0;
        let got = arrivals.len() as f64;
        assert!((got - expect).abs() / expect < 0.05, "{got} vs {expect}");
        assert!((p.mean_rate() - 1.0 / 60.0).abs() < 1e-12);
    }

    #[test]
    fn poisson_arrivals_strictly_increase() {
        let mut p = Poisson::new(10.0);
        let mut rng = SimRng::seeded(2);
        let arrivals = arrivals_in(&mut p, SimTime::ZERO, SimTime::from_secs(100), &mut rng);
        for w in arrivals.windows(2) {
            assert!(w[0] < w[1]);
        }
        assert!(!arrivals.is_empty());
    }

    #[test]
    fn diurnal_peaks_during_the_day() {
        let mut d = DiurnalPoisson::new(1000.0, 5.0, 14.0, 1.0);
        let mut rng = SimRng::seeded(3);
        let arrivals = arrivals_in(&mut d, SimTime::ZERO, SimTime::from_days(28), &mut rng);
        // Count arrivals near the peak (12:00–16:00) vs trough (00:00–04:00).
        let peak = arrivals
            .iter()
            .filter(|t| (12 * 3600..16 * 3600).contains(&(t.second_of_day() as usize)))
            .count();
        let trough = arrivals
            .iter()
            .filter(|t| (0..4 * 3600).contains(&(t.second_of_day() as usize)))
            .count();
        assert!(
            peak as f64 > 2.0 * trough as f64,
            "peak {peak} vs trough {trough}"
        );
    }

    #[test]
    fn diurnal_weekend_dip() {
        let mut d = DiurnalPoisson::new(1000.0, 1.0, 12.0, 0.25);
        let mut rng = SimRng::seeded(4);
        let arrivals = arrivals_in(&mut d, SimTime::ZERO, SimTime::from_days(56), &mut rng);
        let weekday = arrivals.iter().filter(|t| t.day_of_week() < 5).count() as f64 / 5.0;
        let weekend = arrivals.iter().filter(|t| t.day_of_week() >= 5).count() as f64 / 2.0;
        let ratio = weekend / weekday;
        assert!((ratio - 0.25).abs() < 0.07, "weekend/weekday ratio {ratio}");
    }

    #[test]
    fn diurnal_total_rate_close_to_mean() {
        let mut d = DiurnalPoisson::new(500.0, 3.0, 10.0, 0.5);
        let mut rng = SimRng::seeded(5);
        let days = 35u64;
        let arrivals = arrivals_in(&mut d, SimTime::ZERO, SimTime::from_days(days), &mut rng);
        let expect = d.mean_rate() * 86_400.0 * days as f64;
        let got = arrivals.len() as f64;
        assert!((got - expect).abs() / expect < 0.07, "{got} vs {expect}");
    }

    #[test]
    fn mmpp_is_burstier_than_poisson() {
        // Compare squared CV of inter-arrival times.
        let mut rng = SimRng::seeded(6);
        let mut mmpp = Mmpp2::new(0.01, 2.0, 500.0, 50.0);
        let arr = arrivals_in(&mut mmpp, SimTime::ZERO, SimTime::from_days(3), &mut rng);
        assert!(arr.len() > 100, "need data, got {}", arr.len());
        let gaps: Vec<f64> = arr
            .windows(2)
            .map(|w| (w[1] - w[0]).as_secs_f64())
            .collect();
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        let var = gaps.iter().map(|g| (g - mean) * (g - mean)).sum::<f64>() / gaps.len() as f64;
        let scv = var / (mean * mean);
        assert!(scv > 1.5, "MMPP scv {scv} should exceed Poisson's 1.0");
    }

    #[test]
    fn mmpp_mean_rate_formula() {
        let m = Mmpp2::new(0.1, 1.0, 300.0, 100.0);
        let expect = (0.1 * 300.0 + 1.0 * 100.0) / 400.0;
        assert!((m.mean_rate() - expect).abs() < 1e-12);
    }

    #[test]
    fn mmpp_zero_quiet_rate_still_progresses() {
        let mut m = Mmpp2::new(0.0, 5.0, 60.0, 60.0);
        let mut rng = SimRng::seeded(7);
        let arr = arrivals_in(&mut m, SimTime::ZERO, SimTime::from_hours(10), &mut rng);
        assert!(!arr.is_empty(), "burst state must emit arrivals");
        for w in arr.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn determinism_same_seed_same_arrivals() {
        let run = |seed| {
            let mut p = DiurnalPoisson::new(200.0, 2.0, 9.0, 0.5);
            let mut rng = SimRng::seeded(seed);
            arrivals_in(&mut p, SimTime::ZERO, SimTime::from_days(2), &mut rng)
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }
}
