//! The workload generator: population + profiles → a deterministic,
//! time-ordered job stream with ground-truth modality labels.
//!
//! Determinism contract: every user draws from an RNG stream keyed by their
//! id, so the stream one user generates is independent of every other
//! user's — changing the population mix never reshuffles surviving users'
//! workloads (the common-random-numbers property policy comparisons rely
//! on).

use crate::arrival::{arrivals_in, ArrivalProcess, DiurnalPoisson, Mmpp2, Poisson};
use crate::dag::DagShape;
use crate::ids::{EnsembleId, GatewayId, JobId, ProjectId, UserId, WorkflowId};
use crate::job::{Job, RcRequirement};
use crate::modality::Modality;
use crate::profiles::{ArrivalKind, ModalityProfile, PopulationMix};
use crate::user::{Population, Project, User};
use serde::{Deserialize, Serialize};
use tg_data::{DatasetAssignment, DatasetId};
use tg_des::dist::Zipf;
use tg_des::{RngFactory, SimDuration, SimRng, SimTime, StreamId};
use tg_model::{ConfigId, SiteId};

/// Full generator configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GeneratorConfig {
    /// Length of the generated window (jobs arrive in `[0, horizon)`).
    pub horizon: SimDuration,
    /// Population mix.
    pub mix: PopulationMix,
    /// One profile per modality, in [`Modality::ALL`] order. Use
    /// [`ModalityProfile::all_defaults`] and patch what the experiment
    /// varies.
    pub profiles: Vec<ModalityProfile>,
    /// Number of sites (for home-site assignment).
    pub sites: usize,
    /// Sites hosting RC partitions; RC tasks are pinned to these.
    pub rc_sites: Vec<SiteId>,
    /// Size of the processor-configuration library RC tasks draw from.
    pub rc_config_count: usize,
    /// Dataset-assignment rule when the scenario declares a data grid:
    /// per-modality attach probabilities plus the Zipf skew over catalog
    /// ranks. `None` (the default) draws nothing and generates workloads
    /// byte-identical to pre-data-grid builds.
    #[serde(default)]
    pub data: Option<DatasetAssignment>,
}

impl GeneratorConfig {
    /// A ready-to-run baseline: `users` users over `days` days on `sites`
    /// sites (the last site hosting RC fabric), default profiles.
    pub fn baseline(users: usize, days: u64, sites: usize) -> Self {
        assert!(sites > 0, "need at least one site");
        GeneratorConfig {
            horizon: SimDuration::from_days(days),
            mix: PopulationMix::baseline(users),
            profiles: ModalityProfile::all_defaults(),
            sites,
            rc_sites: vec![SiteId(sites - 1)],
            rc_config_count: 12,
            data: None,
        }
    }

    /// The profile for `m`. Panics if the profile list is malformed.
    pub fn profile(&self, m: Modality) -> &ModalityProfile {
        let p = &self.profiles[m.index()];
        assert_eq!(p.modality, m, "profiles must be in Modality::ALL order");
        p
    }

    /// Mutable access to the profile for `m` (for experiment sweeps).
    pub fn profile_mut(&mut self, m: Modality) -> &mut ModalityProfile {
        let p = &mut self.profiles[m.index()];
        assert_eq!(p.modality, m, "profiles must be in Modality::ALL order");
        p
    }
}

/// The generated workload.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Workload {
    /// The user population behind the jobs.
    pub population: Population,
    /// All jobs, sorted by `(submit_time, id)`.
    pub jobs: Vec<Job>,
}

impl Workload {
    /// Jobs with ground-truth modality `m`.
    pub fn jobs_of(&self, m: Modality) -> impl Iterator<Item = &Job> {
        self.jobs.iter().filter(move |j| j.true_modality == m)
    }

    /// Group jobs by ensemble membership. Jobs without an ensemble id are
    /// skipped rather than unwrapped — mixed workloads (the normal case)
    /// are mostly non-ensemble jobs, and a batch that happens to contain
    /// both must not panic the grouping.
    pub fn by_ensemble(&self) -> std::collections::HashMap<EnsembleId, Vec<&Job>> {
        let mut by_ens: std::collections::HashMap<EnsembleId, Vec<&Job>> =
            std::collections::HashMap::new();
        for j in &self.jobs {
            if let Some(ens) = j.ensemble {
                by_ens.entry(ens).or_default().push(j);
            }
        }
        by_ens
    }

    /// Total core-seconds demanded (reference hardware, software versions).
    pub fn total_core_seconds(&self) -> f64 {
        self.jobs.iter().map(Job::core_seconds).sum()
    }

    /// Offered load against `total_cores` over the window `horizon`:
    /// demanded core-seconds / available core-seconds.
    pub fn offered_load(&self, total_cores: usize, horizon: SimDuration) -> f64 {
        let available = total_cores as f64 * horizon.as_secs_f64();
        if available <= 0.0 {
            return 0.0;
        }
        self.total_core_seconds() / available
    }
}

/// The generator.
#[derive(Debug, Clone)]
pub struct WorkloadGenerator {
    config: GeneratorConfig,
    /// Shared dataset-popularity distribution; `Some` only when a
    /// non-trivial dataset assignment is configured. Draw-free to construct.
    data_zipf: Option<Zipf>,
}

impl WorkloadGenerator {
    /// A generator for `config`. Panics on inconsistent configuration
    /// (missing profiles, RC users without RC sites or configurations).
    pub fn new(config: GeneratorConfig) -> Self {
        assert_eq!(
            config.profiles.len(),
            Modality::ALL.len(),
            "need one profile per modality"
        );
        let rc_users = config.mix.users_per_modality[Modality::RcAccelerated.index()];
        if rc_users > 0 {
            assert!(
                !config.rc_sites.is_empty(),
                "RC users configured but no RC sites"
            );
            assert!(
                config.rc_config_count > 0,
                "RC users configured but empty configuration library"
            );
        }
        assert!(config.sites > 0, "need at least one site");
        if let Some(data) = &config.data {
            assert!(
                data.attach.values().all(|p| (0.0..=1.0).contains(p)),
                "dataset attach probabilities must be in [0,1]"
            );
            assert!(
                data.is_trivial() || data.count > 0,
                "dataset assignment needs a non-empty catalog"
            );
        }
        let data_zipf = config
            .data
            .as_ref()
            .filter(|d| !d.is_trivial())
            .map(|d| Zipf::new(d.count as u64, d.zipf_s));
        WorkloadGenerator { config, data_zipf }
    }

    /// The configuration.
    pub fn config(&self) -> &GeneratorConfig {
        &self.config
    }

    /// Generate the population and job stream.
    pub fn generate(&self, factory: &RngFactory) -> Workload {
        let population = self.build_population();
        let mut jobs = Vec::new();
        let rc_zipf = self.rc_zipf();
        let mut ids = IdCursor::default();
        let mut gw_counter = 0usize;

        for user in &population.users {
            let gateway = self.gateway_for(user, &mut gw_counter);
            let mut cursor = UserGen::new(self, user, factory, ids, gateway);
            while cursor.emit_next(self, rc_zipf.as_ref(), &mut jobs) {}
            ids = cursor.ids();
        }

        jobs.sort_by_key(|j| (j.submit_time, j.id));
        Workload { population, jobs }
    }

    /// The shared RC configuration-popularity distribution, if the library
    /// is non-empty. Draw-free to construct; sampling uses the caller's rng.
    pub(crate) fn rc_zipf(&self) -> Option<Zipf> {
        (self.config.rc_config_count > 0)
            .then(|| Zipf::new(self.config.rc_config_count as u64, self.rc_zipf_s()))
    }

    /// Gateway users share gateway identities round-robin, in population
    /// order. Draw-free: the assignment depends only on how many gateway
    /// users precede this one.
    pub(crate) fn gateway_for(&self, user: &User, gw_counter: &mut usize) -> Option<GatewayId> {
        (user.modality == Modality::ScienceGateway).then(|| {
            let g = GatewayId(*gw_counter % self.config.mix.gateways.max(1));
            *gw_counter += 1;
            g
        })
    }

    /// Build the population (public so the streaming path can construct it
    /// identically before any jobs exist).
    pub(crate) fn population(&self) -> Population {
        self.build_population()
    }

    fn rc_zipf_s(&self) -> f64 {
        self.config
            .profile(Modality::RcAccelerated)
            .rc
            .as_ref()
            .map(|r| r.config_zipf_s)
            .unwrap_or(1.0)
    }

    fn build_population(&self) -> Population {
        let mix = &self.config.mix;
        let mut projects = Vec::with_capacity(mix.projects);
        for i in 0..mix.projects.max(1) {
            let field = ["astro", "bio", "climate", "materials", "physics"][i % 5];
            projects.push(Project::new(ProjectId(i), 1.0e6, field));
        }
        let mut users = Vec::with_capacity(mix.total_users());
        let mut uid = 0usize;
        for m in Modality::ALL {
            let count = mix.users_per_modality[m.index()];
            // Zipf-skewed activity, normalized to mean 1 within the modality.
            let s = mix.activity_zipf_s;
            let weights: Vec<f64> = (0..count).map(|i| ((i + 1) as f64).powf(-s)).collect();
            let mean = weights.iter().sum::<f64>() / count.max(1) as f64;
            for (i, w) in weights.into_iter().enumerate() {
                let project = ProjectId(uid % projects.len());
                users.push(User::new(UserId(uid), project, m).with_activity((w / mean).max(1e-3)));
                uid += 1;
                let _ = i;
            }
        }
        Population { projects, users }
    }

    /// A plain job drawn from `profile` (no modality specialization yet).
    #[allow(clippy::too_many_arguments)]
    fn base_job(
        &self,
        profile: &ModalityProfile,
        user: &User,
        at: SimTime,
        id: JobId,
        home: SiteId,
        rng: &mut SimRng,
    ) -> Job {
        let weights: Vec<f64> = profile.cores_weights.iter().map(|&(_, w)| w).collect();
        let cores = profile.cores_weights[rng.pick_weighted(&weights)].0;
        let runtime = SimDuration::from_secs_f64(profile.runtime.sample(rng).max(1.0));
        let factor = profile.estimate_factor.sample(rng).max(1.0);
        let input = profile.input_mb.sample(rng).max(0.0);
        let output = profile.output_mb.sample(rng).max(0.0);
        let mut job = Job::batch(id, user.id, user.project, at, cores, runtime)
            .with_estimate(runtime.mul_f64(factor))
            .with_data(input, output);
        if rng.chance(profile.site_pinned_prob) {
            job = job.with_site(home);
        }
        // Dataset assignment rides the same per-user stream, after every
        // existing draw, and only when the scenario configured a data grid —
        // zero extra draws otherwise, so data-free runs stay byte-identical.
        if let Some(zipf) = &self.data_zipf {
            let p = self
                .config
                .data
                .as_ref()
                .map(|d| d.prob(profile.modality.name()))
                .unwrap_or(0.0);
            if p > 0.0 && rng.chance(p) {
                let rank = zipf.sample_rank(rng);
                job = job.with_dataset(DatasetId((rank - 1) as u32));
            }
        }
        job
    }

    #[allow(clippy::too_many_arguments)]
    fn emit_workflow(
        &self,
        profile: &ModalityProfile,
        user: &User,
        at: SimTime,
        wf: WorkflowId,
        home: SiteId,
        next_job: &mut usize,
        jobs: &mut Vec<Job>,
        rng: &mut SimRng,
    ) {
        let weights: Vec<f64> = profile.dag_shapes.iter().map(|&(_, w)| w).collect();
        let shape: DagShape = profile.dag_shapes[rng.pick_weighted(&weights)].0;
        let skeleton = shape.generate(rng);
        let base = *next_job;
        for t in 0..skeleton.tasks {
            let deps: Vec<JobId> = skeleton
                .deps_of(t)
                .into_iter()
                .map(|d| JobId(base + d))
                .collect();
            let job = self
                .base_job(profile, user, at, JobId(base + t), home, rng)
                .in_workflow(wf, deps);
            jobs.push(job);
        }
        *next_job += skeleton.tasks;
    }

    #[allow(clippy::too_many_arguments)]
    fn emit_ensemble(
        &self,
        profile: &ModalityProfile,
        user: &User,
        at: SimTime,
        ens: EnsembleId,
        home: SiteId,
        next_job: &mut usize,
        jobs: &mut Vec<Job>,
        rng: &mut SimRng,
    ) {
        let width_dist = profile
            .ensemble_width
            .as_ref()
            .expect("ensemble profile has width");
        let width = (width_dist.sample(rng).round() as usize).max(2);
        // Members share the shape (same cores) — that's what makes an
        // ensemble recognizable — with per-member runtime jitter.
        let template = self.base_job(profile, user, at, JobId(*next_job), home, rng);
        for i in 0..width {
            let runtime = SimDuration::from_secs_f64(profile.runtime.sample(rng).max(1.0));
            let mut member = template.clone();
            member.id = JobId(*next_job + i);
            member.runtime = runtime;
            member.estimate = member.estimate.max(runtime);
            let member = member.in_ensemble(ens);
            jobs.push(member);
        }
        *next_job += width;
    }
}

/// Absolute positions of the global id counters threaded across users in
/// population order: each user's jobs (and workflows, ensembles) occupy a
/// contiguous id block starting where the previous user's ended.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct IdCursor {
    pub next_job: usize,
    pub next_wf: usize,
    pub next_ens: usize,
}

/// One user's deterministic generation state.
///
/// Encapsulates exactly the per-user slice of [`WorkloadGenerator::generate`]
/// so the materialized and streaming paths share one draw sequence: the
/// user's RNG stream draws the home site, then *all* arrival instants, then
/// per-arrival job fields — in that order, independent of every other user
/// (the common-random-numbers contract). Arrival instants strictly increase
/// and every job in an arrival's block shares its submit time with ids
/// ascending, so blocks come out already sorted by `(submit_time, id)`.
pub(crate) struct UserGen {
    user: User,
    home: SiteId,
    rc_home: Option<SiteId>,
    gateway: Option<GatewayId>,
    rng: SimRng,
    arrivals: Vec<SimTime>,
    next_arrival: usize,
    ids: IdCursor,
}

impl UserGen {
    pub(crate) fn new(
        gen: &WorkloadGenerator,
        user: &User,
        factory: &RngFactory,
        ids: IdCursor,
        gateway: Option<GatewayId>,
    ) -> Self {
        let profile = gen.config.profile(user.modality);
        let mut rng = factory.stream(StreamId::new("user", user.id.index() as u64));
        let home = SiteId(rng.below(gen.config.sites as u64) as usize);
        let rc_home = gen
            .config
            .rc_sites
            .get(user.id.index() % gen.config.rc_sites.len().max(1))
            .copied();
        let rate_per_day = profile.per_user_per_day * user.activity;
        let mut process = build_arrival(profile.arrival, rate_per_day);
        let arrivals = arrivals_in(
            process.as_mut(),
            SimTime::ZERO,
            SimTime::ZERO + gen.config.horizon,
            &mut rng,
        );
        UserGen {
            user: user.clone(),
            home,
            rc_home,
            gateway,
            rng,
            arrivals,
            next_arrival: 0,
            ids,
        }
    }

    /// Submit time of the next undelivered arrival, if any remain.
    pub(crate) fn peek_time(&self) -> Option<SimTime> {
        self.arrivals.get(self.next_arrival).copied()
    }

    /// Where the global id counters stand (the next block's bases).
    pub(crate) fn ids(&self) -> IdCursor {
        self.ids
    }

    /// Emit the next arrival's job block into `out`. Returns `false` once
    /// the user's arrivals are exhausted.
    pub(crate) fn emit_next(
        &mut self,
        gen: &WorkloadGenerator,
        rc_zipf: Option<&Zipf>,
        out: &mut Vec<Job>,
    ) -> bool {
        let Some(at) = self.peek_time() else {
            return false;
        };
        self.next_arrival += 1;
        let profile = gen.config.profile(self.user.modality);
        match self.user.modality {
            Modality::Workflow => {
                let wf = WorkflowId(self.ids.next_wf);
                self.ids.next_wf += 1;
                gen.emit_workflow(
                    profile,
                    &self.user,
                    at,
                    wf,
                    self.home,
                    &mut self.ids.next_job,
                    out,
                    &mut self.rng,
                );
            }
            Modality::Ensemble => {
                let ens = EnsembleId(self.ids.next_ens);
                self.ids.next_ens += 1;
                gen.emit_ensemble(
                    profile,
                    &self.user,
                    at,
                    ens,
                    self.home,
                    &mut self.ids.next_job,
                    out,
                    &mut self.rng,
                );
            }
            _ => {
                let mut job = gen.base_job(
                    profile,
                    &self.user,
                    at,
                    JobId(self.ids.next_job),
                    self.home,
                    &mut self.rng,
                );
                self.ids.next_job += 1;
                match self.user.modality {
                    Modality::ScienceGateway => {
                        job = job.via_gateway(self.gateway.expect("gateway assigned"));
                    }
                    Modality::Interactive => {
                        job = job.labeled(Modality::Interactive);
                    }
                    Modality::DataMovement => {
                        job = job.labeled(Modality::DataMovement);
                    }
                    Modality::RcAccelerated => {
                        let rc_profile = profile.rc.as_ref().expect("RC profile present");
                        let zipf = rc_zipf.expect("RC library configured");
                        let rank = zipf.sample_rank(&mut self.rng);
                        let speedup = rc_profile.speedup.sample(&mut self.rng).max(1.0);
                        let deadline = self.rng.chance(rc_profile.deadline_fraction).then(|| {
                            let slack = rc_profile.deadline_slack.sample(&mut self.rng).max(1.0);
                            // Deadline scaled from the HW runtime.
                            job.runtime.mul_f64(slack / speedup)
                        });
                        job = job.with_rc(RcRequirement {
                            config: ConfigId((rank - 1) as usize),
                            speedup,
                            deadline,
                        });
                        if let Some(rc_site) = self.rc_home {
                            job = job.with_site(rc_site);
                        }
                    }
                    _ => {}
                }
                out.push(job);
            }
        }
        true
    }
}

fn build_arrival(kind: ArrivalKind, rate_per_day: f64) -> Box<dyn ArrivalProcess> {
    let rate = rate_per_day.max(1e-9);
    match kind {
        ArrivalKind::Poisson => Box::new(Poisson::per_day(rate)),
        ArrivalKind::Diurnal {
            day_night_ratio,
            peak_hour,
            weekend_factor,
        } => Box::new(DiurnalPoisson::new(
            rate,
            day_night_ratio,
            peak_hour,
            weekend_factor,
        )),
        ArrivalKind::Bursty {
            burst_ratio,
            mean_quiet_s,
            mean_burst_s,
        } => {
            // Solve for state rates so the long-run mean matches `rate`.
            let mean_per_sec = rate / 86_400.0;
            let total = mean_quiet_s + mean_burst_s;
            // mean = (rq*q + rb*b)/total with rb = ratio*rq.
            let rq = mean_per_sec * total / (mean_quiet_s + burst_ratio * mean_burst_s);
            let rb = burst_ratio * rq;
            Box::new(Mmpp2::new(rq, rb, mean_quiet_s, mean_burst_s))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> GeneratorConfig {
        let mut cfg = GeneratorConfig::baseline(140, 14, 3);
        // Keep the test fast but exercise every modality.
        cfg.mix.activity_zipf_s = 0.8;
        cfg
    }

    fn generate(seed: u64) -> Workload {
        WorkloadGenerator::new(small_config()).generate(&RngFactory::new(seed))
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(7);
        let b = generate(7);
        assert_eq!(a.jobs.len(), b.jobs.len());
        assert_eq!(a.jobs, b.jobs);
        let c = generate(8);
        assert_ne!(a.jobs, c.jobs);
    }

    #[test]
    fn jobs_are_sorted_and_ids_unique() {
        let w = generate(1);
        assert!(!w.jobs.is_empty());
        for pair in w.jobs.windows(2) {
            assert!(
                (pair[0].submit_time, pair[0].id) < (pair[1].submit_time, pair[1].id),
                "jobs must be strictly ordered"
            );
        }
        let mut ids: Vec<_> = w.jobs.iter().map(|j| j.id).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), w.jobs.len());
    }

    #[test]
    fn every_modality_produces_jobs() {
        let w = generate(2);
        for m in Modality::ALL {
            assert!(
                w.jobs_of(m).count() > 0,
                "modality {m} generated no jobs in 14 days"
            );
        }
    }

    #[test]
    fn ground_truth_matches_structure() {
        let w = generate(3);
        for j in &w.jobs {
            match j.true_modality {
                Modality::ScienceGateway => assert!(j.gateway.is_some()),
                Modality::Workflow => assert!(j.workflow.is_some()),
                Modality::Ensemble => assert!(j.ensemble.is_some()),
                Modality::RcAccelerated => assert!(j.rc.is_some()),
                _ => {
                    assert!(j.gateway.is_none());
                    assert!(j.workflow.is_none());
                    assert!(j.ensemble.is_none());
                    assert!(j.rc.is_none());
                }
            }
        }
    }

    #[test]
    fn workflow_deps_reference_earlier_jobs_in_same_workflow() {
        let w = generate(4);
        use std::collections::HashMap;
        let by_id: HashMap<JobId, &Job> = w.jobs.iter().map(|j| (j.id, j)).collect();
        let mut saw_deps = false;
        for j in w.jobs_of(Modality::Workflow) {
            for d in &j.deps {
                saw_deps = true;
                let dep = by_id.get(d).expect("dep exists");
                assert_eq!(dep.workflow, j.workflow, "dep crosses workflows");
                assert!(dep.id < j.id, "dep must precede dependent");
                assert_eq!(dep.submit_time, j.submit_time, "tasks submitted together");
            }
        }
        assert!(saw_deps, "some workflow task must have dependencies");
    }

    #[test]
    fn ensembles_share_shape() {
        let w = generate(5);
        let by_ens = w.by_ensemble();
        assert!(!by_ens.is_empty());
        for (ens, members) in by_ens {
            assert!(members.len() >= 2, "{ens} too small");
            let cores = members[0].cores;
            assert!(
                members.iter().all(|m| m.cores == cores),
                "{ens} members differ in cores"
            );
            let t = members[0].submit_time;
            assert!(members.iter().all(|m| m.submit_time == t));
        }
    }

    #[test]
    fn ensemble_grouping_tolerates_mixed_batches() {
        // Regression: grouping used to unwrap `j.ensemble` while iterating,
        // which panics the moment a non-ensemble job lands in the batch.
        // A generated workload is exactly such a mixed batch.
        let w = generate(5);
        assert!(
            w.jobs.iter().any(|j| j.ensemble.is_none()),
            "need non-ensemble jobs to make the batch mixed"
        );
        let by_ens = w.by_ensemble();
        assert!(!by_ens.is_empty());
        let grouped: usize = by_ens.values().map(Vec::len).sum();
        assert_eq!(
            grouped,
            w.jobs.iter().filter(|j| j.ensemble.is_some()).count(),
            "every ensemble member grouped exactly once"
        );
        for members in by_ens.values() {
            assert!(members.iter().all(|m| m.ensemble.is_some()));
        }
    }

    #[test]
    fn rc_jobs_are_pinned_to_rc_sites_with_valid_configs() {
        let w = generate(6);
        let cfg = small_config();
        for j in w.jobs_of(Modality::RcAccelerated) {
            let rc = j.rc.expect("rc set");
            assert!(rc.config.index() < cfg.rc_config_count);
            assert!(rc.speedup >= 1.0);
            let site = j.site_hint.expect("RC jobs pinned");
            assert!(cfg.rc_sites.contains(&site));
            if let Some(d) = rc.deadline {
                assert!(d > SimDuration::ZERO);
            }
        }
    }

    #[test]
    fn estimates_never_undershoot_runtime() {
        let w = generate(7);
        for j in &w.jobs {
            assert!(j.estimate >= j.runtime, "{}", j.id);
            assert!(j.cores > 0);
            assert!(j.runtime > SimDuration::ZERO);
        }
    }

    #[test]
    fn batch_dominates_core_seconds_gateway_dominates_users() {
        let w = generate(8);
        let batch_cs: f64 = w
            .jobs_of(Modality::BatchComputing)
            .map(Job::core_seconds)
            .sum();
        let gw_cs: f64 = w
            .jobs_of(Modality::ScienceGateway)
            .map(Job::core_seconds)
            .sum();
        assert!(
            batch_cs > gw_cs,
            "batch ({batch_cs:.0}) should out-consume gateway ({gw_cs:.0})"
        );
        let counts = w.population.modality_counts();
        assert!(
            counts[Modality::ScienceGateway.index()] > counts[Modality::BatchComputing.index()]
        );
    }

    #[test]
    fn offered_load_scales_with_cores() {
        let w = generate(9);
        let horizon = small_config().horizon;
        let l1 = w.offered_load(1000, horizon);
        let l2 = w.offered_load(2000, horizon);
        assert!(l1 > 0.0);
        assert!((l1 / l2 - 2.0).abs() < 1e-9);
        assert_eq!(w.offered_load(0, horizon), 0.0);
    }

    #[test]
    #[should_panic(expected = "no RC sites")]
    fn rc_users_without_rc_sites_rejected() {
        let mut cfg = small_config();
        cfg.rc_sites.clear();
        WorkloadGenerator::new(cfg);
    }

    #[test]
    fn zero_rc_users_allows_empty_library() {
        let mut cfg = small_config();
        cfg.mix = cfg.mix.with_users(Modality::RcAccelerated, 0);
        cfg.rc_sites.clear();
        cfg.rc_config_count = 0;
        let w = WorkloadGenerator::new(cfg).generate(&RngFactory::new(1));
        assert_eq!(w.jobs_of(Modality::RcAccelerated).count(), 0);
    }

    #[test]
    fn activity_skew_is_normalized() {
        let w = generate(10);
        for m in Modality::ALL {
            let acts: Vec<f64> = w.population.users_of(m).map(|u| u.activity).collect();
            if acts.len() < 2 {
                continue;
            }
            let mean = acts.iter().sum::<f64>() / acts.len() as f64;
            assert!((mean - 1.0).abs() < 0.01, "{m}: mean activity {mean}");
            let max = acts.iter().cloned().fold(0.0, f64::max);
            let min = acts.iter().cloned().fold(f64::MAX, f64::min);
            assert!(max / min > 2.0, "{m}: expected skew, got {min}..{max}");
        }
    }
}
