//! Per-modality behaviour profiles and the population mix.
//!
//! A [`ModalityProfile`] bundles everything the generator needs to emit one
//! user's stream for one modality: arrival process shape, job-size and
//! runtime distributions, estimate padding, data sizes, and the structural
//! extras (ensemble widths, workflow shapes, RC kernel choices).
//!
//! Defaults are shaped by the parallel-workload-archive literature: heavy-
//! tailed log-normal runtimes, power-of-two core counts, office-hour
//! diurnality for human-driven modalities, Zipf-skewed per-user activity.

use crate::dag::DagShape;
use crate::modality::Modality;
use serde::{Deserialize, Serialize};
use tg_des::dist::DistKind;

/// Which arrival process a profile uses.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum ArrivalKind {
    /// Homogeneous Poisson.
    Poisson,
    /// Diurnal/weekly-modulated Poisson.
    Diurnal {
        /// Peak-to-trough rate ratio (≥ 1).
        day_night_ratio: f64,
        /// Hour of day of the peak (0–24).
        peak_hour: f64,
        /// Weekend rate multiplier in (0, 1].
        weekend_factor: f64,
    },
    /// Two-state MMPP (bursty).
    Bursty {
        /// Burst-to-quiet rate ratio (> 1).
        burst_ratio: f64,
        /// Mean quiet-state duration, seconds.
        mean_quiet_s: f64,
        /// Mean burst-state duration, seconds.
        mean_burst_s: f64,
    },
}

/// Reconfigurable-task parameters within a profile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RcTaskProfile {
    /// Zipf exponent over the configuration library (popularity skew).
    pub config_zipf_s: f64,
    /// Distribution of hardware-over-software speedups.
    pub speedup: DistKind,
    /// Fraction of tasks carrying a deadline.
    pub deadline_fraction: f64,
    /// Deadline slack factor: deadline = hw_runtime × factor (sampled).
    pub deadline_slack: DistKind,
}

/// Everything needed to generate one modality's job stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModalityProfile {
    /// The modality this profile describes.
    pub modality: Modality,
    /// Base submissions per user per day (scaled by user activity). For
    /// ensemble/workflow modalities this is *instances* per day, each
    /// expanding to many jobs.
    pub per_user_per_day: f64,
    /// Arrival process shape.
    pub arrival: ArrivalKind,
    /// Core-count choices and weights.
    pub cores_weights: Vec<(usize, f64)>,
    /// Runtime distribution, seconds.
    pub runtime: DistKind,
    /// Estimate padding multiplier distribution (≥ 1 enforced at use).
    pub estimate_factor: DistKind,
    /// Input staging size, MB.
    pub input_mb: DistKind,
    /// Output staging size, MB.
    pub output_mb: DistKind,
    /// Probability the user pins their home site instead of letting the
    /// metascheduler choose.
    pub site_pinned_prob: f64,
    /// Ensemble width distribution (ensemble modality only).
    pub ensemble_width: Option<DistKind>,
    /// Workflow shapes with selection weights (workflow modality only).
    pub dag_shapes: Vec<(DagShape, f64)>,
    /// RC task parameters (RC modality only).
    pub rc: Option<RcTaskProfile>,
}

impl ModalityProfile {
    /// The literature-shaped default profile for `modality`.
    pub fn default_for(modality: Modality) -> Self {
        let base = ModalityProfile {
            modality,
            per_user_per_day: 1.0,
            arrival: ArrivalKind::Poisson,
            cores_weights: vec![(1, 1.0)],
            runtime: DistKind::LogNormal {
                mean: 3600.0,
                cv: 1.5,
            },
            estimate_factor: DistKind::Uniform { lo: 1.0, hi: 3.0 },
            input_mb: DistKind::LogNormal {
                mean: 100.0,
                cv: 2.0,
            },
            output_mb: DistKind::LogNormal {
                mean: 200.0,
                cv: 2.0,
            },
            site_pinned_prob: 0.5,
            ensemble_width: None,
            dag_shapes: Vec::new(),
            rc: None,
        };
        match modality {
            Modality::BatchComputing => ModalityProfile {
                per_user_per_day: 1.5,
                arrival: ArrivalKind::Diurnal {
                    day_night_ratio: 2.0,
                    peak_hour: 14.0,
                    weekend_factor: 0.7,
                },
                cores_weights: vec![
                    (16, 20.0),
                    (32, 20.0),
                    (64, 18.0),
                    (128, 15.0),
                    (256, 12.0),
                    (512, 8.0),
                    (1024, 5.0),
                    (4096, 2.0), // hero-class runs
                ],
                runtime: DistKind::LogNormal {
                    mean: 4.0 * 3600.0,
                    cv: 1.8,
                },
                site_pinned_prob: 0.7,
                ..base
            },
            Modality::Interactive => ModalityProfile {
                per_user_per_day: 8.0,
                arrival: ArrivalKind::Diurnal {
                    day_night_ratio: 6.0,
                    peak_hour: 14.0,
                    weekend_factor: 0.3,
                },
                cores_weights: vec![(1, 40.0), (2, 25.0), (4, 20.0), (8, 15.0)],
                runtime: DistKind::LogNormal {
                    mean: 600.0,
                    cv: 1.0,
                },
                estimate_factor: DistKind::Uniform { lo: 2.0, hi: 6.0 },
                site_pinned_prob: 0.95, // interactive users live on one machine
                ..base
            },
            Modality::ScienceGateway => ModalityProfile {
                per_user_per_day: 5.0,
                arrival: ArrivalKind::Diurnal {
                    day_night_ratio: 4.0,
                    peak_hour: 15.0,
                    weekend_factor: 0.5,
                },
                cores_weights: vec![(1, 30.0), (2, 20.0), (4, 20.0), (8, 18.0), (16, 12.0)],
                runtime: DistKind::LogNormal {
                    mean: 1800.0,
                    cv: 1.2,
                },
                site_pinned_prob: 0.2, // the gateway brokers placement
                ..base
            },
            Modality::Workflow => ModalityProfile {
                per_user_per_day: 0.25,
                arrival: ArrivalKind::Bursty {
                    burst_ratio: 20.0,
                    mean_quiet_s: 6.0 * 3600.0,
                    mean_burst_s: 1800.0,
                },
                cores_weights: vec![(1, 25.0), (4, 25.0), (16, 25.0), (64, 25.0)],
                runtime: DistKind::LogNormal {
                    mean: 3600.0,
                    cv: 1.0,
                },
                site_pinned_prob: 0.1, // the engine metaschedules
                dag_shapes: vec![
                    (DagShape::Chain { n: 6 }, 3.0),
                    (
                        DagShape::ForkJoin {
                            width: 8,
                            stages: 2,
                        },
                        3.0,
                    ),
                    (
                        DagShape::Layered {
                            layers: 4,
                            width: 6,
                            fan_in: 2,
                        },
                        4.0,
                    ),
                ],
                ..base
            },
            Modality::Ensemble => ModalityProfile {
                per_user_per_day: 0.15,
                arrival: ArrivalKind::Poisson,
                cores_weights: vec![(1, 40.0), (2, 30.0), (4, 30.0)],
                runtime: DistKind::LogNormal {
                    mean: 3600.0,
                    cv: 0.6,
                },
                ensemble_width: Some(DistKind::LogNormal {
                    mean: 60.0,
                    cv: 1.0,
                }),
                site_pinned_prob: 0.3,
                ..base
            },
            Modality::DataMovement => ModalityProfile {
                per_user_per_day: 3.0,
                arrival: ArrivalKind::Diurnal {
                    day_night_ratio: 2.0,
                    peak_hour: 11.0,
                    weekend_factor: 0.8,
                },
                cores_weights: vec![(1, 1.0)],
                runtime: DistKind::LogNormal {
                    mean: 300.0,
                    cv: 0.8,
                },
                input_mb: DistKind::Pareto {
                    xm: 1_000.0,
                    alpha: 1.3,
                },
                output_mb: DistKind::Pareto {
                    xm: 2_000.0,
                    alpha: 1.3,
                },
                site_pinned_prob: 0.4,
                ..base
            },
            Modality::RcAccelerated => ModalityProfile {
                per_user_per_day: 12.0,
                arrival: ArrivalKind::Poisson, // machine-driven
                cores_weights: vec![(1, 1.0)],
                runtime: DistKind::LogNormal {
                    mean: 1200.0,
                    cv: 1.0,
                },
                site_pinned_prob: 1.0, // RC tasks go where the fabric is
                rc: Some(RcTaskProfile {
                    config_zipf_s: 1.1,
                    speedup: DistKind::Uniform { lo: 4.0, hi: 40.0 },
                    deadline_fraction: 0.5,
                    deadline_slack: DistKind::Uniform { lo: 3.0, hi: 12.0 },
                }),
                ..base
            },
        }
    }

    /// All default profiles, in [`Modality::ALL`] order.
    pub fn all_defaults() -> Vec<ModalityProfile> {
        Modality::ALL
            .iter()
            .map(|&m| ModalityProfile::default_for(m))
            .collect()
    }
}

/// How many users practice each modality, plus population-level skew knobs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PopulationMix {
    /// Users per modality, in [`Modality::ALL`] order.
    pub users_per_modality: [usize; Modality::ALL.len()],
    /// Number of projects users are spread across.
    pub projects: usize,
    /// Zipf exponent of the per-user activity skew (0 = uniform).
    pub activity_zipf_s: f64,
    /// Number of science gateways sharing the gateway users.
    pub gateways: usize,
}

impl PopulationMix {
    /// The baseline-scenario mix: gateway users dominate user counts, batch
    /// users dominate consumed core-hours — the asymmetry the paper's
    /// measurement program exists to expose.
    pub fn baseline(total_users: usize) -> Self {
        // Shares of the user population per modality.
        let shares = [
            (Modality::BatchComputing, 0.22),
            (Modality::Interactive, 0.12),
            (Modality::ScienceGateway, 0.40),
            (Modality::Workflow, 0.08),
            (Modality::Ensemble, 0.08),
            (Modality::DataMovement, 0.06),
            (Modality::RcAccelerated, 0.04),
        ];
        let mut users = [0usize; Modality::ALL.len()];
        for (m, share) in shares {
            users[m.index()] = ((total_users as f64) * share).round() as usize;
        }
        PopulationMix {
            users_per_modality: users,
            projects: (total_users / 8).max(1),
            activity_zipf_s: 1.0,
            gateways: 6,
        }
    }

    /// Total user count.
    pub fn total_users(&self) -> usize {
        self.users_per_modality.iter().sum()
    }

    /// Set the user count for one modality (builder style).
    pub fn with_users(mut self, m: Modality, count: usize) -> Self {
        self.users_per_modality[m.index()] = count;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_exist_for_every_modality() {
        for m in Modality::ALL {
            let p = ModalityProfile::default_for(m);
            assert_eq!(p.modality, m);
            assert!(p.per_user_per_day > 0.0);
            assert!(!p.cores_weights.is_empty());
            assert!(p.cores_weights.iter().all(|&(c, w)| c > 0 && w > 0.0));
        }
        assert_eq!(ModalityProfile::all_defaults().len(), Modality::ALL.len());
    }

    #[test]
    fn structural_extras_only_where_expected() {
        for m in Modality::ALL {
            let p = ModalityProfile::default_for(m);
            assert_eq!(p.ensemble_width.is_some(), m == Modality::Ensemble);
            assert_eq!(!p.dag_shapes.is_empty(), m == Modality::Workflow);
            assert_eq!(p.rc.is_some(), m == Modality::RcAccelerated);
        }
    }

    #[test]
    fn baseline_mix_shares() {
        let mix = PopulationMix::baseline(1000);
        assert_eq!(mix.total_users(), 1000);
        let gw = mix.users_per_modality[Modality::ScienceGateway.index()];
        let batch = mix.users_per_modality[Modality::BatchComputing.index()];
        assert!(gw > batch, "gateway users dominate the population");
        assert!(mix.projects >= 1);
        assert!(mix.gateways >= 1);
    }

    #[test]
    fn with_users_overrides() {
        let mix = PopulationMix::baseline(100).with_users(Modality::RcAccelerated, 50);
        assert_eq!(mix.users_per_modality[Modality::RcAccelerated.index()], 50);
    }

    #[test]
    fn profiles_serde_roundtrip() {
        let p = ModalityProfile::default_for(Modality::Workflow);
        let json = serde_json::to_string(&p).unwrap();
        let back: ModalityProfile = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
    }
}
