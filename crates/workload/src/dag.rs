//! Workflow DAG shapes.
//!
//! Generates the dependency skeletons workflow engines submit. Three shapes
//! cover the common cases in the workflow-workload literature:
//!
//! * [`DagShape::Chain`] — sequential pipelines.
//! * [`DagShape::ForkJoin`] — split/process/merge (map-reduce style).
//! * [`DagShape::Layered`] — Montage-like random layered DAGs where each
//!   task depends on a random subset of the previous layer.
//!
//! Output is edge lists over task indices `0..n` with the invariant that
//! every edge goes from a lower to a higher index — acyclicity by
//! construction, verified by tests.

use serde::{Deserialize, Serialize};
use tg_des::SimRng;

/// A workflow skeleton: task count plus dependency edges `(from, to)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DagSkeleton {
    /// Number of tasks.
    pub tasks: usize,
    /// Dependency edges; `to` cannot start before `from` completes.
    pub edges: Vec<(usize, usize)>,
}

impl DagSkeleton {
    /// Direct dependencies of task `t`.
    pub fn deps_of(&self, t: usize) -> Vec<usize> {
        self.edges
            .iter()
            .filter(|&&(_, to)| to == t)
            .map(|&(from, _)| from)
            .collect()
    }

    /// Tasks with no dependencies (the entry layer).
    pub fn roots(&self) -> Vec<usize> {
        (0..self.tasks)
            .filter(|&t| !self.edges.iter().any(|&(_, to)| to == t))
            .collect()
    }

    /// Length of the longest dependency chain (the DAG's critical-path hop
    /// count), computed by DP over the topological (index) order.
    pub fn critical_path_len(&self) -> usize {
        if self.tasks == 0 {
            return 0;
        }
        let mut depth = vec![1usize; self.tasks];
        for &(from, to) in &self.edges {
            // Edges always point forward, so a single pass in index order is
            // a valid topological relaxation as long as we iterate edges
            // sorted by `to`.
            debug_assert!(from < to);
            depth[to] = depth[to].max(depth[from] + 1);
        }
        depth.into_iter().max().unwrap_or(0)
    }

    /// Validate the forward-edge invariant.
    pub fn is_acyclic_by_construction(&self) -> bool {
        self.edges
            .iter()
            .all(|&(from, to)| from < to && to < self.tasks)
    }
}

/// The supported workflow shapes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[serde(tag = "shape", rename_all = "snake_case")]
pub enum DagShape {
    /// `n` tasks in a sequential chain.
    Chain {
        /// Number of tasks (≥ 1).
        n: usize,
    },
    /// A fork-join: one source, `width` parallel tasks per stage for
    /// `stages` stages (joined between stages), one sink.
    ForkJoin {
        /// Parallel width per stage (≥ 1).
        width: usize,
        /// Number of parallel stages (≥ 1).
        stages: usize,
    },
    /// Random layered DAG: `layers` layers of `width` tasks; each task
    /// depends on 1..=fan_in random tasks of the previous layer.
    Layered {
        /// Number of layers (≥ 1).
        layers: usize,
        /// Tasks per layer (≥ 1).
        width: usize,
        /// Maximum dependencies per task on the previous layer (≥ 1).
        fan_in: usize,
    },
}

impl DagShape {
    /// Number of tasks this shape expands to (independent of the RNG).
    pub fn task_count(&self) -> usize {
        match *self {
            DagShape::Chain { n } => n,
            DagShape::ForkJoin { width, stages } => width * stages + 2,
            DagShape::Layered { layers, width, .. } => layers * width,
        }
    }

    /// Generate the skeleton (deterministic given `rng` state).
    pub fn generate(&self, rng: &mut SimRng) -> DagSkeleton {
        match *self {
            DagShape::Chain { n } => {
                assert!(n >= 1, "chain needs a task");
                let edges = (1..n).map(|i| (i - 1, i)).collect();
                DagSkeleton { tasks: n, edges }
            }
            DagShape::ForkJoin { width, stages } => {
                assert!(width >= 1 && stages >= 1, "bad fork-join");
                // Index layout: 0 = source; then per stage `width` workers;
                // then sink. Stages are joined through synthetic join tasks
                // only if stages > 1 — we join directly worker→worker of
                // the next stage via an all-to-all, which preserves the
                // barrier semantics without extra tasks.
                let mut edges = Vec::new();
                let worker = |stage: usize, i: usize| 1 + stage * width + i;
                for i in 0..width {
                    edges.push((0, worker(0, i)));
                }
                for s in 1..stages {
                    for i in 0..width {
                        for j in 0..width {
                            edges.push((worker(s - 1, i), worker(s, j)));
                        }
                    }
                }
                let sink = 1 + stages * width;
                for i in 0..width {
                    edges.push((worker(stages - 1, i), sink));
                }
                DagSkeleton {
                    tasks: sink + 1,
                    edges,
                }
            }
            DagShape::Layered {
                layers,
                width,
                fan_in,
            } => {
                assert!(layers >= 1 && width >= 1 && fan_in >= 1, "bad layered");
                let mut edges = Vec::new();
                let task = |layer: usize, i: usize| layer * width + i;
                for l in 1..layers {
                    for i in 0..width {
                        let k = rng.int_range(1, fan_in.min(width) as u64) as usize;
                        // Choose k distinct parents from the previous layer.
                        let mut parents: Vec<usize> = (0..width).collect();
                        rng.shuffle(&mut parents);
                        for &p in parents.iter().take(k) {
                            edges.push((task(l - 1, p), task(l, i)));
                        }
                    }
                }
                edges.sort_unstable_by_key(|&(_, to)| to);
                DagSkeleton {
                    tasks: layers * width,
                    edges,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_shape() {
        let mut rng = SimRng::seeded(1);
        let d = DagShape::Chain { n: 5 }.generate(&mut rng);
        assert_eq!(d.tasks, 5);
        assert_eq!(d.edges, vec![(0, 1), (1, 2), (2, 3), (3, 4)]);
        assert_eq!(d.roots(), vec![0]);
        assert_eq!(d.critical_path_len(), 5);
        assert!(d.is_acyclic_by_construction());
        assert_eq!(d.deps_of(3), vec![2]);
    }

    #[test]
    fn single_task_chain() {
        let mut rng = SimRng::seeded(1);
        let d = DagShape::Chain { n: 1 }.generate(&mut rng);
        assert_eq!(d.tasks, 1);
        assert!(d.edges.is_empty());
        assert_eq!(d.critical_path_len(), 1);
    }

    #[test]
    fn fork_join_shape() {
        let mut rng = SimRng::seeded(2);
        let d = DagShape::ForkJoin {
            width: 3,
            stages: 2,
        }
        .generate(&mut rng);
        // 1 source + 2*3 workers + 1 sink = 8 tasks.
        assert_eq!(d.tasks, 8);
        assert_eq!(d.roots(), vec![0]);
        // Critical path: source → w0 → w1 → sink = 4 hops.
        assert_eq!(d.critical_path_len(), 4);
        assert!(d.is_acyclic_by_construction());
        // Sink depends on all stage-2 workers.
        assert_eq!(d.deps_of(7).len(), 3);
        // Stage-2 workers depend on all stage-1 workers (barrier).
        assert_eq!(d.deps_of(4).len(), 3);
    }

    #[test]
    fn layered_shape_respects_fan_in_and_layers() {
        let mut rng = SimRng::seeded(3);
        let d = DagShape::Layered {
            layers: 4,
            width: 5,
            fan_in: 2,
        }
        .generate(&mut rng);
        assert_eq!(d.tasks, 20);
        assert!(d.is_acyclic_by_construction());
        assert_eq!(d.critical_path_len(), 4);
        // First layer are roots.
        let roots = d.roots();
        assert_eq!(roots, vec![0, 1, 2, 3, 4]);
        // Every non-root task has 1..=2 deps, all from the previous layer.
        for t in 5..20 {
            let deps = d.deps_of(t);
            assert!((1..=2).contains(&deps.len()), "task {t}: {deps:?}");
            let layer = t / 5;
            for p in deps {
                assert_eq!(p / 5, layer - 1, "dep crosses more than one layer");
            }
        }
    }

    #[test]
    fn layered_deps_are_distinct() {
        let mut rng = SimRng::seeded(4);
        let d = DagShape::Layered {
            layers: 3,
            width: 4,
            fan_in: 4,
        }
        .generate(&mut rng);
        for t in 0..d.tasks {
            let mut deps = d.deps_of(t);
            let n = deps.len();
            deps.sort_unstable();
            deps.dedup();
            assert_eq!(deps.len(), n, "duplicate dependency on task {t}");
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let gen = |seed| {
            let mut rng = SimRng::seeded(seed);
            DagShape::Layered {
                layers: 5,
                width: 6,
                fan_in: 3,
            }
            .generate(&mut rng)
        };
        assert_eq!(gen(9), gen(9));
        assert_ne!(gen(9), gen(10));
    }
}
