//! Lazy, seed-derived streaming workload generation.
//!
//! [`WorkloadGenerator::generate`] materializes every job up front; at
//! million-user scale that footprint dominates peak RSS. This module
//! produces the *identical* job sequence one job at a time:
//!
//! 1. **Counting prepass.** Each user's generation is replayed (same RNG
//!    stream, same draws) with the jobs discarded, yielding the exact
//!    per-user id bases the global counters would have reached — job,
//!    workflow, and ensemble ids are threaded across users in population
//!    order, so each user owns a contiguous block of each id space.
//! 2. **Per-user cursors.** A fresh `UserGen` per user re-draws the
//!    arrival instants up front (~8 bytes per arrival, versus hundreds per
//!    materialized job) and draws job fields lazily as each arrival is
//!    pulled. The draw *order* within the user's stream is unchanged —
//!    all arrivals first, then per-arrival job fields — so every sampled
//!    value matches the materialized path bit for bit.
//! 3. **K-way merge.** Arrival instants strictly increase within a user
//!    and every job in an arrival's block shares its submit time with
//!    contiguous ascending ids, so each cursor emits blocks already sorted
//!    by `(submit_time, id)`, and block id-ranges are globally disjoint. A
//!    heap over `(next submit time, next id)` therefore reproduces the
//!    materialized `sort_by_key(|j| (j.submit_time, j.id))` exactly.
//!
//! The cost is one extra generation pass (the prepass) and the resident
//! cursors; what it buys is that pending jobs never exist all at once.

use crate::generator::{IdCursor, UserGen, WorkloadGenerator};
use crate::job::Job;
use crate::user::Population;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use tg_des::dist::Zipf;
use tg_des::{RngFactory, SimTime};

/// A lazily generated workload: the population and exact job count are
/// known up front (the simulation needs both before the first event), but
/// the jobs themselves materialize one at a time from [`StreamedWorkload::stream`].
pub struct StreamedWorkload {
    /// The user population behind the jobs (identical to the materialized
    /// path's).
    pub population: Population,
    /// Exact number of jobs the stream will yield.
    pub total_jobs: usize,
    /// The job stream, sorted by `(submit_time, id)`.
    pub stream: WorkloadStream,
}

/// Iterator over the merged per-user job streams. Yields every job the
/// materialized generator would produce, in the same order, holding only
/// per-user cursors plus one arrival block in memory.
pub struct WorkloadStream {
    gen: WorkloadGenerator,
    rc_zipf: Option<Zipf>,
    cursors: Vec<UserGen>,
    /// Min-heap of `(next submit time, next job id, cursor index)` — the
    /// head of each non-exhausted cursor.
    heap: BinaryHeap<Reverse<(SimTime, usize, usize)>>,
    /// The current arrival block, delivered front to back.
    block: VecDeque<Job>,
    emitted: usize,
}

impl WorkloadGenerator {
    /// Generate the population and a lazy job stream. The stream yields a
    /// job sequence bit-identical to [`WorkloadGenerator::generate`] at the
    /// same seed (see the module docs for why), without ever materializing
    /// the whole workload.
    pub fn generate_streaming(&self, factory: &RngFactory) -> StreamedWorkload {
        let population = self.population();
        let rc_zipf = self.rc_zipf();
        let mut ids = IdCursor::default();
        let mut gw_counter = 0usize;
        let mut cursors = Vec::with_capacity(population.users.len());
        let mut heap = BinaryHeap::with_capacity(population.users.len());
        let mut scratch: Vec<Job> = Vec::new();

        for user in &population.users {
            let gateway = self.gateway_for(user, &mut gw_counter);
            // Counting prepass: replay this user's generation and discard
            // the jobs — only the id-counter advance is kept. Uses its own
            // instance of the user's RNG stream, so the real cursor below
            // starts from the identical state.
            let mut counter = UserGen::new(self, user, factory, ids, gateway);
            while counter.emit_next(self, rc_zipf.as_ref(), &mut scratch) {
                scratch.clear();
            }
            let cursor = UserGen::new(self, user, factory, ids, gateway);
            if let Some(t) = cursor.peek_time() {
                heap.push(Reverse((t, cursor.ids().next_job, cursors.len())));
            }
            ids = counter.ids();
            cursors.push(cursor);
        }

        let total_jobs = ids.next_job;
        StreamedWorkload {
            population,
            total_jobs,
            stream: WorkloadStream {
                gen: self.clone(),
                rc_zipf,
                cursors,
                heap,
                block: VecDeque::new(),
                emitted: 0,
            },
        }
    }
}

impl WorkloadStream {
    /// Jobs yielded so far.
    pub fn emitted(&self) -> usize {
        self.emitted
    }

    fn refill(&mut self) {
        let Some(Reverse((_, _, idx))) = self.heap.pop() else {
            return;
        };
        let cursor = &mut self.cursors[idx];
        let mut block = std::mem::take(&mut self.block);
        let mut out: Vec<Job> = Vec::with_capacity(4);
        let produced = cursor.emit_next(&self.gen, self.rc_zipf.as_ref(), &mut out);
        debug_assert!(produced, "heaped cursor had no arrival left");
        block.extend(out);
        if let Some(t) = cursor.peek_time() {
            self.heap.push(Reverse((t, cursor.ids().next_job, idx)));
        }
        self.block = block;
    }
}

impl Iterator for WorkloadStream {
    type Item = Job;

    fn next(&mut self) -> Option<Job> {
        while self.block.is_empty() {
            if self.heap.is_empty() {
                return None;
            }
            self.refill();
        }
        self.emitted += 1;
        self.block.pop_front()
    }
}

/// A materialized workload viewed as the same kind of stream — used by
/// trace-replay paths that already hold the jobs but want to feed the
/// engine's lazy scheduling interface.
pub fn drain_sorted(jobs: Vec<Job>) -> impl Iterator<Item = Job> + Send {
    debug_assert!(jobs
        .windows(2)
        .all(|w| (w[0].submit_time, w[0].id) <= (w[1].submit_time, w[1].id)));
    jobs.into_iter()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::GeneratorConfig;
    use crate::modality::Modality;

    fn cfg() -> GeneratorConfig {
        let mut cfg = GeneratorConfig::baseline(140, 14, 3);
        cfg.mix.activity_zipf_s = 0.8;
        cfg
    }

    #[test]
    fn streamed_equals_materialized() {
        for seed in [1u64, 7, 42] {
            let gen = WorkloadGenerator::new(cfg());
            let materialized = gen.generate(&RngFactory::new(seed));
            let streamed = gen.generate_streaming(&RngFactory::new(seed));
            assert_eq!(streamed.population.users, materialized.population.users);
            assert_eq!(streamed.total_jobs, materialized.jobs.len());
            let jobs: Vec<Job> = streamed.stream.collect();
            assert_eq!(jobs, materialized.jobs, "seed {seed}");
        }
    }

    #[test]
    fn stream_covers_every_modality() {
        let gen = WorkloadGenerator::new(cfg());
        let streamed = gen.generate_streaming(&RngFactory::new(2));
        let jobs: Vec<Job> = streamed.stream.collect();
        for m in Modality::ALL {
            assert!(jobs.iter().any(|j| j.true_modality == m), "no {m} jobs");
        }
    }

    #[test]
    fn emitted_counts_match_declared_total() {
        let gen = WorkloadGenerator::new(cfg());
        let streamed = gen.generate_streaming(&RngFactory::new(3));
        let declared = streamed.total_jobs;
        let mut stream = streamed.stream;
        let n = stream.by_ref().count();
        assert_eq!(n, declared);
        assert_eq!(stream.emitted(), declared);
        assert!(stream.next().is_none(), "stream stays exhausted");
    }
}
