//! The job record.
//!
//! One `Job` is the unit everything downstream consumes: schedulers queue
//! it, clusters run it, accounting charges it, and the modality classifier
//! tries to recover `true_modality` from its observable fields.

use crate::ids::{EnsembleId, GatewayId, JobId, ProjectId, UserId, WorkflowId};
use crate::modality::Modality;
use serde::{Deserialize, Serialize};
use tg_data::DatasetId;
use tg_des::{SimDuration, SimTime};
use tg_model::{ConfigId, SiteId};

/// Through which interface a job reached the grid — an observable the
/// classifier may use (gateways and workflow engines tag their submissions).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SubmitInterface {
    /// Direct command-line submission on a login node.
    CommandLine,
    /// A science-gateway portal submitting under a community account.
    GatewayPortal,
    /// A grid API endpoint (GRAM-style), used by tools and some gateways.
    GridApi,
    /// A workflow engine / metascheduler.
    WorkflowEngine,
}

/// Reconfigurable-hardware requirement attached to a job.
///
/// The task has both implementations: a software (GPP) version whose runtime
/// is the job's base [`Job::runtime`], and a hardware kernel that runs
/// `speedup`× faster once a region is configured with `config`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RcRequirement {
    /// The processor configuration (bitstream) the hardware version needs.
    pub config: ConfigId,
    /// Hardware-over-software speedup (> 1 means the kernel is faster).
    pub speedup: f64,
    /// Optional completion deadline (relative to submission) for the
    /// schedule-success-rate experiments.
    pub deadline: Option<SimDuration>,
}

/// One job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Job {
    /// Unique id.
    pub id: JobId,
    /// Submitting account.
    pub user: UserId,
    /// Project charged for the usage.
    pub project: ProjectId,
    /// When the job enters the system.
    pub submit_time: SimTime,
    /// Cores requested (held exclusively for the whole runtime).
    pub cores: usize,
    /// Actual runtime on reference hardware (software version for RC jobs).
    pub runtime: SimDuration,
    /// The user's runtime estimate (what backfill reasons with); never less
    /// than `runtime` in generated workloads, mirroring the padding real
    /// users apply.
    pub estimate: SimDuration,
    /// Preferred site, if the user pinned one; `None` lets the metascheduler
    /// choose.
    pub site_hint: Option<SiteId>,
    /// Submission interface.
    pub interface: SubmitInterface,
    /// Set when submitted by a science gateway.
    pub gateway: Option<GatewayId>,
    /// Set when this job is a task of a workflow instance.
    pub workflow: Option<WorkflowId>,
    /// Intra-workflow dependencies: this job may not start before these
    /// complete. Empty for non-workflow jobs.
    pub deps: Vec<JobId>,
    /// Set when this job is a member of an ensemble (parameter sweep).
    pub ensemble: Option<EnsembleId>,
    /// Reconfigurable-hardware requirement, if any.
    pub rc: Option<RcRequirement>,
    /// Input data staged in before the run, MB.
    pub input_mb: f64,
    /// Output data staged out after the run, MB.
    pub output_mb: f64,
    /// Named dataset this job reads, when the scenario declares a data grid.
    /// Replaces the flat `input_mb` staging charge with replica-catalog /
    /// cache mechanics.
    #[serde(default)]
    pub dataset: Option<DatasetId>,
    /// Ground-truth modality (hidden from the classifier, used for scoring).
    pub true_modality: Modality,
}

impl Job {
    /// A minimal batch job; the builder-style `with_*` methods specialize it.
    pub fn batch(
        id: JobId,
        user: UserId,
        project: ProjectId,
        submit_time: SimTime,
        cores: usize,
        runtime: SimDuration,
    ) -> Self {
        assert!(cores > 0, "job needs at least one core");
        Job {
            id,
            user,
            project,
            submit_time,
            cores,
            runtime,
            estimate: runtime,
            site_hint: None,
            interface: SubmitInterface::CommandLine,
            gateway: None,
            workflow: None,
            deps: Vec::new(),
            ensemble: None,
            rc: None,
            input_mb: 0.0,
            output_mb: 0.0,
            dataset: None,
            true_modality: Modality::BatchComputing,
        }
    }

    /// Set the runtime estimate (clamped to at least the true runtime —
    /// under-estimates would be killed by a real scheduler, which we don't
    /// model; DESIGN.md records this).
    pub fn with_estimate(mut self, estimate: SimDuration) -> Self {
        self.estimate = estimate.max(self.runtime);
        self
    }

    /// Pin the job to a site.
    pub fn with_site(mut self, site: SiteId) -> Self {
        self.site_hint = Some(site);
        self
    }

    /// Mark as gateway-submitted.
    pub fn via_gateway(mut self, gw: GatewayId) -> Self {
        self.gateway = Some(gw);
        self.interface = SubmitInterface::GatewayPortal;
        self.true_modality = Modality::ScienceGateway;
        self
    }

    /// Mark as a workflow task with dependencies.
    pub fn in_workflow(mut self, wf: WorkflowId, deps: Vec<JobId>) -> Self {
        self.workflow = Some(wf);
        self.deps = deps;
        self.interface = SubmitInterface::WorkflowEngine;
        self.true_modality = Modality::Workflow;
        self
    }

    /// Mark as an ensemble member.
    pub fn in_ensemble(mut self, ens: EnsembleId) -> Self {
        self.ensemble = Some(ens);
        self.true_modality = Modality::Ensemble;
        self
    }

    /// Attach a reconfigurable-hardware requirement.
    pub fn with_rc(mut self, rc: RcRequirement) -> Self {
        self.rc = Some(rc);
        self.true_modality = Modality::RcAccelerated;
        self
    }

    /// Attach staging data sizes.
    pub fn with_data(mut self, input_mb: f64, output_mb: f64) -> Self {
        self.input_mb = input_mb;
        self.output_mb = output_mb;
        self
    }

    /// Attach a named dataset (data-grid scenarios).
    pub fn with_dataset(mut self, dataset: DatasetId) -> Self {
        self.dataset = Some(dataset);
        self
    }

    /// Override the ground-truth modality label (used by generators for
    /// modalities without structural markers, e.g. interactive).
    pub fn labeled(mut self, m: Modality) -> Self {
        self.true_modality = m;
        self
    }

    /// Runtime of this job on a site with relative `core_speed`, using the
    /// hardware kernel if `use_hw` and the job has one.
    pub fn runtime_on(&self, core_speed: f64, use_hw: bool) -> SimDuration {
        let base = self.runtime.mul_f64(1.0 / core_speed.max(1e-9));
        match (&self.rc, use_hw) {
            (Some(rc), true) => base.mul_f64(1.0 / rc.speedup),
            _ => base,
        }
    }

    /// Core-seconds this job consumes (reference hardware, software version).
    pub fn core_seconds(&self) -> f64 {
        self.cores as f64 * self.runtime.as_secs_f64()
    }

    /// Is this job runnable given the set of completed jobs? (Dependency
    /// check for workflow tasks.)
    pub fn deps_satisfied(&self, completed: impl Fn(JobId) -> bool) -> bool {
        self.deps.iter().all(|&d| completed(d))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn j() -> Job {
        Job::batch(
            JobId(1),
            UserId(2),
            ProjectId(3),
            SimTime::from_secs(100),
            16,
            SimDuration::from_hours(2),
        )
    }

    #[test]
    fn batch_defaults() {
        let job = j();
        assert_eq!(job.true_modality, Modality::BatchComputing);
        assert_eq!(job.interface, SubmitInterface::CommandLine);
        assert_eq!(job.estimate, job.runtime);
        assert!(job.deps.is_empty());
        assert!((job.core_seconds() - 16.0 * 7200.0).abs() < 1e-9);
    }

    #[test]
    fn estimate_clamps_to_runtime() {
        let job = j().with_estimate(SimDuration::from_mins(1));
        assert_eq!(job.estimate, job.runtime);
        let job = j().with_estimate(SimDuration::from_hours(4));
        assert_eq!(job.estimate, SimDuration::from_hours(4));
    }

    #[test]
    fn builders_set_modality_and_interface() {
        let g = j().via_gateway(GatewayId(0));
        assert_eq!(g.true_modality, Modality::ScienceGateway);
        assert_eq!(g.interface, SubmitInterface::GatewayPortal);

        let w = j().in_workflow(WorkflowId(4), vec![JobId(0)]);
        assert_eq!(w.true_modality, Modality::Workflow);
        assert_eq!(w.interface, SubmitInterface::WorkflowEngine);
        assert_eq!(w.deps, vec![JobId(0)]);

        let e = j().in_ensemble(EnsembleId(7));
        assert_eq!(e.true_modality, Modality::Ensemble);

        let r = j().with_rc(RcRequirement {
            config: ConfigId(0),
            speedup: 10.0,
            deadline: None,
        });
        assert_eq!(r.true_modality, Modality::RcAccelerated);

        let i = j().labeled(Modality::Interactive);
        assert_eq!(i.true_modality, Modality::Interactive);
    }

    #[test]
    fn runtime_on_scales_with_speed_and_hw() {
        let rc = RcRequirement {
            config: ConfigId(0),
            speedup: 4.0,
            deadline: None,
        };
        let job = j().with_rc(rc);
        assert_eq!(job.runtime_on(1.0, false), SimDuration::from_hours(2));
        assert_eq!(job.runtime_on(2.0, false), SimDuration::from_hours(1));
        assert_eq!(job.runtime_on(1.0, true), SimDuration::from_mins(30));
        // HW flag on a non-RC job is a no-op.
        assert_eq!(j().runtime_on(1.0, true), SimDuration::from_hours(2));
    }

    #[test]
    fn deps_satisfied_logic() {
        let w = j().in_workflow(WorkflowId(0), vec![JobId(10), JobId(11)]);
        assert!(!w.deps_satisfied(|d| d == JobId(10)));
        assert!(w.deps_satisfied(|_| true));
        assert!(j().deps_satisfied(|_| false), "no deps → always satisfied");
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_core_job_rejected() {
        Job::batch(
            JobId(0),
            UserId(0),
            ProjectId(0),
            SimTime::ZERO,
            0,
            SimDuration::from_secs(1),
        );
    }
}
