//! Standard Workload Format (SWF) import/export.
//!
//! The SWF is the lingua franca of the Parallel Workloads Archive: one job
//! per line, 18 whitespace-separated integer fields, `;` comment header.
//! Exporting lets external tools consume generated workloads; importing lets
//! the simulator replay archive traces.
//!
//! Field mapping (standard fields we populate; unused fields are `-1`):
//!
//! | # | SWF field        | ours                                     |
//! |---|------------------|------------------------------------------|
//! | 1 | job number       | `JobId + 1` (SWF is 1-based)             |
//! | 2 | submit time (s)  | `submit_time` seconds                    |
//! | 4 | run time (s)     | `runtime` seconds                        |
//! | 5 | allocated procs  | `cores`                                  |
//! | 9 | requested time   | `estimate` seconds                       |
//! | 12| user id          | `UserId`                                 |
//! | 13| group id         | `ProjectId`                              |
//! | 15| queue number     | modality index + 1 (extension, documented in header) |
//! | 16| partition number | `site_hint` + 1, or `-1`                 |
//!
//! The mapping is **lossy** for workflow structure, gateway identity, and RC
//! requirements — the SWF has no fields for them. Round-trips preserve the
//! representable subset; tests pin that contract.

use crate::ids::{JobId, ProjectId, UserId};
use crate::job::Job;
use crate::modality::Modality;
use tg_des::{SimDuration, SimTime};
use tg_model::SiteId;

/// Serialize jobs to SWF text.
pub fn to_swf(jobs: &[Job]) -> String {
    let mut out = String::with_capacity(jobs.len() * 64 + 256);
    out.push_str("; SWF export from teragrid-sim\n");
    out.push_str("; Queue numbers encode usage modalities:\n");
    for m in Modality::ALL {
        out.push_str(&format!(";   queue {} = {}\n", m.index() + 1, m.name()));
    }
    for j in jobs {
        let partition = j.site_hint.map(|s| s.index() as i64 + 1).unwrap_or(-1);
        out.push_str(&format!(
            "{} {} -1 {} {} -1 -1 {} {} -1 -1 {} {} -1 {} {} -1 -1\n",
            j.id.index() + 1,
            j.submit_time.as_micros() / 1_000_000,
            j.runtime.as_micros() / 1_000_000,
            j.cores,
            j.cores,
            j.estimate.as_micros() / 1_000_000,
            j.user.index(),
            j.project.index(),
            j.true_modality.index() + 1,
            partition,
        ));
    }
    out
}

/// A problem encountered while parsing SWF text.
#[derive(Debug, Clone, PartialEq)]
pub struct SwfError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for SwfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SWF line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for SwfError {}

/// Parse SWF text into jobs (the representable subset; see module docs).
///
/// Jobs with non-positive runtime or cores are skipped (archive traces mark
/// cancelled jobs that way). Queue numbers outside the modality range fall
/// back to batch.
pub fn from_swf(text: &str) -> Result<Vec<Job>, SwfError> {
    let mut jobs = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with(';') {
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        if fields.len() < 18 {
            return Err(SwfError {
                line: lineno + 1,
                message: format!("expected 18 fields, got {}", fields.len()),
            });
        }
        let geti = |idx: usize| -> Result<i64, SwfError> {
            fields[idx].parse::<i64>().map_err(|e| SwfError {
                line: lineno + 1,
                message: format!("field {}: {e}", idx + 1),
            })
        };
        let id = geti(0)?;
        let submit = geti(1)?;
        let runtime = geti(3)?;
        let procs = {
            let alloc = geti(4)?;
            if alloc > 0 {
                alloc
            } else {
                geti(7)?
            }
        };
        let estimate = geti(8)?;
        let uid = geti(11)?.max(0);
        let gid = geti(12)?.max(0);
        let queue = geti(14)?;
        let partition = geti(15)?;
        if runtime <= 0 || procs <= 0 || id <= 0 {
            continue; // cancelled/invalid records
        }
        let modality = usize::try_from(queue - 1)
            .ok()
            .and_then(|q| Modality::ALL.get(q).copied())
            .unwrap_or(Modality::BatchComputing);
        let mut job = Job::batch(
            JobId((id - 1) as usize),
            UserId(uid as usize),
            ProjectId(gid as usize),
            SimTime::from_secs(submit.max(0) as u64),
            procs as usize,
            SimDuration::from_secs(runtime as u64),
        )
        .labeled(modality);
        if estimate > 0 {
            job = job.with_estimate(SimDuration::from_secs(estimate as u64));
        }
        if partition > 0 {
            job = job.with_site(SiteId((partition - 1) as usize));
        }
        jobs.push(job);
    }
    Ok(jobs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_jobs() -> Vec<Job> {
        vec![
            Job::batch(
                JobId(0),
                UserId(3),
                ProjectId(1),
                SimTime::from_secs(100),
                64,
                SimDuration::from_secs(3600),
            )
            .with_estimate(SimDuration::from_secs(7200))
            .with_site(SiteId(2)),
            Job::batch(
                JobId(1),
                UserId(4),
                ProjectId(2),
                SimTime::from_secs(250),
                8,
                SimDuration::from_secs(600),
            )
            .labeled(Modality::Interactive),
        ]
    }

    #[test]
    fn roundtrip_preserves_representable_fields() {
        let jobs = sample_jobs();
        let text = to_swf(&jobs);
        let back = from_swf(&text).unwrap();
        assert_eq!(back.len(), jobs.len());
        for (a, b) in jobs.iter().zip(&back) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.submit_time, b.submit_time);
            assert_eq!(a.runtime, b.runtime);
            assert_eq!(a.cores, b.cores);
            assert_eq!(a.estimate, b.estimate);
            assert_eq!(a.user, b.user);
            assert_eq!(a.project, b.project);
            assert_eq!(a.site_hint, b.site_hint);
            assert_eq!(a.true_modality, b.true_modality);
        }
    }

    #[test]
    fn header_documents_queue_mapping() {
        let text = to_swf(&sample_jobs());
        for m in Modality::ALL {
            assert!(text.contains(&format!("queue {} = {}", m.index() + 1, m.name())));
        }
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let text = "; comment\n\n; another\n";
        assert_eq!(from_swf(text).unwrap().len(), 0);
    }

    #[test]
    fn cancelled_jobs_skipped() {
        // runtime -1 → skipped
        let text = "1 0 -1 -1 4 -1 -1 4 100 -1 -1 0 0 -1 -1 1 -1 -1\n";
        assert_eq!(from_swf(text).unwrap().len(), 0);
    }

    #[test]
    fn short_line_is_an_error() {
        let text = "1 2 3\n";
        let err = from_swf(text).unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.message.contains("18 fields"));
        assert!(err.to_string().contains("SWF line 1"));
    }

    #[test]
    fn non_numeric_field_is_an_error() {
        let text = "1 0 -1 60 abc -1 -1 4 100 -1 -1 0 0 -1 -1 1 -1 -1\n";
        assert!(from_swf(text).is_err());
    }

    #[test]
    fn unknown_queue_falls_back_to_batch() {
        let text = "1 0 -1 60 4 -1 -1 4 100 -1 -1 0 0 -1 99 1 -1 -1\n";
        let jobs = from_swf(text).unwrap();
        assert_eq!(jobs[0].true_modality, Modality::BatchComputing);
    }

    #[test]
    fn falls_back_to_requested_procs() {
        // allocated = -1, requested = 16.
        let text = "1 0 -1 60 -1 -1 -1 16 100 -1 -1 0 0 -1 1 1 -1 -1\n";
        let jobs = from_swf(text).unwrap();
        assert_eq!(jobs[0].cores, 16);
    }

    #[test]
    fn generated_workload_roundtrips_by_count() {
        use crate::generator::{GeneratorConfig, WorkloadGenerator};
        use tg_des::RngFactory;
        let w = WorkloadGenerator::new(GeneratorConfig::baseline(60, 7, 2))
            .generate(&RngFactory::new(5));
        let text = to_swf(&w.jobs);
        let back = from_swf(&text).unwrap();
        assert_eq!(back.len(), w.jobs.len());
    }
}
