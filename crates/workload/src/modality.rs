//! The usage-modality taxonomy.
//!
//! The paper's abstract defines a usage modality as *what objective a user is
//! pursuing and how they go about achieving it*. The taxonomy below follows
//! the access patterns TeraGrid distinguished operationally — how work
//! reached the machines and what shape it had — extended with the
//! reconfigurable-acceleration modality the calibration bands scope in.
//!
//! Each variant's documentation records (a) the objective, (b) the
//! observable footprint it leaves in accounting records — which is exactly
//! what the measurement pipeline in `tg-core` keys on.

use serde::{Deserialize, Serialize};
use std::fmt;

/// How a user (or their agent) uses the cyberinfrastructure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Modality {
    /// Classic remote batch computing: log in, submit independent jobs to
    /// the queue, wait. Footprint: command-line submissions, moderate-to-
    /// large core counts, runtimes of hours, low per-user job rates.
    BatchComputing,
    /// Interactive use: login sessions, development, debugging, small
    /// short jobs expected to start immediately. Footprint: session records
    /// plus many tiny short jobs during business hours.
    Interactive,
    /// Access through a science gateway: a web portal submitting on behalf
    /// of many *community* end users under one community account.
    /// Footprint: one account with very high job rates, small jobs, and
    /// gateway end-user attributes attached.
    ScienceGateway,
    /// Workflow / metascheduled computing: an engine submits DAGs of
    /// dependent tasks, often across sites. Footprint: bursts of related
    /// jobs with dependency structure and workflow-engine submit interface.
    Workflow,
    /// Ensemble / high-throughput computing: large batches of similar
    /// independent jobs (parameter sweeps). Footprint: many same-shape jobs
    /// submitted together by one user.
    Ensemble,
    /// Data-centric use: staging, archiving and moving large datasets;
    /// compute is incidental. Footprint: transfer records dominating SUs.
    DataMovement,
    /// Reconfigurable-accelerated computing: tasks carrying an FPGA kernel
    /// requirement, scheduled onto the RC partitions. Footprint: RC
    /// placement records (configuration ids, reconfiguration events).
    RcAccelerated,
}

impl Modality {
    /// Every modality, in canonical (report) order.
    pub const ALL: [Modality; 7] = [
        Modality::BatchComputing,
        Modality::Interactive,
        Modality::ScienceGateway,
        Modality::Workflow,
        Modality::Ensemble,
        Modality::DataMovement,
        Modality::RcAccelerated,
    ];

    /// Stable short name used in reports and trace files.
    pub fn name(self) -> &'static str {
        match self {
            Modality::BatchComputing => "batch",
            Modality::Interactive => "interactive",
            Modality::ScienceGateway => "gateway",
            Modality::Workflow => "workflow",
            Modality::Ensemble => "ensemble",
            Modality::DataMovement => "data",
            Modality::RcAccelerated => "rc",
        }
    }

    /// Parse a short name produced by [`Modality::name`].
    pub fn from_name(s: &str) -> Option<Modality> {
        Modality::ALL.iter().copied().find(|m| m.name() == s)
    }

    /// Canonical index in `[0, 7)`, matching [`Modality::ALL`] order.
    pub fn index(self) -> usize {
        Modality::ALL
            .iter()
            .position(|&m| m == self)
            .expect("modality present in ALL")
    }

    /// The measurement mechanisms TeraGrid-style accounting offers for this
    /// modality (for the T1 taxonomy table).
    pub fn measured_by(self) -> &'static str {
        match self {
            Modality::BatchComputing => "central accounting job records",
            Modality::Interactive => "login session records + job records",
            Modality::ScienceGateway => "community-account records + gateway user attributes",
            Modality::Workflow => "job records + submit-interface tags + dependency metadata",
            Modality::Ensemble => "job records (batch shape analysis)",
            Modality::DataMovement => "transfer / archive records",
            Modality::RcAccelerated => "RC placement records (configurations, reconfigurations)",
        }
    }
}

impl fmt::Display for Modality {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_has_unique_entries_and_indexes_agree() {
        for (i, m) in Modality::ALL.iter().enumerate() {
            assert_eq!(m.index(), i);
        }
        let mut names: Vec<_> = Modality::ALL.iter().map(|m| m.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Modality::ALL.len());
    }

    #[test]
    fn name_roundtrip() {
        for m in Modality::ALL {
            assert_eq!(Modality::from_name(m.name()), Some(m));
        }
        assert_eq!(Modality::from_name("nope"), None);
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(Modality::ScienceGateway.to_string(), "gateway");
    }

    #[test]
    fn every_modality_names_a_measurement_mechanism() {
        for m in Modality::ALL {
            assert!(!m.measured_by().is_empty());
        }
    }
}
