//! The user population: projects (allocations) and users.

use crate::ids::{ProjectId, UserId};
use crate::modality::Modality;
use serde::{Deserialize, Serialize};

/// An allocated project — a PI's award users charge against.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Project {
    /// Project id.
    pub id: ProjectId,
    /// Awarded service units.
    pub allocation_su: f64,
    /// Field-of-science label (flavour only; reports group by it).
    pub field: String,
}

impl Project {
    /// A project with the given allocation.
    pub fn new(id: ProjectId, allocation_su: f64, field: impl Into<String>) -> Self {
        assert!(allocation_su >= 0.0, "negative allocation");
        Project {
            id,
            allocation_su,
            field: field.into(),
        }
    }
}

/// One user account.
///
/// `activity` is a relative weight (Zipf-assigned by the population builder):
/// a user with activity 2.0 submits at twice the modality profile's base
/// rate. Real grid populations are heavily skewed — a few heroic users
/// dominate — and the classifier experiments need that skew.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct User {
    /// User id.
    pub id: UserId,
    /// The project this user charges.
    pub project: ProjectId,
    /// The user's dominant modality (ground truth).
    pub modality: Modality,
    /// Relative activity weight (> 0).
    pub activity: f64,
}

impl User {
    /// A user with activity weight 1.
    pub fn new(id: UserId, project: ProjectId, modality: Modality) -> Self {
        User {
            id,
            project,
            modality,
            activity: 1.0,
        }
    }

    /// Set the activity weight.
    pub fn with_activity(mut self, activity: f64) -> Self {
        assert!(activity > 0.0, "activity must be positive");
        self.activity = activity;
        self
    }
}

/// The generated population: projects plus users assigned to them.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Population {
    /// All projects, indexed by `ProjectId`.
    pub projects: Vec<Project>,
    /// All users, indexed by `UserId`.
    pub users: Vec<User>,
}

impl Population {
    /// Users practicing `modality`.
    pub fn users_of(&self, modality: Modality) -> impl Iterator<Item = &User> {
        self.users.iter().filter(move |u| u.modality == modality)
    }

    /// Count of users per modality, in [`Modality::ALL`] order.
    pub fn modality_counts(&self) -> [usize; Modality::ALL.len()] {
        let mut counts = [0usize; Modality::ALL.len()];
        for u in &self.users {
            counts[u.modality.index()] += 1;
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn population_queries() {
        let mut p = Population::default();
        p.projects.push(Project::new(ProjectId(0), 1e6, "astro"));
        p.users
            .push(User::new(UserId(0), ProjectId(0), Modality::BatchComputing));
        p.users
            .push(User::new(UserId(1), ProjectId(0), Modality::ScienceGateway).with_activity(3.0));
        p.users
            .push(User::new(UserId(2), ProjectId(0), Modality::BatchComputing));
        assert_eq!(p.users_of(Modality::BatchComputing).count(), 2);
        assert_eq!(p.users_of(Modality::Workflow).count(), 0);
        let counts = p.modality_counts();
        assert_eq!(counts[Modality::BatchComputing.index()], 2);
        assert_eq!(counts[Modality::ScienceGateway.index()], 1);
        assert_eq!(p.users[1].activity, 3.0);
    }

    #[test]
    #[should_panic(expected = "activity must be positive")]
    fn zero_activity_rejected() {
        User::new(UserId(0), ProjectId(0), Modality::Interactive).with_activity(0.0);
    }
}
