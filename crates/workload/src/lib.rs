//! # tg-workload — synthetic workload generation with modality ground truth
//!
//! The paper we reproduce measures *usage modalities*: what users are trying
//! to do and how they go about it. A production grid observes those users;
//! a simulation must synthesize them. This crate generates the load:
//!
//! * [`modality`] — the modality taxonomy itself (ground-truth labels).
//! * [`ids`] — identifiers for users, projects, jobs, gateways, workflows.
//! * [`user`] — the user population: projects with SU allocations, users with
//!   Zipf-skewed activity and a modality profile each.
//! * [`arrival`] — arrival processes: Poisson, diurnal/weekly-modulated
//!   non-homogeneous Poisson (via thinning), and a two-state MMPP for bursts.
//! * [`job`] — the job record every layer above consumes, including the
//!   optional reconfigurable-hardware requirement.
//! * [`dag`] — workflow DAG shapes (chains, fork-join, layered random).
//! * [`profiles`] — per-modality behaviour parameters with literature-shaped
//!   defaults (log-normal runtimes, power-of-two core counts, ...).
//! * [`generator`] — ties it together: produces a deterministic, time-ordered
//!   job stream with ground-truth modality labels attached.
//! * [`swf`] — Standard Workload Format import/export (with extension fields
//!   carrying modality and RC metadata).
//!
//! Generation is **open-loop** (arrival processes don't react to simulated
//! queue state). That matches how the evaluation uses the generator — load
//! levels are set by rate parameters — and keeps generation separable from
//! simulation; DESIGN.md records the simplification.
//!
//! ```
//! use tg_des::RngFactory;
//! use tg_workload::{GeneratorConfig, Modality, WorkloadGenerator};
//!
//! let cfg = GeneratorConfig::baseline(100, 7, 3); // users, days, sites
//! let workload = WorkloadGenerator::new(cfg).generate(&RngFactory::new(42));
//! assert!(!workload.jobs.is_empty());
//! // Every job carries a hidden ground-truth modality label:
//! assert!(workload.jobs_of(Modality::ScienceGateway).count() > 0);
//! // The stream is time-ordered and deterministic in the seed.
//! assert!(workload.jobs.windows(2).all(|w| w[0].submit_time <= w[1].submit_time));
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod arrival;
pub mod dag;
pub mod generator;
pub mod ids;
pub mod job;
pub mod modality;
pub mod profiles;
pub mod stream;
pub mod swf;
pub mod user;

pub use arrival::{ArrivalProcess, DiurnalPoisson, Mmpp2, Poisson};
pub use generator::{GeneratorConfig, WorkloadGenerator};
pub use ids::{EnsembleId, GatewayId, JobId, ProjectId, UserId, WorkflowId};
pub use job::{Job, RcRequirement, SubmitInterface};
pub use modality::Modality;
pub use profiles::{ModalityProfile, PopulationMix};
pub use stream::{StreamedWorkload, WorkloadStream};
pub use user::{Project, User};
