//! Identifiers for the workload domain.

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! index_id {
    ($(#[$meta:meta])* $name:ident, $prefix:literal) => {
        $(#[$meta])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        pub struct $name(pub usize);

        impl $name {
            /// The raw index.
            #[inline]
            pub const fn index(self) -> usize {
                self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<usize> for $name {
            fn from(i: usize) -> Self {
                $name(i)
            }
        }
    };
}

index_id!(
    /// An individual person with a grid account. Gateway *community* users do
    /// not get a `UserId`; they appear as gateway-attribute end users.
    UserId,
    "user"
);

index_id!(
    /// An allocated project (a PI's award) that users charge SUs against.
    ProjectId,
    "proj"
);

index_id!(
    /// One submitted job (or workflow task, or RC task).
    JobId,
    "job"
);

index_id!(
    /// A science gateway (community account).
    GatewayId,
    "gw"
);

index_id!(
    /// One workflow instance (a DAG of jobs).
    WorkflowId,
    "wf"
);

index_id!(
    /// One ensemble (parameter-sweep batch) instance.
    EnsembleId,
    "ens"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_prefixes() {
        assert_eq!(UserId(1).to_string(), "user1");
        assert_eq!(ProjectId(2).to_string(), "proj2");
        assert_eq!(JobId(3).to_string(), "job3");
        assert_eq!(GatewayId(4).to_string(), "gw4");
        assert_eq!(WorkflowId(5).to_string(), "wf5");
        assert_eq!(EnsembleId(6).to_string(), "ens6");
    }

    #[test]
    fn conversion_and_ordering() {
        assert_eq!(JobId::from(9).index(), 9);
        assert!(JobId(1) < JobId(2));
    }
}
