//! Property-based tests for workload generation: structural invariants
//! under arbitrary population mixes, arrival-process monotonicity, DAG
//! acyclicity, and SWF-parser robustness against arbitrary input.

use proptest::prelude::*;
use tg_des::{RngFactory, SimDuration, SimRng, SimTime};
use tg_workload::arrival::{arrivals_in, ArrivalProcess, DiurnalPoisson, Mmpp2, Poisson};
use tg_workload::dag::DagShape;
use tg_workload::swf;
use tg_workload::{GeneratorConfig, Modality, ModalityProfile, PopulationMix, WorkloadGenerator};

fn arb_mix() -> impl Strategy<Value = PopulationMix> {
    (
        prop::collection::vec(0usize..25, Modality::ALL.len()),
        1usize..20,
        0.0f64..1.5,
        1usize..6,
    )
        .prop_map(|(users, projects, zipf, gateways)| {
            let mut mix = PopulationMix {
                users_per_modality: [0; Modality::ALL.len()],
                projects,
                activity_zipf_s: zipf,
                gateways,
            };
            for (i, &u) in users.iter().enumerate() {
                mix.users_per_modality[i] = u;
            }
            // At least one user somewhere.
            if mix.total_users() == 0 {
                mix.users_per_modality[0] = 1;
            }
            mix
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// Whatever the mix, the generated stream is sorted, ids are dense and
    /// unique, estimates bound runtimes, and structural markers match
    /// ground truth.
    #[test]
    fn generator_structural_invariants(mix in arb_mix(), seed in any::<u64>(), days in 1u64..4) {
        let rc_users = mix.users_per_modality[Modality::RcAccelerated.index()];
        let cfg = GeneratorConfig {
            horizon: SimDuration::from_days(days),
            mix,
            profiles: ModalityProfile::all_defaults(),
            sites: 3,
            rc_sites: if rc_users > 0 { vec![tg_model::SiteId(2)] } else { vec![] },
            rc_config_count: if rc_users > 0 { 5 } else { 0 },
            data: None,
        };
        let w = WorkloadGenerator::new(cfg).generate(&RngFactory::new(seed));
        let horizon = SimTime::ZERO + SimDuration::from_days(days);
        let mut prev: Option<(SimTime, tg_workload::JobId)> = None;
        let mut ids: Vec<usize> = Vec::with_capacity(w.jobs.len());
        for j in &w.jobs {
            if let Some(p) = prev {
                prop_assert!((j.submit_time, j.id) > p, "stream not strictly ordered");
            }
            prev = Some((j.submit_time, j.id));
            ids.push(j.id.index());
            prop_assert!(j.submit_time < horizon);
            prop_assert!(j.estimate >= j.runtime);
            prop_assert!(j.cores >= 1);
            prop_assert!(j.runtime > SimDuration::ZERO);
            match j.true_modality {
                Modality::ScienceGateway => prop_assert!(j.gateway.is_some()),
                Modality::Workflow => prop_assert!(j.workflow.is_some()),
                Modality::Ensemble => prop_assert!(j.ensemble.is_some()),
                Modality::RcAccelerated => {
                    let rc = j.rc.expect("rc requirement");
                    prop_assert!(rc.config.index() < 5);
                    prop_assert!(rc.speedup >= 1.0);
                }
                _ => prop_assert!(j.rc.is_none() && j.workflow.is_none()),
            }
        }
        // Ids are exactly 0..n (dense) — sorting the stream by id gives a
        // permutation of the index range.
        ids.sort_unstable();
        for (expect, got) in ids.iter().enumerate() {
            prop_assert_eq!(expect, *got);
        }
    }

    /// Workflow dependencies always point backwards within the same
    /// workflow instance.
    #[test]
    fn workflow_deps_point_backwards(seed in any::<u64>()) {
        let mut mix = PopulationMix::baseline(0);
        mix.users_per_modality = [0; Modality::ALL.len()];
        mix.users_per_modality[Modality::Workflow.index()] = 10;
        let cfg = GeneratorConfig {
            horizon: SimDuration::from_days(5),
            mix,
            profiles: ModalityProfile::all_defaults(),
            sites: 1,
            rc_sites: vec![],
            rc_config_count: 0,
            data: None,
        };
        let w = WorkloadGenerator::new(cfg).generate(&RngFactory::new(seed));
        let by_id: std::collections::HashMap<_, _> =
            w.jobs.iter().map(|j| (j.id, j)).collect();
        for j in &w.jobs {
            for d in &j.deps {
                prop_assert!(d < &j.id);
                prop_assert_eq!(by_id[d].workflow, j.workflow);
            }
        }
    }
}

proptest! {
    /// All arrival processes produce strictly increasing instants.
    #[test]
    fn arrivals_strictly_increase(
        seed in any::<u64>(),
        rate in 1.0f64..2000.0,
        kind in 0usize..3,
    ) {
        let mut rng = SimRng::seeded(seed);
        let mut process: Box<dyn ArrivalProcess> = match kind {
            0 => Box::new(Poisson::per_day(rate)),
            1 => Box::new(DiurnalPoisson::new(rate, 3.0, 12.0, 0.5)),
            _ => Box::new(Mmpp2::new(rate / 86_400.0, rate / 8_640.0, 3600.0, 600.0)),
        };
        let arrivals = arrivals_in(
            process.as_mut(),
            SimTime::ZERO,
            SimTime::from_days(2),
            &mut rng,
        );
        for w in arrivals.windows(2) {
            prop_assert!(w[0] < w[1]);
        }
    }

    /// Random layered DAGs are acyclic with correct layer counts.
    #[test]
    fn layered_dags_are_acyclic(
        layers in 1usize..6,
        width in 1usize..8,
        fan_in in 1usize..5,
        seed in any::<u64>(),
    ) {
        let mut rng = SimRng::seeded(seed);
        let d = DagShape::Layered { layers, width, fan_in }.generate(&mut rng);
        prop_assert!(d.is_acyclic_by_construction());
        prop_assert_eq!(d.tasks, layers * width);
        prop_assert_eq!(d.critical_path_len(), layers);
        prop_assert_eq!(d.roots().len(), width);
        prop_assert_eq!(DagShape::Layered { layers, width, fan_in }.task_count(), d.tasks);
    }

    /// The SWF parser never panics, whatever bytes it is fed.
    #[test]
    fn swf_parser_never_panics(text in "\\PC{0,400}") {
        let _ = swf::from_swf(&text);
    }

    /// Structured-ish random SWF lines either parse or error cleanly.
    #[test]
    fn swf_random_numeric_lines(fields in prop::collection::vec(-5i64..100_000, 18)) {
        let line = fields
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join(" ");
        let result = swf::from_swf(&line);
        prop_assert!(result.is_ok(), "18 numeric fields must parse: {result:?}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// The streaming generator emits the exact job sequence the
    /// materialized generator produces — ids, arrival times, modalities,
    /// every field — whatever the population mix or seed. This is the
    /// contract the streaming simulation path's byte-identity rests on.
    #[test]
    fn streaming_equals_materialized_generation(
        mix in arb_mix(),
        seed in any::<u64>(),
        days in 1u64..4,
    ) {
        let rc_users = mix.users_per_modality[Modality::RcAccelerated.index()];
        let cfg = GeneratorConfig {
            horizon: SimDuration::from_days(days),
            mix,
            profiles: ModalityProfile::all_defaults(),
            sites: 3,
            rc_sites: if rc_users > 0 { vec![tg_model::SiteId(2)] } else { vec![] },
            rc_config_count: if rc_users > 0 { 5 } else { 0 },
            data: None,
        };
        let gen = WorkloadGenerator::new(cfg);
        let materialized = gen.generate(&RngFactory::new(seed));
        let streamed = gen.generate_streaming(&RngFactory::new(seed));
        prop_assert_eq!(&streamed.population.users, &materialized.population.users);
        prop_assert_eq!(streamed.total_jobs, materialized.jobs.len());
        let mut n = 0usize;
        for (got, want) in streamed.stream.zip(materialized.jobs.iter()) {
            prop_assert_eq!(got.id, want.id);
            prop_assert_eq!(got.submit_time, want.submit_time);
            prop_assert_eq!(got.true_modality, want.true_modality);
            prop_assert_eq!(&got, want, "full job mismatch at #{}", n);
            n += 1;
        }
        prop_assert_eq!(n, materialized.jobs.len(), "stream ended early");
    }

    /// SWF-replay inputs: the archive format truncates submit times to
    /// whole seconds (which can reorder ties) and drops sub-second-runtime
    /// jobs as cancelled records, so a replay harness re-sorts by
    /// `(submit_time, id)` before streaming. After that sort the import is
    /// a valid stream input — `stream::drain_sorted` yields it unchanged —
    /// and every surviving job keeps its id and modality label.
    #[test]
    fn swf_roundtrip_feeds_the_stream_path(mix in arb_mix(), seed in any::<u64>()) {
        let cfg = GeneratorConfig {
            horizon: SimDuration::from_days(2),
            mix,
            profiles: ModalityProfile::all_defaults(),
            sites: 3,
            rc_sites: vec![tg_model::SiteId(2)],
            rc_config_count: 5,
            data: None,
        };
        let w = WorkloadGenerator::new(cfg).generate(&RngFactory::new(seed));
        let mut imported = swf::from_swf(&swf::to_swf(&w.jobs)).expect("round trip parses");
        prop_assert!(imported.len() <= w.jobs.len());
        imported.sort_by_key(|j| (j.submit_time, j.id));
        let expect: Vec<_> = imported
            .iter()
            .map(|j| (j.submit_time, j.id, j.true_modality))
            .collect();
        let drained: Vec<_> = tg_workload::stream::drain_sorted(imported)
            .map(|j| (j.submit_time, j.id, j.true_modality))
            .collect();
        prop_assert_eq!(&drained, &expect);
        let truth: std::collections::HashMap<_, _> =
            w.jobs.iter().map(|j| (j.id, j.true_modality)).collect();
        for (_, id, modality) in &drained {
            prop_assert_eq!(truth.get(id), Some(modality), "id {:?} not in source", id);
        }
    }
}
