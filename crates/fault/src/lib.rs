//! # tg-fault — deterministic fault injection for the federation simulator
//!
//! Production TeraGrid lived with node failures, scheduled site maintenance,
//! WAN brown-outs, and a lossy central-accounting ingest. This crate models
//! all four as a **deterministic, seed-derived fault schedule**:
//!
//! * a declarative [`FaultSpec`] (JSON-serializable, checked into configs),
//! * compiled by [`FaultSpec::compile`] into a time-sorted [`FaultSchedule`]
//!   of [`FaultEvent`]s the DES driver in `tg-core` injects as ordinary
//!   events,
//! * and a [`FaultReport`] the driver fills in (downtime per site, jobs
//!   killed/requeued/abandoned, accounting records lost/duplicated).
//!
//! ## Determinism contract
//!
//! Compilation draws stochastic crash/repair times from dedicated
//! [`tg_des::rng`] streams (`"fault.crash"`, one per site), so the same
//! `(spec, master seed)` always yields a byte-identical schedule — and
//! enabling faults never perturbs any *other* component's draws. The
//! record-ingest loss channel likewise owns the `"fault.ingest"` stream.
//!
//! The crate is pure data + compilation; all actuation (killing jobs,
//! freezing queues, degrading links, dropping records) lives in the driver.

#![warn(missing_docs)]
#![deny(unsafe_code)]

use serde::{Deserialize, Serialize};
use tg_des::{RngFactory, SimRng, SimTime, StreamId};
use tg_model::SiteId;
use tg_sched::RetryPolicy;

/// Stochastic node-crash process, applied independently at every site.
///
/// Crashes are generated sequentially per site: exponential time-to-failure
/// (`mtbf_hours`), then an exponential repair (`repair_hours`) before the
/// next failure can occur — at most one crash outstanding per site, a
/// deliberate simplification that keeps crash/repair pairing trivial.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NodeCrashSpec {
    /// Mean time between failures per site, hours.
    pub mtbf_hours: f64,
    /// Mean repair time, hours.
    pub repair_hours: f64,
    /// Cores lost per crash (clamped to the site's size at compile time).
    pub cores_per_crash: usize,
    /// Generate crashes over `[0, horizon_days]`.
    pub horizon_days: f64,
}

/// One scheduled whole-site outage window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OutageWindow {
    /// Site index.
    pub site: usize,
    /// Outage start, hours from simulation start.
    pub start_hours: f64,
    /// Outage length, hours.
    pub duration_hours: f64,
    /// Advance notice given to the site's scheduler (0 = unannounced).
    #[serde(default)]
    pub notice_hours: f64,
}

/// One WAN-degradation window on a site's uplink.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DegradeWindow {
    /// Site index.
    pub site: usize,
    /// Window start, hours from simulation start.
    pub start_hours: f64,
    /// Window length, hours.
    pub duration_hours: f64,
    /// Factor ≥ 1 dividing the uplink's bandwidth for the window.
    pub bandwidth_factor: f64,
    /// Factor ≥ 1 multiplying the uplink's latency for the window.
    pub latency_factor: f64,
}

/// Accounting-ingest corruption: each record independently dropped or
/// duplicated before it reaches the central database. Ground truth is never
/// touched — this models measurement loss, not workload loss.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct IngestFaults {
    /// Probability a record is silently dropped.
    #[serde(default)]
    pub loss: f64,
    /// Probability a record is ingested twice.
    #[serde(default)]
    pub duplication: f64,
}

/// What happens to work running at a site when the whole site goes down.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum OutagePolicy {
    /// Running work is lost and requeued from scratch (bounded retries).
    #[default]
    Requeue,
    /// Running work checkpoints at the outage instant and restarts with only
    /// its remaining runtime (retries not charged).
    Checkpoint,
}

/// Declarative fault-injection specification.
///
/// Every section is optional; an empty spec compiles to an empty schedule
/// and the driver behaves exactly as if faults were disabled.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultSpec {
    /// Stochastic per-site node crashes.
    #[serde(default)]
    pub node_crashes: Option<NodeCrashSpec>,
    /// Scheduled whole-site outages.
    #[serde(default)]
    pub site_outages: Vec<OutageWindow>,
    /// WAN-degradation windows.
    #[serde(default)]
    pub wan_degradations: Vec<DegradeWindow>,
    /// Accounting-ingest loss/duplication.
    #[serde(default)]
    pub ingest: Option<IngestFaults>,
    /// Requeue-on-failure policy for killed jobs.
    #[serde(default)]
    pub retry: Option<RetryPolicy>,
    /// Fate of work running when a site outage begins.
    #[serde(default)]
    pub outage_policy: OutagePolicy,
}

/// What a single fault event does.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub enum FaultEventKind {
    /// `cores` cores at `site` fail; running work on them is killed.
    NodeCrash {
        /// Affected site.
        site: SiteId,
        /// Cores lost.
        cores: usize,
    },
    /// Crashed cores at `site` return to service.
    NodeRepair {
        /// Affected site.
        site: SiteId,
        /// Cores repaired.
        cores: usize,
    },
    /// Advance warning: `site` will go down at `outage_at`. The site's
    /// scheduler receives a drain notice and stops starting work that would
    /// outlive the deadline.
    OutageNotice {
        /// Affected site.
        site: SiteId,
        /// When the outage begins.
        outage_at: SimTime,
    },
    /// The whole site goes down: queue frozen, running work killed (or
    /// checkpointed, per [`OutagePolicy`]).
    SiteOutage {
        /// Affected site.
        site: SiteId,
    },
    /// The site comes back up and its queue thaws.
    SiteRecovery {
        /// Affected site.
        site: SiteId,
    },
    /// The site's uplink degrades for a window.
    LinkDegrade {
        /// Affected site.
        site: SiteId,
        /// Bandwidth divisor ≥ 1.
        bandwidth_factor: f64,
        /// Latency multiplier ≥ 1.
        latency_factor: f64,
    },
    /// The site's uplink returns to configured parameters.
    LinkRestore {
        /// Affected site.
        site: SiteId,
    },
}

impl FaultEventKind {
    /// The site this event acts on.
    pub fn site(&self) -> SiteId {
        match *self {
            FaultEventKind::NodeCrash { site, .. }
            | FaultEventKind::NodeRepair { site, .. }
            | FaultEventKind::OutageNotice { site, .. }
            | FaultEventKind::SiteOutage { site }
            | FaultEventKind::SiteRecovery { site }
            | FaultEventKind::LinkDegrade { site, .. }
            | FaultEventKind::LinkRestore { site } => site,
        }
    }
}

/// One compiled fault event.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct FaultEvent {
    /// When the event fires.
    pub at: SimTime,
    /// What it does.
    pub kind: FaultEventKind,
}

/// The compiled, time-sorted fault schedule for one run.
#[derive(Debug, Clone, PartialEq, Default, Serialize)]
pub struct FaultSchedule {
    /// Events in firing order (stable-sorted by time; ties keep the
    /// generation order: crashes per site, then outages, then WAN windows).
    pub events: Vec<FaultEvent>,
}

impl FaultSchedule {
    /// Number of compiled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing was compiled (faults effectively disabled).
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

fn hours(h: f64) -> SimTime {
    SimTime::ZERO + tg_des::SimDuration::from_secs_f64(h.max(0.0) * 3600.0)
}

/// Exponential draw with the given mean (hours → hours).
fn exp_hours(rng: &mut SimRng, mean: f64) -> f64 {
    -mean * (1.0 - rng.uniform()).ln()
}

impl FaultSpec {
    /// True when the spec would inject nothing at all.
    pub fn is_trivial(&self) -> bool {
        self.node_crashes.is_none()
            && self.site_outages.is_empty()
            && self.wan_degradations.is_empty()
            && self.ingest.is_none()
    }

    /// The effective retry policy (spec override or default).
    pub fn retry_policy(&self) -> RetryPolicy {
        self.retry.unwrap_or_default()
    }

    /// Compile the spec into a time-sorted event schedule for a federation
    /// whose site `i` has `site_cores[i]` batch cores.
    ///
    /// Stochastic crash times come from per-site `"fault.crash"` streams of
    /// `factory`, so the schedule is a pure function of `(spec, site count,
    /// master seed)` and never perturbs other components' draws.
    ///
    /// Panics if a window names a site index outside the federation.
    pub fn compile(&self, site_cores: &[usize], factory: &RngFactory) -> FaultSchedule {
        let mut events = Vec::new();

        if let Some(nc) = &self.node_crashes {
            assert!(nc.mtbf_hours > 0.0, "mtbf must be positive");
            assert!(nc.repair_hours > 0.0, "repair time must be positive");
            for (i, &cores) in site_cores.iter().enumerate() {
                if cores == 0 {
                    continue;
                }
                let site = SiteId(i);
                let per_crash = nc.cores_per_crash.clamp(1, cores);
                let mut rng = factory.stream(StreamId::new("fault.crash", i as u64));
                let mut t = 0.0;
                loop {
                    t += exp_hours(&mut rng, nc.mtbf_hours);
                    if t >= nc.horizon_days * 24.0 {
                        break;
                    }
                    let repair = exp_hours(&mut rng, nc.repair_hours).max(1.0 / 3600.0);
                    events.push(FaultEvent {
                        at: hours(t),
                        kind: FaultEventKind::NodeCrash {
                            site,
                            cores: per_crash,
                        },
                    });
                    events.push(FaultEvent {
                        at: hours(t + repair),
                        kind: FaultEventKind::NodeRepair {
                            site,
                            cores: per_crash,
                        },
                    });
                    t += repair;
                }
            }
        }

        for w in &self.site_outages {
            assert!(w.site < site_cores.len(), "outage names unknown site");
            assert!(w.duration_hours > 0.0, "outage must have duration");
            let site = SiteId(w.site);
            let start = hours(w.start_hours);
            if w.notice_hours > 0.0 {
                events.push(FaultEvent {
                    at: hours(w.start_hours - w.notice_hours),
                    kind: FaultEventKind::OutageNotice {
                        site,
                        outage_at: start,
                    },
                });
            }
            events.push(FaultEvent {
                at: start,
                kind: FaultEventKind::SiteOutage { site },
            });
            events.push(FaultEvent {
                at: hours(w.start_hours + w.duration_hours),
                kind: FaultEventKind::SiteRecovery { site },
            });
        }

        for w in &self.wan_degradations {
            assert!(w.site < site_cores.len(), "degradation names unknown site");
            assert!(w.bandwidth_factor >= 1.0, "bandwidth factor must be >= 1");
            assert!(w.latency_factor >= 1.0, "latency factor must be >= 1");
            let site = SiteId(w.site);
            events.push(FaultEvent {
                at: hours(w.start_hours),
                kind: FaultEventKind::LinkDegrade {
                    site,
                    bandwidth_factor: w.bandwidth_factor,
                    latency_factor: w.latency_factor,
                },
            });
            events.push(FaultEvent {
                at: hours(w.start_hours + w.duration_hours),
                kind: FaultEventKind::LinkRestore { site },
            });
        }

        events.sort_by_key(|e| e.at);
        FaultSchedule { events }
    }
}

/// What fault injection did to one run — filled in by the driver, surfaced
/// in `SimOutput` and the `tgsim` summary.
#[derive(Debug, Clone, PartialEq, Default, Serialize)]
pub struct FaultReport {
    /// Node-crash events that actually fired (crashes during an outage are
    /// absorbed by it and not counted).
    pub node_crashes: u64,
    /// Whole-site outages that fired.
    pub site_outages: u64,
    /// Whole-site downtime per site, seconds.
    pub downtime_by_site: Vec<f64>,
    /// Uplink-degraded time per site, seconds.
    pub degraded_by_site: Vec<f64>,
    /// Running jobs killed by crashes/outages (checkpoint restarts included).
    pub jobs_killed: u64,
    /// Kills that led to a resubmission.
    pub jobs_requeued: u64,
    /// Kills that exhausted the retry budget; the job never completes.
    pub jobs_abandoned: u64,
    /// Outage kills resumed from checkpoint (only under
    /// [`OutagePolicy::Checkpoint`]).
    pub checkpoint_restarts: u64,
    /// Accounting records dropped by the lossy ingest.
    pub records_lost: u64,
    /// Accounting records ingested twice.
    pub records_duplicated: u64,
}

impl FaultReport {
    /// An empty report sized for `sites` sites.
    pub fn new(sites: usize) -> Self {
        FaultReport {
            downtime_by_site: vec![0.0; sites],
            degraded_by_site: vec![0.0; sites],
            ..FaultReport::default()
        }
    }

    /// Total whole-site downtime across the federation, seconds.
    pub fn total_downtime_s(&self) -> f64 {
        self.downtime_by_site.iter().sum()
    }

    /// Fold another report into this one — the fan-in step of a sharded
    /// run, where each participant counts only the faults it executed (and
    /// the per-site vectors are written only by a site's owner, so
    /// element-wise addition is exact, not double-counting).
    pub fn merge_from(&mut self, other: &FaultReport) {
        assert_eq!(
            self.downtime_by_site.len(),
            other.downtime_by_site.len(),
            "merging fault reports sized for different federations"
        );
        self.node_crashes += other.node_crashes;
        self.site_outages += other.site_outages;
        self.jobs_killed += other.jobs_killed;
        self.jobs_requeued += other.jobs_requeued;
        self.jobs_abandoned += other.jobs_abandoned;
        self.checkpoint_restarts += other.checkpoint_restarts;
        self.records_lost += other.records_lost;
        self.records_duplicated += other.records_duplicated;
        for (d, od) in self
            .downtime_by_site
            .iter_mut()
            .zip(&other.downtime_by_site)
        {
            *d += od;
        }
        for (d, od) in self
            .degraded_by_site
            .iter_mut()
            .zip(&other.degraded_by_site)
        {
            *d += od;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_spec() -> FaultSpec {
        FaultSpec {
            node_crashes: Some(NodeCrashSpec {
                mtbf_hours: 48.0,
                repair_hours: 2.0,
                cores_per_crash: 8,
                horizon_days: 14.0,
            }),
            site_outages: vec![OutageWindow {
                site: 1,
                start_hours: 96.0,
                duration_hours: 12.0,
                notice_hours: 2.0,
            }],
            wan_degradations: vec![DegradeWindow {
                site: 0,
                start_hours: 24.0,
                duration_hours: 6.0,
                bandwidth_factor: 10.0,
                latency_factor: 5.0,
            }],
            ingest: Some(IngestFaults {
                loss: 0.05,
                duplication: 0.01,
            }),
            retry: None,
            outage_policy: OutagePolicy::Requeue,
        }
    }

    #[test]
    fn empty_spec_is_trivial_and_compiles_to_nothing() {
        let spec = FaultSpec::default();
        assert!(spec.is_trivial());
        let sched = spec.compile(&[64, 64], &RngFactory::new(1));
        assert!(sched.is_empty());
        assert_eq!(spec.retry_policy(), RetryPolicy::default());
    }

    #[test]
    fn spec_json_roundtrip_with_defaults() {
        let spec = demo_spec();
        let json = serde_json::to_string(&spec).unwrap();
        let back: FaultSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, spec);
        // A minimal JSON object deserializes via field defaults.
        let minimal: FaultSpec = serde_json::from_str("{}").unwrap();
        assert!(minimal.is_trivial());
        assert_eq!(minimal.outage_policy, OutagePolicy::Requeue);
    }

    #[test]
    fn same_seed_compiles_byte_identical_schedules() {
        let spec = demo_spec();
        let cores = [512, 2048, 512];
        let a = spec.compile(&cores, &RngFactory::new(77));
        let b = spec.compile(&cores, &RngFactory::new(77));
        assert_eq!(a, b);
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        );
        let c = spec.compile(&cores, &RngFactory::new(78));
        assert_ne!(a, c, "different seed, different crash times");
    }

    #[test]
    fn schedule_is_time_sorted_with_paired_events() {
        let spec = demo_spec();
        let sched = spec.compile(&[512, 2048], &RngFactory::new(5));
        assert!(!sched.is_empty());
        for pair in sched.events.windows(2) {
            assert!(pair[0].at <= pair[1].at, "events out of order");
        }
        let count =
            |f: fn(&FaultEventKind) -> bool| sched.events.iter().filter(|e| f(&e.kind)).count();
        assert_eq!(
            count(|k| matches!(k, FaultEventKind::NodeCrash { .. })),
            count(|k| matches!(k, FaultEventKind::NodeRepair { .. })),
            "every crash has a repair"
        );
        assert_eq!(count(|k| matches!(k, FaultEventKind::SiteOutage { .. })), 1);
        assert_eq!(
            count(|k| matches!(k, FaultEventKind::SiteRecovery { .. })),
            1
        );
        assert_eq!(
            count(|k| matches!(k, FaultEventKind::OutageNotice { .. })),
            1
        );
        // Notice precedes its outage by the configured 2 h.
        let notice = sched
            .events
            .iter()
            .find(|e| matches!(e.kind, FaultEventKind::OutageNotice { .. }))
            .unwrap();
        assert_eq!(notice.at, hours(94.0));
        match notice.kind {
            FaultEventKind::OutageNotice { outage_at, .. } => {
                assert_eq!(outage_at, hours(96.0));
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn crashes_stay_inside_the_horizon_and_respect_site_size() {
        let spec = FaultSpec {
            node_crashes: Some(NodeCrashSpec {
                mtbf_hours: 6.0,
                repair_hours: 1.0,
                cores_per_crash: 1000,
                horizon_days: 7.0,
            }),
            ..FaultSpec::default()
        };
        let sched = spec.compile(&[16], &RngFactory::new(3));
        let horizon = hours(7.0 * 24.0);
        let mut crashes = 0;
        for e in &sched.events {
            if let FaultEventKind::NodeCrash { cores, .. } = e.kind {
                crashes += 1;
                assert!(e.at < horizon, "crash past the horizon");
                assert_eq!(cores, 16, "clamped to the site size");
            }
        }
        assert!(crashes > 0, "a week at 6 h MTBF should crash");
    }

    #[test]
    #[should_panic(expected = "unknown site")]
    fn outage_on_unknown_site_panics() {
        let spec = FaultSpec {
            site_outages: vec![OutageWindow {
                site: 9,
                start_hours: 1.0,
                duration_hours: 1.0,
                notice_hours: 0.0,
            }],
            ..FaultSpec::default()
        };
        spec.compile(&[64], &RngFactory::new(1));
    }

    #[test]
    fn report_accumulates() {
        let mut r = FaultReport::new(2);
        r.downtime_by_site[1] += 3600.0;
        r.jobs_killed += 2;
        assert_eq!(r.total_downtime_s(), 3600.0);
        assert_eq!(r.downtime_by_site.len(), 2);
    }
}
