//! Data-grid layer for the TeraGrid reproduction: named datasets, a
//! federation-wide replica catalog, and per-site LRU caches.
//!
//! The paper's usage modalities differ most in *how they move data*; this
//! crate gives the simulation the machinery to exhibit that. A scenario may
//! declare a catalog of named datasets ([`DataGridSpec`]): each has a size
//! and one or more *permanent replicas* pinned at sites. The workload
//! generator assigns datasets to jobs per modality with seed-derived Zipf
//! popularity (rank 1 is the hottest dataset), and at routing time the
//! simulator consults the runtime [`DataLayer`]:
//!
//! * if the chosen site holds the dataset (permanent replica or a warm
//!   cache entry) the job's stage-in is a **cache hit** — no WAN transfer;
//! * otherwise it is a **cache miss**: the dataset is fetched from the
//!   cheapest resident site over the WAN, replacing the flat
//!   bytes-over-bandwidth staging charge, and the copy is admitted into the
//!   destination site's LRU cache (possibly evicting colder datasets).
//!
//! Everything is deterministic: the LRU order is driven by a monotone access
//! tick (no wall clock, no hashing), the fetch source is chosen by
//! `(transfer_time, site id)` with a total order, and the layer is only ever
//! touched from the routing path — which runs on the coordinator thread in
//! sharded runs — so `--threads N` cannot reorder accesses. When no datasets
//! are configured the layer is never constructed and the simulation is
//! byte-identical to a build without this crate.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};
use tg_model::{Network, SiteId};

/// Identifies a dataset: an index into the scenario's catalog, which is also
/// its Zipf popularity rank minus one (dataset 0 is the most popular).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct DatasetId(pub u32);

impl DatasetId {
    /// The catalog index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One named dataset in the scenario catalog.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetSpec {
    /// Human-readable name (shows up in reports only).
    pub name: String,
    /// Size in megabytes; the unit the WAN model prices.
    pub size_mb: f64,
    /// Site indices holding a permanent replica. Must be non-empty; these
    /// copies are never evicted.
    pub replicas: Vec<usize>,
}

/// How the workload generator attaches datasets to jobs: per-modality attach
/// probabilities plus the Zipf skew over catalog ranks.
///
/// This is the only piece of the data-grid spec the generator needs, split
/// out so the workload crate stays independent of cache/catalog mechanics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetAssignment {
    /// Catalog size (number of datasets).
    pub count: usize,
    /// Zipf exponent over dataset ranks (rank 1 = dataset 0 = hottest).
    pub zipf_s: f64,
    /// Modality wire name → probability a job of that modality reads a
    /// dataset. Absent modalities attach nothing.
    pub attach: BTreeMap<String, f64>,
}

impl DatasetAssignment {
    /// Attach probability for a modality wire name.
    pub fn prob(&self, modality: &str) -> f64 {
        self.attach.get(modality).copied().unwrap_or(0.0)
    }

    /// True when no job can ever be assigned a dataset.
    pub fn is_trivial(&self) -> bool {
        self.count == 0 || self.attach.values().all(|&p| p <= 0.0)
    }
}

/// The full scenario-level data-grid declaration: the dataset catalog plus
/// the assignment rule. Lives in `ScenarioConfig` under `"data"`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DataGridSpec {
    /// The dataset catalog, in popularity order (index 0 is the hottest
    /// under the Zipf assignment).
    pub datasets: Vec<DatasetSpec>,
    /// Zipf exponent for popularity-weighted assignment (0 = uniform).
    #[serde(default)]
    pub zipf_s: f64,
    /// Modality wire name → attach probability.
    #[serde(default)]
    pub attach: BTreeMap<String, f64>,
}

impl DataGridSpec {
    /// True when the spec can never affect a run: no datasets, or no
    /// modality ever attaches one. A trivial spec must be byte-identical to
    /// no spec at all.
    pub fn is_trivial(&self) -> bool {
        self.datasets.is_empty() || self.attach.values().all(|&p| p <= 0.0)
    }

    /// The generator-facing slice of this spec.
    pub fn assignment(&self) -> DatasetAssignment {
        DatasetAssignment {
            count: self.datasets.len(),
            zipf_s: self.zipf_s,
            attach: self.attach.clone(),
        }
    }

    /// Validate against a federation of `nsites` sites. Returns a
    /// human-readable error for the first problem found.
    pub fn validate(&self, nsites: usize) -> Result<(), String> {
        for (i, d) in self.datasets.iter().enumerate() {
            if d.name.trim().is_empty() {
                return Err(format!("dataset {i} has an empty name"));
            }
            if !(d.size_mb.is_finite() && d.size_mb > 0.0) {
                return Err(format!(
                    "dataset '{}' has non-positive size {} MB",
                    d.name, d.size_mb
                ));
            }
            if d.replicas.is_empty() {
                return Err(format!("dataset '{}' has no replica sites", d.name));
            }
            for &r in &d.replicas {
                if r >= nsites {
                    return Err(format!(
                        "dataset '{}' replica site {r} out of range (federation has {nsites} sites)",
                        d.name
                    ));
                }
            }
        }
        for (m, &p) in &self.attach {
            if !(0.0..=1.0).contains(&p) || !p.is_finite() {
                return Err(format!("attach probability for '{m}' out of [0,1]: {p}"));
            }
        }
        if !(self.zipf_s.is_finite() && self.zipf_s >= 0.0) {
            return Err(format!(
                "zipf_s must be finite and >= 0, got {}",
                self.zipf_s
            ));
        }
        Ok(())
    }
}

/// Where a dataset access resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Locate {
    /// Resident at the destination (permanent replica or warm cache).
    Hit,
    /// Absent at the destination; fetch from `source` over the WAN.
    Miss {
        /// The cheapest resident site, by `(transfer_time, site id)`.
        source: SiteId,
    },
}

/// Per-site LRU dataset cache with deterministic eviction.
///
/// Recency is a monotone access tick supplied by the owning [`DataLayer`] —
/// never wall-clock, never hash order — so eviction order is a pure function
/// of the access sequence.
#[derive(Debug, Clone)]
struct SiteCache {
    capacity_mb: f64,
    used_mb: f64,
    /// DatasetId → (last-access tick, size). BTreeMap for deterministic
    /// iteration (debug/report paths only; the hot path uses direct lookup).
    entries: BTreeMap<DatasetId, (u64, f64)>,
    /// tick → DatasetId, mirroring `entries` for O(log n) LRU pop.
    by_tick: BTreeMap<u64, DatasetId>,
}

impl SiteCache {
    fn new(capacity_mb: f64) -> Self {
        SiteCache {
            capacity_mb: capacity_mb.max(0.0),
            used_mb: 0.0,
            entries: BTreeMap::new(),
            by_tick: BTreeMap::new(),
        }
    }

    fn contains(&self, d: DatasetId) -> bool {
        self.entries.contains_key(&d)
    }

    fn touch(&mut self, d: DatasetId, tick: u64) {
        if let Some((old, _size)) = self.entries.get_mut(&d) {
            let prev = *old;
            *old = tick;
            self.by_tick.remove(&prev);
            self.by_tick.insert(tick, d);
        }
    }

    /// Admit `d` (size `mb`) at `tick`, evicting least-recently-used entries
    /// until it fits. Returns the number of evictions. Datasets larger than
    /// the whole cache are not admitted (the fetch still happened; the copy
    /// just isn't retained).
    fn admit(&mut self, d: DatasetId, mb: f64, tick: u64) -> u64 {
        if mb > self.capacity_mb {
            return 0;
        }
        let mut evicted = 0;
        while self.used_mb + mb > self.capacity_mb {
            let (&t, &victim) = self
                .by_tick
                .iter()
                .next()
                .expect("cache over capacity but empty");
            let (_, size) = self.entries.remove(&victim).expect("mirrored entry");
            self.by_tick.remove(&t);
            self.used_mb -= size;
            evicted += 1;
        }
        self.used_mb += mb;
        self.entries.insert(d, (tick, mb));
        self.by_tick.insert(tick, d);
        evicted
    }
}

/// Per-site counters for the [`DataReport`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct SiteDataStats {
    /// Accesses that found the dataset resident (replica or cache).
    pub hits: u64,
    /// Accesses that had to fetch over the WAN.
    pub misses: u64,
    /// Cache evictions at this site.
    pub evictions: u64,
    /// Megabytes fetched into this site over the WAN.
    pub wan_in_mb: f64,
    /// Hit rate (`hits / (hits + misses)`, 0 when unused).
    pub hit_rate: f64,
}

/// End-of-run data-movement summary surfaced in `SimOutput`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DataReport {
    /// Catalog size.
    pub datasets: usize,
    /// Dataset accesses (one per routed dataset-carrying job).
    pub accesses: u64,
    /// Total hits across the federation.
    pub hits: u64,
    /// Total misses (WAN fetches).
    pub misses: u64,
    /// Federation-wide hit rate.
    pub hit_rate: f64,
    /// Total megabytes moved over the WAN for replica fetches.
    pub wan_mb: f64,
    /// Total cache evictions.
    pub evictions: u64,
    /// Per-site breakdown, index-aligned with the federation's sites.
    pub per_site: Vec<SiteDataStats>,
}

/// Runtime state: the replica catalog plus every site's cache and counters.
///
/// Owned by the simulation driver and consulted from the routing path only.
#[derive(Debug, Clone)]
pub struct DataLayer {
    /// Permanent replica holders per dataset, sorted by site index.
    permanent: Vec<Vec<SiteId>>,
    sizes: Vec<f64>,
    caches: Vec<SiteCache>,
    stats: Vec<SiteDataStats>,
    tick: u64,
    datasets: usize,
}

impl DataLayer {
    /// Build the runtime layer from a validated spec and each site's cache
    /// capacity in MB (index-aligned with the federation).
    pub fn new(spec: &DataGridSpec, cache_mb: &[f64]) -> Self {
        let permanent = spec
            .datasets
            .iter()
            .map(|d| {
                let mut sites: Vec<SiteId> = d.replicas.iter().map(|&r| SiteId(r)).collect();
                sites.sort();
                sites.dedup();
                sites
            })
            .collect();
        DataLayer {
            permanent,
            sizes: spec.datasets.iter().map(|d| d.size_mb).collect(),
            caches: cache_mb.iter().map(|&c| SiteCache::new(c)).collect(),
            stats: vec![SiteDataStats::default(); cache_mb.len()],
            tick: 0,
            datasets: spec.datasets.len(),
        }
    }

    /// Dataset size in MB.
    pub fn size_mb(&self, d: DatasetId) -> f64 {
        self.sizes[d.index()]
    }

    /// Is `d` resident at `site` (permanent replica or warm cache)?
    pub fn resident(&self, d: DatasetId, site: SiteId) -> bool {
        self.permanent[d.index()].binary_search(&site).is_ok()
            || self.caches[site.index()].contains(d)
    }

    /// Every site currently holding `d`, sorted by site index — the set a
    /// locality-aware metascheduler routes toward.
    pub fn holders(&self, d: DatasetId) -> Vec<SiteId> {
        let mut out = self.permanent[d.index()].clone();
        for (i, c) in self.caches.iter().enumerate() {
            if c.contains(d) {
                out.push(SiteId(i));
            }
        }
        out.sort();
        out.dedup();
        out
    }

    /// Resolve a routed job's dataset access at `dest`, updating caches and
    /// counters. On a miss the returned source is the resident site with the
    /// cheapest `(transfer_time, site id)` and the copy is admitted into
    /// `dest`'s cache.
    pub fn access(&mut self, d: DatasetId, dest: SiteId, network: &Network) -> Locate {
        self.tick += 1;
        let tick = self.tick;
        let mb = self.size_mb(d);
        if self.resident(d, dest) {
            self.caches[dest.index()].touch(d, tick);
            self.stats[dest.index()].hits += 1;
            return Locate::Hit;
        }
        let source = self
            .holders(d)
            .into_iter()
            .min_by(|&a, &b| {
                network
                    .transfer_time(a, dest, mb)
                    .cmp(&network.transfer_time(b, dest, mb))
                    .then(a.cmp(&b))
            })
            .expect("dataset has at least one permanent replica");
        let st = &mut self.stats[dest.index()];
        st.misses += 1;
        st.wan_in_mb += mb;
        let evicted = self.caches[dest.index()].admit(d, mb, tick);
        self.stats[dest.index()].evictions += evicted;
        Locate::Miss { source }
    }

    /// Snapshot the end-of-run report.
    pub fn report(&self) -> DataReport {
        let mut per_site = self.stats.clone();
        for s in &mut per_site {
            let n = s.hits + s.misses;
            s.hit_rate = if n > 0 { s.hits as f64 / n as f64 } else { 0.0 };
        }
        let hits: u64 = per_site.iter().map(|s| s.hits).sum();
        let misses: u64 = per_site.iter().map(|s| s.misses).sum();
        let wan_mb: f64 = per_site.iter().map(|s| s.wan_in_mb).sum();
        let evictions: u64 = per_site.iter().map(|s| s.evictions).sum();
        DataReport {
            datasets: self.datasets,
            accesses: hits + misses,
            hits,
            misses,
            hit_rate: if hits + misses > 0 {
                hits as f64 / (hits + misses) as f64
            } else {
                0.0
            },
            wan_mb,
            evictions,
            per_site,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tg_model::network::Uplink;

    fn spec() -> DataGridSpec {
        DataGridSpec {
            datasets: vec![
                DatasetSpec {
                    name: "hot".into(),
                    size_mb: 100.0,
                    replicas: vec![0],
                },
                DatasetSpec {
                    name: "warm".into(),
                    size_mb: 150.0,
                    replicas: vec![1],
                },
                DatasetSpec {
                    name: "cold".into(),
                    size_mb: 120.0,
                    replicas: vec![0, 1],
                },
            ],
            zipf_s: 1.1,
            attach: [("batch".to_string(), 0.5)].into_iter().collect(),
        }
    }

    fn network(n: usize) -> Network {
        // Uniform uplinks: transfer time then depends only on size, so
        // source tie-breaks fall to the site id.
        let mut net = Network::new();
        for _ in 0..n {
            net.add_uplink(Uplink::new(1000.0, 10.0));
        }
        net
    }

    #[test]
    fn validation_catches_bad_specs() {
        let good = spec();
        assert!(good.validate(3).is_ok());
        let mut bad = spec();
        bad.datasets[1].replicas = vec![7];
        let err = bad.validate(3).unwrap_err();
        assert!(err.contains("out of range"), "{err}");
        let mut bad = spec();
        bad.datasets[0].size_mb = 0.0;
        let err = bad.validate(3).unwrap_err();
        assert!(err.contains("non-positive size"), "{err}");
        let mut bad = spec();
        bad.datasets[2].replicas.clear();
        assert!(bad.validate(3).unwrap_err().contains("no replica sites"));
        let mut bad = spec();
        bad.attach.insert("gateway".into(), 1.5);
        assert!(bad.validate(3).unwrap_err().contains("out of [0,1]"));
    }

    #[test]
    fn trivial_specs_are_recognized() {
        let mut s = spec();
        assert!(!s.is_trivial());
        s.attach.insert("batch".into(), 0.0);
        assert!(s.is_trivial());
        let mut s = spec();
        s.datasets.clear();
        assert!(s.is_trivial());
        assert!(s.assignment().is_trivial());
    }

    #[test]
    fn hits_misses_and_lru_eviction_are_deterministic() {
        let s = spec();
        let net = network(3);
        // Site 2 has room for d0+d1 (250) or d1+d2 (270), not all three.
        let mut layer = DataLayer::new(&s, &[1000.0, 1000.0, 280.0]);
        let d0 = DatasetId(0);
        let d1 = DatasetId(1);
        let d2 = DatasetId(2);

        // Replica site: hit without any cache involvement.
        assert_eq!(layer.access(d0, SiteId(0), &net), Locate::Hit);
        // Miss at site 2 fetches from the only holder.
        assert_eq!(
            layer.access(d0, SiteId(2), &net),
            Locate::Miss { source: SiteId(0) }
        );
        // Now cached at 2: second access is a hit.
        assert_eq!(layer.access(d0, SiteId(2), &net), Locate::Hit);
        // Fill the cache (100 + 150 = 250 <= 280).
        assert_eq!(
            layer.access(d1, SiteId(2), &net),
            Locate::Miss { source: SiteId(1) }
        );
        // d2 (120 MB) forces eviction of the LRU entry, which is d0 — its
        // last touch predates d1's admit.
        assert_eq!(
            layer.access(d2, SiteId(2), &net),
            Locate::Miss { source: SiteId(0) }
        );
        assert!(!layer.resident(d0, SiteId(2)), "d0 evicted");
        assert!(layer.resident(d1, SiteId(2)), "d1 retained");
        assert!(layer.resident(d2, SiteId(2)), "d2 admitted");

        let report = layer.report();
        assert_eq!(report.accesses, 5);
        assert_eq!(report.hits, 2);
        assert_eq!(report.misses, 3);
        assert_eq!(report.evictions, 1);
        assert!((report.wan_mb - 370.0).abs() < 1e-9, "{}", report.wan_mb);
        assert_eq!(report.per_site[2].misses, 3);
        assert!((report.per_site[2].hit_rate - 0.25).abs() < 1e-12);
    }

    #[test]
    fn cache_hits_advertise_holders_to_the_scheduler() {
        let s = spec();
        let net = network(3);
        let mut layer = DataLayer::new(&s, &[500.0, 500.0, 500.0]);
        assert_eq!(layer.holders(DatasetId(0)), vec![SiteId(0)]);
        layer.access(DatasetId(0), SiteId(2), &net);
        assert_eq!(layer.holders(DatasetId(0)), vec![SiteId(0), SiteId(2)]);
        // Cheapest-source selection prefers the lower site id on a tie.
        assert_eq!(
            layer.access(DatasetId(0), SiteId(1), &net),
            Locate::Miss { source: SiteId(0) }
        );
    }

    #[test]
    fn oversized_datasets_fetch_but_are_not_retained() {
        let s = spec();
        let net = network(3);
        let mut layer = DataLayer::new(&s, &[0.0, 0.0, 50.0]);
        assert!(matches!(
            layer.access(DatasetId(0), SiteId(2), &net),
            Locate::Miss { .. }
        ));
        // Not admitted (100 MB > 50 MB capacity): next access misses again.
        assert!(matches!(
            layer.access(DatasetId(0), SiteId(2), &net),
            Locate::Miss { .. }
        ));
        assert_eq!(layer.report().evictions, 0);
    }

    #[test]
    fn spec_roundtrips_through_json() {
        let s = spec();
        let j = serde_json::to_string(&s).unwrap();
        let back: DataGridSpec = serde_json::from_str(&j).unwrap();
        assert_eq!(s, back);
        // zipf_s and attach default when omitted.
        let min: DataGridSpec = serde_json::from_str(r#"{"datasets":[]}"#).unwrap();
        assert_eq!(min.zipf_s, 0.0);
        assert!(min.is_trivial());
    }
}
