//! The discrete-event loop.
//!
//! The engine owns a priority queue of `(time, sequence, event)` entries.
//! Popping always yields the earliest event; ties on time break by scheduling
//! order (FIFO), which makes simultaneous-event behaviour deterministic — a
//! property most ad-hoc `BinaryHeap<(t, ev)>` loops silently lack.
//!
//! User code implements [`Simulation`]: the engine pops an event and passes
//! it to [`Simulation::handle`] together with a [`Ctx`] through which the
//! handler schedules follow-up events, cancels pending ones, and inspects the
//! clock. The engine never calls back re-entrantly, so handlers may freely
//! mutate their own state.
//!
//! Cancellation is tombstone-based: [`Ctx::cancel`] marks an [`EventKey`] and
//! the pop loop discards marked entries, costing O(log n) amortized rather
//! than requiring a decrease-key heap. A companion set of *live* sequence
//! numbers keeps cancellation honest: cancelling a key that was already
//! delivered (or already cancelled) returns `false` and leaves no stale
//! tombstone behind, and [`Engine::pending`] / [`Ctx::pending`] report the
//! exact live-event count.

use crate::time::{SimDuration, SimTime};
use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

/// Identifies one scheduled event so it can be cancelled before it fires.
///
/// Keys are unique for the lifetime of an [`Engine`] (a `u64` sequence
/// counter; wrap-around is unreachable in practice).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventKey(u64);

impl EventKey {
    /// Wrap a shard-queue counter as a key (see [`crate::shard::RankQueue`]).
    /// Shard keys live in a different keyspace than engine keys; a key is
    /// only ever presented back to the queue that issued it.
    pub(crate) fn from_raw_shard(v: u64) -> Self {
        EventKey(v)
    }

    /// The raw counter behind a shard-issued key.
    pub(crate) fn raw_shard(self) -> u64 {
        self.0
    }

    /// A key that never matches a scheduled event. Cancelling it is a no-op.
    /// Used by contexts that forward an event elsewhere (e.g. a sharded
    /// coordinator routing into another participant's queue) but still owe
    /// the caller a key.
    pub fn placeholder() -> Self {
        EventKey(u64::MAX)
    }
}

struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

/// Dense membership set over event sequence numbers.
///
/// Seqs are allocated 0, 1, 2, … for the engine's lifetime, so a bitmap
/// beats a `HashSet<u64>`: membership flips on the delivery hot path touch
/// one cache line instead of hashing into a table that grows to tens of
/// megabytes on multi-million-event runs. Shared with the shard queue's
/// fused serial tail ([`crate::shard::RankQueue::fuse_serial`]), which
/// adopts the same seq discipline.
#[derive(Debug, Default)]
pub(crate) struct SeqSet {
    bits: Vec<u64>,
    len: usize,
}

impl SeqSet {
    #[inline]
    pub(crate) fn insert(&mut self, seq: u64) -> bool {
        let (word, bit) = ((seq / 64) as usize, seq % 64);
        if word >= self.bits.len() {
            self.bits.resize(word + 1, 0);
        }
        let mask = 1u64 << bit;
        if self.bits[word] & mask == 0 {
            self.bits[word] |= mask;
            self.len += 1;
            true
        } else {
            false
        }
    }

    /// Insert every seq in `[start, end)`. Used when a stream source
    /// reserves its sequence block up front so `pending` stays exact while
    /// the events themselves are still unpulled.
    pub(crate) fn insert_range(&mut self, start: u64, end: u64) {
        for seq in start..end {
            self.insert(seq);
        }
    }

    /// Remove `seq`, reporting whether it was present.
    #[inline]
    pub(crate) fn remove(&mut self, seq: u64) -> bool {
        let (word, bit) = ((seq / 64) as usize, seq % 64);
        let Some(w) = self.bits.get_mut(word) else {
            return false;
        };
        let mask = 1u64 << bit;
        if *w & mask != 0 {
            *w &= !mask;
            self.len -= 1;
            true
        } else {
            false
        }
    }

    #[inline]
    pub(crate) fn len(&self) -> usize {
        self.len
    }
}

// Reverse ordering so BinaryHeap (a max-heap) pops the *earliest* entry;
// among equal timestamps the lowest sequence number (earliest scheduled) wins.
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

/// A simulation model driven by an [`Engine`].
pub trait Simulation {
    /// The event payload type this model reacts to.
    type Event;

    /// React to one event. `ctx.now()` is the event's timestamp; follow-up
    /// events are scheduled through `ctx`.
    fn handle(&mut self, ctx: &mut Ctx<Self::Event>, event: Self::Event);
}

/// When the run loop should stop, checked *before* each event is delivered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopCondition {
    /// Run until no events remain.
    Exhausted,
    /// Run until the clock would pass the given instant; events at exactly
    /// the horizon still fire.
    AtTime(SimTime),
    /// Run until the given number of events has been delivered.
    EventCount(u64),
}

/// Why a call to [`Engine::run_until`] returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The event queue drained completely.
    QueueExhausted,
    /// The stop condition triggered with events still pending.
    StoppedEarly,
}

/// Scheduling context handed to [`Simulation::handle`].
///
/// A thin view over the engine's queue plus the frozen "current time" of the
/// event being processed.
pub struct Ctx<'a, E> {
    now: SimTime,
    queue: &'a mut BinaryHeap<Scheduled<E>>,
    cancelled: &'a mut SeqSet,
    live: &'a mut SeqSet,
    /// Staged-backlog entries not yet delivered; constant while one handler
    /// runs (the backlog is only consumed between handlers) and folded into
    /// the peak-queue high-water mark.
    staged_len: usize,
    peak_queue_len: &'a mut usize,
    next_seq: &'a mut u64,
    delivered: u64,
    stop_requested: &'a mut bool,
}

impl<'a, E> Ctx<'a, E> {
    /// The timestamp of the event currently being handled.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events delivered so far in this run (including the current one).
    #[inline]
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Exact number of live (scheduled, not yet delivered, not cancelled)
    /// events. Lets periodic self-rescheduling activities (metric samplers,
    /// heartbeats) stop once they are the only thing left, so the run can
    /// drain.
    #[inline]
    pub fn pending(&self) -> usize {
        self.live.len()
    }

    /// Schedule `event` at the absolute instant `at`.
    ///
    /// Scheduling into the past is a model bug; it panics in debug builds and
    /// clamps to `now` in release builds.
    pub fn schedule_at(&mut self, at: SimTime, event: E) -> EventKey {
        debug_assert!(
            at >= self.now,
            "scheduled into the past: {at} < {}",
            self.now
        );
        let at = at.max(self.now);
        let seq = *self.next_seq;
        *self.next_seq += 1;
        self.live.insert(seq);
        self.queue.push(Scheduled { at, seq, event });
        *self.peak_queue_len = (*self.peak_queue_len).max(self.queue.len() + self.staged_len);
        EventKey(seq)
    }

    /// Schedule `event` after the relative delay `after`.
    #[inline]
    pub fn schedule_after(&mut self, after: SimDuration, event: E) -> EventKey {
        self.schedule_at(self.now + after, event)
    }

    /// Schedule `event` at the current instant, after all other events
    /// already scheduled for this instant.
    #[inline]
    pub fn schedule_now(&mut self, event: E) -> EventKey {
        self.schedule_at(self.now, event)
    }

    /// Cancel a pending event. Returns `true` if the key was still pending
    /// (i.e. not yet delivered and not already cancelled).
    pub fn cancel(&mut self, key: EventKey) -> bool {
        if self.live.remove(key.0) {
            self.cancelled.insert(key.0);
            true
        } else {
            false
        }
    }

    /// Ask the engine to stop after this handler returns, regardless of the
    /// active stop condition.
    pub fn request_stop(&mut self) {
        *self.stop_requested = true;
    }
}

/// A lazily-pulled event source feeding the engine (see
/// [`Engine::schedule_stream`]). The source owns a contiguous block of
/// pre-reserved sequence numbers and hands them out in pull order, so the
/// merged delivery order is bit-identical to bulk-loading the same items —
/// but only the buffered head physically exists at any moment.
struct StreamSource<E> {
    head: Option<Scheduled<E>>,
    iter: Box<dyn Iterator<Item = (SimTime, E)> + Send>,
    /// Next seq to hand to a pulled item.
    next_seq: u64,
    /// One past the last reserved seq.
    end_seq: u64,
}

impl<E> StreamSource<E> {
    /// Refill `head` from the iterator. Panics if the iterator runs dry
    /// before the declared count is exhausted (the reservation contract).
    fn pull(&mut self) {
        self.head = if self.next_seq < self.end_seq {
            let (at, event) = self
                .iter
                .next()
                .expect("stream source yielded fewer events than declared");
            let seq = self.next_seq;
            self.next_seq += 1;
            Some(Scheduled { at, seq, event })
        } else {
            None
        };
    }
}

/// The event queue and virtual clock.
///
/// Events live in three places: the binary heap (everything scheduled one
/// at a time), the *staged backlog* — a pre-sorted run of events loaded in
/// bulk with [`Engine::schedule_batch`] — and an optional *stream source*
/// ([`Engine::schedule_stream`]) that materializes events one at a time on
/// demand. Delivery merges the sources by `(time, seq)`, which is exactly
/// the heap's total order, so a batch or stream behaves bit-identically to
/// the equivalent `schedule_at` loop while the heap stays small: a
/// workload's million pre-scheduled arrivals become a cursor walk over a
/// sorted vector (batch) or an O(1)-resident generator pull (stream)
/// instead of log-depth sifts through a heap that dwarfs the cache.
pub struct Engine<E> {
    queue: BinaryHeap<Scheduled<E>>,
    /// Bulk-loaded events, sorted ascending by `(at, seq)`, consumed from
    /// the front.
    staged: VecDeque<Scheduled<E>>,
    /// Lazily-pulled source, sorted ascending by time; only its head is
    /// resident.
    stream: Option<StreamSource<E>>,
    cancelled: SeqSet,
    /// Sequence numbers of events that are scheduled but neither delivered
    /// nor cancelled. Keeping this alongside the tombstone set makes
    /// `cancel` exact (a delivered key can no longer be "cancelled") and
    /// `pending` O(1) without subtraction that could underflow.
    live: SeqSet,
    /// High-water mark of pending events (heap + staged backlog, including
    /// tombstoned entries) over the engine's lifetime; feeds engine
    /// profiling.
    peak_queue_len: usize,
    now: SimTime,
    next_seq: u64,
    delivered: u64,
}

impl<E> Default for Engine<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Engine<E> {
    /// An empty engine with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        Engine {
            queue: BinaryHeap::new(),
            staged: VecDeque::new(),
            stream: None,
            cancelled: SeqSet::default(),
            live: SeqSet::default(),
            peak_queue_len: 0,
            now: SimTime::ZERO,
            next_seq: 0,
            delivered: 0,
        }
    }

    /// An empty engine with pre-allocated queue capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Engine {
            queue: BinaryHeap::with_capacity(cap),
            ..Self::new()
        }
    }

    /// Current virtual time (the timestamp of the last delivered event).
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events delivered over the engine's lifetime.
    #[inline]
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Exact number of pending (scheduled, undelivered, non-cancelled) events.
    pub fn pending(&self) -> usize {
        self.live.len()
    }

    /// High-water mark of the event-queue length over the engine's lifetime
    /// (cancelled-but-unpopped entries included). A cheap proxy for the
    /// engine's peak heap footprint, reported by run profiling.
    #[inline]
    pub fn peak_queue_len(&self) -> usize {
        self.peak_queue_len
    }

    /// True if no live events remain.
    pub fn is_empty(&self) -> bool {
        self.pending() == 0
    }

    /// Timestamp of the next live event, if any.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.skip_cancelled();
        self.peek_key().map(|(at, _)| at)
    }

    /// The `(at, seq)` of the earliest undelivered event across both
    /// sources, tombstones included.
    #[inline]
    fn peek_key(&self) -> Option<(SimTime, u64)> {
        let heap = self.queue.peek().map(|s| (s.at, s.seq));
        let staged = self.staged.front().map(|s| (s.at, s.seq));
        let stream = self
            .stream
            .as_ref()
            .and_then(|s| s.head.as_ref())
            .map(|s| (s.at, s.seq));
        [heap, staged, stream].into_iter().flatten().min()
    }

    /// Pop the earliest undelivered event across all sources.
    #[inline]
    fn pop_next(&mut self) -> Option<Scheduled<E>> {
        #[derive(PartialEq)]
        enum Src {
            Heap,
            Staged,
            Stream,
        }
        let mut best: Option<((SimTime, u64), Src)> = None;
        let mut consider = |key: Option<(SimTime, u64)>, src: Src| {
            if let Some(k) = key {
                match &best {
                    Some((b, _)) if k >= *b => {}
                    _ => best = Some((k, src)),
                }
            }
        };
        consider(self.queue.peek().map(|s| (s.at, s.seq)), Src::Heap);
        consider(self.staged.front().map(|s| (s.at, s.seq)), Src::Staged);
        consider(
            self.stream
                .as_ref()
                .and_then(|s| s.head.as_ref())
                .map(|s| (s.at, s.seq)),
            Src::Stream,
        );
        match best?.1 {
            Src::Heap => self.queue.pop(),
            Src::Staged => self.staged.pop_front(),
            Src::Stream => {
                let source = self.stream.as_mut().expect("stream head peeked");
                let item = source.head.take();
                source.pull();
                if source.head.is_none() {
                    self.stream = None;
                }
                item
            }
        }
    }

    /// Schedule an event from outside a handler (initial conditions).
    pub fn schedule_at(&mut self, at: SimTime, event: E) -> EventKey {
        assert!(at >= self.now, "scheduled into the past");
        let seq = self.next_seq;
        self.next_seq += 1;
        self.live.insert(seq);
        self.queue.push(Scheduled { at, seq, event });
        self.peak_queue_len = self
            .peak_queue_len
            .max(self.queue.len() + self.staged.len());
        EventKey(seq)
    }

    /// Bulk-load events into the staged backlog (initial conditions — a
    /// workload's arrival stream). Delivery order is bit-identical to
    /// calling [`Engine::schedule_at`] once per item in iteration order;
    /// only the cost changes. Items need not be pre-sorted. Batch events
    /// are fire-and-forget: no [`EventKey`]s are returned, so they cannot
    /// be individually cancelled.
    pub fn schedule_batch(&mut self, items: impl IntoIterator<Item = (SimTime, E)>) {
        for (at, event) in items {
            assert!(at >= self.now, "scheduled into the past");
            let seq = self.next_seq;
            self.next_seq += 1;
            self.live.insert(seq);
            self.staged.push_back(Scheduled { at, seq, event });
        }
        self.staged
            .make_contiguous()
            .sort_unstable_by_key(|s| (s.at, s.seq));
        self.peak_queue_len = self
            .peak_queue_len
            .max(self.queue.len() + self.staged.len());
    }

    /// Attach a lazily-pulled event source (initial conditions — a
    /// workload's arrival stream generated on demand).
    ///
    /// The source must yield exactly `count` events in ascending time order;
    /// its block of sequence numbers `[next, next+count)` is reserved up
    /// front, so anything scheduled afterwards sorts behind stream events at
    /// equal timestamps — delivery order is bit-identical to bulk-loading
    /// the same items with [`Engine::schedule_batch`], but only one stream
    /// item is resident at a time. `pending` counts the full reservation.
    /// Stream events are fire-and-forget (no [`EventKey`]s, no
    /// cancellation), and at most one stream can be attached at once.
    ///
    /// Panics if a stream is already attached, if the source yields fewer
    /// than `count` events, or (in debug builds) if it yields out of time
    /// order.
    pub fn schedule_stream(
        &mut self,
        count: u64,
        source: impl Iterator<Item = (SimTime, E)> + Send + 'static,
    ) {
        assert!(self.stream.is_none(), "a stream source is already attached");
        if count == 0 {
            return;
        }
        let start = self.next_seq;
        self.next_seq += count;
        self.live.insert_range(start, self.next_seq);
        let floor = self.now;
        let mut last = SimTime::ZERO;
        let iter = source.inspect(move |(at, _)| {
            debug_assert!(*at >= floor, "stream event scheduled into the past");
            debug_assert!(*at >= last, "stream events must be time-ordered");
            last = *at;
        });
        let mut src = StreamSource {
            head: None,
            iter: Box::new(iter),
            next_seq: start,
            end_seq: self.next_seq,
        };
        src.pull();
        self.stream = Some(src);
        // The stream's single buffered head joins the peak-queue accounting;
        // the unpulled remainder intentionally does not — not being resident
        // is the point.
        self.peak_queue_len = self
            .peak_queue_len
            .max(self.queue.len() + self.staged.len() + 1);
    }

    /// Schedule an event `after` the current clock from outside a handler.
    pub fn schedule_after(&mut self, after: SimDuration, event: E) -> EventKey {
        self.schedule_at(self.now + after, event)
    }

    /// Cancel a pending event from outside a handler. Returns `false` for
    /// keys that were already delivered or already cancelled.
    pub fn cancel(&mut self, key: EventKey) -> bool {
        if self.live.remove(key.0) {
            self.cancelled.insert(key.0);
            true
        } else {
            false
        }
    }

    fn skip_cancelled(&mut self) {
        while let Some((_, seq)) = self.peek_key() {
            if self.cancelled.remove(seq) {
                self.pop_next();
            } else {
                break;
            }
        }
    }

    /// Deliver the single next event to `sim`. Returns `false` if the queue
    /// was empty.
    pub fn step<S: Simulation<Event = E>>(&mut self, sim: &mut S) -> bool {
        self.skip_cancelled();
        let Some(Scheduled { at, seq, event }) = self.pop_next() else {
            return false;
        };
        debug_assert!(at >= self.now, "event queue yielded a past event");
        self.live.remove(seq);
        self.now = at;
        self.delivered += 1;
        let mut stop = false;
        let mut ctx = Ctx {
            now: at,
            queue: &mut self.queue,
            cancelled: &mut self.cancelled,
            live: &mut self.live,
            staged_len: self.staged.len(),
            peak_queue_len: &mut self.peak_queue_len,
            next_seq: &mut self.next_seq,
            delivered: self.delivered,
            stop_requested: &mut stop,
        };
        sim.handle(&mut ctx, event);
        true
    }

    /// Run until the queue drains.
    pub fn run<S: Simulation<Event = E>>(&mut self, sim: &mut S) -> RunOutcome {
        self.run_until(sim, StopCondition::Exhausted)
    }

    /// Run until `stop` triggers or the queue drains.
    ///
    /// With [`StopCondition::AtTime`], the clock is advanced to the horizon on
    /// early stop so that time-weighted statistics close out correctly.
    pub fn run_until<S: Simulation<Event = E>>(
        &mut self,
        sim: &mut S,
        stop: StopCondition,
    ) -> RunOutcome {
        let start_delivered = self.delivered;
        loop {
            self.skip_cancelled();
            let Some((head_at, _)) = self.peek_key() else {
                if let StopCondition::AtTime(horizon) = stop {
                    self.now = self.now.max(horizon);
                }
                return RunOutcome::QueueExhausted;
            };
            match stop {
                StopCondition::Exhausted => {}
                StopCondition::AtTime(horizon) => {
                    if head_at > horizon {
                        self.now = horizon;
                        return RunOutcome::StoppedEarly;
                    }
                }
                StopCondition::EventCount(n) => {
                    if self.delivered - start_delivered >= n {
                        return RunOutcome::StoppedEarly;
                    }
                }
            }
            let Scheduled { at, seq, event } = self.pop_next().expect("peeked");
            self.live.remove(seq);
            self.now = at;
            self.delivered += 1;
            let mut stop_req = false;
            let mut ctx = Ctx {
                now: at,
                queue: &mut self.queue,
                cancelled: &mut self.cancelled,
                live: &mut self.live,
                staged_len: self.staged.len(),
                peak_queue_len: &mut self.peak_queue_len,
                next_seq: &mut self.next_seq,
                delivered: self.delivered,
                stop_requested: &mut stop_req,
            };
            sim.handle(&mut ctx, event);
            if stop_req {
                return RunOutcome::StoppedEarly;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq, Clone)]
    enum Ev {
        Tag(&'static str),
        Chain(u32),
    }

    #[derive(Default)]
    struct Recorder {
        log: Vec<(SimTime, Ev)>,
        cancel_target: Option<EventKey>,
        stop_at_tag: Option<&'static str>,
    }

    impl Simulation for Recorder {
        type Event = Ev;
        fn handle(&mut self, ctx: &mut Ctx<Ev>, ev: Ev) {
            self.log.push((ctx.now(), ev.clone()));
            match ev {
                Ev::Chain(n) if n > 0 => {
                    ctx.schedule_after(SimDuration::from_secs(1), Ev::Chain(n - 1));
                }
                Ev::Tag(t) => {
                    if let Some(k) = self.cancel_target.take() {
                        assert!(ctx.cancel(k));
                    }
                    if self.stop_at_tag == Some(t) {
                        ctx.request_stop();
                    }
                }
                _ => {}
            }
        }
    }

    #[test]
    fn events_fire_in_time_order() {
        let mut eng = Engine::new();
        eng.schedule_at(SimTime::from_secs(3), Ev::Tag("c"));
        eng.schedule_at(SimTime::from_secs(1), Ev::Tag("a"));
        eng.schedule_at(SimTime::from_secs(2), Ev::Tag("b"));
        let mut sim = Recorder::default();
        assert_eq!(eng.run(&mut sim), RunOutcome::QueueExhausted);
        let tags: Vec<_> = sim.log.iter().map(|(_, e)| e.clone()).collect();
        assert_eq!(tags, vec![Ev::Tag("a"), Ev::Tag("b"), Ev::Tag("c")]);
        assert_eq!(eng.now(), SimTime::from_secs(3));
    }

    #[test]
    fn simultaneous_events_fire_fifo() {
        let mut eng = Engine::new();
        let t = SimTime::from_secs(5);
        for tag in ["first", "second", "third", "fourth"] {
            eng.schedule_at(t, Ev::Tag(tag));
        }
        let mut sim = Recorder::default();
        eng.run(&mut sim);
        let tags: Vec<_> = sim
            .log
            .iter()
            .map(|(_, e)| match e {
                Ev::Tag(t) => *t,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(tags, vec!["first", "second", "third", "fourth"]);
    }

    #[test]
    fn chained_scheduling_advances_clock() {
        let mut eng = Engine::new();
        eng.schedule_at(SimTime::ZERO, Ev::Chain(5));
        let mut sim = Recorder::default();
        eng.run(&mut sim);
        assert_eq!(sim.log.len(), 6);
        assert_eq!(eng.now(), SimTime::from_secs(5));
        assert_eq!(eng.delivered(), 6);
    }

    #[test]
    fn cancellation_prevents_delivery() {
        let mut eng = Engine::new();
        eng.schedule_at(SimTime::from_secs(1), Ev::Tag("keep"));
        let doomed = eng.schedule_at(SimTime::from_secs(2), Ev::Tag("doomed"));
        eng.schedule_at(SimTime::from_secs(3), Ev::Tag("keep2"));
        assert!(eng.cancel(doomed));
        assert!(!eng.cancel(doomed), "double-cancel reports false");
        assert_eq!(eng.pending(), 2);
        let mut sim = Recorder::default();
        eng.run(&mut sim);
        assert_eq!(sim.log.len(), 2);
        assert!(sim.log.iter().all(|(_, e)| *e != Ev::Tag("doomed")));
    }

    #[test]
    fn cancel_from_within_handler() {
        let mut eng = Engine::new();
        eng.schedule_at(SimTime::from_secs(1), Ev::Tag("canceller"));
        let doomed = eng.schedule_at(SimTime::from_secs(2), Ev::Tag("doomed"));
        let mut sim = Recorder {
            cancel_target: Some(doomed),
            ..Default::default()
        };
        eng.run(&mut sim);
        assert_eq!(sim.log.len(), 1);
    }

    #[test]
    fn cancel_unknown_key_is_false() {
        let mut eng: Engine<Ev> = Engine::new();
        assert!(!eng.cancel(EventKey(99)));
    }

    #[test]
    fn cancel_after_delivery_is_false() {
        let mut eng = Engine::new();
        let key = eng.schedule_at(SimTime::from_secs(1), Ev::Tag("fired"));
        let mut sim = Recorder::default();
        eng.run(&mut sim);
        assert_eq!(sim.log.len(), 1);
        assert!(
            !eng.cancel(key),
            "cancelling an already-delivered key must report false"
        );
        // The failed cancel must not poison the tombstone set: a fresh event
        // still schedules, counts, and delivers normally.
        eng.schedule_at(SimTime::from_secs(2), Ev::Tag("later"));
        assert_eq!(eng.pending(), 1);
        eng.run(&mut sim);
        assert_eq!(sim.log.len(), 2);
    }

    #[test]
    fn pending_stays_exact_under_mixed_cancel_and_delivery() {
        let mut eng = Engine::new();
        let keys: Vec<_> = (0..6)
            .map(|i| eng.schedule_at(SimTime::from_secs(i + 1), Ev::Tag("ev")))
            .collect();
        assert_eq!(eng.pending(), 6);
        // Cancel two, deliver one, then try to cancel the delivered one and
        // re-cancel a cancelled one; the count must never drift or underflow.
        assert!(eng.cancel(keys[1]));
        assert!(eng.cancel(keys[4]));
        assert_eq!(eng.pending(), 4);
        let mut sim = Recorder::default();
        assert!(eng.step(&mut sim)); // delivers keys[0]
        assert_eq!(eng.pending(), 3);
        assert!(!eng.cancel(keys[0]), "delivered key");
        assert!(!eng.cancel(keys[1]), "already-cancelled key");
        assert_eq!(eng.pending(), 3, "failed cancels must not change pending");
        eng.run(&mut sim);
        assert_eq!(eng.pending(), 0);
        assert!(eng.is_empty());
        assert_eq!(sim.log.len(), 4);
    }

    #[test]
    fn ctx_cancel_after_delivery_is_false() {
        // A handler that tries to cancel the event *currently being handled*
        // (already delivered) and a previously-fired one.
        struct S {
            first_key: Option<EventKey>,
            results: Vec<bool>,
        }
        impl Simulation for S {
            type Event = Ev;
            fn handle(&mut self, ctx: &mut Ctx<Ev>, ev: Ev) {
                if let Ev::Tag("second") = ev {
                    let stale = self.first_key.take().expect("set by test");
                    self.results.push(ctx.cancel(stale));
                    let live = ctx.schedule_after(SimDuration::from_secs(1), Ev::Tag("third"));
                    self.results.push(ctx.cancel(live));
                    self.results.push(ctx.cancel(live));
                    self.results.push(ctx.pending() == 0);
                }
            }
        }
        let mut eng = Engine::new();
        let first = eng.schedule_at(SimTime::from_secs(1), Ev::Tag("first"));
        eng.schedule_at(SimTime::from_secs(2), Ev::Tag("second"));
        let mut sim = S {
            first_key: Some(first),
            results: vec![],
        };
        eng.run(&mut sim);
        assert_eq!(
            sim.results,
            vec![false, true, false, true],
            "stale cancel false; live cancel true; double-cancel false; pending exact"
        );
    }

    #[test]
    fn peak_queue_len_tracks_high_water_mark() {
        let mut eng = Engine::new();
        assert_eq!(eng.peak_queue_len(), 0);
        for i in 0..5 {
            eng.schedule_at(SimTime::from_secs(i + 1), Ev::Tag("ev"));
        }
        assert_eq!(eng.peak_queue_len(), 5);
        let mut sim = Recorder::default();
        eng.run(&mut sim);
        // Draining does not lower the recorded peak.
        assert_eq!(eng.peak_queue_len(), 5);
        assert_eq!(eng.pending(), 0);
    }

    #[test]
    fn stop_at_time_clamps_clock_to_horizon() {
        let mut eng = Engine::new();
        eng.schedule_at(SimTime::from_secs(1), Ev::Tag("in"));
        eng.schedule_at(SimTime::from_secs(10), Ev::Tag("out"));
        let mut sim = Recorder::default();
        let outcome = eng.run_until(&mut sim, StopCondition::AtTime(SimTime::from_secs(5)));
        assert_eq!(outcome, RunOutcome::StoppedEarly);
        assert_eq!(sim.log.len(), 1);
        assert_eq!(eng.now(), SimTime::from_secs(5));
        assert_eq!(eng.pending(), 1);
    }

    #[test]
    fn stop_at_time_fires_events_exactly_at_horizon() {
        let mut eng = Engine::new();
        eng.schedule_at(SimTime::from_secs(5), Ev::Tag("edge"));
        let mut sim = Recorder::default();
        eng.run_until(&mut sim, StopCondition::AtTime(SimTime::from_secs(5)));
        assert_eq!(sim.log.len(), 1);
    }

    #[test]
    fn stop_at_time_on_drained_queue_advances_clock() {
        let mut eng = Engine::new();
        eng.schedule_at(SimTime::from_secs(1), Ev::Tag("only"));
        let mut sim = Recorder::default();
        let outcome = eng.run_until(&mut sim, StopCondition::AtTime(SimTime::from_secs(30)));
        assert_eq!(outcome, RunOutcome::QueueExhausted);
        assert_eq!(eng.now(), SimTime::from_secs(30));
    }

    #[test]
    fn stop_after_event_count() {
        let mut eng = Engine::new();
        eng.schedule_at(SimTime::ZERO, Ev::Chain(100));
        let mut sim = Recorder::default();
        let outcome = eng.run_until(&mut sim, StopCondition::EventCount(10));
        assert_eq!(outcome, RunOutcome::StoppedEarly);
        assert_eq!(sim.log.len(), 10);
    }

    #[test]
    fn handler_requested_stop() {
        let mut eng = Engine::new();
        eng.schedule_at(SimTime::from_secs(1), Ev::Tag("go"));
        eng.schedule_at(SimTime::from_secs(2), Ev::Tag("stop-here"));
        eng.schedule_at(SimTime::from_secs(3), Ev::Tag("never"));
        let mut sim = Recorder {
            stop_at_tag: Some("stop-here"),
            ..Default::default()
        };
        let outcome = eng.run(&mut sim);
        assert_eq!(outcome, RunOutcome::StoppedEarly);
        assert_eq!(sim.log.len(), 2);
    }

    #[test]
    fn run_can_resume_after_early_stop() {
        let mut eng = Engine::new();
        eng.schedule_at(SimTime::from_secs(1), Ev::Tag("a"));
        eng.schedule_at(SimTime::from_secs(10), Ev::Tag("b"));
        let mut sim = Recorder::default();
        eng.run_until(&mut sim, StopCondition::AtTime(SimTime::from_secs(5)));
        eng.run(&mut sim);
        assert_eq!(sim.log.len(), 2);
        assert_eq!(eng.now(), SimTime::from_secs(10));
    }

    #[test]
    fn peek_time_skips_cancelled_head() {
        let mut eng = Engine::new();
        let head = eng.schedule_at(SimTime::from_secs(1), Ev::Tag("head"));
        eng.schedule_at(SimTime::from_secs(2), Ev::Tag("next"));
        eng.cancel(head);
        assert_eq!(eng.peek_time(), Some(SimTime::from_secs(2)));
    }

    #[test]
    fn ctx_pending_lets_periodic_activities_self_terminate() {
        // A "sampler" that re-arms itself only while other events exist.
        struct Sampler {
            ticks: u32,
        }
        impl Simulation for Sampler {
            type Event = Ev;
            fn handle(&mut self, ctx: &mut Ctx<Ev>, ev: Ev) {
                if let Ev::Tag("tick") = ev {
                    self.ticks += 1;
                    if ctx.pending() > 0 {
                        ctx.schedule_after(SimDuration::from_secs(10), Ev::Tag("tick"));
                    }
                }
            }
        }
        let mut eng = Engine::new();
        eng.schedule_at(SimTime::from_secs(10), Ev::Tag("tick"));
        eng.schedule_at(SimTime::from_secs(35), Ev::Tag("work"));
        let mut sim = Sampler { ticks: 0 };
        let outcome = eng.run(&mut sim);
        assert_eq!(outcome, RunOutcome::QueueExhausted);
        // Ticks at 10, 20, 30 re-arm (work pending); the tick at 40 sees an
        // empty queue and stops — the run drains instead of looping forever.
        assert_eq!(sim.ticks, 4);
        assert_eq!(eng.now(), SimTime::from_secs(40));
    }

    #[test]
    fn stream_source_is_bit_identical_to_batch() {
        let items = |n: u64| {
            (0..n).map(|i| {
                (
                    SimTime::from_secs(1 + i / 2), // duplicate timestamps on purpose
                    Ev::Chain(0),
                )
            })
        };
        let run = |streamed: bool| {
            let mut eng = Engine::new();
            if streamed {
                eng.schedule_stream(8, items(8));
            } else {
                eng.schedule_batch(items(8));
            }
            // Later scheduling must sort behind stream events at equal times.
            eng.schedule_at(SimTime::from_secs(2), Ev::Tag("late"));
            let mut sim = Recorder::default();
            eng.run(&mut sim);
            (sim.log, eng.delivered())
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn stream_reservation_keeps_pending_exact() {
        let mut eng = Engine::new();
        eng.schedule_stream(
            5,
            (0..5u64).map(|i| (SimTime::from_secs(i + 1), Ev::Tag("s"))),
        );
        assert_eq!(eng.pending(), 5);
        let mut sim = Recorder::default();
        assert!(eng.step(&mut sim));
        assert_eq!(eng.pending(), 4);
        eng.run(&mut sim);
        assert_eq!(eng.pending(), 0);
        assert!(eng.is_empty());
        assert_eq!(sim.log.len(), 5);
    }

    #[test]
    #[should_panic(expected = "fewer events than declared")]
    fn stream_shorter_than_declared_panics() {
        let mut eng = Engine::new();
        eng.schedule_stream(
            3,
            (0..2u64).map(|i| (SimTime::from_secs(i + 1), Ev::Tag("s"))),
        );
        let mut sim = Recorder::default();
        eng.run(&mut sim);
    }

    #[test]
    fn stream_interleaves_with_handler_scheduling() {
        // A handler chain scheduled mid-run must merge with stream events in
        // (time, seq) order exactly as it would against a materialized batch.
        let arrivals = |n: u64| (0..n).map(|i| (SimTime::from_secs(2 * i), Ev::Tag("arrive")));
        let run = |streamed: bool| {
            let mut eng = Engine::new();
            if streamed {
                eng.schedule_stream(6, arrivals(6));
            } else {
                eng.schedule_batch(arrivals(6));
            }
            eng.schedule_at(SimTime::from_secs(1), Ev::Chain(4));
            let mut sim = Recorder::default();
            eng.run(&mut sim);
            sim.log
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn schedule_now_runs_after_peers_at_same_instant() {
        struct S {
            order: Vec<&'static str>,
        }
        impl Simulation for S {
            type Event = Ev;
            fn handle(&mut self, ctx: &mut Ctx<Ev>, ev: Ev) {
                if let Ev::Tag(t) = ev {
                    self.order.push(t);
                    if t == "a" {
                        ctx.schedule_now(Ev::Tag("injected"));
                    }
                }
            }
        }
        let mut eng = Engine::new();
        let t = SimTime::from_secs(1);
        eng.schedule_at(t, Ev::Tag("a"));
        eng.schedule_at(t, Ev::Tag("b"));
        let mut sim = S { order: vec![] };
        eng.run(&mut sim);
        assert_eq!(sim.order, vec!["a", "b", "injected"]);
    }
}
