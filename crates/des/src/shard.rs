//! Building blocks for sharded (multi-queue) conservative simulation.
//!
//! The serial [`Engine`](crate::Engine) orders simultaneous events by a
//! global scheduling sequence number. A sharded run has no global counter to
//! consult, so shards order events by a *causal rank* instead: every event
//! carries the execution coordinate of the handler that scheduled it plus
//! the position of the `schedule` call within that handler. Delivering
//! events in `(time, rank)` order reproduces the serial `(time, seq)` order
//! exactly — see [`Rank`] for the argument — which is what makes
//! byte-identical sharded output possible.
//!
//! The pieces here are engine-level and policy-free:
//!
//! * [`Rank`] — the causal coordinate, with the total order.
//! * [`RankQueue`] — a cancellable priority queue keyed by `(time, rank)`,
//!   the shard-local counterpart of the serial engine's queue.
//! * [`Lookahead`] — the per-site-pair minimum cross-shard delay matrix
//!   derived from WAN latency/bandwidth and the staging transfer floor.
//!
//! The synchronization protocol itself (conservative windows, emission
//! floors, coordinator barriers) lives with the simulation driver; it is a
//! consumer of these types, not part of them.

use crate::engine::{EventKey, SeqSet};
use crate::time::{SimDuration, SimTime};
use std::cmp::{Ordering, Reverse};
use std::collections::{BinaryHeap, HashSet, VecDeque};
use std::sync::Arc;

#[derive(Debug, PartialEq, Eq)]
enum RankNode {
    /// A primed (root) event: rank = its position in the priming batch.
    Root(u64),
    /// An event scheduled by a handler: the parent's execution time, the
    /// parent's own rank, and the index of the `schedule` call within the
    /// parent's handler.
    Child {
        parent_time: SimTime,
        parent: Rank,
        k: u64,
    },
}

/// The causal rank of an event: where in the serial order its scheduling
/// call would have happened.
///
/// The serial engine assigns sequence numbers in scheduling order and
/// delivers in `(time, seq)` order. Scheduling order is itself determined
/// by execution order: a handler executing at `(t_p, seq_p)` makes its
/// `k`-th scheduling call before any call made by a handler executing at a
/// larger `(t, seq)`. So for two events at equal delivery time, the serial
/// tie-break compares `(t_p, seq_p, k)` — parents recursively. [`Rank`]
/// stores exactly that path and its `Ord` compares it:
///
/// * `Root(i) < Root(j)` iff `i < j` (priming order);
/// * `Root(_) < Child{..}` always (primed events get the lowest seqs, so at
///   equal time every root beats every dynamically scheduled event);
/// * `Child` vs `Child` is lexicographic on `(parent_time, parent, k)`.
///
/// An ancestor sorts strictly before any of its same-time descendants, and
/// unrelated ranks compare exactly as their serial seqs would.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rank(Arc<RankNode>);

impl Rank {
    /// The rank of the `index`-th primed event.
    pub fn root(index: u64) -> Self {
        Rank(Arc::new(RankNode::Root(index)))
    }

    /// The rank of the `k`-th event scheduled by a handler that is itself
    /// executing with this rank at `parent_time`.
    pub fn child(&self, parent_time: SimTime, k: u64) -> Self {
        Rank(Arc::new(RankNode::Child {
            parent_time,
            parent: self.clone(),
            k,
        }))
    }

    /// Depth of the causal chain (roots are 1). Diagnostic only.
    pub fn depth(&self) -> usize {
        match self.0.as_ref() {
            RankNode::Root(_) => 1,
            RankNode::Child { parent, .. } => 1 + parent.depth(),
        }
    }
}

impl Ord for Rank {
    fn cmp(&self, other: &Self) -> Ordering {
        if Arc::ptr_eq(&self.0, &other.0) {
            return Ordering::Equal;
        }
        match (self.0.as_ref(), other.0.as_ref()) {
            (RankNode::Root(a), RankNode::Root(b)) => a.cmp(b),
            (RankNode::Root(_), RankNode::Child { .. }) => Ordering::Less,
            (RankNode::Child { .. }, RankNode::Root(_)) => Ordering::Greater,
            (
                RankNode::Child {
                    parent_time: ta,
                    parent: pa,
                    k: ka,
                },
                RankNode::Child {
                    parent_time: tb,
                    parent: pb,
                    k: kb,
                },
            ) => ta.cmp(tb).then_with(|| pa.cmp(pb)).then_with(|| ka.cmp(kb)),
        }
    }
}

impl PartialOrd for Rank {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

struct RankedEntry<E> {
    at: SimTime,
    rank: Rank,
    key: u64,
    event: E,
}

impl<E> PartialEq for RankedEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<E> Eq for RankedEntry<E> {}
impl<E> Ord for RankedEntry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        self.at
            .cmp(&other.at)
            .then_with(|| self.rank.cmp(&other.rank))
            .then_with(|| self.key.cmp(&other.key))
    }
}
impl<E> PartialOrd for RankedEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// An entry in the fused serial tail: ordered by inline `(at, seq)`, no
/// rank chain to walk. `seq` doubles as the cancellation key.
struct SeqEntry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for SeqEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq
    }
}
impl<E> Eq for SeqEntry<E> {}
impl<E> Ord for SeqEntry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        self.at
            .cmp(&other.at)
            .then_with(|| self.seq.cmp(&other.seq))
    }
}
impl<E> PartialOrd for SeqEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Post-[`fuse_serial`](RankQueue::fuse_serial) state: the serial engine's
/// queue discipline — inline `(time, seq)` ordering and bitmap tombstones.
///
/// Like the engine, the bulk pending set lives in a *sorted deque*, not the
/// heap: the renumbered entries are already in delivery order, so they pop
/// from the front at O(1) instead of paying a million-entry heap
/// percolation each. Only events scheduled after the fuse go through the
/// heap, which stays small (in-flight completions and ticks). Every staged
/// seq is lower than every heap seq, so the two-source pop is a single
/// `(at, seq)` comparison.
struct SerialTail<E> {
    staged: VecDeque<SeqEntry<E>>,
    heap: BinaryHeap<Reverse<SeqEntry<E>>>,
    live: SeqSet,
    cancelled: SeqSet,
}

/// Old-key → new-key translation returned by
/// [`fuse_serial`](RankQueue::fuse_serial). Dense: old keys come from one
/// per-queue counter, so a flat vector indexed by the raw key beats a
/// hash map with millions of entries.
pub struct KeyTranslation {
    map: Vec<EventKey>,
}

impl KeyTranslation {
    /// The post-fuse key for `old`, or `None` if `old` was not live at the
    /// fuse (already delivered, cancelled, or a placeholder).
    pub fn get(&self, old: EventKey) -> Option<EventKey> {
        let k = self.map.get(old.raw_shard() as usize).copied()?;
        (k != EventKey::placeholder()).then_some(k)
    }
}

/// A cancellable event queue ordered by `(time, [`Rank`])` — the shard-local
/// counterpart of the serial engine's `(time, seq)` queue.
///
/// Cancellation is tombstone-based like the serial engine's: [`cancel`]
/// (RankQueue::cancel) marks a key, pops skip marked entries, and the live
/// set keeps `len` exact and double-cancels honest.
///
/// [`fuse_serial`](RankQueue::fuse_serial) switches the queue into *tail
/// mode* for the adaptive governor's serial finish: entries are renumbered
/// to the serial engine's inline `(time, seq)` order and rank bookkeeping
/// stops entirely. In tail mode use [`schedule_tail`](RankQueue::schedule_tail)
/// / [`pop_tail`](RankQueue::pop_tail); the rank-based accessors panic.
pub struct RankQueue<E> {
    heap: BinaryHeap<Reverse<RankedEntry<E>>>,
    cancelled: HashSet<u64>,
    live: HashSet<u64>,
    next_key: u64,
    peak_len: usize,
    tail: Option<SerialTail<E>>,
}

impl<E> Default for RankQueue<E> {
    fn default() -> Self {
        RankQueue {
            heap: BinaryHeap::new(),
            cancelled: HashSet::new(),
            live: HashSet::new(),
            next_key: 0,
            peak_len: 0,
            tail: None,
        }
    }
}

impl<E> RankQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedule `event` at `(at, rank)`; the returned key cancels it.
    pub fn schedule(&mut self, at: SimTime, rank: Rank, event: E) -> EventKey {
        debug_assert!(self.tail.is_none(), "fused queue: use schedule_tail");
        let key = self.next_key;
        self.next_key += 1;
        self.live.insert(key);
        self.heap.push(Reverse(RankedEntry {
            at,
            rank,
            key,
            event,
        }));
        self.peak_len = self.peak_len.max(self.live.len());
        EventKey::from_raw_shard(key)
    }

    /// Cancel a pending event. `false` if it already fired or was cancelled.
    pub fn cancel(&mut self, key: EventKey) -> bool {
        let raw = key.raw_shard();
        if let Some(tail) = &mut self.tail {
            return if tail.live.remove(raw) {
                tail.cancelled.insert(raw);
                true
            } else {
                false
            };
        }
        if self.live.remove(&raw) {
            self.cancelled.insert(raw);
            true
        } else {
            false
        }
    }

    fn skip_cancelled(&mut self) {
        while let Some(Reverse(head)) = self.heap.peek() {
            if self.cancelled.remove(&head.key) {
                self.heap.pop();
            } else {
                break;
            }
        }
    }

    /// The `(time, rank)` of the next live event, if any.
    pub fn peek(&mut self) -> Option<(SimTime, &Rank)> {
        debug_assert!(self.tail.is_none(), "fused queue: ranks are gone");
        self.skip_cancelled();
        self.heap.peek().map(|Reverse(e)| (e.at, &e.rank))
    }

    /// The `(time, rank, event)` of the next live event, if any. Event
    /// access lets a sharded driver classify the head (may it execute
    /// freely, or must it synchronize first?) without popping it.
    pub fn peek_full(&mut self) -> Option<(SimTime, &Rank, &E)> {
        debug_assert!(self.tail.is_none(), "fused queue: ranks are gone");
        self.skip_cancelled();
        self.heap.peek().map(|Reverse(e)| (e.at, &e.rank, &e.event))
    }

    /// Pop the next live event.
    pub fn pop(&mut self) -> Option<(SimTime, Rank, E)> {
        debug_assert!(self.tail.is_none(), "fused queue: use pop_tail");
        self.skip_cancelled();
        let Reverse(e) = self.heap.pop()?;
        self.live.remove(&e.key);
        Some((e.at, e.rank, e.event))
    }

    /// Live (scheduled, uncancelled) event count.
    pub fn len(&self) -> usize {
        match &self.tail {
            Some(t) => t.live.len(),
            None => self.live.len(),
        }
    }

    /// True when no live events remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// High-water mark of the live event count.
    pub fn peak_len(&self) -> usize {
        self.peak_len
    }

    /// Switch to the serial engine's queue discipline (*tail mode*): every
    /// live entry is renumbered with ascending sequence numbers in
    /// `(time, rank)` order; events scheduled afterwards (via
    /// [`schedule_tail`](RankQueue::schedule_tail)) take still-higher seqs.
    ///
    /// This preserves delivery order exactly. Renumbering in `(time, rank)`
    /// order reproduces the pending events' serial seq order, and the
    /// serial tie-break — at equal time, an already-pending event beats any
    /// newly scheduled one — is precisely "lower seq wins". What changes is
    /// the cost: the renumbered bulk pops from a sorted deque at O(1) (the
    /// engine's staged-backlog trick), comparisons become two inline
    /// integers instead of a walk over [`Rank`] chains, scheduling stops
    /// allocating a rank node per event, and cancellation flips dense
    /// bitmap bits instead of hashing.
    ///
    /// Returns the old-key → new-key translation so the caller can remap
    /// any stored cancellation handles (running jobs' completion keys).
    pub fn fuse_serial(&mut self) -> KeyTranslation {
        assert!(self.tail.is_none(), "queue already fused");
        let heap = std::mem::take(&mut self.heap);
        let cancelled = std::mem::take(&mut self.cancelled);
        self.live.clear();
        let mut entries: Vec<RankedEntry<E>> =
            heap.into_vec().into_iter().map(|Reverse(e)| e).collect();
        entries.retain(|e| !cancelled.contains(&e.key));
        entries.sort_unstable();
        let mut map = vec![EventKey::placeholder(); self.next_key as usize];
        let mut staged = VecDeque::with_capacity(entries.len());
        for (seq, e) in entries.into_iter().enumerate() {
            map[e.key as usize] = EventKey::from_raw_shard(seq as u64);
            staged.push_back(SeqEntry {
                at: e.at,
                seq: seq as u64,
                event: e.event,
            });
        }
        let mut live = SeqSet::default();
        live.insert_range(0, staged.len() as u64);
        self.next_key = staged.len() as u64;
        self.peak_len = self.peak_len.max(staged.len());
        self.tail = Some(SerialTail {
            staged,
            heap: BinaryHeap::new(),
            live,
            cancelled: SeqSet::default(),
        });
        KeyTranslation { map }
    }

    /// Enter tail mode directly from a freshly primed event list, skipping
    /// the rank heap entirely. The queue must be unused and unfused;
    /// `entries` must already be in serial delivery order (ascending time,
    /// priming order as the tie-break — what [`fuse_serial`]
    /// (RankQueue::fuse_serial) would have produced had the same events
    /// been primed under root ranks). For a run that knows at startup it
    /// will execute serially, priming through ranks just to renumber them
    /// away would pay a rank-node allocation and a heap percolation per
    /// event; this stages the whole set at a walk of the vector.
    pub fn fuse_primed(&mut self, entries: Vec<(SimTime, E)>) {
        assert!(self.tail.is_none(), "queue already fused");
        assert!(
            self.heap.is_empty() && self.next_key == 0,
            "fuse_primed requires a fresh queue"
        );
        debug_assert!(
            entries.windows(2).all(|w| w[0].0 <= w[1].0),
            "primed entries must be sorted by time"
        );
        let staged: VecDeque<SeqEntry<E>> = entries
            .into_iter()
            .enumerate()
            .map(|(seq, (at, event))| SeqEntry {
                at,
                seq: seq as u64,
                event,
            })
            .collect();
        let mut live = SeqSet::default();
        live.insert_range(0, staged.len() as u64);
        self.next_key = staged.len() as u64;
        self.peak_len = self.peak_len.max(staged.len());
        self.tail = Some(SerialTail {
            staged,
            heap: BinaryHeap::new(),
            live,
            cancelled: SeqSet::default(),
        });
    }

    /// Schedule in tail mode: ordering is `(at, seq)` with `seq` allocated
    /// in call order — the serial engine's discipline.
    pub fn schedule_tail(&mut self, at: SimTime, event: E) -> EventKey {
        let seq = self.next_key;
        self.next_key += 1;
        let tail = self
            .tail
            .as_mut()
            .expect("schedule_tail before fuse_serial");
        tail.live.insert(seq);
        tail.heap.push(Reverse(SeqEntry { at, seq, event }));
        self.peak_len = self.peak_len.max(tail.live.len());
        EventKey::from_raw_shard(seq)
    }

    /// Pop the next live event in tail mode. Two sources — the staged
    /// (renumbered, pre-fuse) deque and the heap of post-fuse schedules —
    /// merged by `(at, seq)`.
    pub fn pop_tail(&mut self) -> Option<(SimTime, E)> {
        let tail = self.tail.as_mut().expect("pop_tail before fuse_serial");
        loop {
            let from_staged = match (tail.staged.front(), tail.heap.peek()) {
                (Some(s), Some(Reverse(h))) => (s.at, s.seq) < (h.at, h.seq),
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => return None,
            };
            let e = if from_staged {
                tail.staged.pop_front().expect("front just peeked")
            } else {
                let Reverse(e) = tail.heap.pop().expect("top just peeked");
                e
            };
            if tail.cancelled.remove(e.seq) {
                continue;
            }
            tail.live.remove(e.seq);
            return Some((e.at, e.event));
        }
    }

    /// Consume the queue, returning every *live* entry in `(time, rank)`
    /// order along with the [`EventKey`] it was scheduled under. Cancelled
    /// entries are skipped. This is the surrender path of an adaptive
    /// sharded run: a shard folding into the coordinator hands over its
    /// pending events, and the keys let the receiver translate any stored
    /// cancellation handles (e.g. pending completion events) to the keys
    /// the absorbing queue assigns.
    pub fn drain(mut self) -> Vec<(SimTime, Rank, EventKey, E)> {
        let mut out = Vec::with_capacity(self.live.len());
        while let Some((at, rank, key, ev)) = self.pop_with_key() {
            out.push((at, rank, key, ev));
        }
        out
    }

    fn pop_with_key(&mut self) -> Option<(SimTime, Rank, EventKey, E)> {
        self.skip_cancelled();
        let Reverse(e) = self.heap.pop()?;
        self.live.remove(&e.key);
        Some((e.at, e.rank, EventKey::from_raw_shard(e.key), e.event))
    }
}

/// The conservative lookahead matrix: a lower bound, per ordered site pair,
/// on the virtual delay between a cross-site interaction being decided and
/// its earliest effect at the destination.
///
/// Derived from the hub WAN model (path latency is the sum of the two
/// uplink latencies, path bandwidth the minimum of the two) plus the
/// staging transfer floor: a stage-in that crosses sites moves at least
/// `min_transfer_mb`, so its enqueue lands at least `latency +
/// min_transfer_mb / bandwidth` after the routing decision. Interactions
/// that carry no data (dispatch of a small-input job) have no such floor —
/// their entry is the bare path latency, which is zero when the
/// configuration models latency as free. A zero entry means the protocol
/// cannot advance a destination shard on lookahead alone and must fall back
/// to coordinator-granted windows; nonzero entries let the window extend
/// past the horizon by that much.
#[derive(Debug, Clone, PartialEq)]
pub struct Lookahead {
    sites: usize,
    /// `staged[src * sites + dst]`: minimum delay for data-bearing
    /// (staging) interactions.
    staged: Vec<SimDuration>,
    /// `bare[src * sites + dst]`: minimum delay for data-free interactions.
    bare: Vec<SimDuration>,
}

impl Lookahead {
    /// Build from per-site uplink parameters. `latency_s[i]` and
    /// `bandwidth_mbps[i]` describe site `i`'s uplink to the hub;
    /// `min_transfer_mb` is the smallest stage-in that crosses sites (the
    /// staging threshold). Self-pairs are never cross-shard; their entries
    /// are `SimDuration::MAX` so they don't drag the minima down.
    pub fn from_uplinks(latency_s: &[f64], bandwidth_mbps: &[f64], min_transfer_mb: f64) -> Self {
        assert_eq!(latency_s.len(), bandwidth_mbps.len());
        let n = latency_s.len();
        let mut staged = vec![SimDuration::MAX; n * n];
        let mut bare = vec![SimDuration::MAX; n * n];
        for src in 0..n {
            for dst in 0..n {
                if src == dst {
                    continue;
                }
                let latency = latency_s[src] + latency_s[dst];
                let bw = bandwidth_mbps[src].min(bandwidth_mbps[dst]);
                bare[src * n + dst] = SimDuration::from_secs_f64(latency);
                let transfer = if bw > 0.0 { min_transfer_mb / bw } else { 0.0 };
                staged[src * n + dst] = SimDuration::from_secs_f64(latency + transfer);
            }
        }
        Lookahead {
            sites: n,
            staged,
            bare,
        }
    }

    /// Minimum delay for a data-bearing interaction `src → dst`.
    pub fn staged(&self, src: usize, dst: usize) -> SimDuration {
        self.staged[src * self.sites + dst]
    }

    /// Minimum delay for a data-free interaction `src → dst`.
    pub fn bare(&self, src: usize, dst: usize) -> SimDuration {
        self.bare[src * self.sites + dst]
    }

    /// The tightest incoming bound for `dst` over all sources: no cross-site
    /// effect decided at another site at time `t` can reach `dst` before
    /// `t + incoming_bound(dst)`.
    pub fn incoming_bound(&self, dst: usize) -> SimDuration {
        (0..self.sites)
            .filter(|&s| s != dst)
            .map(|s| self.bare(s, dst))
            .min()
            .unwrap_or(SimDuration::MAX)
    }

    /// The federation-wide minimum data-bearing delay (the classic scalar
    /// "lookahead" of conservative PDES, for reporting).
    pub fn min_staged(&self) -> SimDuration {
        (0..self.sites * self.sites)
            .filter(|i| i / self.sites != i % self.sites)
            .map(|i| self.staged[i])
            .min()
            .unwrap_or(SimDuration::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Ctx, Engine, Simulation};

    #[test]
    fn rank_roots_order_by_index_and_beat_children() {
        let r0 = Rank::root(0);
        let r1 = Rank::root(1);
        assert!(r0 < r1);
        let t = SimTime::from_secs(5);
        let c = r0.child(t, 0);
        assert!(r0 < c, "ancestor before same-time descendant");
        assert!(r1 < c, "any root before any child");
        let c2 = r0.child(t, 1);
        assert!(c < c2, "k orders siblings");
        let gc = c.child(t, 0);
        assert!(c < gc);
        // gc was scheduled during c's handler, which runs only after the
        // root's handler finished scheduling both c and c2 — so serially
        // gc's seq is larger and c2 fires first.
        assert!(c2 < gc, "sibling scheduled earlier fires first");
        assert_eq!(gc.depth(), 3);
    }

    #[test]
    fn rank_orders_by_parent_time_first() {
        let r = Rank::root(0);
        let early = r.child(SimTime::from_secs(1), 9);
        let late = r.child(SimTime::from_secs(2), 0);
        assert!(
            early < late,
            "earlier parent execution wins regardless of k"
        );
    }

    /// A deterministic pseudo-random event tree, executed both ways: the
    /// serial engine (global seq tie-break) and a [`RankQueue`] fed the
    /// causal ranks. Delivery orders must match label for label.
    #[test]
    fn rank_queue_reproduces_serial_order_on_random_trees() {
        fn mix(x: u64) -> u64 {
            // splitmix64 step — deterministic fan-out decisions.
            let mut z = x.wrapping_add(0x9e3779b97f4a7c15);
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }
        /// children(label) -> list of (delay_secs, child_label)
        fn children(label: u64, budget: &mut u32) -> Vec<(u64, u64)> {
            let h = mix(label);
            let n = (h % 4) as u32; // 0..=3 children
            (0..n.min(*budget))
                .map(|i| {
                    *budget -= 1;
                    let hh = mix(h.wrapping_add(i as u64));
                    (hh % 3, mix(hh)) // delay 0..=2 s — plenty of ties
                })
                .collect()
        }

        struct SerialSim {
            order: Vec<u64>,
            budget: u32,
        }
        impl Simulation for SerialSim {
            type Event = u64;
            fn handle(&mut self, ctx: &mut Ctx<u64>, label: u64) {
                self.order.push(label);
                for (d, c) in children(label, &mut self.budget) {
                    ctx.schedule_after(SimDuration::from_secs(d), c);
                }
            }
        }

        for seed in 0..20u64 {
            // Serial reference.
            let mut eng: Engine<u64> = Engine::new();
            let roots: Vec<u64> = (0..6).map(|i| mix(seed ^ (i << 40))).collect();
            eng.schedule_batch(
                roots
                    .iter()
                    .enumerate()
                    .map(|(i, &l)| (SimTime::from_secs((i as u64) % 3), l)),
            );
            let mut sim = SerialSim {
                order: Vec::new(),
                budget: 200,
            };
            eng.run(&mut sim);

            // Rank-queue replay of the same tree.
            let mut rq: RankQueue<(u64, Rank)> = RankQueue::new();
            for (i, &l) in roots.iter().enumerate() {
                let rank = Rank::root(i as u64);
                rq.schedule(SimTime::from_secs((i as u64) % 3), rank.clone(), (l, rank));
            }
            let mut order = Vec::new();
            let mut budget = 200u32;
            while let Some((at, _, (label, rank))) = rq.pop() {
                order.push(label);
                for (j, (d, c)) in children(label, &mut budget).into_iter().enumerate() {
                    let child_rank = rank.child(at, j as u64);
                    rq.schedule(
                        at + SimDuration::from_secs(d),
                        child_rank.clone(),
                        (c, child_rank),
                    );
                }
            }
            assert_eq!(order, sim.order, "seed {seed} diverged");
        }
    }

    #[test]
    fn rank_queue_cancellation_matches_engine_semantics() {
        let mut rq: RankQueue<&'static str> = RankQueue::new();
        let r = Rank::root(0);
        let a = rq.schedule(SimTime::from_secs(1), r.child(SimTime::ZERO, 0), "a");
        let b = rq.schedule(SimTime::from_secs(2), r.child(SimTime::ZERO, 1), "b");
        assert_eq!(rq.len(), 2);
        assert!(rq.cancel(a));
        assert!(!rq.cancel(a), "double cancel refused");
        assert_eq!(rq.len(), 1);
        let (at, _, ev) = rq.pop().expect("b survives");
        assert_eq!((at, ev), (SimTime::from_secs(2), "b"));
        assert!(!rq.cancel(b), "cancel after delivery refused");
        assert!(rq.is_empty());
        assert_eq!(rq.peak_len(), 2);
    }

    #[test]
    fn lookahead_from_uplink_parameters() {
        // Site 0: 100 MB/s, 50 ms; site 1: 50 MB/s, 10 ms; site 2: free link.
        let look = Lookahead::from_uplinks(&[0.05, 0.01, 0.0], &[100.0, 50.0, 1000.0], 500.0);
        // 0→1: latency 60 ms, bottleneck 50 MB/s → 500/50 = 10 s transfer.
        assert_eq!(look.staged(0, 1), SimDuration::from_secs_f64(0.06 + 10.0));
        assert_eq!(look.bare(0, 1), SimDuration::from_secs_f64(0.06));
        // Symmetric in the hub model.
        assert_eq!(look.staged(1, 0), look.staged(0, 1));
        // 2→0 has site 0's bandwidth as the bottleneck.
        assert_eq!(look.staged(2, 0), SimDuration::from_secs_f64(0.05 + 5.0));
        // Incoming bound for 1 is the smallest bare delay into it.
        assert_eq!(look.incoming_bound(1), SimDuration::from_secs_f64(0.01));
        // Federation-wide staged minimum: the 2↔0 pair (5.05 s).
        assert_eq!(look.min_staged(), SimDuration::from_secs_f64(5.05));
        // Self pairs never constrain.
        assert_eq!(look.staged(1, 1), SimDuration::MAX);
    }

    #[test]
    fn zero_latency_links_yield_zero_bare_lookahead() {
        let look = Lookahead::from_uplinks(&[0.0, 0.0], &[100.0, 100.0], 500.0);
        assert_eq!(look.bare(0, 1), SimDuration::ZERO);
        assert!(look.staged(0, 1) > SimDuration::ZERO);
    }
}
