//! Lightweight structured event tracing.
//!
//! A bounded ring buffer of structured entries — `(time, category, message,
//! key=value fields)` — that can be toggled at runtime, plus an optional
//! JSONL sink that streams every recorded entry to a writer (one JSON
//! object per line) as it is emitted. When disabled, [`Tracer::emit`] and
//! [`Tracer::emit_event`] are a branch and nothing more — safe to leave on
//! hot paths; the field/message closures never run.

use crate::time::SimTime;
use std::collections::VecDeque;
use std::fmt;
use std::io::Write;

/// A typed field value attached to a trace entry.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceValue {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float.
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// Text.
    Str(String),
}

impl From<u64> for TraceValue {
    fn from(v: u64) -> Self {
        TraceValue::U64(v)
    }
}
impl From<usize> for TraceValue {
    fn from(v: usize) -> Self {
        TraceValue::U64(v as u64)
    }
}
impl From<u32> for TraceValue {
    fn from(v: u32) -> Self {
        TraceValue::U64(u64::from(v))
    }
}
impl From<i64> for TraceValue {
    fn from(v: i64) -> Self {
        TraceValue::I64(v)
    }
}
impl From<f64> for TraceValue {
    fn from(v: f64) -> Self {
        TraceValue::F64(v)
    }
}
impl From<bool> for TraceValue {
    fn from(v: bool) -> Self {
        TraceValue::Bool(v)
    }
}
impl From<&str> for TraceValue {
    fn from(v: &str) -> Self {
        TraceValue::Str(v.to_string())
    }
}
impl From<String> for TraceValue {
    fn from(v: String) -> Self {
        TraceValue::Str(v)
    }
}

impl fmt::Display for TraceValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceValue::U64(v) => write!(f, "{v}"),
            TraceValue::I64(v) => write!(f, "{v}"),
            TraceValue::F64(v) => write!(f, "{v}"),
            TraceValue::Bool(v) => write!(f, "{v}"),
            TraceValue::Str(v) => write!(f, "{v}"),
        }
    }
}

impl TraceValue {
    /// Write the value as a JSON scalar.
    fn write_json(&self, out: &mut String) {
        match self {
            TraceValue::U64(v) => out.push_str(&v.to_string()),
            TraceValue::I64(v) => out.push_str(&v.to_string()),
            TraceValue::F64(v) => {
                if v.is_finite() {
                    out.push_str(&format!("{v:?}"));
                } else {
                    out.push_str("null");
                }
            }
            TraceValue::Bool(v) => out.push_str(if *v { "true" } else { "false" }),
            TraceValue::Str(v) => write_json_string(out, v),
        }
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// One trace entry.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEntry {
    /// Virtual time of the event.
    pub at: SimTime,
    /// Short static category, e.g. `"sched"`, `"xfer"`.
    pub category: &'static str,
    /// Human-readable detail (may be empty for purely structured entries).
    pub message: String,
    /// Structured `key=value` payload (empty for plain-message entries).
    pub fields: Vec<(&'static str, TraceValue)>,
}

impl TraceEntry {
    /// Render the entry as one JSON object (no trailing newline):
    /// `{"t":<secs>,"cat":"...","msg":"...","fields":{...}}`. `msg` is
    /// omitted when empty, `fields` when there are none.
    pub fn to_json_line(&self) -> String {
        let mut out = String::with_capacity(64);
        out.push_str("{\"t\":");
        let secs = self.at.as_secs_f64();
        out.push_str(&format!("{secs:?}"));
        out.push_str(",\"cat\":");
        write_json_string(&mut out, self.category);
        if !self.message.is_empty() {
            out.push_str(",\"msg\":");
            write_json_string(&mut out, &self.message);
        }
        if !self.fields.is_empty() {
            out.push_str(",\"fields\":{");
            for (i, (k, v)) in self.fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_json_string(&mut out, k);
                out.push(':');
                v.write_json(&mut out);
            }
            out.push('}');
        }
        out.push('}');
        out
    }
}

impl fmt::Display for TraceEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}: {}", self.at, self.category, self.message)?;
        for (k, v) in &self.fields {
            write!(f, " {k}={v}")?;
        }
        Ok(())
    }
}

/// End-of-run health of a tracer: whether the sink saw everything it
/// should have and made it to stable storage. Produced by
/// [`Tracer::health`] after [`Tracer::close_sink`]; callers that archive
/// traces should surface a non-clean health to the user instead of
/// silently shipping a lossy file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize)]
pub struct TraceHealth {
    /// Entries evicted from the in-memory ring (the sink, if any, still saw
    /// them — this only matters for ring consumers).
    pub dropped: u64,
    /// JSONL sink writes that failed; the trace file is missing lines.
    pub sink_errors: u64,
    /// Whether the final sink flush succeeded (false means the tail of the
    /// file may be missing even with zero write errors).
    pub flush_ok: bool,
}

impl TraceHealth {
    /// True when the sink saw every entry and flushed cleanly.
    pub fn sink_clean(&self) -> bool {
        self.sink_errors == 0 && self.flush_ok
    }
}

/// A bounded trace ring buffer with an optional JSONL sink.
pub struct Tracer {
    enabled: bool,
    capacity: usize,
    entries: VecDeque<TraceEntry>,
    dropped: u64,
    sink: Option<Box<dyn Write + Send>>,
    sink_errors: u64,
}

impl fmt::Debug for Tracer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.enabled)
            .field("capacity", &self.capacity)
            .field("entries", &self.entries)
            .field("dropped", &self.dropped)
            .field("sink", &self.sink.as_ref().map(|_| "<writer>"))
            .field("sink_errors", &self.sink_errors)
            .finish()
    }
}

impl Tracer {
    /// A disabled tracer holding up to `capacity` entries once enabled.
    pub fn new(capacity: usize) -> Self {
        Tracer {
            enabled: false,
            capacity: capacity.max(1),
            entries: VecDeque::new(),
            dropped: 0,
            sink: None,
            sink_errors: 0,
        }
    }

    /// An enabled tracer (tests, debugging sessions).
    pub fn enabled(capacity: usize) -> Self {
        let mut t = Tracer::new(capacity);
        t.enabled = true;
        t
    }

    /// Turn tracing on or off.
    pub fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
    }

    /// Is tracing currently on?
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Stream every recorded entry to `sink` as JSON lines, in addition to
    /// retaining it in the ring. Write failures are counted
    /// ([`Tracer::sink_errors`]) but do not panic or stop the simulation.
    pub fn set_sink(&mut self, sink: Box<dyn Write + Send>) {
        self.sink = Some(sink);
    }

    /// Flush and drop the sink, returning whether flushing succeeded.
    pub fn close_sink(&mut self) -> bool {
        match self.sink.take() {
            Some(mut s) => s.flush().is_ok(),
            None => true,
        }
    }

    /// JSONL writes that failed so far.
    pub fn sink_errors(&self) -> u64 {
        self.sink_errors
    }

    /// Summarize drop/error/flush state as a [`TraceHealth`]. `flush_ok` is
    /// the value returned by [`Tracer::close_sink`] (pass `true` when no
    /// sink was ever attached).
    pub fn health(&self, flush_ok: bool) -> TraceHealth {
        TraceHealth {
            dropped: self.dropped,
            sink_errors: self.sink_errors,
            flush_ok,
        }
    }

    /// Record a plain-message entry if enabled. The message closure is only
    /// evaluated when tracing is on, so formatting cost is zero when off.
    pub fn emit(&mut self, at: SimTime, category: &'static str, message: impl FnOnce() -> String) {
        if !self.enabled {
            return;
        }
        let entry = TraceEntry {
            at,
            category,
            message: message(),
            fields: Vec::new(),
        };
        self.record(entry);
    }

    /// Record a structured entry if enabled. The field closure is only
    /// evaluated when tracing is on.
    pub fn emit_event(
        &mut self,
        at: SimTime,
        category: &'static str,
        fields: impl FnOnce() -> Vec<(&'static str, TraceValue)>,
    ) {
        if !self.enabled {
            return;
        }
        let entry = TraceEntry {
            at,
            category,
            message: String::new(),
            fields: fields(),
        };
        self.record(entry);
    }

    fn record(&mut self, entry: TraceEntry) {
        if let Some(sink) = self.sink.as_mut() {
            let mut line = entry.to_json_line();
            line.push('\n');
            if sink.write_all(line.as_bytes()).is_err() {
                self.sink_errors += 1;
            }
        }
        if self.entries.len() == self.capacity {
            self.entries.pop_front();
            self.dropped += 1;
        }
        self.entries.push_back(entry);
    }

    /// Entries currently retained, oldest first.
    pub fn entries(&self) -> impl Iterator<Item = &TraceEntry> {
        self.entries.iter()
    }

    /// How many entries were evicted by the ring.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Number of retained entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drop all retained entries (keeps the enabled flag and sink).
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex};

    #[test]
    fn disabled_tracer_records_nothing_and_skips_formatting() {
        let mut t = Tracer::new(10);
        let mut evaluated = false;
        t.emit(SimTime::ZERO, "x", || {
            evaluated = true;
            "boom".into()
        });
        assert!(!evaluated, "message closure must not run when disabled");
        let mut built = false;
        t.emit_event(SimTime::ZERO, "x", || {
            built = true;
            vec![]
        });
        assert!(!built, "field closure must not run when disabled");
        assert!(t.is_empty());
    }

    #[test]
    fn enabled_tracer_records() {
        let mut t = Tracer::enabled(10);
        t.emit(SimTime::from_secs(1), "sched", || "job 1 started".into());
        assert_eq!(t.len(), 1);
        let e = t.entries().next().unwrap();
        assert_eq!(e.category, "sched");
        assert_eq!(format!("{e}"), "[t+1s] sched: job 1 started");
    }

    #[test]
    fn structured_entries_render_fields() {
        let mut t = Tracer::enabled(10);
        t.emit_event(SimTime::from_secs(2), "xfer", || {
            vec![
                ("mb", 500.0.into()),
                ("src", "alpha".into()),
                ("ok", true.into()),
            ]
        });
        let e = t.entries().next().unwrap();
        assert_eq!(e.fields.len(), 3);
        let text = format!("{e}");
        assert!(text.contains("mb=500"));
        assert!(text.contains("src=alpha"));
        assert!(text.contains("ok=true"));
    }

    #[test]
    fn json_line_shape_and_escaping() {
        let e = TraceEntry {
            at: SimTime::from_secs(90),
            category: "sched",
            message: "say \"hi\"\n".into(),
            fields: vec![("job", 7u64.into()), ("site", "a\\b".into())],
        };
        let line = e.to_json_line();
        assert!(line.starts_with("{\"t\":90.0,\"cat\":\"sched\""));
        assert!(line.contains("\"msg\":\"say \\\"hi\\\"\\n\""));
        assert!(line.contains("\"fields\":{\"job\":7,\"site\":\"a\\\\b\"}"));
        // Pure-structured entries omit msg.
        let e2 = TraceEntry {
            at: SimTime::ZERO,
            category: "c",
            message: String::new(),
            fields: vec![],
        };
        assert_eq!(e2.to_json_line(), "{\"t\":0.0,\"cat\":\"c\"}");
    }

    /// A shared Vec<u8> writer for inspecting sink output in tests.
    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);
    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn sink_receives_one_json_line_per_entry() {
        let buf = SharedBuf::default();
        let mut t = Tracer::enabled(2);
        t.set_sink(Box::new(buf.clone()));
        for i in 0..4u64 {
            t.emit_event(SimTime::from_secs(i), "c", || vec![("i", i.into())]);
        }
        assert!(t.close_sink());
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        // The ring kept only 2, but the sink saw all 4.
        assert_eq!(lines.len(), 4);
        assert_eq!(t.len(), 2);
        assert!(lines[3].contains("\"i\":3"));
        for l in lines {
            assert!(l.starts_with('{') && l.ends_with('}'));
        }
        assert_eq!(t.sink_errors(), 0);
    }

    #[test]
    fn ring_evicts_oldest() {
        let mut t = Tracer::enabled(3);
        for i in 0..5 {
            t.emit(SimTime::from_secs(i), "c", || format!("m{i}"));
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.dropped(), 2);
        let msgs: Vec<_> = t.entries().map(|e| e.message.clone()).collect();
        assert_eq!(msgs, vec!["m2", "m3", "m4"]);
    }

    #[test]
    fn toggle_and_clear() {
        let mut t = Tracer::new(4);
        t.set_enabled(true);
        assert!(t.is_enabled());
        t.emit(SimTime::ZERO, "c", || "one".into());
        t.clear();
        assert!(t.is_empty());
        t.set_enabled(false);
        t.emit(SimTime::ZERO, "c", || "two".into());
        assert!(t.is_empty());
    }

    #[test]
    fn health_reports_drops_errors_and_flush() {
        struct FailingWriter;
        impl Write for FailingWriter {
            fn write(&mut self, _: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::other("disk gone"))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Err(std::io::Error::other("disk gone"))
            }
        }

        let mut t = Tracer::enabled(1);
        t.set_sink(Box::new(FailingWriter));
        t.emit(SimTime::ZERO, "c", || "a".into());
        t.emit(SimTime::ZERO, "c", || "b".into());
        let flush_ok = t.close_sink();
        assert!(!flush_ok);
        let h = t.health(flush_ok);
        assert_eq!(h.dropped, 1);
        assert_eq!(h.sink_errors, 2);
        assert!(!h.flush_ok);
        assert!(!h.sink_clean());

        let clean = Tracer::enabled(8);
        assert!(clean.health(true).sink_clean());
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let mut t = Tracer::enabled(0);
        t.emit(SimTime::ZERO, "c", || "a".into());
        t.emit(SimTime::ZERO, "c", || "b".into());
        assert_eq!(t.len(), 1);
    }
}
