//! Lightweight event tracing.
//!
//! A bounded ring buffer of `(time, category, message)` entries that can be
//! toggled at runtime. When disabled, [`Tracer::emit`] is a branch and
//! nothing more — safe to leave on hot paths.

use crate::time::SimTime;
use std::collections::VecDeque;
use std::fmt;

/// One trace entry.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEntry {
    /// Virtual time of the event.
    pub at: SimTime,
    /// Short static category, e.g. `"sched"`, `"xfer"`.
    pub category: &'static str,
    /// Human-readable detail.
    pub message: String,
}

impl fmt::Display for TraceEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}: {}", self.at, self.category, self.message)
    }
}

/// A bounded trace ring buffer.
#[derive(Debug)]
pub struct Tracer {
    enabled: bool,
    capacity: usize,
    entries: VecDeque<TraceEntry>,
    dropped: u64,
}

impl Tracer {
    /// A disabled tracer holding up to `capacity` entries once enabled.
    pub fn new(capacity: usize) -> Self {
        Tracer {
            enabled: false,
            capacity: capacity.max(1),
            entries: VecDeque::new(),
            dropped: 0,
        }
    }

    /// An enabled tracer (tests, debugging sessions).
    pub fn enabled(capacity: usize) -> Self {
        let mut t = Tracer::new(capacity);
        t.enabled = true;
        t
    }

    /// Turn tracing on or off.
    pub fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
    }

    /// Is tracing currently on?
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Record an entry if enabled. The message closure is only evaluated when
    /// tracing is on, so formatting cost is zero when off.
    pub fn emit(&mut self, at: SimTime, category: &'static str, message: impl FnOnce() -> String) {
        if !self.enabled {
            return;
        }
        if self.entries.len() == self.capacity {
            self.entries.pop_front();
            self.dropped += 1;
        }
        self.entries.push_back(TraceEntry {
            at,
            category,
            message: message(),
        });
    }

    /// Entries currently retained, oldest first.
    pub fn entries(&self) -> impl Iterator<Item = &TraceEntry> {
        self.entries.iter()
    }

    /// How many entries were evicted by the ring.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Number of retained entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drop all retained entries (keeps the enabled flag).
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing_and_skips_formatting() {
        let mut t = Tracer::new(10);
        let mut evaluated = false;
        t.emit(SimTime::ZERO, "x", || {
            evaluated = true;
            "boom".into()
        });
        assert!(!evaluated, "message closure must not run when disabled");
        assert!(t.is_empty());
    }

    #[test]
    fn enabled_tracer_records() {
        let mut t = Tracer::enabled(10);
        t.emit(SimTime::from_secs(1), "sched", || "job 1 started".into());
        assert_eq!(t.len(), 1);
        let e = t.entries().next().unwrap();
        assert_eq!(e.category, "sched");
        assert_eq!(format!("{e}"), "[t+1s] sched: job 1 started");
    }

    #[test]
    fn ring_evicts_oldest() {
        let mut t = Tracer::enabled(3);
        for i in 0..5 {
            t.emit(SimTime::from_secs(i), "c", || format!("m{i}"));
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.dropped(), 2);
        let msgs: Vec<_> = t.entries().map(|e| e.message.clone()).collect();
        assert_eq!(msgs, vec!["m2", "m3", "m4"]);
    }

    #[test]
    fn toggle_and_clear() {
        let mut t = Tracer::new(4);
        t.set_enabled(true);
        assert!(t.is_enabled());
        t.emit(SimTime::ZERO, "c", || "one".into());
        t.clear();
        assert!(t.is_empty());
        t.set_enabled(false);
        t.emit(SimTime::ZERO, "c", || "two".into());
        assert!(t.is_empty());
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let mut t = Tracer::enabled(0);
        t.emit(SimTime::ZERO, "c", || "a".into());
        t.emit(SimTime::ZERO, "c", || "b".into());
        assert_eq!(t.len(), 1);
    }
}
