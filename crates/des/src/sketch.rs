//! Mergeable quantile sketches for online span statistics.
//!
//! The streaming runs opened by the million-user scenarios cannot retain a
//! span trace for post-hoc analysis: at ~11M events the JSONL trace is
//! multi-GB while the run itself holds steady a few hundred MiB. This module
//! provides the constant-memory alternative: a fixed-layout, log-binned
//! counting sketch ([`QuantileSketch`]) updated once per span close, and a
//! keyed collection ([`SpanSketchbook`]) that mirrors the offline
//! [`analyze::TraceAnalyzer`](crate::analyze::TraceAnalyzer) groupings —
//! by span kind, by wait cause, by site, by modality — without ever seeing
//! a trace line.
//!
//! # Why a counting sketch and not a t-digest / KLL
//!
//! The sharded engine merges per-shard observability state at join, and the
//! repo's contract is *byte-identical output at any `--threads N`*. Rank
//! sketches like t-digest and KLL compress adaptively, so their merged state
//! depends on insertion and merge order — two shard partitions of the same
//! stream produce different centroids, and byte-determinism is lost. A
//! fixed-layout counting sketch has none of that freedom: every value maps
//! to one predetermined bin, merge is element-wise `u64` addition, and
//! therefore merge is **exactly** associative, commutative, and
//! partition-invariant. Merge-then-query does not just approximate
//! query-on-pooled-data — it *equals* it, which the property tests in
//! `crates/des/tests/sketch_prop.rs` assert with `assert_eq!`.
//!
//! # Layout and error bound
//!
//! Bins are geometric with [`SUBBINS`] sub-bins per octave starting at
//! [`LO_SECS`] (2⁻³⁰ s ≈ 0.93 ns): bin *i* covers
//! `[LO·2^(i/8), LO·2^((i+1)/8))`. With [`OCTAVES`] = 64 octaves the range
//! spans ~1 ns to ~1.6·10¹⁰ s, comfortably covering both microsecond sync
//! rounds and year-long spans in one layout. Values below the range land in
//! an `under` bin, values above in an `over` bin, and the sketch tracks the
//! exact `min`/`max`/`count`. Quantiles are answered by nearest-rank walk
//! over the bins, reporting the geometric midpoint of the selected bin
//! clamped to `[min, max]` — so the relative error of any quantile is at
//! most [`RELATIVE_ERROR`] = 2^(1/16) − 1 ≈ 4.43%. The mean is approximated
//! from bin midpoints under the same bound (no floating-point running sum is
//! kept: summing f64 is order-dependent and would break partition
//! invariance).
//!
//! Memory: 512 bins × 8 bytes ≈ 4 KiB per sketch, allocated lazily per
//! observed key — a few hundred KiB for a fully populated book, independent
//! of event count.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::span::{SpanKind, WaitCause};

/// Sub-bins per octave (γ = 2^(1/8) ≈ 1.0905 growth per bin).
pub const SUBBINS: usize = 8;
/// Octaves covered by the fixed layout.
pub const OCTAVES: usize = 64;
/// Total bins.
pub const NBINS: usize = SUBBINS * OCTAVES;
/// Lower edge of bin 0, in seconds (2⁻³⁰ s). Chosen as a power of two so
/// `v / LO_SECS` is exact for all finite `v`.
pub const LO_SECS: f64 = 1.0 / (1u64 << 30) as f64;
/// Worst-case relative error of any reported quantile or the mean, for
/// values inside the bin range: half a bin in log space, 2^(1/16) − 1.
pub const RELATIVE_ERROR: f64 = 0.044_273_782_427_413_84;

/// A fixed-layout log-binned counting sketch over non-negative seconds.
///
/// See the module docs for the design rationale. All operations are
/// deterministic; `merge_from` is exactly associative and commutative.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantileSketch {
    bins: Box<[u64]>,
    /// Values in `[0, LO_SECS)` — sub-nanosecond, including exact zeros.
    under: u64,
    /// Values at or above the top edge (`LO_SECS · 2^OCTAVES`).
    over: u64,
    count: u64,
    min: f64,
    max: f64,
}

impl Default for QuantileSketch {
    fn default() -> Self {
        Self::new()
    }
}

impl QuantileSketch {
    /// An empty sketch.
    pub fn new() -> Self {
        QuantileSketch {
            bins: vec![0u64; NBINS].into_boxed_slice(),
            under: 0,
            over: 0,
            count: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Bin index for a value known to be in `[LO_SECS, ∞)`; `None` means the
    /// overflow bin.
    fn bin_of(v: f64) -> Option<usize> {
        let idx = ((v / LO_SECS).log2() * SUBBINS as f64).floor() as isize;
        if idx < 0 {
            // Rounding at the bottom edge; the value is ~LO_SECS.
            Some(0)
        } else if (idx as usize) < NBINS {
            Some(idx as usize)
        } else {
            None
        }
    }

    /// Record one observation. Negative, NaN, and infinite values are
    /// clamped to the representable range (spans never produce them; the
    /// clamp keeps the sketch total-function).
    pub fn record(&mut self, secs: f64) {
        let v = if secs.is_finite() && secs > 0.0 {
            secs
        } else {
            0.0
        };
        self.count += 1;
        if v < self.min {
            self.min = v;
        }
        if v > self.max {
            self.max = v;
        }
        if v < LO_SECS {
            self.under += 1;
        } else {
            match Self::bin_of(v) {
                Some(i) => self.bins[i] += 1,
                None => self.over += 1,
            }
        }
    }

    /// Element-wise merge: the result is identical to a sketch that saw both
    /// input streams in any order.
    pub fn merge_from(&mut self, other: &QuantileSketch) {
        for (a, b) in self.bins.iter_mut().zip(other.bins.iter()) {
            *a += *b;
        }
        self.under += other.under;
        self.over += other.over;
        self.count += other.count;
        if other.min < self.min {
            self.min = other.min;
        }
        if other.max > self.max {
            self.max = other.max;
        }
    }

    /// Observation count.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact minimum observed value (0.0 on an empty sketch).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Exact maximum observed value (0.0 on an empty sketch).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Geometric midpoint of bin `i`.
    fn bin_mid(i: usize) -> f64 {
        LO_SECS * ((i as f64 + 0.5) / SUBBINS as f64).exp2()
    }

    /// Nearest-rank quantile estimate for `q ∈ [0, 1]`, within
    /// [`RELATIVE_ERROR`] of the true value (and exact at the extremes,
    /// which are clamped to the observed min/max). Returns 0.0 on an empty
    /// sketch.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        // Nearest-rank: the ceil(q·n)-th smallest value, 1-based.
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = self.under;
        let est = if rank <= cum {
            // Sub-range values are below ~1 ns; report the observed floor.
            self.min
        } else {
            let mut found = None;
            for (i, &c) in self.bins.iter().enumerate() {
                cum += c;
                if rank <= cum {
                    found = Some(Self::bin_mid(i));
                    break;
                }
            }
            found.unwrap_or(self.max)
        };
        est.clamp(self.min, self.max)
    }

    /// Mean approximated from bin midpoints (within [`RELATIVE_ERROR`];
    /// sub-range values contribute their observed floor, overflow values the
    /// observed max). Returns 0.0 on an empty sketch.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let mut sum = self.under as f64 * self.min;
        for (i, &c) in self.bins.iter().enumerate() {
            if c > 0 {
                sum += c as f64 * Self::bin_mid(i);
            }
        }
        sum += self.over as f64 * self.max;
        (sum / self.count as f64).clamp(self.min, self.max)
    }

    /// Condensed serializable view.
    pub fn summary(&self) -> SketchSummary {
        SketchSummary {
            count: self.count(),
            mean: self.mean(),
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
            min: self.min(),
            max: self.max(),
        }
    }
}

/// Serializable digest of one sketch: count, approximate mean, key
/// quantiles, and the exact extremes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SketchSummary {
    /// Observation count (exact).
    pub count: u64,
    /// Mean, within [`RELATIVE_ERROR`].
    pub mean: f64,
    /// Median, within [`RELATIVE_ERROR`].
    pub p50: f64,
    /// 95th percentile, within [`RELATIVE_ERROR`].
    pub p95: f64,
    /// 99th percentile, within [`RELATIVE_ERROR`].
    pub p99: f64,
    /// Minimum (exact).
    pub min: f64,
    /// Maximum (exact).
    pub max: f64,
}

const NKINDS: usize = SpanKind::ALL.len();
// One slot per cause plus a "no cause" sentinel (non-wait spans).
const NCAUSES: usize = WaitCause::ALL.len() + 1;

/// Span-duration sketches keyed by `(kind, cause, site, modality)`.
///
/// Storage is a dense lazily-filled slot table over the full key
/// cross-product, so the span-close hot path is an index computation plus a
/// bin increment — no map lookups, no allocation after first touch of a
/// key. Snapshots pool slots into the same groupings the offline analyzer
/// reports, and pooling is itself a sketch merge, so online and offline
/// tables are directly comparable.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanSketchbook {
    enabled: bool,
    nsites: usize,
    modalities: Vec<String>,
    slots: Vec<Option<Box<QuantileSketch>>>,
    spans: u64,
}

impl SpanSketchbook {
    /// A disabled book: `record` is a no-op, snapshots are empty.
    pub fn disabled() -> Self {
        SpanSketchbook {
            enabled: false,
            nsites: 0,
            modalities: Vec::new(),
            slots: Vec::new(),
            spans: 0,
        }
    }

    /// An enabled book for a federation of `nsites` sites and the given
    /// modality names (index-aligned with the caller's modality enum).
    pub fn enabled(nsites: usize, modalities: Vec<String>) -> Self {
        let slots = NKINDS * NCAUSES * (nsites + 1) * (modalities.len() + 1);
        SpanSketchbook {
            enabled: true,
            nsites,
            modalities,
            slots: vec![None; slots],
            spans: 0,
        }
    }

    /// Is the book recording?
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Total spans recorded.
    pub fn spans(&self) -> u64 {
        self.spans
    }

    /// Number of distinct `(kind, cause, site, modality)` keys observed.
    pub fn groups(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    fn dims(&self) -> (usize, usize) {
        (self.nsites + 1, self.modalities.len() + 1)
    }

    fn slot_index(&self, kind: usize, cause: usize, site: usize, modality: usize) -> usize {
        let (s, m) = self.dims();
        ((kind * NCAUSES + cause) * s + site) * m + modality
    }

    /// Record one closed span. `site`/`modality` out of the configured range
    /// fold into the "none" sentinel, so the call is total.
    pub fn record(
        &mut self,
        kind: SpanKind,
        cause: Option<WaitCause>,
        site: Option<usize>,
        modality: Option<usize>,
        secs: f64,
    ) {
        if !self.enabled {
            return;
        }
        let c = cause.map(|c| c as usize).unwrap_or(NCAUSES - 1);
        let s = site.filter(|&s| s < self.nsites).unwrap_or(self.nsites);
        let m = modality
            .filter(|&m| m < self.modalities.len())
            .unwrap_or(self.modalities.len());
        let idx = self.slot_index(kind as usize, c, s, m);
        self.slots[idx]
            .get_or_insert_with(|| Box::new(QuantileSketch::new()))
            .record(secs);
        self.spans += 1;
    }

    /// Merge another book (same dimensions) slot-wise. Panics if the books
    /// were built for different federations.
    pub fn merge_from(&mut self, other: &SpanSketchbook) {
        if !other.enabled {
            return;
        }
        assert_eq!(
            (self.nsites, &self.modalities),
            (other.nsites, &other.modalities),
            "merging sketchbooks with different key spaces"
        );
        for (mine, theirs) in self.slots.iter_mut().zip(other.slots.iter()) {
            if let Some(t) = theirs {
                mine.get_or_insert_with(|| Box::new(QuantileSketch::new()))
                    .merge_from(t);
            }
        }
        self.spans += other.spans;
    }

    /// Pool every slot matching `keep(kind, cause, site, modality)` into one
    /// sketch (cause/site/modality are `None` for the sentinel slots).
    pub fn pooled<F>(&self, mut keep: F) -> QuantileSketch
    where
        F: FnMut(SpanKind, Option<WaitCause>, Option<usize>, Option<usize>) -> bool,
    {
        let mut out = QuantileSketch::new();
        if !self.enabled {
            return out;
        }
        let (s_dim, m_dim) = self.dims();
        for (k_i, &kind) in SpanKind::ALL.iter().enumerate() {
            for c_i in 0..NCAUSES {
                let cause = WaitCause::ALL.get(c_i).copied();
                for s_i in 0..s_dim {
                    let site = (s_i < self.nsites).then_some(s_i);
                    for m_i in 0..m_dim {
                        let modality = (m_i < self.modalities.len()).then_some(m_i);
                        if !keep(kind, cause, site, modality) {
                            continue;
                        }
                        if let Some(sk) = &self.slots[self.slot_index(k_i, c_i, s_i, m_i)] {
                            out.merge_from(sk);
                        }
                    }
                }
            }
        }
        out
    }

    /// Pooled sketch for one `(kind, cause)` pair — the granularity the
    /// acceptance cross-check against the offline analyzer uses.
    pub fn pooled_kind_cause(&self, kind: SpanKind, cause: Option<WaitCause>) -> QuantileSketch {
        self.pooled(|k, c, _, _| k == kind && c == cause)
    }

    /// Snapshot the analyzer-aligned tables. Empty groups are omitted, like
    /// the offline analyzer's.
    pub fn snapshot(&self) -> SpanStatsSnapshot {
        let mut by_kind = BTreeMap::new();
        for kind in SpanKind::ALL {
            let pooled = self.pooled(|k, _, _, _| k == kind);
            if !pooled.is_empty() {
                by_kind.insert(kind.name().to_string(), pooled.summary());
            }
        }
        let mut queued_by_cause = BTreeMap::new();
        for cause in WaitCause::ALL {
            let pooled = self.pooled(|k, c, _, _| k == SpanKind::Queued && c == Some(cause));
            if !pooled.is_empty() {
                queued_by_cause.insert(cause.name().to_string(), pooled.summary());
            }
        }
        let mut stage_in_by_cause = BTreeMap::new();
        for cause in WaitCause::ALL {
            let pooled = self.pooled(|k, c, _, _| k == SpanKind::StageIn && c == Some(cause));
            if !pooled.is_empty() {
                stage_in_by_cause.insert(cause.name().to_string(), pooled.summary());
            }
        }
        let mut queued_by_site = BTreeMap::new();
        for site in 0..self.nsites {
            let pooled = self.pooled(|k, _, s, _| k == SpanKind::Queued && s == Some(site));
            if !pooled.is_empty() {
                queued_by_site.insert(site as u64, pooled.summary());
            }
        }
        let mut wait_spans_by_modality = BTreeMap::new();
        for (m_i, name) in self.modalities.iter().enumerate() {
            let pooled = self.pooled(|k, _, _, m| k.is_wait() && m == Some(m_i));
            if !pooled.is_empty() {
                wait_spans_by_modality.insert(name.clone(), pooled.summary());
            }
        }
        SpanStatsSnapshot {
            spans: self.spans,
            groups: self.groups(),
            by_kind,
            queued_by_cause,
            stage_in_by_cause,
            queued_by_site,
            wait_spans_by_modality,
        }
    }
}

/// Serializable span-statistics tables, aligned with the offline analyzer's
/// groupings (`by_kind`, `queued_by_cause`, `queued_by_site`). The modality
/// table is per *wait span*, not per job — the offline `wait_by_modality`
/// sums each job's wait spans first, which cannot be done in constant
/// memory — so the two modality tables are intentionally named differently.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanStatsSnapshot {
    /// Total spans recorded.
    pub spans: u64,
    /// Distinct `(kind, cause, site, modality)` keys observed.
    pub groups: usize,
    /// Duration summary per span kind.
    pub by_kind: BTreeMap<String, SketchSummary>,
    /// Queued-span durations per attributed wait cause.
    pub queued_by_cause: BTreeMap<String, SketchSummary>,
    /// Stage-in span durations per cause (`cache-hit` / `cache-miss` for
    /// dataset-carrying jobs; cause-less bulk staging spans are excluded).
    pub stage_in_by_cause: BTreeMap<String, SketchSummary>,
    /// Queued-span durations per site index.
    pub queued_by_site: BTreeMap<u64, SketchSummary>,
    /// Individual wait-span durations (stage-in, queued, reconfig) per
    /// modality.
    pub wait_spans_by_modality: BTreeMap<String, SketchSummary>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sketch_answers_zeroes() {
        let s = QuantileSketch::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.quantile(0.5), 0.0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
    }

    #[test]
    fn single_value_is_exact_via_clamp() {
        let mut s = QuantileSketch::new();
        s.record(42.0);
        assert_eq!(s.quantile(0.0), 42.0);
        assert_eq!(s.quantile(0.5), 42.0);
        assert_eq!(s.quantile(1.0), 42.0);
        assert_eq!(s.mean(), 42.0);
    }

    #[test]
    fn quantiles_stay_within_the_documented_bound() {
        let mut s = QuantileSketch::new();
        for i in 1..=10_000u64 {
            s.record(i as f64 * 0.01); // 0.01 .. 100.0
        }
        for &(q, truth) in &[(0.5, 50.0), (0.95, 95.0), (0.99, 99.0)] {
            let got = s.quantile(q);
            assert!(
                (got - truth).abs() / truth <= RELATIVE_ERROR + 1e-4,
                "q={q}: got {got}, want {truth} ± {RELATIVE_ERROR}"
            );
        }
        let mean = s.mean();
        assert!((mean - 50.005).abs() / 50.005 <= RELATIVE_ERROR + 1e-4);
    }

    #[test]
    fn extreme_magnitudes_hit_the_guard_bins() {
        let mut s = QuantileSketch::new();
        s.record(0.0);
        s.record(1e-12); // below LO_SECS
        s.record(1e12); // above the top edge (~1.6e10 s)
        assert_eq!(s.count(), 3);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 1e12);
        assert_eq!(s.quantile(1.0), 1e12);
        assert_eq!(s.quantile(0.0), 0.0);
    }

    #[test]
    fn nan_and_negative_clamp_to_zero() {
        let mut s = QuantileSketch::new();
        s.record(f64::NAN);
        s.record(-5.0);
        assert_eq!(s.count(), 2);
        assert_eq!(s.max(), 0.0);
        assert_eq!(s.quantile(0.5), 0.0);
    }

    #[test]
    fn merge_equals_pooled_stream_exactly() {
        let vals: Vec<f64> = (0..1000).map(|i| (i as f64 * 0.7).exp2() % 1e6).collect();
        let mut whole = QuantileSketch::new();
        for &v in &vals {
            whole.record(v);
        }
        let (mut a, mut b) = (QuantileSketch::new(), QuantileSketch::new());
        for (i, &v) in vals.iter().enumerate() {
            if i % 3 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
        }
        a.merge_from(&b);
        assert_eq!(a, whole);
    }

    #[test]
    fn sketchbook_pools_and_merges_by_key() {
        let mods = vec!["batch".to_string(), "gateway".to_string()];
        let mut book = SpanSketchbook::enabled(2, mods.clone());
        book.record(
            SpanKind::Queued,
            Some(WaitCause::AheadInQueue),
            Some(0),
            Some(0),
            10.0,
        );
        book.record(
            SpanKind::Queued,
            Some(WaitCause::Immediate),
            Some(1),
            Some(1),
            0.0,
        );
        book.record(SpanKind::Run, None, Some(0), Some(0), 100.0);
        assert_eq!(book.spans(), 3);
        assert_eq!(book.groups(), 3);
        let snap = book.snapshot();
        assert_eq!(snap.by_kind["queued"].count, 2);
        assert_eq!(snap.by_kind["run"].count, 1);
        assert_eq!(snap.queued_by_cause["ahead-in-queue"].count, 1);
        assert_eq!(snap.queued_by_site[&0].count, 1);
        assert_eq!(snap.wait_spans_by_modality["batch"].count, 1);

        let mut other = SpanSketchbook::enabled(2, mods);
        other.record(
            SpanKind::Queued,
            Some(WaitCause::AheadInQueue),
            Some(0),
            Some(0),
            20.0,
        );
        book.merge_from(&other);
        assert_eq!(book.spans(), 4);
        assert_eq!(
            book.pooled_kind_cause(SpanKind::Queued, Some(WaitCause::AheadInQueue))
                .count(),
            2
        );
    }

    #[test]
    fn disabled_book_is_inert() {
        let mut book = SpanSketchbook::disabled();
        book.record(SpanKind::Run, None, Some(0), Some(0), 1.0);
        assert_eq!(book.spans(), 0);
        assert!(book.snapshot().by_kind.is_empty());
    }
}
