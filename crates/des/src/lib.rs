//! # tg-des — discrete-event simulation substrate
//!
//! The calibration notes for this reproduction flag the Rust DES ecosystem as
//! thin, so the engine is built from scratch here. It provides everything the
//! grid simulator above it needs:
//!
//! * [`time`] — a virtual clock ([`SimTime`]) with microsecond resolution and
//!   ergonomic duration arithmetic.
//! * [`engine`] — the event loop: a priority queue of timestamped events with
//!   stable FIFO ordering among simultaneous events, cancellation, and
//!   stop conditions.
//! * [`rng`] — deterministic random-number streams. Every component derives
//!   its own independent stream from a single master seed, so adding or
//!   removing a component never perturbs the draws seen by the others.
//! * [`dist`] — the probability distributions used by workload models
//!   (exponential, log-normal, Weibull, Pareto, gamma, Zipf, hyperexponential,
//!   empirical/alias sampling, ...). Implemented here rather than pulling in
//!   `rand_distr` so sampling stays deterministic and auditable.
//! * [`stats`] — online statistics: Welford mean/variance, time-weighted
//!   averages (utilization), histograms, P² quantile estimation, and
//!   Student-t confidence intervals across replications.
//! * [`trace`] — a lightweight, optionally-enabled structured event trace
//!   ring buffer with an optional JSONL sink.
//! * [`span`] — per-job lifecycle span schema (held / stage-in / queued /
//!   reconfig / run / stage-out) with wait-cause attribution, emitted
//!   through the tracer as `cat == "span"` entries.
//! * [`analyze`] — offline reconstruction of spans from an archived JSONL
//!   trace into per-kind / per-cause / per-site / per-modality latency
//!   breakdowns (mean, p50/p95/p99).
//! * [`memory`] — process-level memory observability for benchmarks: peak
//!   RSS via `/proc` and an opt-in counting global allocator (thread-safe:
//!   worker-thread allocations are attributed to the same run totals).
//! * [`shard`] — building blocks for sharded conservative simulation:
//!   causal event ranks that reproduce the serial tie-break order, a
//!   rank-keyed cancellable queue, and the WAN-derived lookahead matrix.
//! * [`sketch`] — fixed-layout log-binned quantile sketches for online span
//!   statistics at streaming scale: constant memory, exactly mergeable
//!   (element-wise counts), so per-shard books pool byte-deterministically.
//! * [`series`] — time-bucketed windowed operational series (submit /
//!   start / complete rates, active jobs, utilization, queue depth) with
//!   per-site single-writer gauge columns that merge exactly at shard join.
//! * [`metrics`] — a run-level metrics registry (counters, time-weighted
//!   gauges, time series) and serializable snapshots, plus wall-clock engine
//!   profiling ([`metrics::EngineProfile`]). Observers only: when disabled
//!   every operation is a single branch, and nothing here ever perturbs
//!   simulation state or RNG draws.
//!
//! ## Determinism contract
//!
//! A simulation run is a pure function of its configuration and master seed.
//! The engine guarantees: (1) events at equal timestamps fire in scheduling
//! order; (2) RNG streams are independent and keyed by stable identifiers;
//! (3) nothing in this crate reads wall-clock time or global state.
//!
//! ## Quick example
//!
//! ```
//! use tg_des::prelude::*;
//!
//! #[derive(Debug)]
//! enum Ev { Ping(u32) }
//!
//! struct Counter { seen: u32 }
//! impl Simulation for Counter {
//!     type Event = Ev;
//!     fn handle(&mut self, ctx: &mut Ctx<Ev>, ev: Ev) {
//!         let Ev::Ping(n) = ev;
//!         self.seen += n;
//!         if n < 3 {
//!             ctx.schedule_after(SimDuration::from_secs(1), Ev::Ping(n + 1));
//!         }
//!     }
//! }
//!
//! let mut engine = Engine::new();
//! engine.schedule_at(SimTime::ZERO, Ev::Ping(1));
//! let mut sim = Counter { seen: 0 };
//! engine.run(&mut sim);
//! assert_eq!(sim.seen, 6);
//! assert_eq!(engine.now(), SimTime::from_secs(2));
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod analyze;
pub mod dist;
pub mod engine;
pub mod memory;
pub mod metrics;
pub mod rng;
pub mod series;
pub mod shard;
pub mod sketch;
pub mod span;
pub mod stats;
pub mod time;
pub mod trace;

/// Convenience re-exports of the items virtually every simulation needs.
pub mod prelude {
    pub use crate::dist::{Dist, DistKind};
    pub use crate::engine::{Ctx, Engine, EventKey, Simulation, StopCondition};
    pub use crate::metrics::{EngineProfile, MetricsRegistry, MetricsSnapshot};
    pub use crate::rng::{RngFactory, SimRng, StreamId};
    pub use crate::span::{Span, SpanKind, WaitCause};
    pub use crate::stats::{Histogram, OnlineStats, P2Quantile, TimeWeighted};
    pub use crate::time::{SimDuration, SimTime};
    pub use crate::trace::{TraceValue, Tracer};
}

pub use analyze::{GroupStats, TraceAnalysis, TraceAnalyzer};
pub use dist::{Dist, DistKind};
pub use engine::{Ctx, Engine, EventKey, Simulation, StopCondition};
pub use memory::{
    alloc_snapshot, current_in_use_bytes, peak_in_use_bytes, peak_rss_bytes, reset_peak_in_use,
    AllocDelta, AllocSnapshot, CountingAlloc,
};
pub use metrics::{
    CounterId, EngineProfile, GaugeId, MetricsRegistry, MetricsSnapshot, SeriesId, SyncProfile,
};
pub use rng::{RngFactory, SimRng, StreamId};
pub use series::{SeriesDigest, SeriesRow, SeriesSnapshot, WindowedSeries};
pub use shard::{Lookahead, Rank, RankQueue};
pub use sketch::{QuantileSketch, SketchSummary, SpanSketchbook, SpanStatsSnapshot};
pub use span::{Span, SpanKind, WaitCause, SPAN_SCHEMA_VERSION};
pub use stats::{Histogram, OnlineStats, P2Quantile, TimeWeighted};
pub use time::{SimDuration, SimTime};
pub use trace::{TraceEntry, TraceHealth, TraceValue, Tracer};
