//! Per-job lifecycle spans.
//!
//! A **span** is one contiguous phase of a job's life — held on workflow
//! dependencies, staging input, waiting in a batch queue, reconfiguring a
//! fabric region, running, staging output. Simulators emit spans through the
//! ordinary [`crate::trace::Tracer`] as structured entries with category
//! `"span"`, so any archived JSONL trace can be sliced offline into
//! wait/stage/run breakdowns (see [`crate::analyze`]) without re-running the
//! simulation.
//!
//! ## Trace schema (version [`SPAN_SCHEMA_VERSION`])
//!
//! One JSON object per line, `cat == "span"`, fields:
//!
//! ```text
//! {"t":<emit secs>,"cat":"span","fields":{
//!     "v":1,              span schema version
//!     "job":<id>,         job id
//!     "kind":"queued",    held|stage_in|queued|reconfig|run|stage_out|fault|requeue
//!     "t0":<secs>,        span start (virtual seconds)
//!     "t1":<secs>,        span end
//!     "modality":"batch", ground-truth modality label (observability only)
//!     "site":<idx>,       site index (omitted while unrouted)
//!     "cause":"ahead-in-queue"  wait attribution (queued/reconfig only)
//! }}
//! ```
//!
//! `t` is the *emission* instant: equal to `t1` for every kind except
//! `stage_out`, whose end is known (deterministically) at emission time but
//! lies in the future. Consumers should read `t0`/`t1`, never `t`.
//!
//! Spans partition a completed job's `submit → finish` interval: sorted by
//! `t0` they are contiguous (each starts where the previous ended), the
//! first starts at the job's submit instant, and the `run` span ends at the
//! job's recorded end. `stage_out` begins exactly at the run end and extends
//! past it (the archive write outlives the job). Under fault injection a
//! killed attempt contributes a `fault` span (the lost execution) followed
//! by a `requeue` span (retry backoff); the accounting record then covers
//! only the final, successful attempt.
//!
//! Everything here is observer-only: emitting spans never draws randomness
//! or schedules events, so traced and untraced runs are bit-identical.

use std::fmt;

/// Version of the span trace schema documented in this module. Bump when a
/// field is added, removed, or reinterpreted.
pub const SPAN_SCHEMA_VERSION: u64 = 1;

/// The trace category span entries are emitted under.
pub const SPAN_CATEGORY: &str = "span";

/// What phase of the job's life a span covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SpanKind {
    /// Held before routing: workflow dependencies not yet complete.
    Held,
    /// Input data staging over the WAN before queueing.
    StageIn,
    /// Waiting in a batch queue (or an RC backlog) for resources.
    Queued,
    /// Fabric setup: bitstream transfer plus region reconfiguration.
    Reconfig,
    /// Executing.
    Run,
    /// Output data staging to the archive after completion.
    StageOut,
    /// Executing, but killed by a fault (node crash / site outage) before
    /// finishing; `t0..t1` is the lost execution interval. The `cause`
    /// field carries the fault kind.
    Fault,
    /// Backoff between a fault kill and the job's resubmission.
    Requeue,
}

impl SpanKind {
    /// All kinds, in lifecycle order (fault kinds last — they interleave).
    pub const ALL: [SpanKind; 8] = [
        SpanKind::Held,
        SpanKind::StageIn,
        SpanKind::Queued,
        SpanKind::Reconfig,
        SpanKind::Run,
        SpanKind::StageOut,
        SpanKind::Fault,
        SpanKind::Requeue,
    ];

    /// Stable wire name.
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Held => "held",
            SpanKind::StageIn => "stage_in",
            SpanKind::Queued => "queued",
            SpanKind::Reconfig => "reconfig",
            SpanKind::Run => "run",
            SpanKind::StageOut => "stage_out",
            SpanKind::Fault => "fault",
            SpanKind::Requeue => "requeue",
        }
    }

    /// Parse a wire name back into a kind.
    pub fn from_name(name: &str) -> Option<SpanKind> {
        SpanKind::ALL.into_iter().find(|k| k.name() == name)
    }

    /// Does this kind count toward a job's pre-execution wait? These are the
    /// spans whose durations sum to `start − submit` in the job's accounting
    /// record (held time is *before* the recorded submit, and stage-out is
    /// after the end).
    pub fn is_wait(self) -> bool {
        matches!(
            self,
            SpanKind::StageIn | SpanKind::Queued | SpanKind::Reconfig
        )
    }
}

impl fmt::Display for SpanKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Why a job waited: the dominant cause the scheduler attributes to the
/// wait interval it just ended by starting the job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum WaitCause {
    /// No wait: the job started at its first scheduling opportunity.
    Immediate,
    /// Blocked behind earlier-arrived work (FCFS order, reservations of
    /// jobs ahead).
    AheadInQueue,
    /// Eligible to overtake but no backfill hole large enough opened until
    /// now.
    BackfillHole,
    /// An armed drain window (capability clear-out) withheld resources.
    DrainWindow,
    /// An advance-reservation window (own or foreign) constrained placement.
    ReservationBlock,
    /// Fabric setup latency: bitstream transfer + reconfiguration.
    ReconfigLatency,
    /// The reconfigurable fabric had no free region; the task was deferred.
    FabricBusy,
    /// Killed by a fault-injected node crash (attributes `fault` spans).
    NodeFailure,
    /// Killed or frozen by a fault-injected whole-site outage.
    SiteOutage,
    /// The job's dataset was already resident at the chosen site (cache or
    /// permanent replica); stage-in cost was avoided (attributes `stage_in`
    /// spans).
    CacheHit,
    /// The job's dataset missed locally and was fetched over the WAN from
    /// the nearest replica holder (attributes `stage_in` spans).
    CacheMiss,
}

impl WaitCause {
    /// All causes.
    pub const ALL: [WaitCause; 11] = [
        WaitCause::Immediate,
        WaitCause::AheadInQueue,
        WaitCause::BackfillHole,
        WaitCause::DrainWindow,
        WaitCause::ReservationBlock,
        WaitCause::ReconfigLatency,
        WaitCause::FabricBusy,
        WaitCause::NodeFailure,
        WaitCause::SiteOutage,
        WaitCause::CacheHit,
        WaitCause::CacheMiss,
    ];

    /// Stable wire name.
    pub fn name(self) -> &'static str {
        match self {
            WaitCause::Immediate => "immediate",
            WaitCause::AheadInQueue => "ahead-in-queue",
            WaitCause::BackfillHole => "backfill-hole-too-small",
            WaitCause::DrainWindow => "drain-window",
            WaitCause::ReservationBlock => "reservation-block",
            WaitCause::ReconfigLatency => "reconfig-latency",
            WaitCause::FabricBusy => "fabric-busy",
            WaitCause::NodeFailure => "node-failure",
            WaitCause::SiteOutage => "site-outage",
            WaitCause::CacheHit => "cache-hit",
            WaitCause::CacheMiss => "cache-miss",
        }
    }

    /// Parse a wire name back into a cause.
    pub fn from_name(name: &str) -> Option<WaitCause> {
        WaitCause::ALL.into_iter().find(|c| c.name() == name)
    }
}

impl fmt::Display for WaitCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One reconstructed span (the in-memory form of a `cat == "span"` trace
/// line; see the module docs for the wire schema).
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    /// Job id.
    pub job: u64,
    /// Phase covered.
    pub kind: SpanKind,
    /// Start, virtual seconds.
    pub t0: f64,
    /// End, virtual seconds.
    pub t1: f64,
    /// Site index, when routed.
    pub site: Option<u64>,
    /// Wait attribution (queued / reconfig spans).
    pub cause: Option<WaitCause>,
    /// Ground-truth modality label carried for offline slicing.
    pub modality: Option<String>,
}

impl Span {
    /// Span length in seconds (never negative).
    pub fn duration(&self) -> f64 {
        (self.t1 - self.t0).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names_roundtrip() {
        for k in SpanKind::ALL {
            assert_eq!(SpanKind::from_name(k.name()), Some(k));
            assert_eq!(format!("{k}"), k.name());
        }
        assert_eq!(SpanKind::from_name("nope"), None);
    }

    #[test]
    fn cause_names_roundtrip() {
        for c in WaitCause::ALL {
            assert_eq!(WaitCause::from_name(c.name()), Some(c));
            assert_eq!(format!("{c}"), c.name());
        }
        assert_eq!(WaitCause::from_name(""), None);
    }

    #[test]
    fn wait_kinds_are_the_pre_execution_phases() {
        assert!(SpanKind::StageIn.is_wait());
        assert!(SpanKind::Queued.is_wait());
        assert!(SpanKind::Reconfig.is_wait());
        assert!(!SpanKind::Held.is_wait());
        assert!(!SpanKind::Run.is_wait());
        assert!(!SpanKind::StageOut.is_wait());
        // Fault kinds belong to aborted attempts, not the final record's
        // submit→start wait, so the wait-sum invariant excludes them.
        assert!(!SpanKind::Fault.is_wait());
        assert!(!SpanKind::Requeue.is_wait());
    }

    #[test]
    fn duration_clamps_negative() {
        let s = Span {
            job: 1,
            kind: SpanKind::Run,
            t0: 5.0,
            t1: 3.0,
            site: None,
            cause: None,
            modality: None,
        };
        assert_eq!(s.duration(), 0.0);
        let ok = Span { t1: 9.0, ..s };
        assert_eq!(ok.duration(), 4.0);
    }
}
