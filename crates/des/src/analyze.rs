//! Offline trace analysis: reconstruct per-job lifecycle spans from an
//! archived JSONL trace and aggregate them into latency breakdowns.
//!
//! The input is the file written by a tracer JSONL sink (one JSON object per
//! line; see [`crate::trace`]). Only `cat == "span"` lines are interpreted —
//! everything else is counted and skipped — so the analyzer works on any
//! trace regardless of which other categories the producing simulation
//! emitted. Parsing is streaming: feed lines with
//! [`TraceAnalyzer::add_line`], then call [`TraceAnalyzer::finish`] for the
//! aggregated [`TraceAnalysis`].
//!
//! Aggregates use the same machinery the live simulation uses for its own
//! statistics ([`Histogram`] with log-spaced duration bins and [`P2Quantile`]
//! estimators), so numbers derived offline from a trace are directly
//! comparable to numbers computed in-run.

use std::collections::BTreeMap;

use crate::span::{Span, SpanKind, WaitCause, SPAN_CATEGORY};
use crate::stats::{Histogram, OnlineStats, P2Quantile};

/// Summary statistics for one group of span durations (seconds).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize)]
pub struct GroupStats {
    /// Number of spans in the group.
    pub count: u64,
    /// Exact mean duration.
    pub mean: f64,
    /// Median (P² estimate; log-binned histogram fallback below 5 samples).
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
}

/// Online accumulator behind each [`GroupStats`].
struct GroupAcc {
    stats: OnlineStats,
    hist: Histogram,
    p50: P2Quantile,
    p95: P2Quantile,
    p99: P2Quantile,
}

impl GroupAcc {
    fn new() -> Self {
        GroupAcc {
            stats: OnlineStats::new(),
            hist: Histogram::for_durations(),
            p50: P2Quantile::new(0.50),
            p95: P2Quantile::new(0.95),
            p99: P2Quantile::new(0.99),
        }
    }

    fn record(&mut self, x: f64) {
        self.stats.record(x);
        self.hist.record(x);
        self.p50.record(x);
        self.p95.record(x);
        self.p99.record(x);
    }

    fn finish(&self) -> GroupStats {
        let q = |p2: &P2Quantile, q: f64| {
            p2.estimate()
                .or_else(|| self.hist.quantile(q))
                .unwrap_or_else(|| self.stats.mean())
        };
        GroupStats {
            count: self.stats.count(),
            mean: self.stats.mean(),
            p50: q(&self.p50, 0.50),
            p95: q(&self.p95, 0.95),
            p99: q(&self.p99, 0.99),
        }
    }
}

/// Per-job state folded up while streaming span lines.
#[derive(Default)]
struct JobAcc {
    /// Sum of wait-kind span durations (stage-in + queued + reconfig).
    wait_s: f64,
    /// Modality label from the job's spans, if any carried one.
    modality: Option<String>,
    /// Whether a `run` span was seen (the job completed).
    ran: bool,
}

/// Aggregated results of analyzing one trace file.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct TraceAnalysis {
    /// Total input lines fed in (including blank and non-span lines).
    pub lines: u64,
    /// Lines that parsed as well-formed span entries.
    pub span_lines: u64,
    /// Non-blank lines that were not well-formed span entries (other trace
    /// categories, or malformed/unknown-schema span lines).
    pub skipped: u64,
    /// Jobs that completed (emitted a `run` span).
    pub jobs: u64,
    /// Mean total wait (stage-in + queued + reconfig) over completed jobs.
    pub mean_wait_s: f64,
    /// Span duration stats grouped by span kind.
    pub by_kind: BTreeMap<String, GroupStats>,
    /// Queued-span duration stats grouped by attributed wait cause.
    pub queued_by_cause: BTreeMap<String, GroupStats>,
    /// Stage-in span duration stats grouped by cause (`cache-hit` /
    /// `cache-miss` for dataset-carrying jobs; stage-in spans without a
    /// cause — plain bulk staging — do not appear here).
    pub stage_in_by_cause: BTreeMap<String, GroupStats>,
    /// Queued-span duration stats grouped by site index.
    pub queued_by_site: BTreeMap<u64, GroupStats>,
    /// Per-job total wait stats grouped by modality (completed jobs only).
    pub wait_by_modality: BTreeMap<String, GroupStats>,
}

/// Streaming analyzer over JSONL trace lines.
pub struct TraceAnalyzer {
    lines: u64,
    span_lines: u64,
    skipped: u64,
    by_kind: BTreeMap<String, GroupAcc>,
    queued_by_cause: BTreeMap<String, GroupAcc>,
    stage_in_by_cause: BTreeMap<String, GroupAcc>,
    queued_by_site: BTreeMap<u64, GroupAcc>,
    // BTreeMap, not HashMap: `finish()` folds per-job f64 wait totals in
    // iteration order, and float addition is not associative — a hashed
    // order would make `mean_wait_s` (and the per-modality stats) differ in
    // the last bits between two identically-fed analyzers.
    jobs: BTreeMap<u64, JobAcc>,
}

impl TraceAnalyzer {
    /// A fresh analyzer with no lines seen.
    pub fn new() -> Self {
        TraceAnalyzer {
            lines: 0,
            span_lines: 0,
            skipped: 0,
            by_kind: BTreeMap::new(),
            queued_by_cause: BTreeMap::new(),
            stage_in_by_cause: BTreeMap::new(),
            queued_by_site: BTreeMap::new(),
            jobs: BTreeMap::new(),
        }
    }

    /// Feed one line of the trace file. Blank lines are ignored; non-span
    /// and malformed lines are counted as skipped.
    pub fn add_line(&mut self, line: &str) {
        self.lines += 1;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            return;
        }
        match parse_span_line(trimmed) {
            Some(span) => {
                self.span_lines += 1;
                self.add_span(&span);
            }
            None => self.skipped += 1,
        }
    }

    /// Fold one reconstructed span into the aggregates.
    pub fn add_span(&mut self, span: &Span) {
        let d = span.duration();
        self.by_kind
            .entry(span.kind.name().to_string())
            .or_insert_with(GroupAcc::new)
            .record(d);
        if span.kind == SpanKind::StageIn {
            if let Some(cause) = span.cause {
                self.stage_in_by_cause
                    .entry(cause.name().to_string())
                    .or_insert_with(GroupAcc::new)
                    .record(d);
            }
        }
        if span.kind == SpanKind::Queued {
            let cause = span.cause.unwrap_or(WaitCause::Immediate);
            self.queued_by_cause
                .entry(cause.name().to_string())
                .or_insert_with(GroupAcc::new)
                .record(d);
            if let Some(site) = span.site {
                self.queued_by_site
                    .entry(site)
                    .or_insert_with(GroupAcc::new)
                    .record(d);
            }
        }
        let job = self.jobs.entry(span.job).or_default();
        if span.kind.is_wait() {
            job.wait_s += d;
        }
        if span.kind == SpanKind::Run {
            job.ran = true;
        }
        if job.modality.is_none() {
            job.modality = span.modality.clone();
        }
    }

    /// Close out the aggregation and produce the analysis.
    pub fn finish(&self) -> TraceAnalysis {
        let mut wait_by_modality: BTreeMap<String, GroupAcc> = BTreeMap::new();
        let mut total_wait = 0.0;
        let mut completed = 0u64;
        for job in self.jobs.values() {
            if !job.ran {
                continue;
            }
            completed += 1;
            total_wait += job.wait_s;
            let modality = job.modality.clone().unwrap_or_else(|| "?".to_string());
            wait_by_modality
                .entry(modality)
                .or_insert_with(GroupAcc::new)
                .record(job.wait_s);
        }
        TraceAnalysis {
            lines: self.lines,
            span_lines: self.span_lines,
            skipped: self.skipped,
            jobs: completed,
            mean_wait_s: if completed > 0 {
                total_wait / completed as f64
            } else {
                0.0
            },
            by_kind: self
                .by_kind
                .iter()
                .map(|(k, a)| (k.clone(), a.finish()))
                .collect(),
            queued_by_cause: self
                .queued_by_cause
                .iter()
                .map(|(k, a)| (k.clone(), a.finish()))
                .collect(),
            stage_in_by_cause: self
                .stage_in_by_cause
                .iter()
                .map(|(k, a)| (k.clone(), a.finish()))
                .collect(),
            queued_by_site: self
                .queued_by_site
                .iter()
                .map(|(&k, a)| (k, a.finish()))
                .collect(),
            wait_by_modality: wait_by_modality
                .iter()
                .map(|(k, a)| (k.clone(), a.finish()))
                .collect(),
        }
    }
}

impl Default for TraceAnalyzer {
    fn default() -> Self {
        TraceAnalyzer::new()
    }
}

/// Parse one JSONL trace line into a [`Span`], or `None` when the line is
/// not a well-formed span entry (different category, missing fields, or an
/// unknown kind).
pub fn parse_span_line(line: &str) -> Option<Span> {
    let value: serde_json::Value = serde_json::from_str(line).ok()?;
    if value.get("cat").and_then(|c| c.as_str()) != Some(SPAN_CATEGORY) {
        return None;
    }
    let fields = value.get("fields")?;
    let job = fields.get("job")?.as_u64()?;
    let kind = SpanKind::from_name(fields.get("kind")?.as_str()?)?;
    let t0 = fields.get("t0")?.as_f64()?;
    let t1 = fields.get("t1")?.as_f64()?;
    let site = fields.get("site").and_then(|v| v.as_u64());
    let cause = fields
        .get("cause")
        .and_then(|v| v.as_str())
        .and_then(WaitCause::from_name);
    let modality = fields
        .get("modality")
        .and_then(|v| v.as_str())
        .map(str::to_string);
    Some(Span {
        job,
        kind,
        t0,
        t1,
        site,
        cause,
        modality,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(job: u64, kind: &str, t0: f64, t1: f64, extra: &str) -> String {
        format!(
            "{{\"t\":{t1},\"cat\":\"span\",\"fields\":{{\"v\":1,\"job\":{job},\
             \"kind\":\"{kind}\",\"t0\":{t0},\"t1\":{t1}{extra}}}}}"
        )
    }

    #[test]
    fn parses_a_full_span_line() {
        let l = line(
            7,
            "queued",
            10.0,
            25.5,
            ",\"site\":2,\"cause\":\"ahead-in-queue\",\"modality\":\"batch\"",
        );
        let s = parse_span_line(&l).expect("parses");
        assert_eq!(s.job, 7);
        assert_eq!(s.kind, SpanKind::Queued);
        assert_eq!(s.t0, 10.0);
        assert_eq!(s.t1, 25.5);
        assert_eq!(s.site, Some(2));
        assert_eq!(s.cause, Some(WaitCause::AheadInQueue));
        assert_eq!(s.modality.as_deref(), Some("batch"));
    }

    #[test]
    fn non_span_lines_are_skipped_not_fatal() {
        let mut a = TraceAnalyzer::new();
        a.add_line("{\"t\":1.0,\"cat\":\"submit\",\"fields\":{\"job\":1}}");
        a.add_line("not json at all");
        a.add_line("");
        a.add_line(&line(1, "run", 5.0, 9.0, ",\"modality\":\"batch\""));
        let out = a.finish();
        assert_eq!(out.lines, 4);
        assert_eq!(out.span_lines, 1);
        assert_eq!(out.skipped, 2);
        assert_eq!(out.jobs, 1);
    }

    #[test]
    fn wait_sums_and_groups_come_out_right() {
        let mut a = TraceAnalyzer::new();
        // Job 1: staged 5s, queued 10s, ran 20s.
        a.add_line(&line(1, "stage_in", 0.0, 5.0, ",\"modality\":\"workflow\""));
        a.add_line(&line(
            1,
            "queued",
            5.0,
            15.0,
            ",\"site\":0,\"cause\":\"backfill-hole-too-small\",\"modality\":\"workflow\"",
        ));
        a.add_line(&line(
            1,
            "run",
            15.0,
            35.0,
            ",\"site\":0,\"modality\":\"workflow\"",
        ));
        // Job 2: queued 0s, ran 10s.
        a.add_line(&line(
            2,
            "queued",
            3.0,
            3.0,
            ",\"site\":1,\"cause\":\"immediate\",\"modality\":\"batch\"",
        ));
        a.add_line(&line(
            2,
            "run",
            3.0,
            13.0,
            ",\"site\":1,\"modality\":\"batch\"",
        ));
        // Job 3: queued but never ran — excluded from job wait aggregates.
        a.add_line(&line(
            3,
            "queued",
            0.0,
            50.0,
            ",\"site\":0,\"cause\":\"ahead-in-queue\",\"modality\":\"batch\"",
        ));
        let out = a.finish();
        assert_eq!(out.jobs, 2);
        assert!((out.mean_wait_s - 7.5).abs() < 1e-12, "{}", out.mean_wait_s);
        assert_eq!(out.by_kind["queued"].count, 3);
        assert_eq!(out.by_kind["run"].count, 2);
        assert_eq!(out.queued_by_cause["backfill-hole-too-small"].count, 1);
        assert_eq!(out.queued_by_cause["immediate"].count, 1);
        assert_eq!(out.queued_by_site[&0].count, 2);
        assert_eq!(out.queued_by_site[&1].count, 1);
        let wf = &out.wait_by_modality["workflow"];
        assert_eq!(wf.count, 1);
        assert!((wf.mean - 15.0).abs() < 1e-12);
        let batch = &out.wait_by_modality["batch"];
        assert_eq!(batch.count, 1);
        assert!((batch.mean - 0.0).abs() < 1e-12);
    }

    /// Regression: job aggregation must not depend on map iteration order.
    /// Two identically-fed analyzers must agree *bit for bit* — with a
    /// hashed job registry each instance gets its own random iteration
    /// order, and the non-associative f64 wait fold diverges in the last
    /// bits (the sharded-run differential suite compares these outputs
    /// byte-for-byte, so "last bits" means failures).
    #[test]
    fn job_aggregation_is_iteration_order_independent() {
        let build = || {
            let mut a = TraceAnalyzer::new();
            // Waits like 1/3 and 1/7 don't round-trip through f64 addition
            // associatively — any order change shows up in the sums.
            for job in 0..200u64 {
                let wait = (job as f64 + 1.0) / 3.0 + 1.0 / ((job as f64) + 7.0);
                let modality = ["batch", "workflow", "gateway"][(job % 3) as usize];
                a.add_line(&line(
                    job,
                    "queued",
                    0.0,
                    wait,
                    &format!(",\"site\":0,\"modality\":\"{modality}\""),
                ));
                a.add_line(&line(job, "run", wait, wait + 1.0, ""));
            }
            a.finish()
        };
        let (a, b) = (build(), build());
        assert_eq!(a.mean_wait_s.to_bits(), b.mean_wait_s.to_bits());
        for (k, s) in &a.wait_by_modality {
            let t = &b.wait_by_modality[k];
            assert_eq!(s.mean.to_bits(), t.mean.to_bits(), "modality {k}");
            assert_eq!(s.count, t.count, "modality {k}");
        }
        assert_eq!(a, b);
    }

    #[test]
    fn group_stats_mean_is_exact_even_with_few_samples() {
        let mut a = TraceAnalyzer::new();
        a.add_line(&line(1, "run", 0.0, 4.0, ""));
        a.add_line(&line(2, "run", 0.0, 8.0, ""));
        let out = a.finish();
        let run = &out.by_kind["run"];
        assert_eq!(run.count, 2);
        assert!((run.mean - 6.0).abs() < 1e-12);
        // Below 5 samples P² has no estimate; the fallback must still give
        // a finite, in-range number.
        assert!(run.p50.is_finite() && run.p50 >= 0.0);
    }
}
