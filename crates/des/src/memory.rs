//! Process-level memory observability for benchmarks.
//!
//! Two independent signals, both zero-dependency:
//!
//! * [`peak_rss_bytes`] — the process's high-water resident set, read from
//!   `/proc/self/status` (`VmHWM`). Linux-only; other platforms report
//!   `None` rather than a guess.
//! * [`CountingAlloc`] — a [`GlobalAlloc`] wrapper over the system
//!   allocator that counts allocations and bytes requested. A *binary*
//!   opts in by installing it as its `#[global_allocator]`; the library
//!   only tallies. [`alloc_snapshot`] reads the counters and
//!   [`AllocDelta::since`] turns two snapshots into a per-phase figure.
//!
//! Everything here observes the host process, never the simulation: none of
//! it can perturb results, and none of it is part of the deterministic
//! output (the serialized fields live in optional
//! [`EngineProfile`](crate::metrics::EngineProfile) slots).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// Total allocations made through [`CountingAlloc`] since process start.
static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
/// Total bytes requested through [`CountingAlloc`] since process start.
static ALLOCATED_BYTES: AtomicU64 = AtomicU64::new(0);
/// Bytes currently live (allocated minus freed). Signed: frees of memory
/// obtained before the allocator was installed can transiently outnumber
/// recorded allocations.
static IN_USE_BYTES: AtomicI64 = AtomicI64::new(0);
/// High-water mark of [`IN_USE_BYTES`] since process start (or the last
/// [`reset_peak_in_use`]).
static PEAK_IN_USE_BYTES: AtomicI64 = AtomicI64::new(0);

#[inline]
fn track_in_use(delta: i64) {
    let now = IN_USE_BYTES.fetch_add(delta, Ordering::Relaxed) + delta;
    if delta > 0 {
        PEAK_IN_USE_BYTES.fetch_max(now, Ordering::Relaxed);
    }
}

/// A counting global allocator: forwards to [`System`], tallying every
/// allocation. Install in a bench binary with
/// `#[global_allocator] static A: CountingAlloc = CountingAlloc;`.
///
/// Counters use relaxed atomics — nanoseconds per allocation, and the
/// counts are exact because every allocation goes through here once
/// installed.
pub struct CountingAlloc;

// The allocator contract itself is unsafe by nature; this impl adds no
// unsafety of its own beyond delegating to `System`.
#[allow(unsafe_code)]
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        ALLOCATED_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        track_in_use(layout.size() as i64);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        track_in_use(-(layout.size() as i64));
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // Count only growth, so a realloc'd buffer isn't double-counted.
        ALLOCATED_BYTES.fetch_add(
            new_size.saturating_sub(layout.size()) as u64,
            Ordering::Relaxed,
        );
        track_in_use(new_size as i64 - layout.size() as i64);
        System.realloc(ptr, layout, new_size)
    }
}

/// One reading of the allocation counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocSnapshot {
    /// Allocations (including growing reallocs) so far.
    pub allocations: u64,
    /// Bytes requested so far.
    pub bytes: u64,
}

/// Read the global allocation counters. All-zero (and meaningless as a
/// delta) unless the binary installed [`CountingAlloc`].
pub fn alloc_snapshot() -> AllocSnapshot {
    AllocSnapshot {
        allocations: ALLOCATIONS.load(Ordering::Relaxed),
        bytes: ALLOCATED_BYTES.load(Ordering::Relaxed),
    }
}

/// The allocation traffic between two snapshots.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocDelta {
    /// Allocations in the window.
    pub allocations: u64,
    /// Bytes requested in the window.
    pub bytes: u64,
}

impl AllocDelta {
    /// Traffic since `earlier`. Returns `None` when the counters never
    /// moved — i.e. [`CountingAlloc`] is not installed, so there is no
    /// signal (as opposed to a genuine zero-allocation window, which a
    /// Rust program of any size does not have).
    pub fn since(earlier: AllocSnapshot) -> Option<AllocDelta> {
        let now = alloc_snapshot();
        if now.allocations == 0 {
            return None;
        }
        Some(AllocDelta {
            allocations: now.allocations - earlier.allocations,
            bytes: now.bytes - earlier.bytes,
        })
    }
}

/// Bytes currently live through [`CountingAlloc`] (0 when not installed).
/// Exact across threads: every thread's allocations and frees go through
/// the same global counters, so shard-worker traffic is attributed to the
/// run without double-counting.
pub fn current_in_use_bytes() -> i64 {
    IN_USE_BYTES.load(Ordering::Relaxed)
}

/// High-water mark of live bytes since process start or the last
/// [`reset_peak_in_use`].
pub fn peak_in_use_bytes() -> i64 {
    PEAK_IN_USE_BYTES.load(Ordering::Relaxed)
}

/// Start a fresh live-bytes high-water window (e.g. at the top of one bench
/// run, so the reported peak is per-run rather than per-process). Call from
/// a quiescent point — concurrent allocations racing the reset stay
/// correctly counted in `in_use`, but may land on either side of the peak
/// window boundary.
pub fn reset_peak_in_use() {
    PEAK_IN_USE_BYTES.store(IN_USE_BYTES.load(Ordering::Relaxed), Ordering::Relaxed);
}

/// The process's peak resident set size in bytes (`VmHWM`), or `None` where
/// `/proc` is unavailable (non-Linux) or unparsable.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
            return Some(kb * 1024);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_is_monotone() {
        let a = alloc_snapshot();
        let _v: Vec<u64> = (0..1000).collect();
        let b = alloc_snapshot();
        assert!(b.allocations >= a.allocations);
        assert!(b.bytes >= a.bytes);
    }

    #[test]
    #[cfg(target_os = "linux")]
    fn peak_rss_reads_on_linux() {
        let rss = peak_rss_bytes().expect("/proc/self/status has VmHWM");
        // A running test binary occupies at least a megabyte.
        assert!(rss > 1 << 20, "implausible peak RSS {rss}");
    }

    #[test]
    fn in_use_tracking_is_thread_safe_and_balanced() {
        // Whether or not the allocator is installed in this test binary, the
        // accounting must be race-free and must net out to ~zero for a
        // balanced allocate/free storm across threads.
        let before = current_in_use_bytes();
        let threads: Vec<_> = (0..4)
            .map(|t| {
                std::thread::spawn(move || {
                    for i in 0..500 {
                        let v: Vec<u8> = vec![0u8; 64 + (t * 131 + i) % 256];
                        std::hint::black_box(&v);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let after = current_in_use_bytes();
        // All thread-local vectors were dropped; anything still live is
        // unrelated background traffic from the test harness.
        assert!(
            (after - before).abs() < 1 << 20,
            "in-use drifted by {} bytes across a balanced storm",
            after - before
        );
        assert!(peak_in_use_bytes() >= after.max(0));
    }

    #[test]
    fn delta_none_without_installed_allocator_or_some_with() {
        // This test binary may or may not have the allocator installed;
        // both outcomes must be coherent with the snapshot.
        let before = alloc_snapshot();
        let _v: Vec<u64> = (0..100).collect();
        match AllocDelta::since(before) {
            None => assert_eq!(alloc_snapshot().allocations, 0),
            Some(d) => assert!(d.bytes >= 800),
        }
    }
}
