//! Time-bucketed windowed operational series.
//!
//! The counterpart to [`sketch`](crate::sketch): where sketches answer
//! "what do span durations look like overall", the windowed series answers
//! "what was the federation *doing* at hour N" — submit/start/complete
//! rates, active jobs, core utilization, and queue depth per virtual-time
//! bucket, with memory proportional to `horizon / bucket` and independent
//! of event count. Rates are exact integer counters; utilization and queue
//! depth are exact time-weighted means computed by trapezoid-free area
//! integration of piecewise-constant gauges (the gauges only change at
//! events, so rectangles are exact).
//!
//! # Sharded determinism
//!
//! The sharded engine partitions *sites* across shards, and every gauge
//! column here is per-site: a site's busy/queued gauges are only ever
//! written by the participant that executes that site's events, in that
//! site's serial event order. Global counters are split the same way
//! (submissions on the coordinator, starts/stops on the owning shard), so a
//! merge is element-wise addition of disjoint writers. Snapshot rows then
//! sum site columns in site-index order — a fixed order independent of
//! thread count — which is why an observed sharded run reports
//! byte-identical series at any `--threads N`.

use serde::{Deserialize, Serialize};

use crate::time::{SimDuration, SimTime, MICROS_PER_SEC};

/// Per-site gauge track: current gauge values plus per-bucket accumulated
/// areas (core·seconds and job·seconds).
#[derive(Debug, Clone, PartialEq)]
struct SiteTrack {
    busy: f64,
    queued: f64,
    last_us: u64,
    touched: bool,
    busy_area: Vec<f64>,
    queue_area: Vec<f64>,
}

impl SiteTrack {
    fn new() -> Self {
        SiteTrack {
            busy: 0.0,
            queued: 0.0,
            last_us: 0,
            touched: false,
            busy_area: Vec::new(),
            queue_area: Vec::new(),
        }
    }

    /// Integrate the current gauges forward to `to_us`, splitting the area
    /// across bucket boundaries.
    fn integrate(&mut self, bucket_us: u64, to_us: u64) {
        let mut from = self.last_us;
        if to_us <= from {
            return;
        }
        self.last_us = to_us;
        if self.busy == 0.0 && self.queued == 0.0 {
            // Idle gap: nothing to accumulate, skip the bucket walk.
            return;
        }
        while from < to_us {
            let b = (from / bucket_us) as usize;
            let seg_end = ((b as u64 + 1) * bucket_us).min(to_us);
            let dt = (seg_end - from) as f64 / MICROS_PER_SEC as f64;
            if self.busy_area.len() <= b {
                self.busy_area.resize(b + 1, 0.0);
                self.queue_area.resize(b + 1, 0.0);
            }
            self.busy_area[b] += self.busy * dt;
            self.queue_area[b] += self.queued * dt;
            from = seg_end;
        }
    }
}

/// Windowed operational series over virtual time. Disabled by default;
/// every hook is a no-op until [`WindowedSeries::enabled`] builds one.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowedSeries {
    enabled: bool,
    bucket_us: u64,
    total_cores: f64,
    submitted: Vec<u64>,
    started: Vec<u64>,
    completed: Vec<u64>,
    active_delta: Vec<i64>,
    sites: Vec<SiteTrack>,
    /// Buckets already handed out by `drain_closed`, and the running
    /// active-job prefix at that point.
    drained: usize,
    drained_active: i64,
    /// Fast-path threshold for `drain_closed`: next virtual time at which a
    /// bucket boundary has passed.
    next_emit_us: u64,
}

impl WindowedSeries {
    /// A disabled series: all hooks are no-ops, snapshots are empty.
    pub fn disabled() -> Self {
        WindowedSeries {
            enabled: false,
            bucket_us: u64::MAX,
            total_cores: 0.0,
            submitted: Vec::new(),
            started: Vec::new(),
            completed: Vec::new(),
            active_delta: Vec::new(),
            sites: Vec::new(),
            drained: 0,
            drained_active: 0,
            next_emit_us: u64::MAX,
        }
    }

    /// An enabled series with the given bucket width and per-site core
    /// counts (the utilization denominator). Panics on a zero bucket.
    pub fn enabled(bucket: SimDuration, site_cores: &[f64]) -> Self {
        let bucket_us = bucket.as_micros();
        assert!(bucket_us > 0, "series bucket must be positive");
        WindowedSeries {
            enabled: true,
            bucket_us,
            total_cores: site_cores.iter().sum(),
            submitted: Vec::new(),
            started: Vec::new(),
            completed: Vec::new(),
            active_delta: Vec::new(),
            sites: site_cores.iter().map(|_| SiteTrack::new()).collect(),
            drained: 0,
            drained_active: 0,
            next_emit_us: bucket_us,
        }
    }

    /// Is the series recording?
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Bucket width.
    pub fn bucket(&self) -> SimDuration {
        SimDuration::from_micros(if self.enabled { self.bucket_us } else { 0 })
    }

    fn bucket_of(&self, now: SimTime) -> usize {
        (now.as_micros() / self.bucket_us) as usize
    }

    fn bump(vec: &mut Vec<u64>, b: usize) {
        if vec.len() <= b {
            vec.resize(b + 1, 0);
        }
        vec[b] += 1;
    }

    /// A job entered the system.
    pub fn on_submit(&mut self, now: SimTime) {
        if self.enabled {
            let b = self.bucket_of(now);
            Self::bump(&mut self.submitted, b);
        }
    }

    /// A job began executing (dispatch or RC placement).
    pub fn on_start(&mut self, now: SimTime) {
        if self.enabled {
            let b = self.bucket_of(now);
            Self::bump(&mut self.started, b);
            if self.active_delta.len() <= b {
                self.active_delta.resize(b + 1, 0);
            }
            self.active_delta[b] += 1;
        }
    }

    /// A job stopped executing (completion or fault kill).
    pub fn on_stop(&mut self, now: SimTime) {
        if self.enabled {
            let b = self.bucket_of(now);
            if self.active_delta.len() <= b {
                self.active_delta.resize(b + 1, 0);
            }
            self.active_delta[b] -= 1;
        }
    }

    /// A job left the system for good (completed or abandoned).
    pub fn on_complete(&mut self, now: SimTime) {
        if self.enabled {
            let b = self.bucket_of(now);
            Self::bump(&mut self.completed, b);
        }
    }

    /// Update one site's gauges (busy cores, queued jobs) at `now`,
    /// integrating the previous values over the elapsed interval.
    pub fn set_site(&mut self, site: usize, now: SimTime, busy: f64, queued: f64) {
        if !self.enabled || site >= self.sites.len() {
            return;
        }
        let t = self.sites[site].touched;
        let track = &mut self.sites[site];
        track.integrate(self.bucket_us, now.as_micros());
        track.busy = busy;
        track.queued = queued;
        track.touched = t || busy != 0.0 || queued != 0.0;
    }

    /// Integrate every site's gauges forward to `now` without changing them.
    pub fn advance_to(&mut self, now: SimTime) {
        if !self.enabled {
            return;
        }
        let us = now.as_micros();
        for track in &mut self.sites {
            track.integrate(self.bucket_us, us);
        }
    }

    /// Merge a disjoint-writer partition of the same run (sharded join).
    /// Panics if both partitions wrote the same site gauge — site columns
    /// have exactly one writer by construction.
    pub fn merge_from(&mut self, other: &WindowedSeries) {
        if !other.enabled {
            return;
        }
        assert!(self.enabled, "merging into a disabled series");
        assert_eq!(self.bucket_us, other.bucket_us, "series bucket mismatch");
        assert_eq!(self.sites.len(), other.sites.len(), "series site mismatch");
        fn add_u64(mine: &mut Vec<u64>, theirs: &[u64]) {
            if mine.len() < theirs.len() {
                mine.resize(theirs.len(), 0);
            }
            for (a, b) in mine.iter_mut().zip(theirs.iter()) {
                *a += *b;
            }
        }
        add_u64(&mut self.submitted, &other.submitted);
        add_u64(&mut self.started, &other.started);
        add_u64(&mut self.completed, &other.completed);
        if self.active_delta.len() < other.active_delta.len() {
            self.active_delta.resize(other.active_delta.len(), 0);
        }
        for (a, b) in self.active_delta.iter_mut().zip(other.active_delta.iter()) {
            *a += *b;
        }
        for (mine, theirs) in self.sites.iter_mut().zip(other.sites.iter()) {
            if mine.busy_area.len() < theirs.busy_area.len() {
                mine.busy_area.resize(theirs.busy_area.len(), 0.0);
                mine.queue_area.resize(theirs.queue_area.len(), 0.0);
            }
            for (a, b) in mine.busy_area.iter_mut().zip(theirs.busy_area.iter()) {
                *a += *b;
            }
            for (a, b) in mine.queue_area.iter_mut().zip(theirs.queue_area.iter()) {
                *a += *b;
            }
            if theirs.touched {
                assert!(!mine.touched, "two series writers for one site");
                mine.busy = theirs.busy;
                mine.queued = theirs.queued;
                mine.touched = true;
            }
            if theirs.last_us > mine.last_us {
                mine.last_us = theirs.last_us;
            }
        }
    }

    fn row(&self, b: usize, active: i64, end_us: u64) -> SeriesRow {
        let start_us = b as u64 * self.bucket_us;
        let bucket_end_us = (b as u64 + 1) * self.bucket_us;
        let cover_us = bucket_end_us.min(end_us.max(start_us)) - start_us;
        let cover_s = cover_us as f64 / MICROS_PER_SEC as f64;
        let busy: f64 = self
            .sites
            .iter()
            .map(|s| s.busy_area.get(b).copied().unwrap_or(0.0))
            .sum();
        let queue: f64 = self
            .sites
            .iter()
            .map(|s| s.queue_area.get(b).copied().unwrap_or(0.0))
            .sum();
        let (utilization, queue_depth) = if cover_s > 0.0 {
            let util = if self.total_cores > 0.0 {
                busy / (self.total_cores * cover_s)
            } else {
                0.0
            };
            (util, queue / cover_s)
        } else {
            (0.0, 0.0)
        };
        SeriesRow {
            bucket: b as u64,
            t_end_s: (bucket_end_us.min(end_us.max(start_us))) as f64 / MICROS_PER_SEC as f64,
            submitted: self.submitted.get(b).copied().unwrap_or(0),
            started: self.started.get(b).copied().unwrap_or(0),
            completed: self.completed.get(b).copied().unwrap_or(0),
            active,
            utilization,
            queue_depth,
        }
    }

    /// Hand out rows for buckets that closed strictly before `now`, for the
    /// live sink. Cheap when no boundary has passed (one compare). Only the
    /// serial engine drains; sharded runs snapshot at join instead.
    pub fn drain_closed(&mut self, now: SimTime) -> Vec<SeriesRow> {
        if now.as_micros() < self.next_emit_us {
            return Vec::new();
        }
        let closed = self.bucket_of(now);
        self.next_emit_us = (closed as u64 + 1) * self.bucket_us;
        let boundary_us = closed as u64 * self.bucket_us;
        self.advance_to(SimTime::from_micros(boundary_us));
        let mut rows = Vec::with_capacity(closed - self.drained);
        for b in self.drained..closed {
            self.drained_active += self.active_delta.get(b).copied().unwrap_or(0);
            rows.push(self.row(b, self.drained_active, u64::MAX));
        }
        self.drained = closed;
        rows
    }

    /// How many leading buckets `drain_closed` has already handed out.
    pub fn drained_buckets(&self) -> usize {
        self.drained
    }

    /// Final snapshot covering `[0, end]`. Integrates gauges to `end` and
    /// reports every bucket (the last one as a partial window).
    pub fn snapshot(&mut self, end: SimTime) -> SeriesSnapshot {
        if !self.enabled {
            return SeriesSnapshot {
                bucket_secs: 0.0,
                end_s: end.as_secs_f64(),
                rows: Vec::new(),
            };
        }
        self.advance_to(end);
        let end_us = end.as_micros();
        let nbuckets = (end_us.div_ceil(self.bucket_us) as usize).max(1);
        let mut active = 0i64;
        let mut rows = Vec::with_capacity(nbuckets);
        for b in 0..nbuckets {
            active += self.active_delta.get(b).copied().unwrap_or(0);
            rows.push(self.row(b, active, end_us));
        }
        SeriesSnapshot {
            bucket_secs: self.bucket_us as f64 / MICROS_PER_SEC as f64,
            end_s: end.as_secs_f64(),
            rows,
        }
    }
}

/// One closed (or final partial) bucket of the windowed series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SeriesRow {
    /// Bucket index (bucket `b` covers `[b·w, (b+1)·w)` virtual seconds).
    pub bucket: u64,
    /// Virtual-time end of the covered window, seconds (truncated to the
    /// run end for the final partial bucket).
    pub t_end_s: f64,
    /// Jobs submitted in the window.
    pub submitted: u64,
    /// Jobs that began executing in the window.
    pub started: u64,
    /// Jobs that left the system in the window.
    pub completed: u64,
    /// Jobs executing at the end of the window.
    pub active: i64,
    /// Time-weighted mean busy-core fraction across the federation.
    pub utilization: f64,
    /// Time-weighted mean queued-job count summed over sites.
    pub queue_depth: f64,
}

/// The full windowed series at run end.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SeriesSnapshot {
    /// Bucket width in seconds.
    pub bucket_secs: f64,
    /// Run end in virtual seconds.
    pub end_s: f64,
    /// One row per bucket from virtual time 0 to the run end.
    pub rows: Vec<SeriesRow>,
}

impl SeriesSnapshot {
    /// Small scalar digest for run summaries (the full rows go to the live
    /// sink file or `SimOutput.stats`).
    pub fn digest(&self) -> SeriesDigest {
        SeriesDigest {
            bucket_secs: self.bucket_secs,
            buckets: self.rows.len(),
            submitted: self.rows.iter().map(|r| r.submitted).sum(),
            completed: self.rows.iter().map(|r| r.completed).sum(),
            peak_active: self.rows.iter().map(|r| r.active).max().unwrap_or(0),
            peak_queue_depth: self.rows.iter().map(|r| r.queue_depth).fold(0.0, f64::max),
            mean_utilization: if self.rows.is_empty() {
                0.0
            } else {
                // Weight by covered window length (the last bucket may be
                // partial).
                let mut t0 = 0.0;
                let (mut area, mut span) = (0.0, 0.0);
                for r in &self.rows {
                    let w = r.t_end_s - t0;
                    area += r.utilization * w;
                    span += w;
                    t0 = r.t_end_s;
                }
                if span > 0.0 {
                    area / span
                } else {
                    0.0
                }
            },
        }
    }
}

/// Scalar digest of a [`SeriesSnapshot`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SeriesDigest {
    /// Bucket width in seconds.
    pub bucket_secs: f64,
    /// Number of buckets covered.
    pub buckets: usize,
    /// Total jobs submitted.
    pub submitted: u64,
    /// Total jobs that left the system.
    pub completed: u64,
    /// Peak concurrently-executing jobs at any bucket boundary.
    pub peak_active: i64,
    /// Peak time-weighted queue depth over buckets.
    pub peak_queue_depth: f64,
    /// Run-long time-weighted mean utilization.
    pub mean_utilization: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hours(h: u64) -> SimTime {
        SimTime::from_hours(h)
    }

    #[test]
    fn disabled_series_is_inert() {
        let mut s = WindowedSeries::disabled();
        s.on_submit(hours(1));
        s.set_site(0, hours(1), 4.0, 2.0);
        assert!(s.drain_closed(hours(10)).is_empty());
        assert!(s.snapshot(hours(10)).rows.is_empty());
    }

    #[test]
    fn counters_land_in_their_buckets() {
        let mut s = WindowedSeries::enabled(SimDuration::from_hours(1), &[8.0]);
        s.on_submit(SimTime::from_secs(10));
        s.on_submit(SimTime::from_secs(3_700));
        s.on_start(SimTime::from_secs(3_800));
        s.on_stop(SimTime::from_secs(7_300));
        s.on_complete(SimTime::from_secs(7_300));
        let snap = s.snapshot(SimTime::from_secs(8_000));
        assert_eq!(snap.rows.len(), 3);
        assert_eq!(snap.rows[0].submitted, 1);
        assert_eq!(snap.rows[1].submitted, 1);
        assert_eq!(snap.rows[1].started, 1);
        assert_eq!(snap.rows[1].active, 1);
        assert_eq!(snap.rows[2].active, 0);
        assert_eq!(snap.rows[2].completed, 1);
    }

    #[test]
    fn utilization_integrates_exactly() {
        let mut s = WindowedSeries::enabled(SimDuration::from_hours(1), &[8.0, 8.0]);
        // Site 0 busy 4/8 cores for the first 90 minutes.
        s.set_site(0, SimTime::ZERO, 4.0, 2.0);
        s.set_site(0, SimTime::from_secs(90 * 60), 0.0, 0.0);
        let snap = s.snapshot(hours(2));
        // Bucket 0: 4 cores × 3600 s over 16 cores × 3600 s = 0.25.
        assert!((snap.rows[0].utilization - 0.25).abs() < 1e-12);
        // Bucket 1: 4 cores × 1800 s over 16 × 3600 = 0.125.
        assert!((snap.rows[1].utilization - 0.125).abs() < 1e-12);
        assert!((snap.rows[0].queue_depth - 2.0).abs() < 1e-12);
        assert!((snap.rows[1].queue_depth - 1.0).abs() < 1e-12);
        let digest = snap.digest();
        assert!((digest.mean_utilization - 0.1875).abs() < 1e-12);
        assert!((digest.peak_queue_depth - 2.0).abs() < 1e-12);
    }

    #[test]
    fn partial_final_bucket_normalizes_by_covered_time() {
        let mut s = WindowedSeries::enabled(SimDuration::from_hours(1), &[4.0]);
        s.set_site(0, SimTime::ZERO, 4.0, 0.0);
        // End mid-bucket: 30 minutes into bucket 0, fully busy.
        let snap = s.snapshot(SimTime::from_secs(30 * 60));
        assert_eq!(snap.rows.len(), 1);
        assert!((snap.rows[0].utilization - 1.0).abs() < 1e-12);
        assert!((snap.rows[0].t_end_s - 1800.0).abs() < 1e-12);
    }

    #[test]
    fn drain_closed_matches_snapshot_prefix() {
        let mut s = WindowedSeries::enabled(SimDuration::from_hours(1), &[8.0]);
        s.on_submit(SimTime::from_secs(100));
        s.on_start(SimTime::from_secs(200));
        s.set_site(0, SimTime::from_secs(200), 2.0, 1.0);
        assert!(s.drain_closed(SimTime::from_secs(500)).is_empty());
        let rows = s.drain_closed(SimTime::from_secs(3_700));
        assert_eq!(rows.len(), 1);
        s.on_stop(SimTime::from_secs(4_000));
        s.on_complete(SimTime::from_secs(4_000));
        s.set_site(0, SimTime::from_secs(4_000), 0.0, 0.0);
        let mut clone = s.clone();
        let snap = clone.snapshot(SimTime::from_secs(8_000));
        assert_eq!(rows[0], snap.rows[0]);
    }

    #[test]
    fn merge_of_disjoint_writers_matches_single_writer() {
        let bucket = SimDuration::from_hours(1);
        let cores = [8.0, 4.0];
        let mut whole = WindowedSeries::enabled(bucket, &cores);
        whole.on_submit(SimTime::from_secs(100));
        whole.set_site(0, SimTime::from_secs(100), 3.0, 1.0);
        whole.set_site(1, SimTime::from_secs(200), 2.0, 0.0);
        whole.on_start(SimTime::from_secs(100));
        whole.on_start(SimTime::from_secs(200));
        whole.advance_to(SimTime::from_secs(5_000));

        let mut coord = WindowedSeries::enabled(bucket, &cores);
        coord.on_submit(SimTime::from_secs(100));
        let mut shard_a = WindowedSeries::enabled(bucket, &cores);
        shard_a.set_site(0, SimTime::from_secs(100), 3.0, 1.0);
        shard_a.on_start(SimTime::from_secs(100));
        shard_a.advance_to(SimTime::from_secs(5_000));
        let mut shard_b = WindowedSeries::enabled(bucket, &cores);
        shard_b.set_site(1, SimTime::from_secs(200), 2.0, 0.0);
        shard_b.on_start(SimTime::from_secs(200));
        shard_b.advance_to(SimTime::from_secs(5_000));

        coord.merge_from(&shard_a);
        coord.merge_from(&shard_b);
        let end = SimTime::from_secs(7_000);
        assert_eq!(coord.snapshot(end), whole.snapshot(end));
    }

    #[test]
    #[should_panic(expected = "two series writers")]
    fn merge_rejects_double_writers() {
        let bucket = SimDuration::from_hours(1);
        let mut a = WindowedSeries::enabled(bucket, &[4.0]);
        a.set_site(0, SimTime::from_secs(1), 1.0, 0.0);
        let b = a.clone();
        a.merge_from(&b);
    }
}
