//! Run-level metrics: a small registry of named counters, time-weighted
//! gauges, and time series, plus a serializable end-of-run snapshot.
//!
//! The registry is the observability companion to the engine: simulation
//! drivers register instruments up front (cheap, once) and feed them from
//! event handlers. Every mutating operation is a single branch when the
//! registry is disabled, so instrumentation can stay on hot paths
//! unconditionally — and because the registry only *observes* (it never
//! draws randomness or schedules events), enabling it cannot perturb a
//! simulation's results.
//!
//! * **Counters** — monotone `u64` totals (jobs completed, bytes staged).
//! * **Gauges** — piecewise-constant signals tracked by [`TimeWeighted`]
//!   (busy cores, queue length); the snapshot reports current / average /
//!   peak / integral.
//! * **Series** — explicit `(time, value)` samples pushed by the driver
//!   (typically from a periodic sampler event).
//!
//! [`MetricsSnapshot`] is plain serializable data for JSON export;
//! [`EngineProfile`] carries the wall-clock engine figures that ride along
//! with a snapshot but are *not* part of the deterministic run output.

use crate::sketch::SketchSummary;
use crate::stats::TimeWeighted;
use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// Handle to a registered counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(usize);

/// Handle to a registered time-weighted gauge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeId(usize);

/// Handle to a registered time series.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeriesId(usize);

#[derive(Debug, Clone)]
struct Counter {
    name: String,
    value: u64,
}

#[derive(Debug, Clone)]
struct Gauge {
    name: String,
    tw: TimeWeighted,
    /// Has any `gauge_set`/`gauge_add` landed here? Merging uses this to
    /// tell a live signal from an untouched default on another registry.
    touched: bool,
}

#[derive(Debug, Clone)]
struct SeriesBuf {
    name: String,
    points: Vec<(SimTime, f64)>,
}

/// The metrics registry. See the module docs for the model.
#[derive(Debug, Clone)]
pub struct MetricsRegistry {
    enabled: bool,
    counters: Vec<Counter>,
    gauges: Vec<Gauge>,
    series: Vec<SeriesBuf>,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::disabled()
    }
}

impl MetricsRegistry {
    /// A disabled registry: registration works (handles stay valid), every
    /// mutating operation is a single branch, and [`MetricsRegistry::snapshot`]
    /// returns `None`.
    pub fn disabled() -> Self {
        MetricsRegistry {
            enabled: false,
            counters: Vec::new(),
            gauges: Vec::new(),
            series: Vec::new(),
        }
    }

    /// An enabled registry.
    pub fn enabled() -> Self {
        MetricsRegistry {
            enabled: true,
            ..Self::disabled()
        }
    }

    /// Is the registry recording?
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Turn recording on or off. Instruments registered while disabled stay
    /// valid, so a driver can lay out its instruments once and flip this
    /// from configuration.
    pub fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
    }

    /// Register a counter (starts at 0). Registration is independent of the
    /// enabled flag so instrument layout never depends on configuration.
    pub fn counter(&mut self, name: impl Into<String>) -> CounterId {
        self.counters.push(Counter {
            name: name.into(),
            value: 0,
        });
        CounterId(self.counters.len() - 1)
    }

    /// Register a time-weighted gauge starting at `start` with `initial`.
    pub fn gauge(&mut self, name: impl Into<String>, start: SimTime, initial: f64) -> GaugeId {
        self.gauges.push(Gauge {
            name: name.into(),
            tw: TimeWeighted::new(start, initial),
            touched: false,
        });
        GaugeId(self.gauges.len() - 1)
    }

    /// Register an empty time series.
    pub fn series(&mut self, name: impl Into<String>) -> SeriesId {
        self.series.push(SeriesBuf {
            name: name.into(),
            points: Vec::new(),
        });
        SeriesId(self.series.len() - 1)
    }

    /// Increment a counter by 1.
    #[inline]
    pub fn inc(&mut self, id: CounterId) {
        self.add(id, 1);
    }

    /// Increment a counter by `n`.
    #[inline]
    pub fn add(&mut self, id: CounterId, n: u64) {
        if !self.enabled {
            return;
        }
        self.counters[id.0].value += n;
    }

    /// Set a gauge's value at `now`.
    #[inline]
    pub fn gauge_set(&mut self, id: GaugeId, now: SimTime, value: f64) {
        if !self.enabled {
            return;
        }
        self.gauges[id.0].touched = true;
        self.gauges[id.0].tw.set(now, value);
    }

    /// Add `delta` to a gauge at `now`.
    #[inline]
    pub fn gauge_add(&mut self, id: GaugeId, now: SimTime, delta: f64) {
        if !self.enabled {
            return;
        }
        self.gauges[id.0].touched = true;
        self.gauges[id.0].tw.add(now, delta);
    }

    /// Append a `(at, value)` point to a series.
    #[inline]
    pub fn push(&mut self, id: SeriesId, at: SimTime, value: f64) {
        if !self.enabled {
            return;
        }
        self.series[id.0].points.push((at, value));
    }

    /// Current value of a counter (0 when disabled).
    pub fn counter_value(&self, id: CounterId) -> u64 {
        self.counters[id.0].value
    }

    /// Fold another registry with the *same instrument layout* into this
    /// one — the fan-in step of a sharded run, where every participant
    /// registers the identical instrument set and each instrument has a
    /// single writer.
    ///
    /// Counters sum index-wise. A gauge is taken wholesale from `other`
    /// when `other` touched it (single-writer: at most one participant ever
    /// writes a given gauge, so "touched on both sides" is a layout bug and
    /// panics). Series concatenate in call order — callers merge shards in
    /// a fixed order to keep output canonical.
    pub fn merge_from(&mut self, other: &MetricsRegistry) {
        assert_eq!(
            self.counters.len(),
            other.counters.len(),
            "merging registries with different counter layouts"
        );
        assert_eq!(self.gauges.len(), other.gauges.len());
        assert_eq!(self.series.len(), other.series.len());
        for (c, oc) in self.counters.iter_mut().zip(&other.counters) {
            debug_assert_eq!(c.name, oc.name);
            c.value += oc.value;
        }
        for (g, og) in self.gauges.iter_mut().zip(&other.gauges) {
            debug_assert_eq!(g.name, og.name);
            if og.touched {
                assert!(!g.touched, "gauge {} written by two participants", g.name);
                g.tw = og.tw.clone();
                g.touched = true;
            }
        }
        for (s, os) in self.series.iter_mut().zip(&other.series) {
            debug_assert_eq!(s.name, os.name);
            s.points.extend(os.points.iter().copied());
        }
    }

    /// Freeze everything into a serializable snapshot closed out at `now`.
    /// Returns `None` when the registry is disabled.
    pub fn snapshot(&self, now: SimTime) -> Option<MetricsSnapshot> {
        if !self.enabled {
            return None;
        }
        Some(MetricsSnapshot {
            at_secs: now.as_secs_f64(),
            counters: self
                .counters
                .iter()
                .map(|c| CounterSnapshot {
                    name: c.name.clone(),
                    value: c.value,
                })
                .collect(),
            gauges: self
                .gauges
                .iter()
                .map(|g| GaugeSnapshot {
                    name: g.name.clone(),
                    current: g.tw.current(),
                    average: g.tw.average(now),
                    peak: g.tw.peak(),
                    integral: g.tw.integral(now),
                })
                .collect(),
            series: self
                .series
                .iter()
                .map(|s| SeriesSnapshot {
                    name: s.name.clone(),
                    points: s
                        .points
                        .iter()
                        .map(|&(at, v)| (at.as_secs_f64(), v))
                        .collect(),
                })
                .collect(),
            engine: None,
        })
    }
}

/// One counter's final value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CounterSnapshot {
    /// Instrument name.
    pub name: String,
    /// Final value.
    pub value: u64,
}

/// One gauge's closing statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaugeSnapshot {
    /// Instrument name.
    pub name: String,
    /// Value at snapshot time.
    pub current: f64,
    /// Time-weighted average over the gauge's lifetime.
    pub average: f64,
    /// Highest value reached.
    pub peak: f64,
    /// Integral (value·seconds) over the gauge's lifetime.
    pub integral: f64,
}

/// One time series, in seconds-since-start x coordinates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SeriesSnapshot {
    /// Instrument name.
    pub name: String,
    /// `(seconds, value)` points in time order.
    pub points: Vec<(f64, f64)>,
}

/// Wall-clock engine profile for one run. Reported *alongside* simulation
/// output, never inside it: wall time varies run to run while the
/// simulation results stay bit-identical.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EngineProfile {
    /// Events the engine delivered.
    pub events_delivered: u64,
    /// Wall-clock seconds spent inside the event loop.
    pub wall_seconds: f64,
    /// `events_delivered / wall_seconds` (0 for a zero-duration run).
    pub events_per_sec: f64,
    /// High-water mark of the event queue (peak heap footprint proxy).
    pub peak_queue_len: u64,
    /// Peak resident set of the measuring process in bytes
    /// ([`crate::memory::peak_rss_bytes`]); `None` off Linux or when the
    /// caller did not sample it. A whole-process figure: meaningful for a
    /// bench running one scenario at a time, not for concurrent batches.
    #[serde(default)]
    pub peak_rss_bytes: Option<u64>,
    /// Heap allocations during the run (`None` unless the binary installed
    /// [`crate::memory::CountingAlloc`]).
    #[serde(default)]
    pub allocations: Option<u64>,
    /// Bytes requested from the allocator during the run (same gating).
    #[serde(default)]
    pub allocated_bytes: Option<u64>,
    /// Sync-round profile of the sharded coordinator protocol (`None` for
    /// serial runs). Like the rest of the profile this is wall-clock-bearing
    /// observer data: it rides alongside the deterministic output and is
    /// excluded from byte-identity comparisons.
    #[serde(default)]
    pub sync: Option<SyncProfile>,
}

impl EngineProfile {
    /// Build a profile from the raw figures, computing the rate. Memory
    /// fields start empty; see [`EngineProfile::with_memory`].
    pub fn new(events_delivered: u64, wall_seconds: f64, peak_queue_len: usize) -> Self {
        let events_per_sec = if wall_seconds > 0.0 {
            events_delivered as f64 / wall_seconds
        } else {
            0.0
        };
        EngineProfile {
            events_delivered,
            wall_seconds,
            events_per_sec,
            peak_queue_len: peak_queue_len as u64,
            peak_rss_bytes: None,
            allocations: None,
            allocated_bytes: None,
            sync: None,
        }
    }

    /// Attach memory figures: the process's peak RSS and (when a counting
    /// allocator is installed) the run's allocation traffic.
    pub fn with_memory(
        mut self,
        peak_rss_bytes: Option<u64>,
        alloc: Option<crate::memory::AllocDelta>,
    ) -> Self {
        self.peak_rss_bytes = peak_rss_bytes;
        self.allocations = alloc.map(|d| d.allocations);
        self.allocated_bytes = alloc.map(|d| d.bytes);
        self
    }
}

/// Per-round profile of the sharded coordinator's conservative sync
/// protocol — the measurement layer the "cut sync rounds" roadmap item was
/// blocked on. Counters say *how many* of each protocol step happened;
/// the sketch summaries say how long coordinator rounds took (wall-clock)
/// and how many shards each grant round advanced (occupancy).
///
/// Everything here is observer data gathered outside the deterministic
/// simulation state: the wall-clock figures vary run to run, while the
/// protocol counters are functions of `(config, seed, threads)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SyncProfile {
    /// Worker shards the run used (excludes the coordinator).
    pub shards: u64,
    /// Coordinator drive-loop rounds.
    pub rounds: u64,
    /// Events the coordinator executed itself (routing, admissions).
    pub coord_events: u64,
    /// Candidate interludes: rounds that parked every shard so one watched
    /// head event (completion/kill) could run under a clamped bound.
    pub candidate_rounds: u64,
    /// Grant rounds: bound-advance broadcasts after coordinator work.
    pub grant_rounds: u64,
    /// Individual `Advance` grants sent to shards.
    pub advances_sent: u64,
    /// `Parked` reports received from shards.
    pub parks_received: u64,
    /// Interlude messages a candidate execution sent back to the
    /// coordinator (exports, finishes, kills).
    pub interlude_messages: u64,
    /// Candidate rounds where the clamp *mattered*: the candidate's
    /// timestamp was below the shard's standing grant, voiding a higher
    /// free-running bound the shard had already been given.
    pub bound_clamps: u64,
    /// Watched-completion candidates resolved *inside* a batched grant:
    /// their export conversation rode an already-open round (the ack
    /// carried a prefetched bound), so no dedicated candidate round was
    /// paid for them.
    #[serde(default)]
    pub batched_candidates: u64,
    /// Whether the adaptive execution governor degraded this run to the
    /// serial path mid-run (see the `governor` run option).
    #[serde(default)]
    pub governor_fired: bool,
    /// Events delivered (all participants) when the governor folded the
    /// shards into the coordinator; 0 when it never fired.
    #[serde(default)]
    pub governor_at_events: u64,
    /// Events executed on the fused serial path after the fold.
    #[serde(default)]
    pub serial_tail_events: u64,
    /// Coordinator receives satisfied within the spin window.
    pub recv_spins: u64,
    /// Coordinator receives that fell back to a blocking wait.
    pub recv_blocks: u64,
    /// Shard-side receives satisfied within the spin window (all shards).
    pub shard_recv_spins: u64,
    /// Shard-side receives that fell back to blocking (all shards).
    pub shard_recv_blocks: u64,
    /// Wall-clock seconds per coordinator drive round.
    pub round_wall: SketchSummary,
    /// Wall-clock seconds per candidate interlude (park → execute → ack).
    pub candidate_wall: SketchSummary,
    /// Shards advanced per grant round.
    pub grant_occupancy: SketchSummary,
}

/// A full end-of-run metrics snapshot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Virtual time (seconds) the snapshot was taken at.
    pub at_secs: f64,
    /// All counters, registration order.
    pub counters: Vec<CounterSnapshot>,
    /// All gauges, registration order.
    pub gauges: Vec<GaugeSnapshot>,
    /// All series, registration order.
    pub series: Vec<SeriesSnapshot>,
    /// Engine profile, attached by the harness after the run (wall-clock
    /// data lives outside the deterministic simulation).
    #[serde(default)]
    pub engine: Option<EngineProfile>,
}

impl MetricsSnapshot {
    /// Look up a counter's value by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }

    /// Look up a gauge by name.
    pub fn gauge(&self, name: &str) -> Option<&GaugeSnapshot> {
        self.gauges.iter().find(|g| g.name == name)
    }

    /// Look up a series by name.
    pub fn series(&self, name: &str) -> Option<&SeriesSnapshot> {
        self.series.iter().find(|s| s.name == name)
    }

    /// Sum of all counters whose name starts with `prefix` — handy for
    /// conservation checks over per-site or per-modality families.
    pub fn counter_sum(&self, prefix: &str) -> u64 {
        self.counters
            .iter()
            .filter(|c| c.name.starts_with(prefix))
            .map(|c| c.value)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn disabled_registry_is_inert() {
        let mut m = MetricsRegistry::disabled();
        let c = m.counter("jobs");
        let g = m.gauge("busy", SimTime::ZERO, 0.0);
        let s = m.series("queue");
        m.inc(c);
        m.gauge_set(g, SimTime::from_secs(10), 5.0);
        m.push(s, SimTime::from_secs(10), 1.0);
        assert_eq!(m.counter_value(c), 0);
        assert!(m.snapshot(SimTime::from_secs(10)).is_none());
        assert!(!m.is_enabled());
    }

    #[test]
    fn counters_gauges_series_snapshot() {
        let mut m = MetricsRegistry::enabled();
        let c = m.counter("jobs_completed");
        let g = m.gauge("busy_cores", SimTime::ZERO, 0.0);
        let s = m.series("queue_len");
        m.inc(c);
        m.add(c, 2);
        m.gauge_set(g, SimTime::from_secs(10), 4.0); // 0 for 10 s
        m.gauge_add(g, SimTime::from_secs(20), -2.0); // 4 for 10 s, then 2
        m.push(s, SimTime::from_secs(5), 1.0);
        m.push(s, SimTime::from_secs(15), 3.0);
        let snap = m.snapshot(SimTime::from_secs(30)).expect("enabled");
        assert_eq!(snap.counter("jobs_completed"), Some(3));
        assert_eq!(snap.counter("missing"), None);
        let busy = snap.gauge("busy_cores").expect("registered");
        assert_eq!(busy.current, 2.0);
        assert_eq!(busy.peak, 4.0);
        // 0·10 + 4·10 + 2·10 = 60 over 30 s.
        assert!((busy.average - 2.0).abs() < 1e-12);
        assert!((busy.integral - 60.0).abs() < 1e-9);
        let q = snap.series("queue_len").expect("registered");
        assert_eq!(q.points, vec![(5.0, 1.0), (15.0, 3.0)]);
        assert_eq!(snap.at_secs, 30.0);
    }

    #[test]
    fn counter_sum_by_prefix() {
        let mut m = MetricsRegistry::enabled();
        let a = m.counter("site.alpha.completions");
        let b = m.counter("site.bravo.completions");
        let other = m.counter("staging_bytes");
        m.add(a, 5);
        m.add(b, 7);
        m.add(other, 999);
        let snap = m.snapshot(SimTime::ZERO).unwrap();
        assert_eq!(snap.counter_sum("site."), 12);
    }

    #[test]
    fn merge_sums_counters_takes_touched_gauges_concats_series() {
        fn layout(m: &mut MetricsRegistry) -> (CounterId, GaugeId, GaugeId, SeriesId) {
            (
                m.counter("done"),
                m.gauge("busy.a", SimTime::ZERO, 0.0),
                m.gauge("busy.b", SimTime::ZERO, 0.0),
                m.series("q"),
            )
        }
        let mut coord = MetricsRegistry::enabled();
        let (c, ga, _gb, s) = layout(&mut coord);
        coord.add(c, 2);
        coord.gauge_set(ga, SimTime::from_secs(5), 3.0);
        coord.push(s, SimTime::from_secs(1), 1.0);

        let mut shard = MetricsRegistry::enabled();
        let (c2, _ga2, gb2, s2) = layout(&mut shard);
        shard.add(c2, 5);
        shard.gauge_set(gb2, SimTime::from_secs(8), 7.0);
        shard.push(s2, SimTime::from_secs(2), 2.0);

        coord.merge_from(&shard);
        let snap = coord.snapshot(SimTime::from_secs(10)).unwrap();
        assert_eq!(snap.counter("done"), Some(7));
        assert_eq!(snap.gauge("busy.a").unwrap().current, 3.0);
        assert_eq!(snap.gauge("busy.b").unwrap().current, 7.0);
        assert_eq!(
            snap.series("q").unwrap().points,
            vec![(1.0, 1.0), (2.0, 2.0)]
        );
    }

    #[test]
    #[should_panic(expected = "written by two participants")]
    fn merge_rejects_double_written_gauges() {
        let mut a = MetricsRegistry::enabled();
        let g = a.gauge("busy", SimTime::ZERO, 0.0);
        a.gauge_set(g, SimTime::from_secs(1), 1.0);
        let mut b = MetricsRegistry::enabled();
        let g2 = b.gauge("busy", SimTime::ZERO, 0.0);
        b.gauge_set(g2, SimTime::from_secs(1), 2.0);
        a.merge_from(&b);
    }

    #[test]
    fn engine_profile_rate() {
        let p = EngineProfile::new(1000, 0.5, 42);
        assert_eq!(p.events_per_sec, 2000.0);
        assert_eq!(p.peak_queue_len, 42);
        let z = EngineProfile::new(10, 0.0, 1);
        assert_eq!(z.events_per_sec, 0.0);
    }

    #[test]
    fn snapshot_json_roundtrip() {
        let mut m = MetricsRegistry::enabled();
        let c = m.counter("n");
        m.inc(c);
        let g = m.gauge("g", SimTime::ZERO, 1.0);
        m.gauge_set(g, SimTime::ZERO + SimDuration::from_secs(1), 2.0);
        let s = m.series("s");
        m.push(s, SimTime::from_secs(1), 0.5);
        let mut snap = m.snapshot(SimTime::from_secs(2)).unwrap();
        snap.engine = Some(EngineProfile::new(5, 0.001, 3));
        let json = serde_json::to_string(&snap).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
        assert_eq!(back.engine.as_ref().unwrap().events_delivered, 5);
    }
}
