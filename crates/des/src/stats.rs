//! Online statistics for simulation outputs.
//!
//! Everything here is single-pass and allocation-light so it can sit on hot
//! event paths:
//!
//! * [`OnlineStats`] — Welford mean/variance/min/max.
//! * [`TimeWeighted`] — integral-of-value-over-time averages; the correct way
//!   to measure utilization and queue length.
//! * [`Histogram`] — fixed-width or logarithmic bins with quantile queries.
//! * [`P2Quantile`] — the P² streaming quantile estimator (no sample storage).
//! * [`ci_student_t`] — replication-level confidence intervals.

use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Welford single-pass mean / variance / extrema accumulator.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Record one observation. Non-finite values are ignored (and counted
    /// nowhere) — a deliberate guard against NaN poisoning long runs.
    pub fn record(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merge another accumulator into this one (parallel reduction; Chan et al.).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (0 if fewer than 2 observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`None` if empty).
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Largest observation (`None` if empty).
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.mean() * self.n as f64
    }
}

/// Time-weighted average of a piecewise-constant signal, e.g. "busy nodes".
///
/// Call [`TimeWeighted::set`] whenever the value changes; query the average
/// over any elapsed window with [`TimeWeighted::average`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TimeWeighted {
    value: f64,
    last_change: SimTime,
    start: SimTime,
    integral: f64, // value·seconds accumulated before `last_change`
    peak: f64,
}

impl TimeWeighted {
    /// Start tracking at `start` with initial `value`.
    pub fn new(start: SimTime, value: f64) -> Self {
        TimeWeighted {
            value,
            last_change: start,
            start,
            integral: 0.0,
            peak: value,
        }
    }

    /// The current value of the signal.
    pub fn current(&self) -> f64 {
        self.value
    }

    /// The maximum value the signal has reached.
    pub fn peak(&self) -> f64 {
        self.peak
    }

    /// Change the signal's value at time `now` (must be monotone).
    pub fn set(&mut self, now: SimTime, value: f64) {
        debug_assert!(now >= self.last_change, "TimeWeighted: time went backwards");
        let dt = now.saturating_since(self.last_change).as_secs_f64();
        self.integral += self.value * dt;
        self.value = value;
        self.last_change = now;
        self.peak = self.peak.max(value);
    }

    /// Add `delta` to the signal at time `now`.
    pub fn add(&mut self, now: SimTime, delta: f64) {
        let v = self.value + delta;
        self.set(now, v);
    }

    /// The time-weighted average over `[start, now]`. Returns 0 for an empty
    /// window.
    pub fn average(&self, now: SimTime) -> f64 {
        let span = now.saturating_since(self.start).as_secs_f64();
        if span <= 0.0 {
            return 0.0;
        }
        let tail = now.saturating_since(self.last_change).as_secs_f64();
        (self.integral + self.value * tail) / span
    }

    /// The integral of the signal over `[start, now]`, in value·seconds.
    pub fn integral(&self, now: SimTime) -> f64 {
        let tail = now.saturating_since(self.last_change).as_secs_f64();
        self.integral + self.value * tail
    }
}

/// Binning strategy for [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Binning {
    /// `count` equal-width bins covering `[lo, hi)`; outliers clamp to the
    /// first/last bin.
    Linear {
        /// Lower edge of the first bin.
        lo: f64,
        /// Upper edge of the last bin.
        hi: f64,
        /// Number of bins.
        count: usize,
    },
    /// Logarithmic bins: `[lo·b^i, lo·b^(i+1))` with base `b`, `count` bins.
    /// Values below `lo` clamp into bin 0.
    Log {
        /// Lower edge of the first bin (must be positive).
        lo: f64,
        /// Multiplicative bin width (> 1).
        base: f64,
        /// Number of bins.
        count: usize,
    },
}

/// A fixed-layout histogram with quantile estimation by linear interpolation
/// within bins.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    binning: Binning,
    counts: Vec<u64>,
    total: u64,
    raw: OnlineStats,
}

impl Histogram {
    /// A histogram with the given binning. Panics on degenerate layouts.
    pub fn new(binning: Binning) -> Self {
        let count = match binning {
            Binning::Linear { lo, hi, count } => {
                assert!(count > 0 && hi > lo, "bad linear binning");
                count
            }
            Binning::Log { lo, base, count } => {
                assert!(count > 0 && lo > 0.0 && base > 1.0, "bad log binning");
                count
            }
        };
        Histogram {
            binning,
            counts: vec![0; count],
            total: 0,
            raw: OnlineStats::new(),
        }
    }

    /// A log-binned histogram suitable for durations from 1 s to ~4 months.
    pub fn for_durations() -> Self {
        Histogram::new(Binning::Log {
            lo: 1.0,
            base: 2.0,
            count: 24,
        })
    }

    fn bin_of(&self, x: f64) -> usize {
        match self.binning {
            Binning::Linear { lo, hi, count } => {
                if x <= lo {
                    0
                } else if x >= hi {
                    count - 1
                } else {
                    (((x - lo) / (hi - lo)) * count as f64) as usize
                }
            }
            Binning::Log { lo, base, count } => {
                if x <= lo {
                    0
                } else {
                    let i = ((x / lo).ln() / base.ln()).floor() as usize;
                    i.min(count - 1)
                }
            }
        }
    }

    /// Lower edge of bin `i`.
    pub fn bin_lo(&self, i: usize) -> f64 {
        match self.binning {
            Binning::Linear { lo, hi, count } => lo + (hi - lo) * i as f64 / count as f64,
            Binning::Log { lo, base, .. } => lo * base.powi(i as i32),
        }
    }

    /// Upper edge of bin `i`.
    pub fn bin_hi(&self, i: usize) -> f64 {
        self.bin_lo(i + 1)
    }

    /// Record one observation (non-finite values ignored).
    pub fn record(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        let b = self.bin_of(x);
        self.counts[b] += 1;
        self.total += 1;
        self.raw.record(x);
    }

    /// Total observation count.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Exact running mean of recorded values (not binned).
    pub fn mean(&self) -> f64 {
        self.raw.mean()
    }

    /// Per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Estimate quantile `q ∈ [0,1]` by interpolating within the containing
    /// bin. Returns `None` if empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let target = q * self.total as f64;
        let mut acc = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            let next = acc + c;
            if next as f64 >= target && c > 0 {
                let within = (target - acc as f64) / c as f64;
                let lo = self.bin_lo(i);
                let hi = self.bin_hi(i);
                return Some(lo + within.clamp(0.0, 1.0) * (hi - lo));
            }
            acc = next;
        }
        Some(self.bin_hi(self.counts.len() - 1))
    }

    /// The cumulative distribution as `(bin upper edge, F(edge))` pairs,
    /// skipping trailing empty bins. Handy for dumping CDF figures.
    pub fn cdf_points(&self) -> Vec<(f64, f64)> {
        let mut out = Vec::new();
        if self.total == 0 {
            return out;
        }
        let mut acc = 0u64;
        let last_nonempty = self.counts.iter().rposition(|&c| c > 0).unwrap_or(0);
        for (i, &c) in self.counts.iter().enumerate().take(last_nonempty + 1) {
            acc += c;
            out.push((self.bin_hi(i), acc as f64 / self.total as f64));
        }
        out
    }

    /// Merge a same-layout histogram into this one. Panics on layout mismatch.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.binning, other.binning, "histogram layout mismatch");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.raw.merge(&other.raw);
    }
}

/// P² streaming quantile estimator (Jain & Chlamtac 1985): tracks one
/// quantile with five markers and no sample buffer.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct P2Quantile {
    q: f64,
    n: u64,
    heights: [f64; 5],
    positions: [f64; 5],
    desired: [f64; 5],
    increments: [f64; 5],
    initial: Vec<f64>,
}

impl P2Quantile {
    /// An estimator for quantile `q ∈ (0, 1)`.
    pub fn new(q: f64) -> Self {
        assert!(q > 0.0 && q < 1.0, "quantile must be in (0,1)");
        P2Quantile {
            q,
            n: 0,
            heights: [0.0; 5],
            positions: [1.0, 2.0, 3.0, 4.0, 5.0],
            desired: [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0],
            increments: [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0],
            initial: Vec::with_capacity(5),
        }
    }

    /// Record one observation (non-finite ignored).
    pub fn record(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        self.n += 1;
        if self.initial.len() < 5 {
            self.initial.push(x);
            if self.initial.len() == 5 {
                self.initial.sort_by(|a, b| a.partial_cmp(b).unwrap());
                self.heights.copy_from_slice(&self.initial);
            }
            return;
        }
        // Find cell k such that heights[k] <= x < heights[k+1].
        let k = if x < self.heights[0] {
            self.heights[0] = x;
            0
        } else if x >= self.heights[4] {
            self.heights[4] = x;
            3
        } else {
            let mut k = 0;
            for i in 0..4 {
                if x >= self.heights[i] && x < self.heights[i + 1] {
                    k = i;
                    break;
                }
            }
            k
        };
        for p in self.positions.iter_mut().skip(k + 1) {
            *p += 1.0;
        }
        for i in 0..5 {
            self.desired[i] += self.increments[i];
        }
        // Adjust interior markers with the piecewise-parabolic formula.
        for i in 1..4 {
            let d = self.desired[i] - self.positions[i];
            let right = self.positions[i + 1] - self.positions[i];
            let left = self.positions[i - 1] - self.positions[i];
            if (d >= 1.0 && right > 1.0) || (d <= -1.0 && left < -1.0) {
                let d = d.signum();
                let candidate = self.parabolic(i, d);
                let new_h = if self.heights[i - 1] < candidate && candidate < self.heights[i + 1] {
                    candidate
                } else {
                    self.linear(i, d)
                };
                self.heights[i] = new_h;
                self.positions[i] += d;
            }
        }
    }

    fn parabolic(&self, i: usize, d: f64) -> f64 {
        let p = &self.positions;
        let h = &self.heights;
        h[i] + d / (p[i + 1] - p[i - 1])
            * ((p[i] - p[i - 1] + d) * (h[i + 1] - h[i]) / (p[i + 1] - p[i])
                + (p[i + 1] - p[i] - d) * (h[i] - h[i - 1]) / (p[i] - p[i - 1]))
    }

    fn linear(&self, i: usize, d: f64) -> f64 {
        let j = (i as f64 + d) as usize;
        self.heights[i]
            + d * (self.heights[j] - self.heights[i]) / (self.positions[j] - self.positions[i])
    }

    /// Current estimate. For fewer than 5 observations, the exact empirical
    /// quantile of what has been seen. `None` if empty.
    pub fn estimate(&self) -> Option<f64> {
        if self.n == 0 {
            return None;
        }
        if self.initial.len() < 5 {
            let mut v = self.initial.clone();
            v.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let idx = ((self.q * v.len() as f64).ceil() as usize).saturating_sub(1);
            return Some(v[idx.min(v.len() - 1)]);
        }
        Some(self.heights[2])
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }
}

/// Two-sided Student-t critical values at 95% confidence, by degrees of
/// freedom (1-based index; `[0]` unused). Beyond 30 d.o.f. we use 1.96.
const T_TABLE_95: [f64; 31] = [
    f64::NAN,
    12.706,
    4.303,
    3.182,
    2.776,
    2.571,
    2.447,
    2.365,
    2.306,
    2.262,
    2.228,
    2.201,
    2.179,
    2.160,
    2.145,
    2.131,
    2.120,
    2.110,
    2.101,
    2.093,
    2.086,
    2.080,
    2.074,
    2.069,
    2.064,
    2.060,
    2.056,
    2.052,
    2.048,
    2.045,
    2.042,
];

/// Mean and 95% confidence half-width across replication means.
///
/// Returns `(mean, half_width)`; the half-width is 0 for fewer than two
/// replications.
pub fn ci_student_t(replication_means: &[f64]) -> (f64, f64) {
    let n = replication_means.len();
    if n == 0 {
        return (0.0, 0.0);
    }
    let mean = replication_means.iter().sum::<f64>() / n as f64;
    if n < 2 {
        return (mean, 0.0);
    }
    let var = replication_means
        .iter()
        .map(|x| (x - mean) * (x - mean))
        .sum::<f64>()
        / (n - 1) as f64;
    let dof = n - 1;
    let t = if dof <= 30 { T_TABLE_95[dof] } else { 1.96 };
    (mean, t * (var / n as f64).sqrt())
}

/// Exact quantile of a *stored* sample (for small result sets where storing
/// is fine). Uses the nearest-rank method. Returns `None` if empty.
pub fn exact_quantile(sorted: &[f64], q: f64) -> Option<f64> {
    if sorted.is_empty() {
        return None;
    }
    debug_assert!(
        sorted.windows(2).all(|w| w[0] <= w[1]),
        "input must be sorted"
    );
    let q = q.clamp(0.0, 1.0);
    let idx = ((q * sorted.len() as f64).ceil() as usize).saturating_sub(1);
    Some(sorted[idx.min(sorted.len() - 1)])
}

/// A named series of `(x, y)` points — the common currency of experiment
/// outputs (one per figure line).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Series {
    /// Legend label.
    pub name: String,
    /// The data points, in x order.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// An empty series with the given legend label.
    pub fn new(name: impl Into<String>) -> Self {
        Series {
            name: name.into(),
            points: Vec::new(),
        }
    }

    /// Append a point.
    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push((x, y));
    }
}

/// Convenience: a utilization tracker counting busy capacity out of a fixed
/// total (e.g. busy cores on a cluster).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Utilization {
    busy: TimeWeighted,
    capacity: f64,
}

impl Utilization {
    /// Track utilization of `capacity` units starting at `start` with nothing busy.
    pub fn new(start: SimTime, capacity: f64) -> Self {
        assert!(capacity > 0.0, "capacity must be positive");
        Utilization {
            busy: TimeWeighted::new(start, 0.0),
            capacity,
        }
    }

    /// Mark `amount` additional units busy at `now`.
    pub fn acquire(&mut self, now: SimTime, amount: f64) {
        let v = self.busy.current() + amount;
        debug_assert!(
            v <= self.capacity + 1e-9,
            "over capacity: {v} > {}",
            self.capacity
        );
        self.busy.set(now, v);
    }

    /// Release `amount` units at `now`.
    pub fn release(&mut self, now: SimTime, amount: f64) {
        let v = self.busy.current() - amount;
        debug_assert!(v >= -1e-9, "released more than acquired");
        self.busy.set(now, v.max(0.0));
    }

    /// Currently busy units.
    pub fn busy(&self) -> f64 {
        self.busy.current()
    }

    /// Total capacity.
    pub fn capacity(&self) -> f64 {
        self.capacity
    }

    /// Average utilization in `[start, now]` as a fraction of capacity.
    pub fn average(&self, now: SimTime) -> f64 {
        self.busy.average(now) / self.capacity
    }

    /// Busy integral in unit·seconds (e.g. core-seconds delivered).
    pub fn busy_integral(&self, now: SimTime) -> f64 {
        self.busy.integral(now)
    }
}

/// Helper: bucket a (time, value) stream into fixed windows, summing values —
/// used for "usage per quarter" style series.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TimeBuckets {
    width: SimDuration,
    sums: Vec<f64>,
}

impl TimeBuckets {
    /// Buckets of the given width starting at time zero.
    pub fn new(width: SimDuration) -> Self {
        assert!(!width.is_zero(), "bucket width must be positive");
        TimeBuckets {
            width,
            sums: Vec::new(),
        }
    }

    /// Add `value` to the bucket containing `at`.
    pub fn add(&mut self, at: SimTime, value: f64) {
        let idx = at.bucket_index(self.width) as usize;
        if idx >= self.sums.len() {
            self.sums.resize(idx + 1, 0.0);
        }
        self.sums[idx] += value;
    }

    /// Per-bucket sums, index 0 first.
    pub fn sums(&self) -> &[f64] {
        &self.sums
    }

    /// Bucket width.
    pub fn width(&self) -> SimDuration {
        self.width
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_basics() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.record(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Population variance of this classic set is 4; sample variance 32/7.
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
        assert!((s.sum() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn online_stats_ignores_nonfinite() {
        let mut s = OnlineStats::new();
        s.record(f64::NAN);
        s.record(f64::INFINITY);
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), None);
    }

    #[test]
    fn online_stats_merge_equals_sequential() {
        let data: Vec<f64> = (0..100)
            .map(|i| (i as f64 * 1.37).sin() * 10.0 + 5.0)
            .collect();
        let mut whole = OnlineStats::new();
        for &x in &data {
            whole.record(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &data[..37] {
            a.record(x);
        }
        for &x in &data[37..] {
            b.record(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = OnlineStats::new();
        a.record(1.0);
        a.record(3.0);
        let before = a.clone();
        a.merge(&OnlineStats::new());
        assert_eq!(a.count(), before.count());
        assert_eq!(a.mean(), before.mean());
        let mut empty = OnlineStats::new();
        empty.merge(&before);
        assert_eq!(empty.count(), 2);
        assert!((empty.mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn time_weighted_average() {
        let mut tw = TimeWeighted::new(SimTime::ZERO, 0.0);
        tw.set(SimTime::from_secs(10), 4.0); // 0 for 10 s
        tw.set(SimTime::from_secs(20), 2.0); // 4 for 10 s
                                             // then 2 for 10 s → integral = 0 + 40 + 20 = 60 over 30 s
        assert!((tw.average(SimTime::from_secs(30)) - 2.0).abs() < 1e-12);
        assert!((tw.integral(SimTime::from_secs(30)) - 60.0).abs() < 1e-9);
        assert_eq!(tw.peak(), 4.0);
        assert_eq!(tw.current(), 2.0);
    }

    #[test]
    fn time_weighted_add_and_empty_window() {
        let mut tw = TimeWeighted::new(SimTime::from_secs(5), 1.0);
        assert_eq!(tw.average(SimTime::from_secs(5)), 0.0);
        tw.add(SimTime::from_secs(10), 2.0);
        assert_eq!(tw.current(), 3.0);
        // [5,10]: 1 for 5s; [10,15]: 3 for 5s → avg (5+15)/10 = 2
        assert!((tw.average(SimTime::from_secs(15)) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_linear_binning_and_quantiles() {
        let mut h = Histogram::new(Binning::Linear {
            lo: 0.0,
            hi: 100.0,
            count: 10,
        });
        for i in 0..100 {
            h.record(i as f64 + 0.5);
        }
        assert_eq!(h.count(), 100);
        let median = h.quantile(0.5).unwrap();
        assert!((median - 50.0).abs() < 10.0, "median {median}");
        let p90 = h.quantile(0.9).unwrap();
        assert!((p90 - 90.0).abs() < 10.0, "p90 {p90}");
        assert!((h.mean() - 50.0).abs() < 1.0);
    }

    #[test]
    fn histogram_outliers_clamp() {
        let mut h = Histogram::new(Binning::Linear {
            lo: 0.0,
            hi: 10.0,
            count: 5,
        });
        h.record(-100.0);
        h.record(1e9);
        assert_eq!(h.counts()[0], 1);
        assert_eq!(h.counts()[4], 1);
    }

    #[test]
    fn histogram_log_binning() {
        let h = Histogram::new(Binning::Log {
            lo: 1.0,
            base: 2.0,
            count: 8,
        });
        assert_eq!(h.bin_lo(0), 1.0);
        assert_eq!(h.bin_lo(3), 8.0);
        let mut h = h;
        h.record(0.5); // clamps to bin 0
        h.record(1.5);
        h.record(9.0); // bin [8,16) = 3
        h.record(1e9); // clamps to last
        assert_eq!(h.counts()[0], 2);
        assert_eq!(h.counts()[3], 1);
        assert_eq!(h.counts()[7], 1);
    }

    #[test]
    fn histogram_cdf_monotone_and_ends_at_one() {
        let mut h = Histogram::for_durations();
        let mut rng = crate::rng::SimRng::seeded(3);
        for _ in 0..1000 {
            h.record(rng.uniform_range(1.0, 10_000.0));
        }
        let cdf = h.cdf_points();
        assert!(!cdf.is_empty());
        for w in cdf.windows(2) {
            assert!(w[0].1 <= w[1].1);
            assert!(w[0].0 < w[1].0);
        }
        assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_merge() {
        let layout = Binning::Linear {
            lo: 0.0,
            hi: 10.0,
            count: 5,
        };
        let mut a = Histogram::new(layout);
        let mut b = Histogram::new(layout);
        a.record(1.0);
        b.record(9.0);
        b.record(9.5);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.counts()[4], 2);
    }

    #[test]
    fn empty_histogram_quantile_none() {
        let h = Histogram::for_durations();
        assert_eq!(h.quantile(0.5), None);
        assert!(h.cdf_points().is_empty());
    }

    #[test]
    fn p2_median_converges_on_uniform() {
        let mut p = P2Quantile::new(0.5);
        let mut rng = crate::rng::SimRng::seeded(4);
        for _ in 0..50_000 {
            p.record(rng.uniform_range(0.0, 100.0));
        }
        let est = p.estimate().unwrap();
        assert!((est - 50.0).abs() < 2.0, "median estimate {est}");
    }

    #[test]
    fn p2_p95_converges_on_exponential() {
        use crate::dist::{Dist, Exponential};
        let mut p = P2Quantile::new(0.95);
        let d = Exponential::with_mean(10.0);
        let mut rng = crate::rng::SimRng::seeded(5);
        for _ in 0..100_000 {
            p.record(d.sample(&mut rng));
        }
        let est = p.estimate().unwrap();
        let expect = -10.0 * (0.05f64).ln(); // ≈ 29.96
        assert!((est - expect).abs() / expect < 0.1, "p95 {est} vs {expect}");
    }

    #[test]
    fn p2_small_samples_exact() {
        let mut p = P2Quantile::new(0.5);
        assert_eq!(p.estimate(), None);
        p.record(10.0);
        assert_eq!(p.estimate(), Some(10.0));
        p.record(20.0);
        p.record(30.0);
        assert_eq!(p.estimate(), Some(20.0));
        assert_eq!(p.count(), 3);
    }

    #[test]
    fn ci_behaviour() {
        assert_eq!(ci_student_t(&[]), (0.0, 0.0));
        assert_eq!(ci_student_t(&[5.0]), (5.0, 0.0));
        let (m, hw) = ci_student_t(&[10.0, 12.0, 11.0, 9.0, 13.0]);
        assert!((m - 11.0).abs() < 1e-12);
        assert!(hw > 0.0 && hw < 5.0);
        // Identical replications → zero width.
        let (_, hw0) = ci_student_t(&[7.0; 10]);
        assert_eq!(hw0, 0.0);
        // Wider sample → wider CI.
        let (_, hw_wide) = ci_student_t(&[1.0, 21.0, 11.0, 2.0, 20.0]);
        assert!(hw_wide > hw);
    }

    #[test]
    fn exact_quantile_nearest_rank() {
        let v = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(exact_quantile(&v, 0.5), Some(3.0));
        assert_eq!(exact_quantile(&v, 0.0), Some(1.0));
        assert_eq!(exact_quantile(&v, 1.0), Some(5.0));
        assert_eq!(exact_quantile(&[], 0.5), None);
    }

    #[test]
    fn utilization_tracks_busy_fraction() {
        let mut u = Utilization::new(SimTime::ZERO, 10.0);
        u.acquire(SimTime::ZERO, 5.0);
        u.release(SimTime::from_secs(50), 5.0);
        // busy 5/10 for 50 s then 0 for 50 s → 25% average
        assert!((u.average(SimTime::from_secs(100)) - 0.25).abs() < 1e-12);
        assert!((u.busy_integral(SimTime::from_secs(100)) - 250.0).abs() < 1e-9);
        assert_eq!(u.busy(), 0.0);
        assert_eq!(u.capacity(), 10.0);
    }

    #[test]
    fn time_buckets_accumulate() {
        let mut tb = TimeBuckets::new(SimDuration::from_days(7));
        tb.add(SimTime::from_days(1), 10.0);
        tb.add(SimTime::from_days(6), 5.0);
        tb.add(SimTime::from_days(8), 2.0);
        assert_eq!(tb.sums(), &[15.0, 2.0]);
        assert_eq!(tb.width(), SimDuration::from_days(7));
    }

    #[test]
    fn series_collects_points() {
        let mut s = Series::new("wait");
        s.push(1.0, 2.0);
        s.push(2.0, 3.0);
        assert_eq!(s.points.len(), 2);
        assert_eq!(s.name, "wait");
    }
}
