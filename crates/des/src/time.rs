//! Virtual simulation time.
//!
//! Time is represented as an integer number of **microseconds** since the
//! simulation epoch. An integer representation (rather than `f64` seconds)
//! keeps event ordering exact and replay deterministic: two events scheduled
//! for "the same instant" compare equal instead of differing in the last ULP.
//!
//! Grid simulations span months of virtual time; `u64` microseconds cover
//! ~584,000 years, so overflow is not a practical concern (arithmetic is
//! nevertheless `saturating_*` so misuse degrades gracefully in release
//! builds and is caught by debug assertions in tests).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// Number of microseconds in one second.
pub const MICROS_PER_SEC: u64 = 1_000_000;
/// Number of seconds in one minute.
pub const SECS_PER_MIN: u64 = 60;
/// Number of seconds in one hour.
pub const SECS_PER_HOUR: u64 = 3_600;
/// Number of seconds in one day.
pub const SECS_PER_DAY: u64 = 86_400;
/// Number of seconds in one (7-day) week.
pub const SECS_PER_WEEK: u64 = 7 * SECS_PER_DAY;

/// An instant of virtual time, measured in microseconds since the simulation
/// epoch (time zero).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimTime(u64);

/// A span of virtual time, measured in microseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);
    /// The greatest representable instant (useful as an "infinite horizon").
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw microseconds since the epoch.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Construct from whole seconds since the epoch.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * MICROS_PER_SEC)
    }

    /// Construct from fractional seconds since the epoch.
    ///
    /// Negative or non-finite inputs clamp to zero.
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        SimTime(secs_f64_to_micros(s))
    }

    /// Construct from whole hours since the epoch.
    #[inline]
    pub const fn from_hours(h: u64) -> Self {
        SimTime(h * SECS_PER_HOUR * MICROS_PER_SEC)
    }

    /// Construct from whole days since the epoch.
    #[inline]
    pub const fn from_days(d: u64) -> Self {
        SimTime(d * SECS_PER_DAY * MICROS_PER_SEC)
    }

    /// Raw microseconds since the epoch.
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Fractional seconds since the epoch.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    /// Fractional hours since the epoch.
    #[inline]
    pub fn as_hours_f64(self) -> f64 {
        self.as_secs_f64() / SECS_PER_HOUR as f64
    }

    /// Fractional days since the epoch.
    #[inline]
    pub fn as_days_f64(self) -> f64 {
        self.as_secs_f64() / SECS_PER_DAY as f64
    }

    /// Time elapsed since `earlier`, or zero if `earlier` is in the future.
    #[inline]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked difference: `None` if `earlier > self`.
    #[inline]
    pub fn checked_since(self, earlier: SimTime) -> Option<SimDuration> {
        self.0.checked_sub(earlier.0).map(SimDuration)
    }

    /// The second-of-day in `[0, 86400)` for diurnal cycles.
    #[inline]
    pub fn second_of_day(self) -> u64 {
        (self.0 / MICROS_PER_SEC) % SECS_PER_DAY
    }

    /// Day-of-week index in `[0, 7)`; the epoch is day 0 ("Monday").
    #[inline]
    pub fn day_of_week(self) -> u64 {
        (self.0 / MICROS_PER_SEC / SECS_PER_DAY) % 7
    }

    /// Zero-based index of the containing bucket of width `bucket`.
    ///
    /// Used for time-series aggregation (e.g. usage by quarter). Panics if
    /// `bucket` is zero.
    #[inline]
    pub fn bucket_index(self, bucket: SimDuration) -> u64 {
        assert!(bucket.0 > 0, "bucket width must be positive");
        self.0 / bucket.0
    }
}

impl SimDuration {
    /// The zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The longest representable span.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Construct from raw microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Construct from whole milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * MICROS_PER_SEC)
    }

    /// Construct from fractional seconds. Negative/non-finite inputs clamp to zero.
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        SimDuration(secs_f64_to_micros(s))
    }

    /// Construct from whole minutes.
    #[inline]
    pub const fn from_mins(m: u64) -> Self {
        SimDuration(m * SECS_PER_MIN * MICROS_PER_SEC)
    }

    /// Construct from whole hours.
    #[inline]
    pub const fn from_hours(h: u64) -> Self {
        SimDuration(h * SECS_PER_HOUR * MICROS_PER_SEC)
    }

    /// Construct from whole days.
    #[inline]
    pub const fn from_days(d: u64) -> Self {
        SimDuration(d * SECS_PER_DAY * MICROS_PER_SEC)
    }

    /// Construct from whole weeks.
    #[inline]
    pub const fn from_weeks(w: u64) -> Self {
        SimDuration(w * SECS_PER_WEEK * MICROS_PER_SEC)
    }

    /// Raw microseconds.
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    /// Fractional hours.
    #[inline]
    pub fn as_hours_f64(self) -> f64 {
        self.as_secs_f64() / SECS_PER_HOUR as f64
    }

    /// Fractional days.
    #[inline]
    pub fn as_days_f64(self) -> f64 {
        self.as_secs_f64() / SECS_PER_DAY as f64
    }

    /// True if this span is zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Scale by a non-negative factor, rounding to the nearest microsecond.
    ///
    /// Negative or non-finite factors clamp to zero. Used for slowdown /
    /// speedup models (e.g. hardware-accelerated task variants).
    #[inline]
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        if !(factor.is_finite() && factor > 0.0) {
            return SimDuration::ZERO;
        }
        let v = self.0 as f64 * factor;
        if v >= u64::MAX as f64 {
            SimDuration::MAX
        } else {
            SimDuration(v.round() as u64)
        }
    }

    /// Saturating addition.
    #[inline]
    pub fn saturating_add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// The larger of two spans.
    #[inline]
    pub fn max(self, rhs: SimDuration) -> SimDuration {
        if self.0 >= rhs.0 {
            self
        } else {
            rhs
        }
    }

    /// The smaller of two spans.
    #[inline]
    pub fn min(self, rhs: SimDuration) -> SimDuration {
        if self.0 <= rhs.0 {
            self
        } else {
            rhs
        }
    }
}

#[inline]
fn secs_f64_to_micros(s: f64) -> u64 {
    if s.is_nan() || s <= 0.0 {
        return 0;
    }
    let v = s * MICROS_PER_SEC as f64;
    if v >= u64::MAX as f64 {
        u64::MAX
    } else {
        v.round() as u64
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// Panics in debug builds if `rhs > self`; saturates in release builds.
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(rhs.0 <= self.0, "SimTime subtraction went negative");
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        debug_assert!(rhs.0 <= self.0, "SimDuration subtraction went negative");
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        debug_assert!(rhs.0 <= self.0, "SimDuration subtraction went negative");
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Div<SimDuration> for SimDuration {
    type Output = f64;
    /// Ratio of two spans (e.g. busy-time / elapsed-time = utilization).
    #[inline]
    fn div(self, rhs: SimDuration) -> f64 {
        if rhs.0 == 0 {
            return 0.0;
        }
        self.0 as f64 / rhs.0 as f64
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}", human_duration(self.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}", human_duration(self.0))
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&human_duration(self.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&human_duration(self.0))
    }
}

/// Render microseconds as a compact human-readable string (`3d04h`, `12m05s`,
/// `250ms`, ...). Chooses the two most significant units.
fn human_duration(us: u64) -> String {
    let secs = us / MICROS_PER_SEC;
    let sub_ms = (us % MICROS_PER_SEC) / 1_000;
    if secs == 0 {
        if sub_ms > 0 {
            return format!("{sub_ms}ms");
        }
        return format!("{us}us");
    }
    let days = secs / SECS_PER_DAY;
    let hours = (secs % SECS_PER_DAY) / SECS_PER_HOUR;
    let mins = (secs % SECS_PER_HOUR) / SECS_PER_MIN;
    let s = secs % SECS_PER_MIN;
    if days > 0 {
        format!("{days}d{hours:02}h")
    } else if hours > 0 {
        format!("{hours}h{mins:02}m")
    } else if mins > 0 {
        format!("{mins}m{s:02}s")
    } else {
        format!("{s}s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_roundtrips() {
        assert_eq!(SimTime::from_secs(5).as_micros(), 5_000_000);
        assert_eq!(SimTime::from_hours(2), SimTime::from_secs(7200));
        assert_eq!(SimTime::from_days(1), SimTime::from_hours(24));
        assert_eq!(SimDuration::from_weeks(1), SimDuration::from_days(7));
        assert_eq!(
            SimDuration::from_mins(90),
            SimDuration::from_hours(1) + SimDuration::from_mins(30)
        );
    }

    #[test]
    fn float_conversions() {
        let t = SimTime::from_secs_f64(1.5);
        assert_eq!(t.as_micros(), 1_500_000);
        assert!((t.as_secs_f64() - 1.5).abs() < 1e-12);
        assert_eq!(SimTime::from_secs_f64(-4.0), SimTime::ZERO);
        assert_eq!(SimTime::from_secs_f64(f64::NAN), SimTime::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::INFINITY), SimDuration::MAX);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(10);
        let d = SimDuration::from_secs(4);
        assert_eq!(t + d, SimTime::from_secs(14));
        assert_eq!(t - d, SimTime::from_secs(6));
        assert_eq!((t + d) - t, d);
        assert_eq!(
            t.saturating_since(SimTime::from_secs(3)),
            SimDuration::from_secs(7)
        );
        assert_eq!(SimTime::from_secs(3).saturating_since(t), SimDuration::ZERO);
        assert_eq!(SimTime::from_secs(3).checked_since(t), None);
    }

    #[test]
    fn duration_scaling() {
        let d = SimDuration::from_secs(100);
        assert_eq!(d.mul_f64(0.5), SimDuration::from_secs(50));
        assert_eq!(d.mul_f64(0.0), SimDuration::ZERO);
        assert_eq!(d.mul_f64(-1.0), SimDuration::ZERO);
        assert_eq!(d.mul_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(d * 3, SimDuration::from_secs(300));
        assert_eq!(d / 4, SimDuration::from_secs(25));
        assert!((SimDuration::from_secs(30) / SimDuration::from_secs(60) - 0.5).abs() < 1e-12);
        assert_eq!(SimDuration::from_secs(1) / SimDuration::ZERO, 0.0);
    }

    #[test]
    fn saturation_at_extremes() {
        assert_eq!(SimTime::MAX + SimDuration::from_secs(1), SimTime::MAX);
        assert_eq!(SimTime::ZERO - SimDuration::from_secs(1), SimTime::ZERO);
        assert_eq!(
            SimDuration::MAX + SimDuration::from_secs(1),
            SimDuration::MAX
        );
        assert_eq!(SimDuration::MAX * 2, SimDuration::MAX);
    }

    #[test]
    fn calendar_helpers() {
        let noon_day3 = SimTime::from_days(3) + SimDuration::from_hours(12);
        assert_eq!(noon_day3.second_of_day(), 12 * 3600);
        assert_eq!(noon_day3.day_of_week(), 3);
        assert_eq!(SimTime::from_days(7).day_of_week(), 0);
        assert_eq!(
            SimTime::from_days(9).bucket_index(SimDuration::from_days(7)),
            1
        );
    }

    #[test]
    #[should_panic(expected = "bucket width must be positive")]
    fn zero_bucket_panics() {
        let _ = SimTime::from_secs(1).bucket_index(SimDuration::ZERO);
    }

    #[test]
    fn ordering_and_minmax() {
        let a = SimDuration::from_secs(1);
        let b = SimDuration::from_secs(2);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert!(SimTime::from_secs(1) < SimTime::from_secs(2));
    }

    #[test]
    fn human_formatting() {
        assert_eq!(format!("{}", SimDuration::from_micros(12)), "12us");
        assert_eq!(format!("{}", SimDuration::from_millis(250)), "250ms");
        assert_eq!(format!("{}", SimDuration::from_secs(42)), "42s");
        assert_eq!(format!("{}", SimDuration::from_secs(125)), "2m05s");
        assert_eq!(
            format!("{}", SimDuration::from_hours(3) + SimDuration::from_mins(7)),
            "3h07m"
        );
        assert_eq!(
            format!("{}", SimDuration::from_days(3) + SimDuration::from_hours(4)),
            "3d04h"
        );
        assert_eq!(format!("{}", SimTime::from_secs(60)), "t+1m00s");
    }

    #[test]
    fn types_stay_word_sized() {
        assert_eq!(std::mem::size_of::<SimTime>(), 8);
        assert_eq!(std::mem::size_of::<SimDuration>(), 8);
        assert_eq!(std::mem::size_of::<Option<SimDuration>>(), 16);
    }
}
