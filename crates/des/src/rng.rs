//! Deterministic random-number streams.
//!
//! Every stochastic component of a simulation (each arrival process, each
//! service-time sampler, each router) gets its **own** stream, derived from a
//! single master seed and a stable stream identifier. Two consequences:
//!
//! 1. Runs are bit-reproducible given `(master_seed)`.
//! 2. Streams are independent: adding a component, or a component drawing
//!    more numbers, never perturbs the sequence any *other* component sees.
//!    This is the "common random numbers" discipline that makes A/B policy
//!    comparisons low-variance.
//!
//! Derivation uses SplitMix64 over `master_seed ⊕ hash(stream id)` —
//! SplitMix64 is the recommended seeder for small PRNGs and guarantees
//! distinct, well-mixed states even for adjacent identifiers.

use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};

/// Stable identifier for a random stream.
///
/// Combines a static label (component kind) with a numeric discriminator
/// (component instance), e.g. `StreamId::new("arrival", site_index)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StreamId {
    label: &'static str,
    index: u64,
}

impl StreamId {
    /// A stream id from a label and instance index.
    pub const fn new(label: &'static str, index: u64) -> Self {
        StreamId { label, index }
    }

    /// A stream id from a label only (singleton components).
    pub const fn global(label: &'static str) -> Self {
        StreamId { label, index: 0 }
    }

    /// FNV-1a over the label bytes, mixed with the index.
    fn mix(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x1000_0000_01b3;
        let mut h = FNV_OFFSET;
        for b in self.label.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
        h ^ self.index.wrapping_mul(0x9e37_79b9_7f4a_7c15)
    }
}

/// SplitMix64 step — the standard seed-expansion function.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Factory deriving independent [`SimRng`] streams from one master seed.
#[derive(Debug, Clone, Copy)]
pub struct RngFactory {
    master_seed: u64,
}

impl RngFactory {
    /// A factory keyed by `master_seed`.
    pub const fn new(master_seed: u64) -> Self {
        RngFactory { master_seed }
    }

    /// The master seed this factory was built with.
    pub const fn master_seed(&self) -> u64 {
        self.master_seed
    }

    /// Derive the stream for `id`. The same `(master_seed, id)` always yields
    /// the same sequence.
    pub fn stream(&self, id: StreamId) -> SimRng {
        let mut state = self.master_seed ^ id.mix();
        // Burn a few SplitMix64 rounds to build a full 32-byte seed for the
        // underlying generator.
        let mut seed = [0u8; 32];
        for chunk in seed.chunks_exact_mut(8) {
            chunk.copy_from_slice(&splitmix64(&mut state).to_le_bytes());
        }
        SimRng {
            inner: SmallRng::from_seed(seed),
        }
    }

    /// Derive a sub-factory, e.g. one per replication:
    /// `factory.child(replication_index)`.
    pub fn child(&self, index: u64) -> RngFactory {
        let mut state = self
            .master_seed
            .wrapping_add(index.wrapping_mul(0xd1b5_4a32_d192_ed03));
        RngFactory {
            master_seed: splitmix64(&mut state),
        }
    }
}

/// One deterministic random stream.
///
/// Wraps a small, fast PRNG and adds the convenience draws simulations use
/// constantly. Implements [`rand::RngCore`], so it also plugs into any
/// `rand`-compatible API.
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: SmallRng,
}

impl SimRng {
    /// A standalone stream from a raw seed (tests, tools). Production code
    /// should derive streams through [`RngFactory`].
    pub fn seeded(seed: u64) -> Self {
        RngFactory::new(seed).stream(StreamId::global("standalone"))
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn uniform(&mut self) -> f64 {
        // 53 random mantissa bits — the canonical open-interval construction.
        (self.inner.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`.
    #[inline]
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo <= hi);
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[0, n)` via Lemire's unbiased method. Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is undefined");
        // Widening-multiply rejection sampling (unbiased).
        let mut x = self.inner.next_u64();
        let mut m = (x as u128).wrapping_mul(n as u128);
        let mut lo = m as u64;
        if lo < n {
            let threshold = n.wrapping_neg() % n;
            while lo < threshold {
                x = self.inner.next_u64();
                m = (x as u128).wrapping_mul(n as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform integer in `[lo, hi]` inclusive. Panics if `lo > hi`.
    pub fn int_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "int_range: lo > hi");
        lo + self.below(hi - lo + 1)
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.uniform() < p
    }

    /// Pick a uniformly random element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "pick from empty slice");
        &items[self.below(items.len() as u64) as usize]
    }

    /// Pick an index in `[0, weights.len())` with probability proportional to
    /// `weights[i]`. Non-finite or negative weights count as zero. Panics if
    /// all weights are zero or the slice is empty.
    pub fn pick_weighted(&mut self, weights: &[f64]) -> usize {
        let clean = |w: f64| if w.is_finite() && w > 0.0 { w } else { 0.0 };
        let total: f64 = weights.iter().copied().map(clean).sum();
        assert!(total > 0.0, "pick_weighted: no positive weight");
        let mut target = self.uniform() * total;
        for (i, &w) in weights.iter().enumerate() {
            let w = clean(w);
            if target < w {
                return i;
            }
            target -= w;
        }
        // Floating-point slack: fall back to the last positive weight.
        weights
            .iter()
            .rposition(|&w| clean(w) > 0.0)
            .expect("positive weight exists")
    }

    /// Fisher–Yates shuffle in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }

    /// Standard normal draw (Box–Muller, polar-free single-value variant).
    pub fn standard_normal(&mut self) -> f64 {
        // Marsaglia polar method; rejects ~21.5% of pairs, branch-light.
        loop {
            let u = 2.0 * self.uniform() - 1.0;
            let v = 2.0 * self.uniform() - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                return u * (-2.0 * s.ln() / s).sqrt();
            }
        }
    }
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.inner.try_fill_bytes(dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream_is_reproducible() {
        let f = RngFactory::new(42);
        let id = StreamId::new("arrival", 3);
        let a: Vec<u64> = {
            let mut r = f.stream(id);
            (0..16).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = f.stream(id);
            (0..16).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn different_streams_diverge() {
        let f = RngFactory::new(42);
        let mut a = f.stream(StreamId::new("arrival", 0));
        let mut b = f.stream(StreamId::new("arrival", 1));
        let mut c = f.stream(StreamId::new("service", 0));
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_ne!(xs, ys);
        assert_ne!(xs, zs);
        assert_ne!(ys, zs);
    }

    #[test]
    fn different_master_seeds_diverge() {
        let id = StreamId::global("x");
        let mut a = RngFactory::new(1).stream(id);
        let mut b = RngFactory::new(2).stream(id);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn child_factories_are_independent_and_deterministic() {
        let f = RngFactory::new(7);
        assert_eq!(f.child(0).master_seed(), f.child(0).master_seed());
        assert_ne!(f.child(0).master_seed(), f.child(1).master_seed());
        assert_ne!(f.child(0).master_seed(), f.master_seed());
    }

    #[test]
    fn uniform_is_in_unit_interval_and_covers_it() {
        let mut r = SimRng::seeded(9);
        let mut lo = f64::MAX;
        let mut hi = f64::MIN;
        for _ in 0..10_000 {
            let u = r.uniform();
            assert!((0.0..1.0).contains(&u));
            lo = lo.min(u);
            hi = hi.max(u);
        }
        assert!(lo < 0.01, "min {lo} too high");
        assert!(hi > 0.99, "max {hi} too low");
    }

    #[test]
    fn below_is_roughly_uniform() {
        let mut r = SimRng::seeded(11);
        let n = 10u64;
        let mut counts = [0u32; 10];
        let draws = 100_000;
        for _ in 0..draws {
            counts[r.below(n) as usize] += 1;
        }
        let expect = draws as f64 / n as f64;
        for (i, &c) in counts.iter().enumerate() {
            let dev = (c as f64 - expect).abs() / expect;
            assert!(dev < 0.05, "bucket {i}: count {c} deviates {dev:.3}");
        }
    }

    #[test]
    fn int_range_is_inclusive() {
        let mut r = SimRng::seeded(13);
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..1000 {
            let v = r.int_range(5, 8);
            assert!((5..=8).contains(&v));
            saw_lo |= v == 5;
            saw_hi |= v == 8;
        }
        assert!(saw_lo && saw_hi);
    }

    #[test]
    #[should_panic(expected = "below(0)")]
    fn below_zero_panics() {
        SimRng::seeded(1).below(0);
    }

    #[test]
    fn chance_matches_probability() {
        let mut r = SimRng::seeded(17);
        let hits = (0..100_000).filter(|_| r.chance(0.3)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
        assert!(!SimRng::seeded(1).chance(0.0));
        assert!(SimRng::seeded(1).chance(1.1));
    }

    #[test]
    fn pick_weighted_respects_weights() {
        let mut r = SimRng::seeded(19);
        let weights = [1.0, 0.0, 3.0];
        let mut counts = [0u32; 3];
        for _ in 0..40_000 {
            counts[r.pick_weighted(&weights)] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((ratio - 3.0).abs() < 0.2, "ratio {ratio}");
    }

    #[test]
    fn pick_weighted_ignores_bad_weights() {
        let mut r = SimRng::seeded(23);
        let weights = [f64::NAN, -5.0, 2.0, f64::INFINITY];
        for _ in 0..100 {
            assert_eq!(r.pick_weighted(&weights), 2);
        }
    }

    #[test]
    #[should_panic(expected = "no positive weight")]
    fn pick_weighted_all_zero_panics() {
        SimRng::seeded(1).pick_weighted(&[0.0, 0.0]);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SimRng::seeded(29);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>(), "astronomically unlikely");
    }

    #[test]
    fn standard_normal_moments() {
        let mut r = SimRng::seeded(31);
        let n = 200_000;
        let (mut sum, mut sumsq) = (0.0, 0.0);
        for _ in 0..n {
            let x = r.standard_normal();
            sum += x;
            sumsq += x * x;
        }
        let mean = sum / n as f64;
        let var = sumsq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
    }
}
