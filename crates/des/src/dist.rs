//! Probability distributions for workload modelling.
//!
//! Implemented locally (rather than via `rand_distr`) so that sampling
//! algorithms are fixed, documented, and deterministic under our stream
//! discipline. The set covers what forty years of workload-characterization
//! literature says grid workloads look like:
//!
//! * inter-arrival times — [`Exponential`], [`Hyperexponential`] (burstiness),
//! * runtimes — [`LogNormal`], [`Weibull`], [`Gamma`],
//! * heavy-tailed sizes — [`Pareto`],
//! * popularity / per-user activity — [`Zipf`],
//! * categorical mixes — [`Empirical`] (Walker alias method),
//! * plus [`Uniform`], [`Normal`], [`Constant`].
//!
//! Every sampler draws only from [`SimRng`]; moments are unit-tested against
//! closed forms.

use crate::rng::SimRng;
use serde::{Deserialize, Serialize};

/// A continuous, non-negative sampling distribution.
pub trait Dist {
    /// Draw one value.
    fn sample(&self, rng: &mut SimRng) -> f64;

    /// The distribution's mean, if finite and known in closed form.
    fn mean(&self) -> Option<f64>;
}

/// Degenerate distribution: always `value`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Constant {
    /// The single value returned by every draw.
    pub value: f64,
}

impl Constant {
    /// A constant distribution at `value`.
    pub fn new(value: f64) -> Self {
        Constant { value }
    }
}

impl Dist for Constant {
    fn sample(&self, _rng: &mut SimRng) -> f64 {
        self.value
    }
    fn mean(&self) -> Option<f64> {
        Some(self.value)
    }
}

/// Uniform on `[lo, hi)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Uniform {
    /// Inclusive lower bound.
    pub lo: f64,
    /// Exclusive upper bound.
    pub hi: f64,
}

impl Uniform {
    /// Uniform over `[lo, hi)`. Panics if `lo > hi` or bounds are non-finite.
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(
            lo.is_finite() && hi.is_finite() && lo <= hi,
            "bad uniform bounds"
        );
        Uniform { lo, hi }
    }
}

impl Dist for Uniform {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        rng.uniform_range(self.lo, self.hi)
    }
    fn mean(&self) -> Option<f64> {
        Some(0.5 * (self.lo + self.hi))
    }
}

/// Exponential with rate `lambda` (mean `1/lambda`). The memoryless workhorse
/// for Poisson arrival processes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Exponential {
    /// Rate parameter λ > 0.
    pub lambda: f64,
}

impl Exponential {
    /// Exponential with rate `lambda`. Panics unless `lambda > 0` and finite.
    pub fn new(lambda: f64) -> Self {
        assert!(
            lambda.is_finite() && lambda > 0.0,
            "lambda must be positive"
        );
        Exponential { lambda }
    }

    /// Exponential with the given mean (`1/lambda`).
    pub fn with_mean(mean: f64) -> Self {
        assert!(mean.is_finite() && mean > 0.0, "mean must be positive");
        Exponential { lambda: 1.0 / mean }
    }
}

impl Dist for Exponential {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        // Inverse CDF; 1 - U avoids ln(0).
        -(1.0 - rng.uniform()).ln() / self.lambda
    }
    fn mean(&self) -> Option<f64> {
        Some(1.0 / self.lambda)
    }
}

/// Normal (Gaussian); draws may be negative — see [`Normal::sample_clamped`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Normal {
    /// Mean μ.
    pub mu: f64,
    /// Standard deviation σ ≥ 0.
    pub sigma: f64,
}

impl Normal {
    /// Normal with mean `mu` and standard deviation `sigma ≥ 0`.
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(
            mu.is_finite() && sigma.is_finite() && sigma >= 0.0,
            "bad normal params"
        );
        Normal { mu, sigma }
    }

    /// Draw, truncated below at `lo` by clamping (fast, slightly biases the
    /// mean upward; fine for "runtime can't be negative" uses).
    pub fn sample_clamped(&self, rng: &mut SimRng, lo: f64) -> f64 {
        self.sample(rng).max(lo)
    }
}

impl Dist for Normal {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        self.mu + self.sigma * rng.standard_normal()
    }
    fn mean(&self) -> Option<f64> {
        Some(self.mu)
    }
}

/// Log-normal: `exp(N(mu, sigma))`. The canonical job-runtime distribution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LogNormal {
    /// Location parameter of the underlying normal (log scale).
    pub mu: f64,
    /// Scale parameter of the underlying normal (log scale), σ ≥ 0.
    pub sigma: f64,
}

impl LogNormal {
    /// Log-normal from log-scale parameters.
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(
            mu.is_finite() && sigma.is_finite() && sigma >= 0.0,
            "bad lognormal params"
        );
        LogNormal { mu, sigma }
    }

    /// Log-normal with the given *linear-scale* mean and coefficient of
    /// variation `cv = sd/mean` — the natural way to specify "runtimes
    /// average 2 h with high spread".
    pub fn from_mean_cv(mean: f64, cv: f64) -> Self {
        assert!(mean.is_finite() && mean > 0.0, "mean must be positive");
        assert!(cv.is_finite() && cv >= 0.0, "cv must be non-negative");
        let sigma2 = (1.0 + cv * cv).ln();
        let mu = mean.ln() - 0.5 * sigma2;
        LogNormal {
            mu,
            sigma: sigma2.sqrt(),
        }
    }
}

impl Dist for LogNormal {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        (self.mu + self.sigma * rng.standard_normal()).exp()
    }
    fn mean(&self) -> Option<f64> {
        Some((self.mu + 0.5 * self.sigma * self.sigma).exp())
    }
}

/// Weibull with shape `k` and scale `lambda`. `k < 1` gives the
/// decreasing-hazard runtimes seen in long-tailed batch traces.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Weibull {
    /// Shape k > 0.
    pub k: f64,
    /// Scale λ > 0.
    pub lambda: f64,
}

impl Weibull {
    /// Weibull with shape `k > 0` and scale `lambda > 0`.
    pub fn new(k: f64, lambda: f64) -> Self {
        assert!(
            k.is_finite() && k > 0.0 && lambda.is_finite() && lambda > 0.0,
            "bad weibull params"
        );
        Weibull { k, lambda }
    }
}

impl Dist for Weibull {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        self.lambda * (-(1.0 - rng.uniform()).ln()).powf(1.0 / self.k)
    }
    fn mean(&self) -> Option<f64> {
        Some(self.lambda * gamma_fn(1.0 + 1.0 / self.k))
    }
}

/// Pareto (type I) with scale `xm` and tail index `alpha`. Heavy-tailed;
/// the mean is infinite for `alpha ≤ 1`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Pareto {
    /// Minimum value (scale) x_m > 0.
    pub xm: f64,
    /// Tail index α > 0; smaller is heavier.
    pub alpha: f64,
}

impl Pareto {
    /// Pareto with scale `xm > 0` and tail index `alpha > 0`.
    pub fn new(xm: f64, alpha: f64) -> Self {
        assert!(
            xm.is_finite() && xm > 0.0 && alpha.is_finite() && alpha > 0.0,
            "bad pareto params"
        );
        Pareto { xm, alpha }
    }
}

impl Dist for Pareto {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        self.xm / (1.0 - rng.uniform()).powf(1.0 / self.alpha)
    }
    fn mean(&self) -> Option<f64> {
        (self.alpha > 1.0).then(|| self.alpha * self.xm / (self.alpha - 1.0))
    }
}

/// Gamma with shape `k` and scale `theta`, via Marsaglia–Tsang squeeze.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Gamma {
    /// Shape k > 0.
    pub k: f64,
    /// Scale θ > 0.
    pub theta: f64,
}

impl Gamma {
    /// Gamma with shape `k > 0` and scale `theta > 0`.
    pub fn new(k: f64, theta: f64) -> Self {
        assert!(
            k.is_finite() && k > 0.0 && theta.is_finite() && theta > 0.0,
            "bad gamma params"
        );
        Gamma { k, theta }
    }
}

impl Dist for Gamma {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        self.theta * sample_std_gamma(self.k, rng)
    }
    fn mean(&self) -> Option<f64> {
        Some(self.k * self.theta)
    }
}

/// Marsaglia–Tsang (2000) standard gamma sampler; handles `k < 1` by boosting.
fn sample_std_gamma(k: f64, rng: &mut SimRng) -> f64 {
    if k < 1.0 {
        // Gamma(k) = Gamma(k+1) * U^(1/k)
        let boost = rng.uniform().powf(1.0 / k);
        return sample_std_gamma(k + 1.0, rng) * boost;
    }
    let d = k - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = rng.standard_normal();
        let v = (1.0 + c * x).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u = rng.uniform();
        if u < 1.0 - 0.0331 * x.powi(4) {
            return d * v;
        }
        if u.ln() < 0.5 * x * x + d * (1.0 - v + v.ln()) {
            return d * v;
        }
    }
}

/// Lanczos approximation of Γ(x) for x > 0 (used for Weibull means and tests).
pub fn gamma_fn(x: f64) -> f64 {
    // g = 7, n = 9 coefficients (Numerical Recipes / Boost-style).
    const G: f64 = 7.0;
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        std::f64::consts::PI / ((std::f64::consts::PI * x).sin() * gamma_fn(1.0 - x))
    } else {
        let x = x - 1.0;
        let mut a = COEF[0];
        let t = x + G + 0.5;
        for (i, &c) in COEF.iter().enumerate().skip(1) {
            a += c / (x + i as f64);
        }
        (2.0 * std::f64::consts::PI).sqrt() * t.powf(x + 0.5) * (-t).exp() * a
    }
}

/// Two-phase hyperexponential: with probability `p` draw Exp(l1), else
/// Exp(l2). CV > 1 — models bursty inter-arrivals.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Hyperexponential {
    /// Probability of the first phase.
    pub p: f64,
    /// Rate of the first phase.
    pub l1: f64,
    /// Rate of the second phase.
    pub l2: f64,
}

impl Hyperexponential {
    /// Two-phase hyperexponential. Panics unless `0 ≤ p ≤ 1` and rates positive.
    pub fn new(p: f64, l1: f64, l2: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "p out of range");
        assert!(l1 > 0.0 && l2 > 0.0, "rates must be positive");
        Hyperexponential { p, l1, l2 }
    }

    /// Balanced two-phase fit for a target `mean` and squared coefficient of
    /// variation `scv ≥ 1` (standard moment-matching construction).
    pub fn from_mean_scv(mean: f64, scv: f64) -> Self {
        assert!(mean > 0.0 && scv >= 1.0, "need mean>0, scv>=1");
        let p = 0.5 * (1.0 + ((scv - 1.0) / (scv + 1.0)).sqrt());
        let l1 = 2.0 * p / mean;
        let l2 = 2.0 * (1.0 - p) / mean;
        Hyperexponential { p, l1, l2 }
    }
}

impl Dist for Hyperexponential {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        let lambda = if rng.chance(self.p) { self.l1 } else { self.l2 };
        -(1.0 - rng.uniform()).ln() / lambda
    }
    fn mean(&self) -> Option<f64> {
        Some(self.p / self.l1 + (1.0 - self.p) / self.l2)
    }
}

/// Zipf over ranks `1..=n` with exponent `s`: `P(k) ∝ k^-s`.
///
/// Models per-user activity skew and configuration popularity. Sampling is
/// O(log n) by binary search over the precomputed CDF (n is at most a few
/// hundred thousand in our scenarios, so the table is cheap).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Zipf {
    n: u64,
    s: f64,
    cdf: Vec<f64>,
}

impl Zipf {
    /// Zipf over `1..=n` with exponent `s ≥ 0`. Panics if `n == 0`.
    pub fn new(n: u64, s: f64) -> Self {
        assert!(n > 0, "zipf needs n >= 1");
        assert!(s.is_finite() && s >= 0.0, "bad zipf exponent");
        let mut cdf = Vec::with_capacity(n as usize);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += (k as f64).powf(-s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { n, s, cdf }
    }

    /// Number of ranks.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Exponent.
    pub fn s(&self) -> f64 {
        self.s
    }

    /// Draw a rank in `1..=n` (rank 1 is the most popular).
    pub fn sample_rank(&self, rng: &mut SimRng) -> u64 {
        let u = rng.uniform();
        // partition_point returns the count of entries < u, i.e. the index of
        // the first cdf entry >= u.
        let idx = self.cdf.partition_point(|&c| c < u);
        (idx as u64 + 1).min(self.n)
    }

    /// Probability mass of rank `k`.
    pub fn pmf(&self, k: u64) -> f64 {
        assert!((1..=self.n).contains(&k));
        let prev = if k == 1 {
            0.0
        } else {
            self.cdf[(k - 2) as usize]
        };
        self.cdf[(k - 1) as usize] - prev
    }
}

impl Dist for Zipf {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        self.sample_rank(rng) as f64
    }
    fn mean(&self) -> Option<f64> {
        Some((1..=self.n).map(|k| k as f64 * self.pmf(k)).sum())
    }
}

/// Empirical categorical distribution over `0..weights.len()` using Walker's
/// alias method: O(n) setup, O(1) sampling.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Empirical {
    prob: Vec<f64>,
    alias: Vec<usize>,
    weights: Vec<f64>,
}

impl Empirical {
    /// Build from non-negative weights (at least one positive). NaN/negative
    /// weights are treated as zero.
    pub fn new(weights: &[f64]) -> Self {
        let w: Vec<f64> = weights
            .iter()
            .map(|&x| if x.is_finite() && x > 0.0 { x } else { 0.0 })
            .collect();
        let total: f64 = w.iter().sum();
        assert!(total > 0.0, "empirical: need a positive weight");
        let n = w.len();
        let mut prob = vec![0.0; n];
        let mut alias = vec![0usize; n];
        let mut scaled: Vec<f64> = w.iter().map(|&x| x * n as f64 / total).collect();
        let mut small: Vec<usize> = Vec::with_capacity(n);
        let mut large: Vec<usize> = Vec::with_capacity(n);
        for (i, &s) in scaled.iter().enumerate() {
            if s < 1.0 {
                small.push(i);
            } else {
                large.push(i);
            }
        }
        while !small.is_empty() && !large.is_empty() {
            let s = small.pop().expect("checked non-empty");
            let l = *large.last().expect("checked non-empty");
            prob[s] = scaled[s];
            alias[s] = l;
            scaled[l] = (scaled[l] + scaled[s]) - 1.0;
            if scaled[l] < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        for i in large {
            prob[i] = 1.0;
        }
        for i in small {
            prob[i] = 1.0;
        }
        Empirical {
            prob,
            alias,
            weights: w,
        }
    }

    /// Draw a category index.
    pub fn sample_index(&self, rng: &mut SimRng) -> usize {
        let n = self.prob.len();
        let i = rng.below(n as u64) as usize;
        if rng.uniform() < self.prob[i] {
            i
        } else {
            self.alias[i]
        }
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// True if there are no categories (never constructible; kept for API symmetry).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// The normalized probability of category `i`.
    pub fn probability(&self, i: usize) -> f64 {
        let total: f64 = self.weights.iter().sum();
        self.weights[i] / total
    }
}

impl Dist for Empirical {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        self.sample_index(rng) as f64
    }
    fn mean(&self) -> Option<f64> {
        Some(
            (0..self.len())
                .map(|i| i as f64 * self.probability(i))
                .sum(),
        )
    }
}

/// A serializable, closed description of any distribution in this module —
/// what scenario config files store.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum DistKind {
    /// See [`Constant`].
    Constant {
        /// The constant value.
        value: f64,
    },
    /// See [`Uniform`].
    Uniform {
        /// Inclusive lower bound.
        lo: f64,
        /// Exclusive upper bound.
        hi: f64,
    },
    /// See [`Exponential`] (specified by mean, the ergonomic form).
    Exponential {
        /// Mean (1/λ).
        mean: f64,
    },
    /// See [`Normal`].
    Normal {
        /// Mean μ.
        mu: f64,
        /// Standard deviation σ.
        sigma: f64,
    },
    /// See [`LogNormal`] (mean / coefficient-of-variation form).
    LogNormal {
        /// Linear-scale mean.
        mean: f64,
        /// Coefficient of variation (sd / mean).
        cv: f64,
    },
    /// See [`Weibull`].
    Weibull {
        /// Shape k.
        k: f64,
        /// Scale λ.
        lambda: f64,
    },
    /// See [`Pareto`].
    Pareto {
        /// Scale (minimum) x_m.
        xm: f64,
        /// Tail index α.
        alpha: f64,
    },
    /// See [`Gamma`].
    Gamma {
        /// Shape k.
        k: f64,
        /// Scale θ.
        theta: f64,
    },
    /// See [`Hyperexponential`] (mean / squared-CV form).
    Hyperexp {
        /// Mean.
        mean: f64,
        /// Squared coefficient of variation (≥ 1).
        scv: f64,
    },
}

impl DistKind {
    /// Instantiate the described distribution.
    pub fn build(&self) -> Box<dyn Dist + Send + Sync> {
        match *self {
            DistKind::Constant { value } => Box::new(Constant::new(value)),
            DistKind::Uniform { lo, hi } => Box::new(Uniform::new(lo, hi)),
            DistKind::Exponential { mean } => Box::new(Exponential::with_mean(mean)),
            DistKind::Normal { mu, sigma } => Box::new(Normal::new(mu, sigma)),
            DistKind::LogNormal { mean, cv } => Box::new(LogNormal::from_mean_cv(mean, cv)),
            DistKind::Weibull { k, lambda } => Box::new(Weibull::new(k, lambda)),
            DistKind::Pareto { xm, alpha } => Box::new(Pareto::new(xm, alpha)),
            DistKind::Gamma { k, theta } => Box::new(Gamma::new(k, theta)),
            DistKind::Hyperexp { mean, scv } => {
                Box::new(Hyperexponential::from_mean_scv(mean, scv))
            }
        }
    }

    /// Draw one value directly from the description.
    pub fn sample(&self, rng: &mut SimRng) -> f64 {
        // Small enum dispatch; avoids boxing on hot paths that keep a DistKind.
        match *self {
            DistKind::Constant { value } => value,
            DistKind::Uniform { lo, hi } => rng.uniform_range(lo, hi),
            DistKind::Exponential { mean } => Exponential::with_mean(mean).sample(rng),
            DistKind::Normal { mu, sigma } => Normal::new(mu, sigma).sample(rng),
            DistKind::LogNormal { mean, cv } => LogNormal::from_mean_cv(mean, cv).sample(rng),
            DistKind::Weibull { k, lambda } => Weibull::new(k, lambda).sample(rng),
            DistKind::Pareto { xm, alpha } => Pareto::new(xm, alpha).sample(rng),
            DistKind::Gamma { k, theta } => Gamma::new(k, theta).sample(rng),
            DistKind::Hyperexp { mean, scv } => {
                Hyperexponential::from_mean_scv(mean, scv).sample(rng)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn empirical_mean_var(d: &impl Dist, seed: u64, n: usize) -> (f64, f64) {
        let mut rng = SimRng::seeded(seed);
        let (mut sum, mut sumsq) = (0.0, 0.0);
        for _ in 0..n {
            let x = d.sample(&mut rng);
            sum += x;
            sumsq += x * x;
        }
        let mean = sum / n as f64;
        (mean, sumsq / n as f64 - mean * mean)
    }

    #[test]
    fn exponential_mean_and_memorylessness_proxy() {
        let d = Exponential::with_mean(5.0);
        let (mean, var) = empirical_mean_var(&d, 1, 200_000);
        assert!((mean - 5.0).abs() < 0.1, "mean {mean}");
        assert!((var - 25.0).abs() < 1.5, "var {var}");
        assert_eq!(d.mean(), Some(5.0));
    }

    #[test]
    fn lognormal_from_mean_cv_matches_target() {
        let d = LogNormal::from_mean_cv(100.0, 2.0);
        let (mean, var) = empirical_mean_var(&d, 2, 400_000);
        assert!((mean - 100.0).abs() < 3.0, "mean {mean}");
        let cv = var.sqrt() / mean;
        assert!((cv - 2.0).abs() < 0.2, "cv {cv}");
        assert!((d.mean().unwrap() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn weibull_mean_matches_gamma_formula() {
        let d = Weibull::new(1.5, 10.0);
        let (mean, _) = empirical_mean_var(&d, 3, 200_000);
        let expect = d.mean().unwrap();
        assert!(
            (mean - expect).abs() / expect < 0.02,
            "mean {mean} vs {expect}"
        );
    }

    #[test]
    fn weibull_shape_one_is_exponential() {
        let d = Weibull::new(1.0, 4.0);
        assert!((d.mean().unwrap() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn pareto_tail_and_mean() {
        let d = Pareto::new(1.0, 2.5);
        let (mean, _) = empirical_mean_var(&d, 4, 400_000);
        let expect = 2.5 / 1.5;
        assert!((mean - expect).abs() < 0.05, "mean {mean} vs {expect}");
        let mut rng = SimRng::seeded(5);
        for _ in 0..1000 {
            assert!(d.sample(&mut rng) >= 1.0);
        }
        assert_eq!(Pareto::new(1.0, 0.9).mean(), None, "infinite mean");
    }

    #[test]
    fn gamma_mean_and_variance() {
        let d = Gamma::new(3.0, 2.0);
        let (mean, var) = empirical_mean_var(&d, 6, 300_000);
        assert!((mean - 6.0).abs() < 0.1, "mean {mean}");
        assert!((var - 12.0).abs() < 0.5, "var {var}");
    }

    #[test]
    fn gamma_small_shape_boost_path() {
        let d = Gamma::new(0.5, 1.0);
        let (mean, _) = empirical_mean_var(&d, 7, 300_000);
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
        let mut rng = SimRng::seeded(8);
        for _ in 0..1000 {
            assert!(d.sample(&mut rng) >= 0.0);
        }
    }

    #[test]
    fn gamma_fn_known_values() {
        assert!((gamma_fn(1.0) - 1.0).abs() < 1e-10);
        assert!((gamma_fn(2.0) - 1.0).abs() < 1e-10);
        assert!((gamma_fn(5.0) - 24.0).abs() < 1e-7);
        assert!((gamma_fn(0.5) - std::f64::consts::PI.sqrt()).abs() < 1e-10);
        assert!((gamma_fn(1.5) - 0.5 * std::f64::consts::PI.sqrt()).abs() < 1e-10);
    }

    #[test]
    fn hyperexponential_moment_matching() {
        let d = Hyperexponential::from_mean_scv(10.0, 4.0);
        let (mean, var) = empirical_mean_var(&d, 9, 400_000);
        assert!((mean - 10.0).abs() < 0.2, "mean {mean}");
        let scv = var / (mean * mean);
        assert!((scv - 4.0).abs() < 0.3, "scv {scv}");
        assert!((d.mean().unwrap() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn zipf_rank_one_dominates() {
        let z = Zipf::new(100, 1.0);
        let mut rng = SimRng::seeded(10);
        let mut counts = vec![0u32; 100];
        for _ in 0..100_000 {
            counts[(z.sample_rank(&mut rng) - 1) as usize] += 1;
        }
        assert!(counts[0] > counts[9], "rank 1 should beat rank 10");
        // P(1)/P(2) should be ~2 for s=1.
        let ratio = counts[0] as f64 / counts[1] as f64;
        assert!((ratio - 2.0).abs() < 0.25, "ratio {ratio}");
        // pmf sums to 1.
        let total: f64 = (1..=100).map(|k| z.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zipf_zero_exponent_is_uniform() {
        let z = Zipf::new(10, 0.0);
        for k in 1..=10 {
            assert!((z.pmf(k) - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    fn zipf_ranks_in_range() {
        let z = Zipf::new(7, 1.2);
        let mut rng = SimRng::seeded(11);
        for _ in 0..10_000 {
            let r = z.sample_rank(&mut rng);
            assert!((1..=7).contains(&r));
        }
    }

    #[test]
    fn empirical_alias_matches_weights() {
        let e = Empirical::new(&[1.0, 2.0, 0.0, 5.0]);
        let mut rng = SimRng::seeded(12);
        let mut counts = [0u32; 4];
        let n = 200_000;
        for _ in 0..n {
            counts[e.sample_index(&mut rng)] += 1;
        }
        assert_eq!(counts[2], 0);
        for (i, expect) in [(0usize, 1.0 / 8.0), (1, 2.0 / 8.0), (3, 5.0 / 8.0)] {
            let rate = counts[i] as f64 / n as f64;
            assert!((rate - expect).abs() < 0.01, "cat {i}: {rate} vs {expect}");
            assert!((e.probability(i) - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn empirical_single_category() {
        let e = Empirical::new(&[3.0]);
        let mut rng = SimRng::seeded(13);
        for _ in 0..100 {
            assert_eq!(e.sample_index(&mut rng), 0);
        }
    }

    #[test]
    #[should_panic(expected = "positive weight")]
    fn empirical_all_zero_panics() {
        Empirical::new(&[0.0, f64::NAN, -2.0]);
    }

    #[test]
    fn dist_kind_build_and_sample_agree_on_mean() {
        let kinds = vec![
            DistKind::Constant { value: 3.0 },
            DistKind::Uniform { lo: 0.0, hi: 2.0 },
            DistKind::Exponential { mean: 4.0 },
            DistKind::LogNormal {
                mean: 10.0,
                cv: 1.0,
            },
            DistKind::Gamma { k: 2.0, theta: 3.0 },
            DistKind::Hyperexp {
                mean: 5.0,
                scv: 2.0,
            },
        ];
        for kind in kinds {
            let boxed = kind.build();
            let mut r1 = SimRng::seeded(99);
            let mut acc_direct = 0.0;
            let n = 50_000;
            for _ in 0..n {
                acc_direct += kind.sample(&mut r1);
            }
            let direct_mean = acc_direct / n as f64;
            let closed = boxed.mean().unwrap();
            assert!(
                (direct_mean - closed).abs() / closed.max(1.0) < 0.05,
                "{kind:?}: sampled {direct_mean} vs closed {closed}"
            );
        }
    }

    #[test]
    fn normal_clamped_never_below_floor() {
        let d = Normal::new(0.0, 10.0);
        let mut rng = SimRng::seeded(14);
        for _ in 0..1000 {
            assert!(d.sample_clamped(&mut rng, 0.5) >= 0.5);
        }
    }

    #[test]
    fn constant_is_constant() {
        let d = Constant::new(7.5);
        let mut rng = SimRng::seeded(15);
        for _ in 0..10 {
            assert_eq!(d.sample(&mut rng), 7.5);
        }
    }

    #[test]
    fn uniform_bounds_respected() {
        let d = Uniform::new(2.0, 3.0);
        let mut rng = SimRng::seeded(16);
        for _ in 0..10_000 {
            let x = d.sample(&mut rng);
            assert!((2.0..3.0).contains(&x));
        }
    }
}
