//! Property tests for the mergeable quantile sketch.
//!
//! Two families of properties, with deliberately different strengths:
//!
//! 1. **Algebraic, exact.** Merge is element-wise `u64` addition over a
//!    fixed bin layout, so it must be *exactly* associative, commutative,
//!    and partition-invariant — merge-then-query equals query-on-pooled
//!    data bit for bit. These are `assert_eq!` on whole sketches, no
//!    tolerance. This is the property that makes the sharded engine's
//!    per-shard books byte-identical at any `--threads N`, and it is
//!    precisely what adaptive rank sketches (t-digest, KLL) cannot offer.
//!
//! 2. **Analytic, bounded.** Reported quantiles stay within the documented
//!    [`RELATIVE_ERROR`] of exact sorted-sample quantiles on uniform,
//!    exponential, and bimodal inputs — the same shapes `quantiles.rs`
//!    uses for the P²/histogram estimators, and the same nearest-rank
//!    convention as [`exact_quantile`].

use tg_des::sketch::{QuantileSketch, SpanSketchbook, RELATIVE_ERROR};
use tg_des::stats::exact_quantile;
use tg_des::{SpanKind, WaitCause};

/// Deterministic 64-bit LCG (MMIX constants); no external RNG needed.
struct Lcg(u64);

impl Lcg {
    fn next_u64(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0
    }

    /// Uniform in [0, 1).
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

fn uniform(n: usize, lo: f64, hi: f64, seed: u64) -> Vec<f64> {
    let mut rng = Lcg(seed);
    (0..n).map(|_| lo + (hi - lo) * rng.next_f64()).collect()
}

fn exponential(n: usize, mean: f64, seed: u64) -> Vec<f64> {
    let mut rng = Lcg(seed);
    (0..n)
        .map(|_| -mean * (1.0 - rng.next_f64()).ln())
        .collect()
}

/// Two well-separated uniform lobes: short jobs around ~1 minute, long
/// jobs around ~10 hours — the shape batch wait times actually have.
fn bimodal(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = Lcg(seed);
    (0..n)
        .map(|_| {
            if rng.next_f64() < 0.7 {
                30.0 + 60.0 * rng.next_f64()
            } else {
                30_000.0 + 12_000.0 * rng.next_f64()
            }
        })
        .collect()
}

/// A "nasty" stream: zeros, sub-nanosecond values, year-scale values, and
/// everything in between — exercises the under/over guard bins too.
fn wild(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = Lcg(seed);
    (0..n)
        .map(|_| match rng.next_u64() % 5 {
            0 => 0.0,
            1 => rng.next_f64() * 1e-10,
            2 => rng.next_f64() * 1.0,
            3 => rng.next_f64() * 86_400.0,
            _ => rng.next_f64() * 3.2e7, // ~ a year of seconds
        })
        .collect()
}

fn sketch_of(vals: &[f64]) -> QuantileSketch {
    let mut s = QuantileSketch::new();
    for &v in vals {
        s.record(v);
    }
    s
}

#[test]
fn merge_is_exactly_commutative() {
    for seed in 1..=8u64 {
        let xs = wild(400, seed);
        let ys = exponential(300, 500.0, seed ^ 0xFF);
        let (a, b) = (sketch_of(&xs), sketch_of(&ys));
        let mut ab = a.clone();
        ab.merge_from(&b);
        let mut ba = b.clone();
        ba.merge_from(&a);
        assert_eq!(ab, ba, "seed {seed}: a⊕b != b⊕a");
    }
}

#[test]
fn merge_is_exactly_associative() {
    for seed in 1..=8u64 {
        let (a, b, c) = (
            sketch_of(&wild(300, seed)),
            sketch_of(&uniform(250, 0.0, 7200.0, seed ^ 0xA)),
            sketch_of(&bimodal(350, seed ^ 0xB)),
        );
        // (a ⊕ b) ⊕ c
        let mut left = a.clone();
        left.merge_from(&b);
        left.merge_from(&c);
        // a ⊕ (b ⊕ c)
        let mut bc = b.clone();
        bc.merge_from(&c);
        let mut right = a.clone();
        right.merge_from(&bc);
        assert_eq!(left, right, "seed {seed}: (a⊕b)⊕c != a⊕(b⊕c)");
    }
}

/// Merge-then-query ≡ query-then-pool, for *any* partition of the stream:
/// splitting the observations across k sketches (as the sharded engine
/// splits spans across shards) and merging yields the whole-stream sketch
/// bit for bit — so every query answer is identical too.
#[test]
fn any_partition_merges_to_the_whole_stream_sketch() {
    for seed in 1..=10u64 {
        let mut rng = Lcg(seed.wrapping_mul(0x9E37_79B9));
        let vals = wild(1000, seed);
        let whole = sketch_of(&vals);
        let k = 2 + (rng.next_u64() % 6) as usize;
        let mut parts = vec![QuantileSketch::new(); k];
        for &v in &vals {
            parts[(rng.next_u64() % k as u64) as usize].record(v);
        }
        let mut merged = QuantileSketch::new();
        for p in &parts {
            merged.merge_from(p);
        }
        assert_eq!(merged, whole, "seed {seed}: {k}-way partition diverged");
        // And therefore every answer matches exactly, not approximately.
        for q in [0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0] {
            assert_eq!(merged.quantile(q), whole.quantile(q));
        }
        assert_eq!(merged.mean(), whole.mean());
        assert_eq!(merged.summary(), whole.summary());
    }
}

fn check_bound(vals: &[f64], label: &str) {
    let s = sketch_of(vals);
    let mut sorted = vals.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    for q in [0.5, 0.95, 0.99] {
        let want = exact_quantile(&sorted, q).unwrap();
        let got = s.quantile(q);
        // Same nearest-rank convention on both sides, so the only error is
        // the half-bin width — the documented bound, plus float dust.
        let tol = want.abs() * (RELATIVE_ERROR + 1e-9) + 1e-9;
        assert!(
            (got - want).abs() <= tol,
            "{label} q={q}: sketch {got} vs exact {want} (tol {tol})"
        );
    }
    // Extremes are tracked exactly.
    assert_eq!(s.min(), sorted[0], "{label}: min");
    assert_eq!(s.max(), sorted[sorted.len() - 1], "{label}: max");
    // The mean inherits the same per-value midpoint bound.
    let exact_mean = vals.iter().sum::<f64>() / vals.len() as f64;
    assert!(
        (s.mean() - exact_mean).abs() <= exact_mean.abs() * RELATIVE_ERROR + 1e-9,
        "{label}: mean {} vs exact {exact_mean}",
        s.mean()
    );
}

#[test]
fn quantiles_within_bound_on_uniform_input() {
    check_bound(&uniform(4000, 0.0, 3600.0, 0xA11CE), "uniform");
    check_bound(&uniform(4000, 1.0, 100.0, 0xA11CF), "uniform-narrow");
}

#[test]
fn quantiles_within_bound_on_exponential_input() {
    check_bound(&exponential(4000, 1800.0, 0xB0B), "exponential");
    check_bound(&exponential(4000, 0.001, 0xB0C), "exponential-fast");
}

#[test]
fn quantiles_within_bound_on_bimodal_input() {
    check_bound(&bimodal(4000, 0xD1CE), "bimodal");
}

#[test]
fn quantiles_within_bound_on_many_random_seeds() {
    for seed in 100..130u64 {
        check_bound(&exponential(500, 60.0 * (seed - 99) as f64, seed), "sweep");
    }
}

/// The keyed book inherits partition invariance slot-wise: splitting spans
/// across books (as shards do) and merging equals the book that saw the
/// whole stream, including its pooled/snapshot views.
#[test]
fn sketchbook_partition_invariance_across_keys() {
    let mods = vec!["batch".to_string(), "gateway".to_string()];
    for seed in 1..=6u64 {
        let mut rng = Lcg(seed ^ 0xBEEF);
        let mut whole = SpanSketchbook::enabled(3, mods.clone());
        let mut parts = vec![
            SpanSketchbook::enabled(3, mods.clone()),
            SpanSketchbook::enabled(3, mods.clone()),
            SpanSketchbook::enabled(3, mods.clone()),
        ];
        for _ in 0..800 {
            let kind = SpanKind::ALL[(rng.next_u64() % SpanKind::ALL.len() as u64) as usize];
            let cause = if kind == SpanKind::Queued {
                Some(WaitCause::ALL[(rng.next_u64() % WaitCause::ALL.len() as u64) as usize])
            } else {
                None
            };
            let site = Some((rng.next_u64() % 3) as usize);
            let modality = Some((rng.next_u64() % 2) as usize);
            let secs = rng.next_f64() * 10_000.0;
            whole.record(kind, cause, site, modality, secs);
            parts[(rng.next_u64() % 3) as usize].record(kind, cause, site, modality, secs);
        }
        let mut merged = parts.remove(0);
        for p in &parts {
            merged.merge_from(p);
        }
        assert_eq!(merged, whole, "seed {seed}: book partition diverged");
        assert_eq!(merged.snapshot(), whole.snapshot());
        assert_eq!(
            merged
                .pooled_kind_cause(SpanKind::Queued, Some(WaitCause::AheadInQueue))
                .summary(),
            whole
                .pooled_kind_cause(SpanKind::Queued, Some(WaitCause::AheadInQueue))
                .summary()
        );
    }
}

/// Merging an empty sketch is the identity, in both directions.
#[test]
fn empty_is_the_merge_identity() {
    let s = sketch_of(&exponential(200, 42.0, 7));
    let mut left = QuantileSketch::new();
    left.merge_from(&s);
    assert_eq!(left, s);
    let mut right = s.clone();
    right.merge_from(&QuantileSketch::new());
    assert_eq!(right, s);
}
