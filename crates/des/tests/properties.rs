//! Property-based tests for the DES substrate: engine ordering, RNG
//! determinism, distribution sanity, and statistics invariants.

use proptest::prelude::*;
use tg_des::dist::DistKind;
use tg_des::stats::{exact_quantile, OnlineStats, P2Quantile};
use tg_des::{Ctx, Engine, RngFactory, SimDuration, SimRng, SimTime, Simulation, StreamId};

// ---------------------------------------------------------------------
// Engine ordering
// ---------------------------------------------------------------------

struct Collector {
    seen: Vec<(SimTime, u32)>,
}

impl Simulation for Collector {
    type Event = u32;
    fn handle(&mut self, ctx: &mut Ctx<u32>, ev: u32) {
        self.seen.push((ctx.now(), ev));
    }
}

proptest! {
    /// Whatever order events are scheduled in, delivery is sorted by time,
    /// and ties preserve scheduling order.
    #[test]
    fn engine_delivers_in_time_then_fifo_order(times in prop::collection::vec(0u64..1000, 1..200)) {
        let mut engine = Engine::new();
        for (i, &t) in times.iter().enumerate() {
            engine.schedule_at(SimTime::from_secs(t), i as u32);
        }
        let mut sim = Collector { seen: Vec::new() };
        engine.run(&mut sim);
        prop_assert_eq!(sim.seen.len(), times.len());
        for w in sim.seen.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "time order violated");
            if w[0].0 == w[1].0 {
                // Same instant: scheduling (= id) order.
                prop_assert!(w[0].1 < w[1].1, "FIFO tie-break violated");
            }
        }
    }

    /// Cancelling an arbitrary subset removes exactly that subset.
    #[test]
    fn cancellation_removes_exactly_the_cancelled(
        times in prop::collection::vec(0u64..100, 1..100),
        cancel_mask in prop::collection::vec(any::<bool>(), 1..100),
    ) {
        let mut engine = Engine::new();
        let keys: Vec<_> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| engine.schedule_at(SimTime::from_secs(t), i as u32))
            .collect();
        let mut expect: Vec<u32> = Vec::new();
        for (i, key) in keys.iter().enumerate() {
            if *cancel_mask.get(i).unwrap_or(&false) {
                prop_assert!(engine.cancel(*key));
            } else {
                expect.push(i as u32);
            }
        }
        let mut sim = Collector { seen: Vec::new() };
        engine.run(&mut sim);
        let mut got: Vec<u32> = sim.seen.iter().map(|&(_, e)| e).collect();
        got.sort_unstable();
        expect.sort_unstable();
        prop_assert_eq!(got, expect);
    }
}

// ---------------------------------------------------------------------
// RNG streams
// ---------------------------------------------------------------------

proptest! {
    /// A stream's draws depend only on (master seed, stream id).
    #[test]
    fn streams_are_pure_functions_of_seed_and_id(seed in any::<u64>(), idx in 0u64..1000) {
        let draw = |seed: u64, idx: u64| -> Vec<u64> {
            let mut r = RngFactory::new(seed).stream(StreamId::new("p", idx));
            (0..8).map(|_| rand::RngCore::next_u64(&mut r)).collect()
        };
        prop_assert_eq!(draw(seed, idx), draw(seed, idx));
        // Perturbing either coordinate changes the stream (overwhelmingly).
        prop_assert_ne!(draw(seed, idx), draw(seed.wrapping_add(1), idx));
        prop_assert_ne!(draw(seed, idx), draw(seed, idx + 1));
    }

    /// `below(n)` is always in range; `pick_weighted` returns a positive-
    /// weight index.
    #[test]
    fn bounded_draws_stay_in_bounds(seed in any::<u64>(), n in 1u64..10_000) {
        let mut rng = SimRng::seeded(seed);
        for _ in 0..100 {
            prop_assert!(rng.below(n) < n);
        }
        let weights = [0.0, 2.5, 0.0, 1.0];
        for _ in 0..100 {
            let i = rng.pick_weighted(&weights);
            prop_assert!(i == 1 || i == 3);
        }
    }
}

// ---------------------------------------------------------------------
// Distributions
// ---------------------------------------------------------------------

fn arb_distkind() -> impl Strategy<Value = DistKind> {
    prop_oneof![
        (0.1f64..1e6).prop_map(|v| DistKind::Constant { value: v }),
        (0.1f64..100.0, 1.0f64..100.0).prop_map(|(lo, w)| DistKind::Uniform { lo, hi: lo + w }),
        (0.1f64..1e5).prop_map(|mean| DistKind::Exponential { mean }),
        (1.0f64..1e5, 0.1f64..3.0).prop_map(|(mean, cv)| DistKind::LogNormal { mean, cv }),
        (0.2f64..5.0, 0.1f64..1e4).prop_map(|(k, lambda)| DistKind::Weibull { k, lambda }),
        (0.1f64..1e3, 1.1f64..4.0).prop_map(|(xm, alpha)| DistKind::Pareto { xm, alpha }),
        (0.2f64..5.0, 0.1f64..1e3).prop_map(|(k, theta)| DistKind::Gamma { k, theta }),
        (1.0f64..1e4, 1.0f64..6.0).prop_map(|(mean, scv)| DistKind::Hyperexp { mean, scv }),
    ]
}

proptest! {
    /// Every (non-normal) distribution draws non-negative, finite values,
    /// and its sampled mean tracks its closed-form mean where one exists.
    #[test]
    fn distributions_draw_finite_nonnegative(kind in arb_distkind(), seed in any::<u64>()) {
        let mut rng = SimRng::seeded(seed);
        let mut acc = 0.0;
        let n = 4000;
        for _ in 0..n {
            let x = kind.sample(&mut rng);
            prop_assert!(x.is_finite(), "{kind:?} drew {x}");
            prop_assert!(x >= 0.0, "{kind:?} drew {x}");
            acc += x;
        }
        if let Some(mean) = kind.build().mean() {
            let sampled = acc / n as f64;
            // Loose: heavy tails need slack. Pareto with alpha near 1 is
            // excluded by the strategy (alpha ≥ 1.1 still slow) — allow 12×.
            prop_assert!(
                sampled > mean / 12.0 && sampled < mean * 12.0,
                "{kind:?}: sampled {sampled} vs closed {mean}"
            );
        }
    }

    /// Serde round-trips every DistKind.
    #[test]
    fn distkind_serde_roundtrip(kind in arb_distkind()) {
        let json = serde_json::to_string(&kind).unwrap();
        let back: DistKind = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(kind, back);
    }
}

// ---------------------------------------------------------------------
// Statistics
// ---------------------------------------------------------------------

proptest! {
    /// Welford mean/variance agree with the naive two-pass computation.
    #[test]
    fn online_stats_match_two_pass(data in prop::collection::vec(-1e6f64..1e6, 2..500)) {
        let mut s = OnlineStats::new();
        for &x in &data {
            s.record(x);
        }
        let n = data.len() as f64;
        let mean = data.iter().sum::<f64>() / n;
        let var = data.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1.0);
        prop_assert!((s.mean() - mean).abs() <= 1e-6 * (1.0 + mean.abs()));
        prop_assert!((s.variance() - var).abs() <= 1e-5 * (1.0 + var.abs()));
    }

    /// Merging partitions is equivalent to sequential accumulation, for any
    /// split point.
    #[test]
    fn online_stats_merge_any_split(
        data in prop::collection::vec(-1e3f64..1e3, 2..200),
        split_frac in 0.0f64..1.0,
    ) {
        let split = ((data.len() as f64) * split_frac) as usize;
        let mut whole = OnlineStats::new();
        for &x in &data {
            whole.record(x);
        }
        let (mut a, mut b) = (OnlineStats::new(), OnlineStats::new());
        for &x in &data[..split] {
            a.record(x);
        }
        for &x in &data[split..] {
            b.record(x);
        }
        a.merge(&b);
        prop_assert_eq!(a.count(), whole.count());
        prop_assert!((a.mean() - whole.mean()).abs() < 1e-9 * (1.0 + whole.mean().abs()));
        prop_assert!((a.variance() - whole.variance()).abs() < 1e-7 * (1.0 + whole.variance()));
    }

    /// The P² estimate stays within the sample's range and lands near the
    /// exact quantile for well-behaved data.
    #[test]
    fn p2_is_bounded_by_sample_range(data in prop::collection::vec(0.0f64..1e4, 10..2000)) {
        let mut p = P2Quantile::new(0.5);
        for &x in &data {
            p.record(x);
        }
        let est = p.estimate().unwrap();
        let lo = data.iter().cloned().fold(f64::MAX, f64::min);
        let hi = data.iter().cloned().fold(f64::MIN, f64::max);
        prop_assert!(est >= lo && est <= hi, "estimate {est} outside [{lo}, {hi}]");
        let mut sorted = data.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let exact = exact_quantile(&sorted, 0.5).unwrap();
        let spread = (hi - lo).max(1e-9);
        prop_assert!(
            (est - exact).abs() <= 0.35 * spread,
            "estimate {est} too far from exact median {exact} (spread {spread})"
        );
    }

    /// Time arithmetic: (t + d) - t == d and ordering is preserved.
    #[test]
    fn time_arithmetic_roundtrips(t in 0u64..u64::MAX / 4, d in 0u64..u64::MAX / 4) {
        let t = SimTime::from_micros(t);
        let d = SimDuration::from_micros(d);
        prop_assert_eq!((t + d) - t, d);
        prop_assert!(t + d >= t);
    }
}
