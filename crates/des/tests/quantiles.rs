//! Accuracy of the streaming quantile estimators against exact
//! sorted-sample quantiles on uniform, exponential, and bimodal inputs.
//!
//! Both estimators trade exactness for O(1) memory:
//! * `P2Quantile` keeps five markers and interpolates parabolically;
//! * the log-binned `Histogram` interpolates inside a power-of-two bin.
//!
//! Neither is exact, so every assertion is tolerance-bounded. The
//! tolerances are loose enough to be stable across platforms but tight
//! enough to catch sign errors, off-by-one marker updates, or a broken bin
//! interpolation.

use tg_des::stats::{exact_quantile, Histogram, P2Quantile};

/// Deterministic 64-bit LCG (MMIX constants); no external RNG needed.
struct Lcg(u64);

impl Lcg {
    fn next_u64(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0
    }

    /// Uniform in [0, 1).
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

fn uniform(n: usize, lo: f64, hi: f64, seed: u64) -> Vec<f64> {
    let mut rng = Lcg(seed);
    (0..n).map(|_| lo + (hi - lo) * rng.next_f64()).collect()
}

fn exponential(n: usize, mean: f64, seed: u64) -> Vec<f64> {
    let mut rng = Lcg(seed);
    (0..n)
        .map(|_| -mean * (1.0 - rng.next_f64()).ln())
        .collect()
}

/// Two well-separated uniform lobes: short jobs around ~1 minute, long
/// jobs around ~10 hours — the shape batch wait times actually have.
fn bimodal(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = Lcg(seed);
    (0..n)
        .map(|_| {
            if rng.next_f64() < 0.7 {
                30.0 + 60.0 * rng.next_f64()
            } else {
                30_000.0 + 12_000.0 * rng.next_f64()
            }
        })
        .collect()
}

/// Relative error with a small absolute floor so near-zero quantiles don't
/// blow the ratio up.
fn rel_err(got: f64, want: f64) -> f64 {
    (got - want).abs() / want.abs().max(1.0)
}

fn check_p2(samples: &[f64], q: f64, tol: f64, label: &str) {
    let mut est = P2Quantile::new(q);
    for &x in samples {
        est.record(x);
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let exact = exact_quantile(&sorted, q).unwrap();
    let got = est.estimate().unwrap();
    assert!(
        rel_err(got, exact) < tol,
        "{label} q={q}: P2 {got} vs exact {exact} (tol {tol})"
    );
}

fn check_hist(samples: &[f64], q: f64, tol: f64, label: &str) {
    let mut hist = Histogram::for_durations();
    for &x in samples {
        hist.record(x);
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let exact = exact_quantile(&sorted, q).unwrap();
    let got = hist.quantile(q).unwrap();
    assert!(
        rel_err(got, exact) < tol,
        "{label} q={q}: hist {got} vs exact {exact} (tol {tol})"
    );
}

#[test]
fn p2_tracks_exact_quantiles_on_uniform_input() {
    let samples = uniform(4000, 0.0, 3600.0, 0xA11CE);
    // Uniform is P²'s best case: the parabolic marker model is exact in
    // expectation.
    for q in [0.5, 0.95, 0.99] {
        check_p2(&samples, q, 0.05, "uniform");
    }
}

#[test]
fn p2_tracks_exact_quantiles_on_exponential_input() {
    let samples = exponential(4000, 1800.0, 0xB0B);
    for q in [0.5, 0.95] {
        check_p2(&samples, q, 0.10, "exponential");
    }
    // The extreme tail of a heavy-ish distribution is the hardest point for
    // five markers; allow more slack there.
    check_p2(&samples, 0.99, 0.15, "exponential");
}

#[test]
fn p2_locates_the_right_lobe_of_a_bimodal_input() {
    let samples = bimodal(4000, 0xD1CE);
    // With 70% short jobs the median must land in the short lobe and the
    // tail quantiles in the long lobe — lobe placement is the real test;
    // within-lobe precision is secondary.
    let mut est50 = P2Quantile::new(0.5);
    let mut est95 = P2Quantile::new(0.95);
    for &x in &samples {
        est50.record(x);
        est95.record(x);
    }
    let p50 = est50.estimate().unwrap();
    let p95 = est95.estimate().unwrap();
    assert!(
        (30.0..=90.0).contains(&p50),
        "bimodal p50 {p50} should be in the short lobe"
    );
    assert!(
        (30_000.0..=42_000.0).contains(&p95),
        "bimodal p95 {p95} should be in the long lobe"
    );
    check_p2(&samples, 0.99, 0.15, "bimodal");
}

#[test]
fn log_histogram_quantiles_are_bin_accurate_on_uniform_input() {
    let samples = uniform(4000, 1.0, 3600.0, 0xFEED);
    // A base-2 log bin spans a factor of 2, and the estimator interpolates
    // linearly inside it; 15% relative error is well inside one bin.
    for q in [0.5, 0.95, 0.99] {
        check_hist(&samples, q, 0.15, "uniform");
    }
}

#[test]
fn log_histogram_quantiles_are_bin_accurate_on_exponential_input() {
    let samples = exponential(4000, 900.0, 0xC0FFEE);
    for q in [0.5, 0.95, 0.99] {
        check_hist(&samples, q, 0.20, "exponential");
    }
}

#[test]
fn log_histogram_separates_bimodal_lobes() {
    let samples = bimodal(4000, 0x5EED);
    let mut hist = Histogram::for_durations();
    for &x in &samples {
        hist.record(x);
    }
    let p50 = hist.quantile(0.5).unwrap();
    let p95 = hist.quantile(0.95).unwrap();
    assert!(
        (16.0..=128.0).contains(&p50),
        "bimodal p50 {p50} should fall in the short lobe's bins"
    );
    assert!(
        (16_384.0..=65_536.0).contains(&p95),
        "bimodal p95 {p95} should fall in the long lobe's bins"
    );
    // Mean stays exact regardless of binning.
    let exact_mean = samples.iter().sum::<f64>() / samples.len() as f64;
    assert!((hist.mean() - exact_mean).abs() < 1e-9);
}
