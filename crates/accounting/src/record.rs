//! Usage record types — what central accounting actually observes.
//!
//! Deliberately *excluded* from [`JobRecord`]: ground-truth modality,
//! workflow membership, ensemble membership. Production accounting doesn't
//! record those; the measurement pipeline must recover them from what is
//! here (interfaces, gateway attributes, timing, shape). Keeping the record
//! honest is what makes the classifier-accuracy experiment (T2) meaningful.

use serde::{Deserialize, Serialize};
use tg_des::{SimDuration, SimTime};
use tg_model::{ConfigId, NodeId, SiteId};
use tg_workload::{GatewayId, JobId, ProjectId, SubmitInterface, UserId};

/// A completed (or killed) job, as the site reports it upstream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobRecord {
    /// Job id.
    pub job: JobId,
    /// Submitting account.
    pub user: UserId,
    /// Charged project.
    pub project: ProjectId,
    /// Executing site.
    pub site: SiteId,
    /// Submission instant.
    pub submit: SimTime,
    /// Start instant.
    pub start: SimTime,
    /// Completion instant.
    pub end: SimTime,
    /// Cores held.
    pub cores: usize,
    /// Submission interface (observable: gateways and engines tag traffic).
    pub interface: SubmitInterface,
    /// Whether the job executed on reconfigurable hardware.
    pub used_hw: bool,
    /// Input staged in, MB.
    pub input_mb: f64,
    /// Output staged out, MB.
    pub output_mb: f64,
}

impl JobRecord {
    /// Queue wait time.
    pub fn wait(&self) -> SimDuration {
        self.start.saturating_since(self.submit)
    }

    /// Wall-clock runtime.
    pub fn wall(&self) -> SimDuration {
        self.end.saturating_since(self.start)
    }

    /// Core-hours consumed.
    pub fn core_hours(&self) -> f64 {
        self.cores as f64 * self.wall().as_hours_f64()
    }

    /// Bounded slowdown with a 10-second floor (the standard metric).
    pub fn bounded_slowdown(&self) -> f64 {
        let wall = self.wall().as_secs_f64().max(10.0);
        (self.wait().as_secs_f64() + wall) / wall
    }
}

/// A wide-area data transfer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransferRecord {
    /// Initiating account.
    pub user: UserId,
    /// Charged project.
    pub project: ProjectId,
    /// Source site.
    pub src: SiteId,
    /// Destination site.
    pub dst: SiteId,
    /// Megabytes moved.
    pub mb: f64,
    /// Transfer start.
    pub start: SimTime,
    /// Transfer end.
    pub end: SimTime,
}

impl TransferRecord {
    /// Achieved throughput in MB/s (0 for instantaneous records).
    pub fn throughput_mbps(&self) -> f64 {
        let secs = self.end.saturating_since(self.start).as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.mb / secs
        }
    }
}

/// An interactive login session.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionRecord {
    /// Account.
    pub user: UserId,
    /// Site logged into.
    pub site: SiteId,
    /// Login instant.
    pub login: SimTime,
    /// Logout instant.
    pub logout: SimTime,
}

/// A science-gateway end-user attribute: the gateway's declaration of which
/// of *its* (community) users a job served. TeraGrid added exactly this to
/// make gateway usage measurable.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GatewayAttribute {
    /// The gateway.
    pub gateway: GatewayId,
    /// The job the attribute annotates.
    pub job: JobId,
    /// Opaque per-end-user tag (the gateway's own user id space).
    pub end_user: u64,
}

/// A reconfigurable placement record: emitted by the RC partition's local
/// resource manager alongside the job record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RcPlacementRecord {
    /// The job placed.
    pub job: JobId,
    /// Executing site.
    pub site: SiteId,
    /// Node within the RC partition.
    pub node: NodeId,
    /// Configuration used.
    pub config: ConfigId,
    /// Whether an existing idle region was reused (zero setup).
    pub reused: bool,
    /// Bitstream transfer latency paid.
    pub transfer: SimDuration,
    /// Fabric reconfiguration latency paid.
    pub reconfig: SimDuration,
    /// Whether the task's deadline (if any) was met.
    pub deadline_met: Option<bool>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(submit: u64, start: u64, end: u64, cores: usize) -> JobRecord {
        JobRecord {
            job: JobId(0),
            user: UserId(0),
            project: ProjectId(0),
            site: SiteId(0),
            submit: SimTime::from_secs(submit),
            start: SimTime::from_secs(start),
            end: SimTime::from_secs(end),
            cores,
            interface: SubmitInterface::CommandLine,
            used_hw: false,
            input_mb: 0.0,
            output_mb: 0.0,
        }
    }

    #[test]
    fn job_record_derived_metrics() {
        let r = rec(0, 600, 4200, 8);
        assert_eq!(r.wait(), SimDuration::from_mins(10));
        assert_eq!(r.wall(), SimDuration::from_mins(60));
        assert!((r.core_hours() - 8.0).abs() < 1e-9);
        // slowdown = (600 + 3600)/3600
        assert!((r.bounded_slowdown() - 4200.0 / 3600.0).abs() < 1e-9);
    }

    #[test]
    fn bounded_slowdown_floors_short_jobs() {
        let r = rec(0, 100, 101, 1); // 1-second job, 100 s wait
                                     // floor at 10 s: (100 + 10)/10 = 11
        assert!((r.bounded_slowdown() - 11.0).abs() < 1e-9);
    }

    #[test]
    fn transfer_throughput() {
        let t = TransferRecord {
            user: UserId(0),
            project: ProjectId(0),
            src: SiteId(0),
            dst: SiteId(1),
            mb: 1000.0,
            start: SimTime::ZERO,
            end: SimTime::from_secs(10),
        };
        assert!((t.throughput_mbps() - 100.0).abs() < 1e-9);
        let instant = TransferRecord {
            end: SimTime::ZERO,
            ..t
        };
        assert_eq!(instant.throughput_mbps(), 0.0);
    }

    #[test]
    fn records_serialize() {
        let r = rec(0, 1, 2, 4);
        let json = serde_json::to_string(&r).unwrap();
        let back: JobRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(r, back);
    }
}
