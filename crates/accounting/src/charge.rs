//! Service-unit charging.
//!
//! TeraGrid normalized heterogeneous hardware by charging per-site *charge
//! factors*: one wall-clock core-hour on a faster machine costs more SUs.
//! Cross-site reports then use *normalized units* (NUs) so usage is
//! comparable federation-wide.

use crate::record::JobRecord;
use serde::{Deserialize, Serialize};

/// SUs charged for `core_hours` at a site with `charge_factor`.
pub fn su_for(core_hours: f64, charge_factor: f64) -> f64 {
    assert!(core_hours >= 0.0, "negative core-hours");
    assert!(charge_factor > 0.0, "charge factor must be positive");
    core_hours * charge_factor
}

/// The federation's charging policy: per-site charge factors plus the
/// NU conversion factor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChargePolicy {
    /// Charge factor per site, indexed by `SiteId`.
    pub charge_factors: Vec<f64>,
    /// NUs per SU (the federation-wide normalization constant; TeraGrid
    /// used a Cray X-MP-derived factor — any positive constant works).
    pub nu_per_su: f64,
}

impl ChargePolicy {
    /// A policy over the given per-site factors with the default NU factor.
    pub fn new(charge_factors: Vec<f64>) -> Self {
        assert!(!charge_factors.is_empty(), "need at least one site");
        assert!(
            charge_factors.iter().all(|&f| f > 0.0),
            "charge factors must be positive"
        );
        ChargePolicy {
            charge_factors,
            nu_per_su: 1.0,
        }
    }

    /// SUs charged for a job record.
    pub fn su(&self, r: &JobRecord) -> f64 {
        su_for(r.core_hours(), self.charge_factors[r.site.index()])
    }

    /// NUs charged for a job record.
    pub fn nu(&self, r: &JobRecord) -> f64 {
        self.su(r) * self.nu_per_su
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tg_des::SimTime;
    use tg_model::SiteId;
    use tg_workload::{JobId, ProjectId, SubmitInterface, UserId};

    fn rec(site: usize, cores: usize, hours: u64) -> JobRecord {
        JobRecord {
            job: JobId(0),
            user: UserId(0),
            project: ProjectId(0),
            site: SiteId(site),
            submit: SimTime::ZERO,
            start: SimTime::ZERO,
            end: SimTime::from_hours(hours),
            cores,
            interface: SubmitInterface::CommandLine,
            used_hw: false,
            input_mb: 0.0,
            output_mb: 0.0,
        }
    }

    #[test]
    fn su_scales_with_factor() {
        assert!((su_for(100.0, 1.0) - 100.0).abs() < 1e-12);
        assert!((su_for(100.0, 1.5) - 150.0).abs() < 1e-12);
    }

    #[test]
    fn policy_charges_by_site() {
        let p = ChargePolicy::new(vec![1.0, 2.0]);
        let cheap = rec(0, 10, 3); // 30 core-hours × 1.0
        let dear = rec(1, 10, 3); // 30 core-hours × 2.0
        assert!((p.su(&cheap) - 30.0).abs() < 1e-9);
        assert!((p.su(&dear) - 60.0).abs() < 1e-9);
        assert!((p.nu(&dear) - 60.0).abs() < 1e-9);
        let mut p2 = p.clone();
        p2.nu_per_su = 0.5;
        assert!((p2.nu(&dear) - 30.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_factor_rejected() {
        ChargePolicy::new(vec![1.0, 0.0]);
    }
}
