//! Streaming record sinks — the accounting memory diet.
//!
//! [`crate::db::AccountingDb`] retains every record in RAM, which is the
//! right default for experiments that post-process the run (classifier
//! features, usage reports) but dominates peak RSS at million-user scale.
//! A [`RecordSink`] diverts the exact record stream the database would
//! have ingested — *after* any lossy-ingest fate has been applied, so the
//! sink's contents equal a retained run's database record for record —
//! to an external writer, keeping only a compact running [`IngestTally`]
//! in memory for end-of-run summaries.

use crate::record::{
    GatewayAttribute, JobRecord, RcPlacementRecord, SessionRecord, TransferRecord,
};
use serde::Serialize;
use std::io::{self, BufWriter, Write};
use std::path::Path;

/// One record on its way to a sink, borrowed from the emitting simulation.
#[derive(Debug, Clone, Copy)]
pub enum RecordRef<'a> {
    /// A completed job.
    Job(&'a JobRecord),
    /// A data transfer.
    Transfer(&'a TransferRecord),
    /// A login session.
    Session(&'a SessionRecord),
    /// A gateway end-user attribute.
    Gateway(&'a GatewayAttribute),
    /// An RC placement record.
    Rc(&'a RcPlacementRecord),
}

impl RecordRef<'_> {
    /// The stream tag written to JSONL envelopes.
    pub fn kind(&self) -> &'static str {
        match self {
            RecordRef::Job(_) => "job",
            RecordRef::Transfer(_) => "transfer",
            RecordRef::Session(_) => "session",
            RecordRef::Gateway(_) => "gateway",
            RecordRef::Rc(_) => "rc",
        }
    }

    fn body_json(&self) -> Result<String, serde_json::Error> {
        fn one<T: Serialize>(r: &T) -> Result<String, serde_json::Error> {
            serde_json::to_string(r)
        }
        match self {
            RecordRef::Job(r) => one(r),
            RecordRef::Transfer(r) => one(r),
            RecordRef::Session(r) => one(r),
            RecordRef::Gateway(r) => one(r),
            RecordRef::Rc(r) => one(r),
        }
    }
}

/// Compact running totals a sink maintains in place of the retained
/// vectors — enough for the end-of-run summary line without the records.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize)]
pub struct IngestTally {
    /// Job records written.
    pub jobs: u64,
    /// Transfer records written.
    pub transfers: u64,
    /// Session records written.
    pub sessions: u64,
    /// Gateway attributes written.
    pub gateway_attrs: u64,
    /// RC placements written.
    pub rc_placements: u64,
    /// Core-hours across all job records (the headline usage figure).
    pub core_hours: f64,
    /// Megabytes across all transfer records.
    pub transfer_mb: f64,
    /// Writes that failed at the I/O layer (records were still counted).
    pub write_errors: u64,
}

impl IngestTally {
    /// Total records across streams (mirrors `AccountingDb::len`).
    pub fn len(&self) -> u64 {
        self.jobs + self.transfers + self.sessions + self.gateway_attrs + self.rc_placements
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn count(&mut self, rec: &RecordRef<'_>) {
        match rec {
            RecordRef::Job(r) => {
                self.jobs += 1;
                self.core_hours += r.core_hours();
            }
            RecordRef::Transfer(r) => {
                self.transfers += 1;
                self.transfer_mb += r.mb;
            }
            RecordRef::Session(_) => self.sessions += 1,
            RecordRef::Gateway(_) => self.gateway_attrs += 1,
            RecordRef::Rc(_) => self.rc_placements += 1,
        }
    }
}

/// Destination for a streamed accounting-record flow.
///
/// Write errors must not perturb the simulation (records never feed back
/// into behaviour), so `write` is infallible at the call site: sinks count
/// failures in their tally and surface them at [`RecordSink::close`].
pub trait RecordSink: Send {
    /// Consume one record.
    fn write(&mut self, rec: RecordRef<'_>);

    /// Flush and return the final tally. Called exactly once, at the end
    /// of the run.
    fn close(&mut self) -> IngestTally;
}

/// A sink that writes one JSON object per line (`{"kind": "job", ...}`),
/// matching the JSONL convention of the span tracer.
pub struct JsonlRecordSink {
    out: Option<BufWriter<Box<dyn Write + Send>>>,
    tally: IngestTally,
}

impl JsonlRecordSink {
    /// A sink writing to `path` (created or truncated).
    pub fn create(path: &Path) -> io::Result<Self> {
        let file = std::fs::File::create(path)?;
        Ok(Self::from_writer(Box::new(file)))
    }

    /// A sink over an arbitrary writer (tests use an in-memory buffer).
    pub fn from_writer(w: Box<dyn Write + Send>) -> Self {
        JsonlRecordSink {
            out: Some(BufWriter::new(w)),
            tally: IngestTally::default(),
        }
    }
}

impl RecordSink for JsonlRecordSink {
    fn write(&mut self, rec: RecordRef<'_>) {
        self.tally.count(&rec);
        let Some(out) = self.out.as_mut() else {
            self.tally.write_errors += 1;
            return;
        };
        let ok = match rec.body_json() {
            Ok(body) => writeln!(out, "{{\"kind\":\"{}\",\"rec\":{}}}", rec.kind(), body).is_ok(),
            Err(_) => false,
        };
        if !ok {
            self.tally.write_errors += 1;
        }
    }

    fn close(&mut self) -> IngestTally {
        if let Some(mut out) = self.out.take() {
            if out.flush().is_err() {
                self.tally.write_errors += 1;
            }
        }
        self.tally
    }
}

/// A sink that keeps only the tally — for memory-budget runs where even
/// the JSONL file is unwanted.
#[derive(Debug, Default)]
pub struct NullRecordSink {
    tally: IngestTally,
}

impl RecordSink for NullRecordSink {
    fn write(&mut self, rec: RecordRef<'_>) {
        self.tally.count(&rec);
    }

    fn close(&mut self) -> IngestTally {
        self.tally
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex};
    use tg_des::SimTime;
    use tg_model::SiteId;
    use tg_workload::{JobId, ProjectId, SubmitInterface, UserId};

    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    fn job(id: usize) -> JobRecord {
        JobRecord {
            job: JobId(id),
            user: UserId(3),
            project: ProjectId(0),
            site: SiteId(0),
            submit: SimTime::ZERO,
            start: SimTime::from_secs(60),
            end: SimTime::from_secs(3660),
            cores: 2,
            interface: SubmitInterface::CommandLine,
            used_hw: false,
            input_mb: 0.0,
            output_mb: 0.0,
        }
    }

    #[test]
    fn jsonl_sink_writes_tagged_lines_and_tallies() {
        let buf = SharedBuf::default();
        let mut sink = JsonlRecordSink::from_writer(Box::new(buf.clone()));
        sink.write(RecordRef::Job(&job(1)));
        sink.write(RecordRef::Job(&job(2)));
        sink.write(RecordRef::Session(&SessionRecord {
            user: UserId(3),
            site: SiteId(0),
            login: SimTime::ZERO,
            logout: SimTime::from_secs(100),
        }));
        let tally = sink.close();
        assert_eq!(tally.jobs, 2);
        assert_eq!(tally.sessions, 1);
        assert_eq!(tally.len(), 3);
        assert_eq!(tally.write_errors, 0);
        assert!((tally.core_hours - 2.0 * 2.0).abs() < 1e-9);
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        let first: serde_json::Value = serde_json::from_str(lines[0]).unwrap();
        assert_eq!(first.get("kind").and_then(|v| v.as_str()), Some("job"));
        assert_eq!(
            first
                .get("rec")
                .and_then(|r| r.get("cores"))
                .and_then(|v| v.as_u64()),
            Some(2)
        );
        let last: serde_json::Value = serde_json::from_str(lines[2]).unwrap();
        assert_eq!(last.get("kind").and_then(|v| v.as_str()), Some("session"));
    }

    #[test]
    fn null_sink_counts_without_output() {
        let mut sink = NullRecordSink::default();
        sink.write(RecordRef::Job(&job(1)));
        sink.write(RecordRef::Transfer(&TransferRecord {
            user: UserId(3),
            project: ProjectId(0),
            src: SiteId(0),
            dst: SiteId(1),
            mb: 750.0,
            start: SimTime::ZERO,
            end: SimTime::from_secs(10),
        }));
        let tally = sink.close();
        assert_eq!(tally.len(), 2);
        assert!((tally.transfer_mb - 750.0).abs() < 1e-9);
    }
}
