//! Aggregation queries over the accounting database.
//!
//! Two consumers: usage *reports* (group-by sums and time-bucketed series)
//! and the modality *classifier* (per-user behavioural summaries —
//! [`UserSummary`] is its feature vector).

use crate::db::AccountingDb;
use crate::record::JobRecord;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use tg_des::SimDuration;
#[cfg(test)]
use tg_des::SimTime;
use tg_workload::{SubmitInterface, UserId};

/// Generic group-by-and-sum. Returns a deterministic (ordered) map.
pub fn sum_by<K: Ord, T>(
    items: impl IntoIterator<Item = T>,
    key: impl Fn(&T) -> K,
    val: impl Fn(&T) -> f64,
) -> BTreeMap<K, f64> {
    let mut out = BTreeMap::new();
    for item in items {
        *out.entry(key(&item)).or_insert(0.0) += val(&item);
    }
    out
}

/// Named alias for report tables.
pub type GroupSums<K> = BTreeMap<K, f64>;

/// Sum `val` over jobs into fixed-width time buckets keyed by completion
/// time. Returns per-bucket sums, bucket 0 first.
pub fn bucket_job_series(
    jobs: &[JobRecord],
    width: SimDuration,
    val: impl Fn(&JobRecord) -> f64,
) -> Vec<f64> {
    let mut buckets = tg_des::stats::TimeBuckets::new(width);
    for j in jobs {
        buckets.add(j.end, val(j));
    }
    buckets.sums().to_vec()
}

/// Per-user behavioural summary — the classifier's feature vector.
///
/// Every field is derivable from production accounting records alone.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UserSummary {
    /// The account.
    pub user: UserId,
    /// Completed jobs.
    pub jobs: u64,
    /// Total core-hours.
    pub core_hours: f64,
    /// Mean cores per job.
    pub mean_cores: f64,
    /// Largest core count seen.
    pub max_cores: usize,
    /// Mean wall-clock hours per job.
    pub mean_wall_hours: f64,
    /// Fraction of jobs shorter than 30 minutes.
    pub short_frac: f64,
    /// Fraction of jobs at 8 cores or fewer.
    pub small_frac: f64,
    /// Jobs per day over the account's active span (first submit → last end).
    pub jobs_per_day: f64,
    /// Largest set of jobs submitted at the same instant (batch submissions:
    /// ensembles and workflow engines leave this fingerprint).
    pub max_simultaneous_submits: u64,
    /// Fraction of jobs submitted in same-instant batches of ≥ 5.
    pub batched_frac: f64,
    /// Of the largest same-instant batch, whether all members had identical
    /// core counts (ensembles: yes; workflow stage-ins: usually no).
    pub largest_batch_uniform: bool,
    /// Jobs carrying a gateway end-user attribute.
    pub gateway_jobs: u64,
    /// Jobs submitted through a workflow-engine interface.
    pub engine_jobs: u64,
    /// Jobs that ran on reconfigurable hardware.
    pub rc_jobs: u64,
    /// Login sessions.
    pub sessions: u64,
    /// Total session hours.
    pub session_hours: f64,
    /// Data transfers initiated.
    pub transfers: u64,
    /// Total MB transferred.
    pub transfer_mb: f64,
}

/// Build summaries for every user appearing in the database, ordered by id.
pub fn user_summaries(db: &AccountingDb) -> Vec<UserSummary> {
    let mut by_user: BTreeMap<UserId, Vec<&JobRecord>> = BTreeMap::new();
    for j in &db.jobs {
        by_user.entry(j.user).or_default().push(j);
    }
    // Users with only sessions/transfers still get a summary.
    for s in &db.sessions {
        by_user.entry(s.user).or_default();
    }
    for t in &db.transfers {
        by_user.entry(t.user).or_default();
    }

    let mut out = Vec::with_capacity(by_user.len());
    for (user, mut jobs) in by_user {
        jobs.sort_by_key(|j| (j.submit, j.job));
        let n = jobs.len() as u64;
        let core_hours: f64 = jobs.iter().map(|j| j.core_hours()).sum();
        let mean_cores = if n > 0 {
            jobs.iter().map(|j| j.cores as f64).sum::<f64>() / n as f64
        } else {
            0.0
        };
        let max_cores = jobs.iter().map(|j| j.cores).max().unwrap_or(0);
        let mean_wall_hours = if n > 0 {
            jobs.iter().map(|j| j.wall().as_hours_f64()).sum::<f64>() / n as f64
        } else {
            0.0
        };
        let short_frac = frac(&jobs, |j| j.wall() < SimDuration::from_mins(30));
        let small_frac = frac(&jobs, |j| j.cores <= 8);

        // Same-instant submission batches.
        let mut max_batch = 0u64;
        let mut batched_jobs = 0u64;
        let mut largest_batch_uniform = false;
        let mut i = 0;
        while i < jobs.len() {
            let t = jobs[i].submit;
            let mut k = i;
            while k < jobs.len() && jobs[k].submit == t {
                k += 1;
            }
            let run = (k - i) as u64;
            if run >= 5 {
                batched_jobs += run;
            }
            if run > max_batch {
                max_batch = run;
                let first_cores = jobs[i].cores;
                largest_batch_uniform = jobs[i..k].iter().all(|j| j.cores == first_cores);
            }
            i = k;
        }
        let batched_frac = if n > 0 {
            batched_jobs as f64 / n as f64
        } else {
            0.0
        };

        // Rate over the active span, floored at one day so sparse accounts
        // don't read as high-rate (a single afternoon of activity is not a
        // 24-jobs-per-day account).
        let span_days = if n > 0 {
            let first = jobs.first().expect("n>0").submit;
            let last = jobs.iter().map(|j| j.end).max().expect("n>0");
            (last.saturating_since(first).as_days_f64()).max(1.0)
        } else {
            1.0
        };

        let gateway_jobs = jobs.iter().filter(|j| db.has_gateway_attr(j.job)).count() as u64;
        let engine_jobs = jobs
            .iter()
            .filter(|j| j.interface == SubmitInterface::WorkflowEngine)
            .count() as u64;
        let rc_jobs = jobs.iter().filter(|j| j.used_hw).count() as u64;

        let sessions: Vec<_> = db.sessions.iter().filter(|s| s.user == user).collect();
        let session_hours: f64 = sessions
            .iter()
            .map(|s| s.logout.saturating_since(s.login).as_hours_f64())
            .sum();
        let transfers: Vec<_> = db.transfers.iter().filter(|t| t.user == user).collect();
        let transfer_mb: f64 = transfers.iter().map(|t| t.mb).sum();

        out.push(UserSummary {
            user,
            jobs: n,
            core_hours,
            mean_cores,
            max_cores,
            mean_wall_hours,
            short_frac,
            small_frac,
            jobs_per_day: n as f64 / span_days,
            max_simultaneous_submits: max_batch,
            batched_frac,
            largest_batch_uniform,
            gateway_jobs,
            engine_jobs,
            rc_jobs,
            sessions: sessions.len() as u64,
            session_hours,
            transfers: transfers.len() as u64,
            transfer_mb,
        });
    }
    out
}

fn frac(jobs: &[&JobRecord], pred: impl Fn(&JobRecord) -> bool) -> f64 {
    if jobs.is_empty() {
        return 0.0;
    }
    jobs.iter().filter(|j| pred(j)).count() as f64 / jobs.len() as f64
}

/// Mean queue wait over a set of job records, in seconds.
pub fn mean_wait_secs(jobs: &[JobRecord]) -> f64 {
    if jobs.is_empty() {
        return 0.0;
    }
    jobs.iter().map(|j| j.wait().as_secs_f64()).sum::<f64>() / jobs.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{GatewayAttribute, SessionRecord, TransferRecord};
    use tg_model::SiteId;
    use tg_workload::{GatewayId, JobId, ProjectId, UserId};

    fn job(id: usize, user: usize, submit: u64, start: u64, end: u64, cores: usize) -> JobRecord {
        JobRecord {
            job: JobId(id),
            user: UserId(user),
            project: ProjectId(0),
            site: SiteId(0),
            submit: SimTime::from_secs(submit),
            start: SimTime::from_secs(start),
            end: SimTime::from_secs(end),
            cores,
            interface: SubmitInterface::CommandLine,
            used_hw: false,
            input_mb: 0.0,
            output_mb: 0.0,
        }
    }

    #[test]
    fn sum_by_groups_and_orders() {
        let items = vec![(1, 2.0), (2, 3.0), (1, 5.0)];
        let sums = sum_by(items, |&(k, _)| k, |&(_, v)| v);
        assert_eq!(sums.get(&1), Some(&7.0));
        assert_eq!(sums.get(&2), Some(&3.0));
        assert_eq!(sums.keys().copied().collect::<Vec<_>>(), vec![1, 2]);
    }

    #[test]
    fn bucket_series_by_completion() {
        let jobs = vec![job(0, 0, 0, 0, 100, 2), job(1, 0, 0, 0, 100_000, 4)];
        let series = bucket_job_series(&jobs, SimDuration::from_days(1), |j| j.cores as f64);
        assert_eq!(series.len(), 2);
        assert_eq!(series[0], 2.0);
        assert_eq!(series[1], 4.0);
    }

    #[test]
    fn summary_batch_detection() {
        let mut db = AccountingDb::new();
        // 6 jobs at the same instant, identical cores → ensemble fingerprint.
        for i in 0..6 {
            db.add_job(job(i, 1, 1000, 1100, 2000, 4));
        }
        // A lone job later.
        db.add_job(job(10, 1, 9000, 9100, 9500, 16));
        let s = &user_summaries(&db)[0];
        assert_eq!(s.user, UserId(1));
        assert_eq!(s.jobs, 7);
        assert_eq!(s.max_simultaneous_submits, 6);
        assert!(s.largest_batch_uniform);
        assert!((s.batched_frac - 6.0 / 7.0).abs() < 1e-9);
        assert_eq!(s.max_cores, 16);
    }

    #[test]
    fn summary_nonuniform_batch() {
        let mut db = AccountingDb::new();
        for i in 0..5 {
            db.add_job(job(i, 1, 1000, 1100, 2000, 1 + i)); // varying cores
        }
        let s = &user_summaries(&db)[0];
        assert_eq!(s.max_simultaneous_submits, 5);
        assert!(!s.largest_batch_uniform);
    }

    #[test]
    fn summary_gateway_and_engine_and_rc_counts() {
        let mut db = AccountingDb::new();
        db.add_job(job(0, 2, 0, 10, 100, 1));
        db.add_job(JobRecord {
            interface: SubmitInterface::WorkflowEngine,
            ..job(1, 2, 0, 10, 100, 1)
        });
        db.add_job(JobRecord {
            used_hw: true,
            ..job(2, 2, 0, 10, 100, 1)
        });
        db.add_gateway_attr(GatewayAttribute {
            gateway: GatewayId(0),
            job: JobId(0),
            end_user: 7,
        });
        let s = &user_summaries(&db)[0];
        assert_eq!(s.gateway_jobs, 1);
        assert_eq!(s.engine_jobs, 1);
        assert_eq!(s.rc_jobs, 1);
    }

    #[test]
    fn summary_sessions_and_transfers() {
        let mut db = AccountingDb::new();
        db.add_session(SessionRecord {
            user: UserId(3),
            site: SiteId(0),
            login: SimTime::ZERO,
            logout: SimTime::from_hours(2),
        });
        db.add_transfer(TransferRecord {
            user: UserId(3),
            project: ProjectId(0),
            src: SiteId(0),
            dst: SiteId(1),
            mb: 500.0,
            start: SimTime::ZERO,
            end: SimTime::from_secs(10),
        });
        let s = &user_summaries(&db)[0];
        assert_eq!(s.user, UserId(3));
        assert_eq!(s.jobs, 0);
        assert_eq!(s.sessions, 1);
        assert!((s.session_hours - 2.0).abs() < 1e-9);
        assert_eq!(s.transfers, 1);
        assert!((s.transfer_mb - 500.0).abs() < 1e-9);
    }

    #[test]
    fn summary_rate_and_fractions() {
        let mut db = AccountingDb::new();
        // Two jobs over exactly one day; one short/small, one long/wide.
        db.add_job(job(0, 4, 0, 0, 600, 2)); // 10 min, 2 cores
        db.add_job(job(1, 4, 0, 1000, 86_400, 64)); // long, wide
        let s = &user_summaries(&db)[0];
        assert!((s.jobs_per_day - 2.0).abs() < 1e-9);
        assert!((s.short_frac - 0.5).abs() < 1e-9);
        assert!((s.small_frac - 0.5).abs() < 1e-9);
        assert_eq!(s.max_cores, 64);
    }

    #[test]
    fn mean_wait_over_records() {
        let jobs = vec![job(0, 0, 0, 100, 200, 1), job(1, 0, 0, 300, 400, 1)];
        assert!((mean_wait_secs(&jobs) - 200.0).abs() < 1e-9);
        assert_eq!(mean_wait_secs(&[]), 0.0);
    }
}
