//! The central accounting database (in-memory).
//!
//! Sites stream records upstream; the database stores them append-only and
//! serves the aggregation queries in [`crate::query`]. Indexes are built
//! lazily by the queries themselves — at our scales (≤ millions of records)
//! full scans are cheap and keep ingestion allocation-free.

use crate::record::{
    GatewayAttribute, JobRecord, RcPlacementRecord, SessionRecord, TransferRecord,
};
use serde::{Deserialize, Serialize};
use tg_workload::JobId;

/// The federation's accounting store.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct AccountingDb {
    /// Completed jobs.
    pub jobs: Vec<JobRecord>,
    /// Data transfers.
    pub transfers: Vec<TransferRecord>,
    /// Login sessions.
    pub sessions: Vec<SessionRecord>,
    /// Gateway end-user attributes.
    pub gateway_attrs: Vec<GatewayAttribute>,
    /// RC placement records.
    pub rc_placements: Vec<RcPlacementRecord>,
}

impl AccountingDb {
    /// An empty database.
    pub fn new() -> Self {
        AccountingDb::default()
    }

    /// Ingest a job record.
    pub fn add_job(&mut self, r: JobRecord) {
        self.jobs.push(r);
    }

    /// Ingest a transfer record.
    pub fn add_transfer(&mut self, r: TransferRecord) {
        self.transfers.push(r);
    }

    /// Ingest a session record.
    pub fn add_session(&mut self, r: SessionRecord) {
        self.sessions.push(r);
    }

    /// Ingest a gateway attribute.
    pub fn add_gateway_attr(&mut self, r: GatewayAttribute) {
        self.gateway_attrs.push(r);
    }

    /// Ingest an RC placement record.
    pub fn add_rc_placement(&mut self, r: RcPlacementRecord) {
        self.rc_placements.push(r);
    }

    /// Total records across streams.
    pub fn len(&self) -> usize {
        self.jobs.len()
            + self.transfers.len()
            + self.sessions.len()
            + self.gateway_attrs.len()
            + self.rc_placements.len()
    }

    /// True if nothing has been ingested.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Does `job` carry a gateway attribute?
    pub fn has_gateway_attr(&self, job: JobId) -> bool {
        self.gateway_attrs.iter().any(|a| a.job == job)
    }

    /// Does `job` have an RC placement record?
    pub fn rc_placement_of(&self, job: JobId) -> Option<&RcPlacementRecord> {
        self.rc_placements.iter().find(|p| p.job == job)
    }

    /// Merge another database into this one (parallel replication fan-in).
    pub fn merge(&mut self, other: AccountingDb) {
        self.jobs.extend(other.jobs);
        self.transfers.extend(other.transfers);
        self.sessions.extend(other.sessions);
        self.gateway_attrs.extend(other.gateway_attrs);
        self.rc_placements.extend(other.rc_placements);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tg_des::{SimDuration, SimTime};
    use tg_model::{ConfigId, NodeId, SiteId};
    use tg_workload::{GatewayId, ProjectId, SubmitInterface, UserId};

    fn job(id: usize) -> JobRecord {
        JobRecord {
            job: JobId(id),
            user: UserId(0),
            project: ProjectId(0),
            site: SiteId(0),
            submit: SimTime::ZERO,
            start: SimTime::ZERO,
            end: SimTime::from_secs(60),
            cores: 1,
            interface: SubmitInterface::CommandLine,
            used_hw: false,
            input_mb: 0.0,
            output_mb: 0.0,
        }
    }

    #[test]
    fn ingest_and_lookup() {
        let mut db = AccountingDb::new();
        assert!(db.is_empty());
        db.add_job(job(1));
        db.add_gateway_attr(GatewayAttribute {
            gateway: GatewayId(0),
            job: JobId(1),
            end_user: 42,
        });
        db.add_rc_placement(RcPlacementRecord {
            job: JobId(1),
            site: SiteId(0),
            node: NodeId(0),
            config: ConfigId(0),
            reused: true,
            transfer: SimDuration::ZERO,
            reconfig: SimDuration::ZERO,
            deadline_met: None,
        });
        assert_eq!(db.len(), 3);
        assert!(db.has_gateway_attr(JobId(1)));
        assert!(!db.has_gateway_attr(JobId(2)));
        assert!(db.rc_placement_of(JobId(1)).unwrap().reused);
        assert!(db.rc_placement_of(JobId(9)).is_none());
    }

    #[test]
    fn merge_concatenates() {
        let mut a = AccountingDb::new();
        a.add_job(job(1));
        let mut b = AccountingDb::new();
        b.add_job(job(2));
        b.add_session(SessionRecord {
            user: UserId(0),
            site: SiteId(0),
            login: SimTime::ZERO,
            logout: SimTime::from_secs(100),
        });
        a.merge(b);
        assert_eq!(a.jobs.len(), 2);
        assert_eq!(a.sessions.len(), 1);
    }
}
