//! # tg-accounting — the measurement substrate
//!
//! The paper's thesis is that usage modalities can be *measured* from the
//! records a federation already collects centrally. This crate is that
//! record stream and the central database:
//!
//! * [`record`] — the record types: completed jobs, data transfers, login
//!   sessions, science-gateway end-user attributes, and RC placements.
//!   Job records carry only what production accounting actually sees — no
//!   ground-truth modality, no workflow/ensemble membership; the classifier
//!   in `tg-core` has to *infer* those.
//! * [`charge`] — service-unit (SU) charging with per-site charge factors
//!   and federation-normalized units (NUs).
//! * [`db`] — the in-memory central accounting database.
//! * [`query`] — aggregation: group-by sums, time-bucketed series, and the
//!   per-user behavioural summaries the classifier consumes as features.
//!
//! ```
//! use tg_accounting::{AccountingDb, ChargePolicy, JobRecord};
//! use tg_des::SimTime;
//! use tg_model::SiteId;
//! use tg_workload::{JobId, ProjectId, SubmitInterface, UserId};
//!
//! let mut db = AccountingDb::new();
//! db.add_job(JobRecord {
//!     job: JobId(0), user: UserId(7), project: ProjectId(1), site: SiteId(0),
//!     submit: SimTime::ZERO, start: SimTime::from_secs(600),
//!     end: SimTime::from_hours(2), cores: 64,
//!     interface: SubmitInterface::CommandLine, used_hw: false,
//!     input_mb: 0.0, output_mb: 0.0,
//! });
//! let charges = ChargePolicy::new(vec![1.25]);
//! let record = &db.jobs[0];
//! assert_eq!(record.wait(), tg_des::SimDuration::from_mins(10));
//! // 64 cores × (2h − 10min) wall = ~117.3 core-hours × 1.25 SU/core-hour.
//! assert!((charges.su(record) - 64.0 * (7200.0 - 600.0) / 3600.0 * 1.25).abs() < 1e-9);
//! let summaries = tg_accounting::query::user_summaries(&db);
//! assert_eq!(summaries[0].user, UserId(7));
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod charge;
pub mod db;
pub mod query;
pub mod record;
pub mod sink;

pub use charge::{su_for, ChargePolicy};
pub use db::AccountingDb;
pub use query::{GroupSums, UserSummary};
pub use record::{GatewayAttribute, JobRecord, RcPlacementRecord, SessionRecord, TransferRecord};
pub use sink::{IngestTally, JsonlRecordSink, NullRecordSink, RecordRef, RecordSink};
