//! Differential property tests: the optimized schedulers (indexed running
//! set + compaction-drain backfill) must make **bit-identical** decisions to
//! the retained naive implementations in `tg_sched::reference` — same
//! `Started` jobs in the same order with the same estimated ends and wait
//! causes, and the same observability counters — when driven through
//! identical submit/complete/decide (and drain-notice) sequences over
//! random queues.

use proptest::prelude::*;
use tg_des::span::WaitCause;
use tg_des::{SimDuration, SimTime};
use tg_model::Cluster;
use tg_sched::{BatchScheduler, SchedulerKind};
use tg_workload::{Job, JobId, ProjectId, UserId};

#[derive(Debug, Clone, Copy)]
struct JobSpec {
    cores: usize,
    runtime_s: u64,
    estimate_factor_x10: u64,
    gap_s: u64,
}

fn arb_jobs() -> impl Strategy<Value = Vec<JobSpec>> {
    prop::collection::vec(
        (1usize..96, 10u64..5_000, 10u64..40, 0u64..600).prop_map(
            |(cores, runtime_s, estimate_factor_x10, gap_s)| JobSpec {
                cores,
                runtime_s,
                estimate_factor_x10,
                gap_s,
            },
        ),
        1..60,
    )
}

/// The full decision record of one episode: every `Started` field that the
/// simulation consumes, in emission order, plus the counters.
#[derive(Debug, Clone, PartialEq)]
struct Episode {
    starts: Vec<(JobId, SimTime, SimTime, WaitCause)>,
    backfills: u64,
    drains: u64,
}

/// Drive `sched` through the episode `specs` describes, recording every
/// decision. `notice_every`: arm a drain notice (one hour out) before every
/// n-th submission and lift it before the next, exercising the drain pass.
fn drive(
    mut sched: Box<dyn BatchScheduler>,
    specs: &[JobSpec],
    machine: usize,
    notice_every: Option<usize>,
) -> Episode {
    let mut cluster = Cluster::new(SimTime::ZERO, machine);
    let mut running: Vec<(SimTime, JobId, usize)> = Vec::new();
    let mut episode = Episode {
        starts: Vec::new(),
        backfills: 0,
        drains: 0,
    };
    let mut now = SimTime::ZERO;

    fn decide(
        sched: &mut Box<dyn BatchScheduler>,
        cluster: &mut Cluster,
        running: &mut Vec<(SimTime, JobId, usize)>,
        episode: &mut Episode,
        now: SimTime,
    ) {
        for s in sched.make_decisions(now, cluster, 1.0) {
            running.push((now + s.job.runtime, s.job.id, s.job.cores));
            episode
                .starts
                .push((s.job.id, now, s.estimated_end, s.cause));
        }
    }

    for (n, spec) in specs.iter().enumerate() {
        now += SimDuration::from_secs(spec.gap_s);
        if let Some(every) = notice_every {
            if n % every == every - 1 {
                sched.drain_notice(Some(now + SimDuration::from_secs(3600)));
            } else {
                sched.drain_notice(None);
            }
        }
        loop {
            running.sort_by_key(|&(end, ..)| end);
            let Some(&(end, id, cores)) = running.first() else {
                break;
            };
            if end > now {
                break;
            }
            running.remove(0);
            cluster.release(end, cores);
            sched.on_complete(end, id);
            decide(&mut sched, &mut cluster, &mut running, &mut episode, end);
        }
        let cores = spec.cores.min(machine);
        let job = Job::batch(
            JobId(n),
            UserId(0),
            ProjectId(n % 5),
            now,
            cores,
            SimDuration::from_secs(spec.runtime_s),
        )
        .with_estimate(SimDuration::from_secs(
            spec.runtime_s * spec.estimate_factor_x10 / 10,
        ));
        sched.submit(now, job);
        decide(&mut sched, &mut cluster, &mut running, &mut episode, now);
    }
    // Drain with any armed notice lifted (notices past the horizon would
    // wedge the queue forever), re-deciding immediately as the simulation
    // driver does on recovery.
    sched.drain_notice(None);
    decide(&mut sched, &mut cluster, &mut running, &mut episode, now);
    let mut guard = 0;
    while sched.queue_len() > 0 || !running.is_empty() {
        guard += 1;
        assert!(guard < 10_000, "scheduler failed to drain");
        running.sort_by_key(|&(end, ..)| end);
        let next_completion = running.first().map(|&(end, ..)| end);
        let next = match (next_completion, sched.next_wakeup(now)) {
            (Some(a), Some(b)) => a.min(b),
            (Some(a), None) => a,
            (None, Some(b)) => b,
            (None, None) => panic!("queued jobs but nothing will wake the scheduler"),
        };
        now = next.max(now);
        if let Some(&(end, id, cores)) = running.first() {
            if end <= now {
                running.remove(0);
                cluster.release(now, cores);
                sched.on_complete(now, id);
            }
        }
        decide(&mut sched, &mut cluster, &mut running, &mut episode, now);
    }
    episode.backfills = sched.backfills();
    episode.drains = sched.drains();
    episode
}

fn assert_identical(kind: SchedulerKind, specs: &[JobSpec], machine: usize) {
    let optimized = drive(kind.build(machine), specs, machine, None);
    let naive = drive(kind.build_reference(machine), specs, machine, None);
    assert_eq!(optimized, naive, "{} diverged from naive", kind.name());
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 48,
        ..ProptestConfig::default()
    })]

    #[test]
    fn fcfs_matches_naive(specs in arb_jobs()) {
        assert_identical(SchedulerKind::Fcfs, &specs, 128);
    }

    #[test]
    fn easy_matches_naive(specs in arb_jobs()) {
        assert_identical(SchedulerKind::Easy, &specs, 128);
    }

    #[test]
    fn conservative_matches_naive(specs in arb_jobs()) {
        assert_identical(SchedulerKind::Conservative, &specs, 128);
    }

    #[test]
    fn weekly_drain_matches_naive(specs in arb_jobs()) {
        assert_identical(SchedulerKind::WeeklyDrain, &specs, 128);
    }

    #[test]
    fn naive_drain_matches_naive(specs in arb_jobs()) {
        assert_identical(SchedulerKind::NaiveDrain, &specs, 128);
    }

    #[test]
    fn fairshare_easy_matches_naive(specs in arb_jobs()) {
        assert_identical(SchedulerKind::FairshareEasy, &specs, 128);
    }

    /// Outage-notice drain passes (the scan-then-compact rewrite of
    /// `drain_pass`) also match the naive per-job-removal loop.
    #[test]
    fn easy_matches_naive_under_drain_notices(specs in arb_jobs()) {
        let optimized = drive(SchedulerKind::Easy.build(128), &specs, 128, Some(3));
        let naive = drive(SchedulerKind::Easy.build_reference(128), &specs, 128, Some(3));
        prop_assert_eq!(optimized, naive);
    }

    #[test]
    fn fcfs_matches_naive_under_drain_notices(specs in arb_jobs()) {
        let optimized = drive(SchedulerKind::Fcfs.build(128), &specs, 128, Some(4));
        let naive = drive(SchedulerKind::Fcfs.build_reference(128), &specs, 128, Some(4));
        prop_assert_eq!(optimized, naive);
    }
}
