//! Property-based tests for the schedulers: whatever the workload, no
//! policy may over-allocate the machine, lose a job, start a job before
//! its submission, or (for FCFS) reorder starts.

use proptest::prelude::*;
use std::collections::HashSet;
use tg_des::{SimDuration, SimTime};
use tg_model::Cluster;
use tg_sched::{BatchScheduler, SchedulerKind};
use tg_workload::{Job, JobId, ProjectId, UserId};

#[derive(Debug, Clone, Copy)]
struct JobSpec {
    cores: usize,
    runtime_s: u64,
    estimate_factor_x10: u64, // 10..40 → 1.0..4.0
    gap_s: u64,               // inter-arrival gap
}

fn arb_jobs() -> impl Strategy<Value = Vec<JobSpec>> {
    prop::collection::vec(
        (1usize..96, 10u64..5_000, 10u64..40, 0u64..600).prop_map(
            |(cores, runtime_s, estimate_factor_x10, gap_s)| JobSpec {
                cores,
                runtime_s,
                estimate_factor_x10,
                gap_s,
            },
        ),
        1..60,
    )
}

/// Drive a scheduler through a full submit/complete episode, checking
/// invariants at every step. Returns (job id → start time).
fn drive(
    kind: SchedulerKind,
    specs: &[JobSpec],
    machine: usize,
) -> Result<Vec<(JobId, SimTime)>, TestCaseError> {
    let mut sched = kind.build(machine);
    let mut cluster = Cluster::new(SimTime::ZERO, machine);
    // (end_time, id, cores) of running jobs.
    let mut running: Vec<(SimTime, JobId, usize)> = Vec::new();
    let mut starts: Vec<(JobId, SimTime)> = Vec::new();
    let mut submit_times: Vec<SimTime> = Vec::new();
    let mut now = SimTime::ZERO;
    let mut submitted = 0usize;

    let check_and_start = |sched: &mut Box<dyn BatchScheduler>,
                           cluster: &mut Cluster,
                           running: &mut Vec<(SimTime, JobId, usize)>,
                           starts: &mut Vec<(JobId, SimTime)>,
                           now: SimTime|
     -> Result<(), TestCaseError> {
        let free_before = cluster.free_cores();
        let started = sched.make_decisions(now, cluster, 1.0);
        let used: usize = started.iter().map(|s| s.job.cores).sum();
        prop_assert!(
            used <= free_before,
            "over-allocation: {used} > {free_before}"
        );
        for s in started {
            prop_assert!(s.estimated_end >= now);
            let actual_end = now + s.job.runtime;
            running.push((actual_end, s.job.id, s.job.cores));
            starts.push((s.job.id, now));
        }
        Ok(())
    };

    for spec in specs {
        now += SimDuration::from_secs(spec.gap_s);
        // Complete everything that finished before the new arrival.
        // Re-sort every iteration: starts triggered by a completion insert
        // new running entries.
        loop {
            running.sort_by_key(|&(end, ..)| end);
            let Some(&(end, id, cores)) = running.first() else {
                break;
            };
            if end > now {
                break;
            }
            running.remove(0);
            cluster.release(end, cores);
            sched.on_complete(end, id);
            check_and_start(&mut sched, &mut cluster, &mut running, &mut starts, end)?;
        }
        let cores = spec.cores.min(machine);
        let job = Job::batch(
            JobId(submitted),
            UserId(0),
            ProjectId(0),
            now,
            cores,
            SimDuration::from_secs(spec.runtime_s),
        )
        .with_estimate(SimDuration::from_secs(
            spec.runtime_s * spec.estimate_factor_x10 / 10,
        ));
        submit_times.push(now);
        submitted += 1;
        sched.submit(now, job);
        check_and_start(&mut sched, &mut cluster, &mut running, &mut starts, now)?;
    }
    // Drain: complete running jobs and honor scheduler wakeups until empty.
    let mut guard = 0;
    while sched.queue_len() > 0 || !running.is_empty() {
        guard += 1;
        prop_assert!(guard < 10_000, "scheduler failed to drain");
        running.sort_by_key(|&(end, ..)| end);
        let next_completion = running.first().map(|&(end, ..)| end);
        let wakeup = sched.next_wakeup(now);
        let next = match (next_completion, wakeup) {
            (Some(a), Some(b)) => a.min(b),
            (Some(a), None) => a,
            (None, Some(b)) => b,
            (None, None) => {
                prop_assert!(
                    false,
                    "queued jobs but nothing will ever wake the scheduler"
                );
                unreachable!()
            }
        };
        // Clamp to monotone time: leftover completions may predate `now`
        // (they happened between the last arrival and the drain phase);
        // process them *at* `now` to keep cluster timestamps chronological.
        now = next.max(now);
        if let Some(&(end, id, cores)) = running.first() {
            if end <= now {
                running.remove(0);
                cluster.release(now, cores);
                sched.on_complete(now, id);
            }
        }
        check_and_start(&mut sched, &mut cluster, &mut running, &mut starts, now)?;
    }
    prop_assert_eq!(cluster.busy_cores(), 0, "cores leaked");
    // Every job started exactly once, never before its submission.
    prop_assert_eq!(starts.len(), specs.len());
    let ids: HashSet<JobId> = starts.iter().map(|&(id, _)| id).collect();
    prop_assert_eq!(ids.len(), specs.len());
    for &(id, start) in &starts {
        prop_assert!(start >= submit_times[id.index()], "{id} started early");
    }
    Ok(starts)
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 48,
        ..ProptestConfig::default()
    })]

    #[test]
    fn fcfs_never_overallocates_or_loses_jobs(specs in arb_jobs()) {
        drive(SchedulerKind::Fcfs, &specs, 128)?;
    }

    #[test]
    fn easy_never_overallocates_or_loses_jobs(specs in arb_jobs()) {
        drive(SchedulerKind::Easy, &specs, 128)?;
    }

    #[test]
    fn conservative_never_overallocates_or_loses_jobs(specs in arb_jobs()) {
        drive(SchedulerKind::Conservative, &specs, 128)?;
    }

    #[test]
    fn weekly_drain_never_overallocates_or_loses_jobs(specs in arb_jobs()) {
        drive(SchedulerKind::WeeklyDrain, &specs, 128)?;
    }

    #[test]
    fn naive_drain_never_overallocates_or_loses_jobs(specs in arb_jobs()) {
        drive(SchedulerKind::NaiveDrain, &specs, 128)?;
    }

    #[test]
    fn fairshare_easy_never_overallocates_or_loses_jobs(specs in arb_jobs()) {
        drive(SchedulerKind::FairshareEasy, &specs, 128)?;
    }

    /// FCFS starts jobs in exact submission order.
    #[test]
    fn fcfs_preserves_submission_order(specs in arb_jobs()) {
        let starts = drive(SchedulerKind::Fcfs, &specs, 128)?;
        let mut by_start = starts.clone();
        by_start.sort_by_key(|&(id, t)| (t, id));
        // Under FCFS, sorting by start time must yield ids in order.
        let ids: Vec<usize> = by_start.iter().map(|&(id, _)| id.index()).collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        prop_assert_eq!(ids, sorted, "FCFS reordered starts");
    }

    /// On single-core workloads backfilling is vacuous (every queued job
    /// fits whenever any core is free), so EASY must equal FCFS *exactly* —
    /// same jobs, same start instants. (No aggregate-delay guarantee exists
    /// for mixed widths: a backfilled narrow job can legally delay a wide
    /// head, so exact equivalence on the width-1 subclass is the strongest
    /// true statement.)
    #[test]
    fn easy_equals_fcfs_on_single_core_workloads(specs in arb_jobs()) {
        let narrow: Vec<JobSpec> = specs
            .iter()
            .map(|s| JobSpec { cores: 1, ..*s })
            .collect();
        let mut fcfs = drive(SchedulerKind::Fcfs, &narrow, 16)?;
        let mut easy = drive(SchedulerKind::Easy, &narrow, 16)?;
        fcfs.sort_by_key(|&(id, _)| id);
        easy.sort_by_key(|&(id, _)| id);
        prop_assert_eq!(fcfs, easy);
    }
}
