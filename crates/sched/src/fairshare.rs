//! Decayed-usage fair-share priorities.
//!
//! Sites weight queue order by how much a project has consumed recently:
//! heavy recent consumers sink, light ones float. The standard construction
//! is an exponentially decayed usage integral with half-life `H`:
//!
//! `usage(t) = usage(t0) · 2^-((t - t0)/H) + charge`
//!
//! Priority combines normalized decayed usage with queue wait time. The
//! module is self-contained so any scheduler (or the metascheduler) can
//! consult it; the queue-ordering hook itself is exercised by the
//! fairshare-ordering tests in `tg-core`.

use std::collections::HashMap;
use tg_des::{SimDuration, SimTime};
use tg_workload::ProjectId;

/// Tracks decayed usage per project.
#[derive(Debug, Clone)]
pub struct FairShare {
    half_life: SimDuration,
    /// Per-project (decayed usage, last update time).
    usage: HashMap<ProjectId, (f64, SimTime)>,
    /// Weight of decayed usage against wait time in priority.
    usage_weight: f64,
}

impl FairShare {
    /// A tracker with the given decay half-life (typically 1–2 weeks).
    pub fn new(half_life: SimDuration) -> Self {
        assert!(!half_life.is_zero(), "half-life must be positive");
        FairShare {
            half_life,
            usage: HashMap::new(),
            usage_weight: 1.0,
        }
    }

    /// Set the usage weight in the priority formula.
    pub fn with_usage_weight(mut self, w: f64) -> Self {
        assert!(w >= 0.0);
        self.usage_weight = w;
        self
    }

    fn decayed(&self, project: ProjectId, now: SimTime) -> f64 {
        match self.usage.get(&project) {
            None => 0.0,
            Some(&(u, at)) => {
                let dt = now.saturating_since(at).as_secs_f64();
                let hl = self.half_life.as_secs_f64();
                u * (0.5f64).powf(dt / hl)
            }
        }
    }

    /// Charge `core_seconds` of usage to `project` at `now`.
    pub fn charge(&mut self, project: ProjectId, now: SimTime, core_seconds: f64) {
        assert!(core_seconds >= 0.0, "negative charge");
        let u = self.decayed(project, now) + core_seconds;
        self.usage.insert(project, (u, now));
    }

    /// Current decayed usage of `project`.
    pub fn usage_of(&self, project: ProjectId, now: SimTime) -> f64 {
        self.decayed(project, now)
    }

    /// Priority of a job from `project` queued since `queued_at`: higher is
    /// better. Wait time raises priority linearly (hours); decayed usage
    /// (normalized against the busiest project) lowers it.
    pub fn priority(&self, project: ProjectId, queued_at: SimTime, now: SimTime) -> f64 {
        let wait_hours = now.saturating_since(queued_at).as_hours_f64();
        let max_usage = self
            .usage
            .keys()
            .map(|&p| self.decayed(p, now))
            .fold(0.0f64, f64::max);
        let norm = if max_usage > 0.0 {
            self.decayed(project, now) / max_usage
        } else {
            0.0
        };
        wait_hours - self.usage_weight * norm * 24.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DAY: u64 = 86_400;

    #[test]
    fn usage_decays_with_half_life() {
        let mut fs = FairShare::new(SimDuration::from_days(7));
        fs.charge(ProjectId(0), SimTime::ZERO, 1000.0);
        assert!((fs.usage_of(ProjectId(0), SimTime::ZERO) - 1000.0).abs() < 1e-9);
        let week = SimTime::from_secs(7 * DAY);
        assert!((fs.usage_of(ProjectId(0), week) - 500.0).abs() < 1e-6);
        let two_weeks = SimTime::from_secs(14 * DAY);
        assert!((fs.usage_of(ProjectId(0), two_weeks) - 250.0).abs() < 1e-6);
    }

    #[test]
    fn charges_accumulate_with_decay() {
        let mut fs = FairShare::new(SimDuration::from_days(7));
        fs.charge(ProjectId(0), SimTime::ZERO, 1000.0);
        fs.charge(ProjectId(0), SimTime::from_secs(7 * DAY), 1000.0);
        // 500 decayed remainder + 1000 fresh.
        let u = fs.usage_of(ProjectId(0), SimTime::from_secs(7 * DAY));
        assert!((u - 1500.0).abs() < 1e-6);
    }

    #[test]
    fn unknown_project_has_zero_usage() {
        let fs = FairShare::new(SimDuration::from_days(7));
        assert_eq!(fs.usage_of(ProjectId(9), SimTime::from_secs(100)), 0.0);
    }

    #[test]
    fn heavy_user_gets_lower_priority_than_light_user() {
        let mut fs = FairShare::new(SimDuration::from_days(7));
        fs.charge(ProjectId(0), SimTime::ZERO, 1_000_000.0);
        fs.charge(ProjectId(1), SimTime::ZERO, 1_000.0);
        let now = SimTime::from_secs(DAY);
        let queued = SimTime::from_secs(DAY - 3600);
        let p_heavy = fs.priority(ProjectId(0), queued, now);
        let p_light = fs.priority(ProjectId(1), queued, now);
        assert!(p_light > p_heavy);
    }

    #[test]
    fn waiting_raises_priority_past_usage_penalty() {
        let mut fs = FairShare::new(SimDuration::from_days(7));
        fs.charge(ProjectId(0), SimTime::ZERO, 1_000_000.0);
        fs.charge(ProjectId(1), SimTime::ZERO, 1.0);
        let now = SimTime::from_secs(10 * DAY);
        // Heavy project queued 5 days ago vs light project queued just now.
        let p_heavy_waiting = fs.priority(ProjectId(0), SimTime::from_secs(5 * DAY), now);
        let p_light_fresh = fs.priority(ProjectId(1), now, now);
        assert!(
            p_heavy_waiting > p_light_fresh,
            "long waits must eventually dominate"
        );
    }

    #[test]
    fn priority_with_no_usage_history_is_wait_only() {
        let fs = FairShare::new(SimDuration::from_days(7));
        let p = fs.priority(ProjectId(0), SimTime::ZERO, SimTime::from_secs(7200));
        assert!((p - 2.0).abs() < 1e-9, "2 hours waited → priority 2");
    }
}
