//! Advance reservations: conservative backfill honoring externally granted
//! `(job, start, duration, cores)` windows.
//!
//! T6 measures why opportunistic co-allocation stops working past moderate
//! load: simultaneous holes vanish. The production answer is to *grant*
//! each part an advance reservation at the planned common start and have
//! every site's scheduler protect that window. [`ReservingConservative`] is
//! that scheduler: ordinary jobs are placed by conservative backfill
//! against a profile that already carves out the granted windows, and the
//! reserved job starts exactly at its window (or immediately on arrival, if
//! it arrives late into its window).
//!
//! Guarantees (tested):
//! * a granted job submitted before its window starts **exactly** at the
//!   window's start, regardless of background load;
//! * background jobs never overlap a granted window's cores;
//! * an expired window (job never arrived) releases its cores.

use crate::conservative::Profile;
use crate::queue::{attribute, estimated_runtime, BatchScheduler, RunningJob, RunningSet, Started};
use std::collections::VecDeque;
use tg_des::span::WaitCause;
use tg_des::{SimDuration, SimTime};
use tg_model::Cluster;
use tg_workload::{Job, JobId};

/// One granted window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Reservation {
    /// The job entitled to the window.
    pub job: JobId,
    /// Window start.
    pub start: SimTime,
    /// Window length (the job's estimate at grant time).
    pub duration: SimDuration,
    /// Cores held.
    pub cores: usize,
}

impl Reservation {
    fn end(&self) -> SimTime {
        self.start + self.duration
    }
}

/// Conservative backfill with advance reservations.
#[derive(Debug, Default)]
pub struct ReservingConservative {
    queue: VecDeque<Job>,
    running: RunningSet,
    reservations: Vec<Reservation>,
}

impl ReservingConservative {
    /// An empty scheduler with no grants.
    pub fn new() -> Self {
        Self::default()
    }

    /// Grant `job` the window `[start, start + duration)` × `cores`.
    ///
    /// The caller (a co-allocation coordinator) is responsible for having
    /// planned the window against this site's availability; overlapping
    /// grants that exceed the machine will surface as a planning panic at
    /// decision time, not silent oversubscription.
    pub fn grant(&mut self, reservation: Reservation) {
        assert!(reservation.cores > 0, "empty reservation");
        assert!(!reservation.duration.is_zero(), "zero-length reservation");
        self.reservations.push(reservation);
    }

    /// Currently granted, unconsumed reservations.
    pub fn reservations(&self) -> &[Reservation] {
        &self.reservations
    }

    fn reservation_for(&self, job: JobId) -> Option<usize> {
        self.reservations.iter().position(|r| r.job == job)
    }

    /// Drop windows that have fully passed without their job arriving.
    fn expire(&mut self, now: SimTime) {
        self.reservations.retain(|r| r.end() > now);
    }

    /// The availability profile with every *foreign* granted window carved
    /// out (a job's own window is not an obstacle to itself).
    fn profile_excluding(&self, now: SimTime, cluster: &Cluster, own: Option<JobId>) -> Profile {
        let mut p = Profile::from_running(now, cluster.free_cores(), self.running.iter_by_end());
        for r in &self.reservations {
            if Some(r.job) == own {
                continue;
            }
            let start = r.start.max(now);
            if r.end() > start {
                p.reserve(start, r.end() - start, r.cores);
            }
        }
        p
    }
}

impl BatchScheduler for ReservingConservative {
    fn name(&self) -> &'static str {
        "reserving-conservative"
    }

    fn submit(&mut self, _now: SimTime, job: Job) {
        self.queue.push_back(job);
    }

    fn on_complete(&mut self, _now: SimTime, id: JobId) {
        self.running.remove(id);
    }

    fn make_decisions(
        &mut self,
        now: SimTime,
        cluster: &mut Cluster,
        core_speed: f64,
    ) -> Vec<Started> {
        self.expire(now);
        let mut started = Vec::new();

        // Phase 1: reserved jobs whose window has opened start first — their
        // cores are free by construction (the window was carved out of every
        // other placement decision).
        let mut i = 0;
        while i < self.queue.len() {
            let job_id = self.queue[i].id;
            let due = self
                .reservation_for(job_id)
                .map(|idx| self.reservations[idx].start <= now)
                .unwrap_or(false);
            if due {
                let job = self.queue.remove(i).expect("index valid");
                let idx = self.reservation_for(job_id).expect("checked");
                let r = self.reservations.swap_remove(idx);
                assert!(
                    cluster.acquire(now, job.cores),
                    "granted window violated: {} cores not free at {now} for {job_id} \
                     (grant was {r:?})",
                    job.cores
                );
                let estimated_end = now + estimated_runtime(&job, core_speed);
                // A reserved job that waited was waiting for its own window.
                let cause = attribute(now, &job, WaitCause::ReservationBlock);
                self.running.insert(RunningJob {
                    id: job.id,
                    cores: job.cores,
                    estimated_end,
                });
                started.push(Started {
                    job,
                    estimated_end,
                    cause,
                });
                continue;
            }
            i += 1;
        }

        // Phase 2: conservative placement for everything else, against the
        // grant-laden profile. Jobs holding a future grant simply wait for
        // it (their placement is the grant).
        let mut profile = self.profile_excluding(now, cluster, None);
        // With grants on the books, background delays trace to the carved-out
        // windows; without any, this is plain conservative backfill.
        let delayed = if self.reservations.is_empty() {
            WaitCause::AheadInQueue
        } else {
            WaitCause::ReservationBlock
        };
        let mut remaining = VecDeque::with_capacity(self.queue.len());
        for job in self.queue.drain(..) {
            if self.reservations.iter().any(|r| r.job == job.id) {
                remaining.push_back(job); // waits for its window
                continue;
            }
            let dur = estimated_runtime(&job, core_speed);
            let slot = profile.find_slot(now, job.cores, dur);
            if slot == now {
                assert!(cluster.acquire(now, job.cores), "profile said free");
                profile.reserve(now, dur, job.cores);
                let estimated_end = now + dur;
                let cause = attribute(now, &job, delayed);
                self.running.insert(RunningJob {
                    id: job.id,
                    cores: job.cores,
                    estimated_end,
                });
                started.push(Started {
                    job,
                    estimated_end,
                    cause,
                });
            } else {
                if slot != SimTime::MAX {
                    profile.reserve(slot, dur, job.cores);
                }
                remaining.push_back(job);
            }
        }
        self.queue = remaining;
        started
    }

    fn queue_len(&self) -> usize {
        self.queue.len()
    }

    fn next_wakeup(&self, now: SimTime) -> Option<SimTime> {
        self.reservations
            .iter()
            .map(|r| r.start)
            .filter(|&s| s > now)
            .min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tg_workload::{ProjectId, UserId};

    fn job(id: usize, cores: usize, secs: u64) -> Job {
        Job::batch(
            JobId(id),
            UserId(0),
            ProjectId(0),
            SimTime::ZERO,
            cores,
            SimDuration::from_secs(secs),
        )
    }

    fn grant(job: usize, start_s: u64, dur_s: u64, cores: usize) -> Reservation {
        Reservation {
            job: JobId(job),
            start: SimTime::from_secs(start_s),
            duration: SimDuration::from_secs(dur_s),
            cores,
        }
    }

    #[test]
    fn reserved_job_starts_exactly_at_its_window_under_load() {
        let mut s = ReservingConservative::new();
        let mut c = Cluster::new(SimTime::ZERO, 10);
        s.grant(grant(99, 1000, 600, 10)); // full machine at t=1000
                                           // Background stream trying to eat the machine.
        for i in 0..6 {
            s.submit(SimTime::ZERO, job(i, 4, 3_000));
        }
        s.submit(SimTime::ZERO, job(99, 10, 600));
        let started = s.make_decisions(SimTime::ZERO, &mut c, 1.0);
        // Background jobs may only use what doesn't cross the window:
        // est end 3000 > 1000 → none can start now.
        assert!(started.is_empty(), "window protected: {started:?}");
        assert_eq!(s.next_wakeup(SimTime::ZERO), Some(SimTime::from_secs(1000)));
        // At the window, the reserved job starts exactly on time.
        let started = s.make_decisions(SimTime::from_secs(1000), &mut c, 1.0);
        assert_eq!(started.len(), 1);
        assert_eq!(started[0].job.id, JobId(99));
        // And after it completes, the background resumes.
        let t = SimTime::from_secs(1600);
        c.release(t, 10);
        s.on_complete(t, JobId(99));
        let started = s.make_decisions(t, &mut c, 1.0);
        assert!(!started.is_empty());
    }

    #[test]
    fn background_fills_up_to_the_window_edge() {
        let mut s = ReservingConservative::new();
        let mut c = Cluster::new(SimTime::ZERO, 10);
        s.grant(grant(99, 1000, 600, 8));
        s.submit(SimTime::ZERO, job(0, 4, 900)); // ends 900 ≤ 1000 → fits
        s.submit(SimTime::ZERO, job(1, 2, 5_000)); // narrow: 2 ≤ 10-8 free during window
        s.submit(SimTime::ZERO, job(2, 4, 5_000)); // would collide with window
        let started = s.make_decisions(SimTime::ZERO, &mut c, 1.0);
        let ids: Vec<JobId> = started.iter().map(|st| st.job.id).collect();
        assert!(ids.contains(&JobId(0)), "pre-window job fits");
        assert!(
            ids.contains(&JobId(1)),
            "narrow job coexists with the window"
        );
        assert!(!ids.contains(&JobId(2)), "colliding job waits");
    }

    #[test]
    fn late_arriving_reserved_job_starts_immediately_in_window() {
        let mut s = ReservingConservative::new();
        let mut c = Cluster::new(SimTime::ZERO, 10);
        s.grant(grant(5, 100, 600, 10));
        // Job arrives mid-window.
        let t = SimTime::from_secs(300);
        s.submit(t, job(5, 10, 300));
        let started = s.make_decisions(t, &mut c, 1.0);
        assert_eq!(started.len(), 1);
        assert_eq!(started[0].job.id, JobId(5));
    }

    #[test]
    fn expired_window_releases_capacity() {
        let mut s = ReservingConservative::new();
        let mut c = Cluster::new(SimTime::ZERO, 10);
        s.grant(grant(42, 100, 200, 10)); // job 42 never arrives
        s.submit(SimTime::ZERO, job(0, 10, 1_000)); // crosses window → waits
        assert!(s.make_decisions(SimTime::ZERO, &mut c, 1.0).is_empty());
        // After the window passes, the grant expires and the job runs.
        let t = SimTime::from_secs(300);
        let started = s.make_decisions(t, &mut c, 1.0);
        assert_eq!(started.len(), 1);
        assert!(s.reservations().is_empty());
    }

    #[test]
    fn co_allocated_parts_start_simultaneously_across_sites() {
        // Two sites, each with its own scheduler; a coordinator grants both
        // parts the same window — the T6 → reservation story end-to-end.
        let window = grant(7, 500, 600, 6);
        let mut sites: Vec<(ReservingConservative, Cluster)> = (0..2)
            .map(|_| (ReservingConservative::new(), Cluster::new(SimTime::ZERO, 8)))
            .collect();
        for (s, c) in sites.iter_mut() {
            s.grant(window);
            // Competing background load at each site.
            s.submit(SimTime::ZERO, job(0, 8, 10_000));
            s.submit(SimTime::ZERO, job(7, 6, 600));
            let started = s.make_decisions(SimTime::ZERO, c, 1.0);
            assert!(started.is_empty(), "nothing may cross the window");
        }
        let t = SimTime::from_secs(500);
        for (s, c) in sites.iter_mut() {
            let started = s.make_decisions(t, c, 1.0);
            assert_eq!(started.len(), 1);
            assert_eq!(started[0].job.id, JobId(7), "both parts start at t=500");
        }
    }

    #[test]
    fn behaves_like_conservative_without_grants() {
        let mut s = ReservingConservative::new();
        let mut c = Cluster::new(SimTime::ZERO, 10);
        s.submit(SimTime::ZERO, job(0, 6, 1000));
        s.submit(SimTime::ZERO, job(1, 8, 100));
        s.submit(SimTime::ZERO, job(2, 4, 500));
        let started = s.make_decisions(SimTime::ZERO, &mut c, 1.0);
        let ids: Vec<JobId> = started.iter().map(|st| st.job.id).collect();
        assert_eq!(ids, vec![JobId(0), JobId(2)], "same as conservative");
        assert_eq!(s.next_wakeup(SimTime::ZERO), None);
    }
}
