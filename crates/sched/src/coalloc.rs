//! Cross-site co-allocation planning.
//!
//! The federation's metascheduling promise beyond site *selection* is
//! *co-allocation*: a single computation holding cores at several sites
//! **simultaneously** (coupled multi-physics runs, grid-MPI jobs). The
//! planner finds the earliest instant at which every participating site can
//! provide its share for the full duration, using the same availability
//! profiles conservative backfill maintains, and reserves all parts
//! atomically.
//!
//! The algorithm is the classic fixed-point iteration: start from the
//! earliest bound, ask every site for its earliest feasible slot at or
//! after the candidate, advance the candidate to the latest answer, and
//! repeat until all sites agree. Each round either terminates or advances
//! the candidate past at least one profile breakpoint, so the iteration is
//! finite.
//!
//! What co-allocation *costs* is exactly the gap this module exposes: the
//! agreed start is never earlier than any single site's own earliest slot,
//! and the T6 experiment measures that slack as load and site count grow.

use crate::conservative::Profile;
use tg_des::{SimDuration, SimTime};
use tg_model::SiteId;

/// One co-allocation request: simultaneous core shares at several sites.
#[derive(Debug, Clone, PartialEq)]
pub struct CoallocRequest {
    /// `(site, cores)` shares; sites must be distinct.
    pub parts: Vec<(SiteId, usize)>,
    /// How long all parts are held together.
    pub duration: SimDuration,
}

impl CoallocRequest {
    /// A request over distinct sites. Panics on duplicates, empty parts,
    /// zero cores, or zero duration — all caller bugs.
    pub fn new(parts: Vec<(SiteId, usize)>, duration: SimDuration) -> Self {
        assert!(!parts.is_empty(), "co-allocation needs parts");
        assert!(!duration.is_zero(), "duration must be positive");
        assert!(parts.iter().all(|&(_, c)| c > 0), "zero-core part");
        let mut sites: Vec<SiteId> = parts.iter().map(|&(s, _)| s).collect();
        sites.sort_unstable();
        sites.dedup();
        assert_eq!(sites.len(), parts.len(), "duplicate site in request");
        CoallocRequest { parts, duration }
    }
}

/// The planner's answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoallocPlan {
    /// The agreed simultaneous start.
    pub start: SimTime,
    /// The latest instant any single site could have started its part alone
    /// — `start - max_single_site_start` is the coordination slack.
    pub max_single_site_start: SimTime,
}

impl CoallocPlan {
    /// Extra waiting imposed by the simultaneity requirement, beyond the
    /// slowest site's own earliest start.
    pub fn coordination_slack(&self) -> SimDuration {
        self.start.saturating_since(self.max_single_site_start)
    }
}

/// Find the earliest common start for `request` at or after `earliest`,
/// against per-site `profiles` (indexed by `SiteId`). Returns `None` if any
/// part can never fit. Does **not** reserve — see [`plan_and_reserve`].
pub fn plan_coallocation(
    profiles: &[Profile],
    request: &CoallocRequest,
    earliest: SimTime,
) -> Option<CoallocPlan> {
    // Individual earliest starts (for the slack metric) — also an early-out
    // for infeasibility.
    let mut max_single = earliest;
    for &(site, cores) in &request.parts {
        let t = profiles[site.index()].find_slot(earliest, cores, request.duration);
        if t == SimTime::MAX {
            return None;
        }
        max_single = max_single.max(t);
    }
    // Fixed-point iteration for the common start.
    let mut candidate = max_single;
    loop {
        let mut next = candidate;
        for &(site, cores) in &request.parts {
            let t = profiles[site.index()].find_slot(next, cores, request.duration);
            if t == SimTime::MAX {
                return None;
            }
            next = next.max(t);
        }
        if next == candidate {
            return Some(CoallocPlan {
                start: candidate,
                max_single_site_start: max_single,
            });
        }
        candidate = next;
    }
}

/// Plan and, on success, reserve every part at the agreed start.
pub fn plan_and_reserve(
    profiles: &mut [Profile],
    request: &CoallocRequest,
    earliest: SimTime,
) -> Option<CoallocPlan> {
    let plan = plan_coallocation(profiles, request, earliest)?;
    for &(site, cores) in &request.parts {
        profiles[site.index()].reserve(plan.start, request.duration, cores);
    }
    Some(plan)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(total: usize, occupied: &[(u64, usize)]) -> Profile {
        let mut p = Profile::new(SimTime::ZERO, total);
        for &(until_s, cores) in occupied {
            p.occupy_until(SimTime::from_secs(until_s), cores);
        }
        p
    }

    fn req(parts: &[(usize, usize)], dur_s: u64) -> CoallocRequest {
        CoallocRequest::new(
            parts.iter().map(|&(s, c)| (SiteId(s), c)).collect(),
            SimDuration::from_secs(dur_s),
        )
    }

    #[test]
    fn empty_sites_coallocate_immediately() {
        let profiles = vec![profile(64, &[]), profile(32, &[])];
        let plan = plan_coallocation(&profiles, &req(&[(0, 16), (1, 16)], 600), SimTime::ZERO)
            .expect("feasible");
        assert_eq!(plan.start, SimTime::ZERO);
        assert_eq!(plan.coordination_slack(), SimDuration::ZERO);
    }

    #[test]
    fn common_start_waits_for_the_slowest_site() {
        // Site 0 free now; site 1 fully busy until t=1000.
        let profiles = vec![profile(64, &[]), profile(32, &[(1000, 32)])];
        let plan = plan_coallocation(&profiles, &req(&[(0, 16), (1, 16)], 600), SimTime::ZERO)
            .expect("feasible");
        assert_eq!(plan.start, SimTime::from_secs(1000));
        assert_eq!(plan.max_single_site_start, SimTime::from_secs(1000));
        assert_eq!(plan.coordination_slack(), SimDuration::ZERO);
    }

    #[test]
    fn slack_appears_when_windows_fail_to_overlap() {
        // Site 0 has a hole [0, 500) then is busy [500, 2000).
        // Site 1 is busy [0, 600) then free.
        // Individually: site 0 could start at 0 (600 s job doesn't fit the
        // 500 s hole → actually at 2000); site 1 at 600.
        let mut p0 = Profile::new(SimTime::ZERO, 32);
        p0.reserve(SimTime::from_secs(500), SimDuration::from_secs(1500), 32);
        let p1 = profile(32, &[(600, 32)]);
        let profiles = vec![p0, p1];
        let plan = plan_coallocation(&profiles, &req(&[(0, 16), (1, 16)], 600), SimTime::ZERO)
            .expect("feasible");
        // Site 0's earliest for 600 s is t=2000 (hole too short); common
        // start is 2000. Slack vs the slowest individual (2000) is zero here;
        // craft a case with real slack below.
        assert_eq!(plan.start, SimTime::from_secs(2000));

        // Real slack: site 0 free only [0, 500) and [3000, ∞); site 1 free
        // only [500, 1100) and [2000, ∞). Individual earliest: site0 = 0
        // (fits [0,500)? 600 s doesn't fit → 3000)… make durations line up:
        let mut a = Profile::new(SimTime::ZERO, 16);
        a.reserve(SimTime::from_secs(500), SimDuration::from_secs(2500), 16); // busy [500,3000)
        let mut b = Profile::new(SimTime::ZERO, 16);
        b.reserve(SimTime::ZERO, SimDuration::from_secs(500), 16); // busy [0,500)
        b.reserve(SimTime::from_secs(1100), SimDuration::from_secs(900), 16); // busy [1100,2000)
        let profiles = vec![a, b];
        let plan = plan_coallocation(&profiles, &req(&[(0, 8), (1, 8)], 400), SimTime::ZERO)
            .expect("feasible");
        // Individually: a starts at 0 ([0,500) fits 400 s); b at 500
        // ([500,1100) fits). Together: a's window [0,500) and b's [500,1100)
        // don't overlap → first common window starts at 3000.
        assert_eq!(plan.start, SimTime::from_secs(3000));
        assert_eq!(plan.max_single_site_start, SimTime::from_secs(500));
        assert_eq!(plan.coordination_slack(), SimDuration::from_secs(2500));
    }

    #[test]
    fn infeasible_part_yields_none() {
        let profiles = vec![profile(8, &[]), profile(8, &[])];
        assert_eq!(
            plan_coallocation(&profiles, &req(&[(0, 4), (1, 16)], 60), SimTime::ZERO),
            None
        );
    }

    #[test]
    fn reserve_composes_sequential_requests() {
        let mut profiles = vec![profile(16, &[]), profile(16, &[])];
        let r = req(&[(0, 16), (1, 16)], 1000);
        let first = plan_and_reserve(&mut profiles, &r, SimTime::ZERO).expect("first fits");
        assert_eq!(first.start, SimTime::ZERO);
        // The second identical request must queue behind the first.
        let second = plan_and_reserve(&mut profiles, &r, SimTime::ZERO).expect("second fits later");
        assert_eq!(second.start, SimTime::from_secs(1000));
        // And a third behind the second.
        let third = plan_and_reserve(&mut profiles, &r, SimTime::ZERO).expect("third");
        assert_eq!(third.start, SimTime::from_secs(2000));
    }

    #[test]
    fn partial_overlap_uses_remaining_capacity() {
        // Site 0 half-busy until 800: 8 of 16 free.
        let mut profiles = vec![profile(16, &[(800, 8)]), profile(16, &[])];
        // 8 cores at site 0 fit alongside the running half.
        let plan = plan_and_reserve(&mut profiles, &req(&[(0, 8), (1, 8)], 600), SimTime::ZERO)
            .expect("fits in the free half");
        assert_eq!(plan.start, SimTime::ZERO);
        // A 16-core follow-up at site 0 must wait for both the running work
        // (t=800) and the co-allocated reservation ([0,600)).
        let plan2 = plan_and_reserve(&mut profiles, &req(&[(0, 16)], 100), SimTime::ZERO)
            .expect("fits after");
        assert_eq!(plan2.start, SimTime::from_secs(800));
    }

    #[test]
    #[should_panic(expected = "duplicate site")]
    fn duplicate_sites_rejected() {
        req(&[(0, 4), (0, 4)], 60);
    }
}
