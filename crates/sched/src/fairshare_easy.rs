//! EASY backfill with fair-share queue ordering.
//!
//! Identical backfill machinery to [`crate::easy::EasyBackfill`], but the
//! queue is re-ranked before every decision round by the decayed-usage
//! priorities of [`crate::fairshare::FairShare`]: projects that consumed
//! heavily in the recent past sink behind lighter ones, while accumulated
//! wait time floats everyone back up (no starvation).
//!
//! Usage is charged on completion — `cores × wall-clock` — which is what a
//! production fair-share implementation sees from its accounting feed.

use crate::easy::easy_pass_unindexed;
use crate::fairshare::FairShare;
use crate::queue::{BatchScheduler, RunningSet, Started};
use std::collections::{HashMap, VecDeque};
use tg_des::{SimDuration, SimTime};
use tg_model::Cluster;
use tg_workload::{Job, JobId};

/// EASY backfill over a fair-share-ordered queue.
#[derive(Debug)]
pub struct FairshareEasy {
    queue: VecDeque<Job>,
    running: RunningSet,
    /// `id → (cores, start, project)` for usage charging at completion.
    charge_info: HashMap<JobId, (usize, SimTime, tg_workload::ProjectId)>,
    shares: FairShare,
    backfilled: u64,
}

impl FairshareEasy {
    /// A fair-share EASY scheduler with the given usage-decay half-life.
    pub fn new(half_life: SimDuration) -> Self {
        FairshareEasy {
            queue: VecDeque::new(),
            running: RunningSet::new(),
            charge_info: HashMap::new(),
            shares: FairShare::new(half_life),
            backfilled: 0,
        }
    }

    /// Read access to the underlying fair-share state (reports, tests).
    pub fn shares(&self) -> &FairShare {
        &self.shares
    }

    fn rerank(&mut self, now: SimTime) {
        let shares = &self.shares;
        let mut jobs: Vec<Job> = self.queue.drain(..).collect();
        // Stable sort: equal priorities keep FIFO order.
        jobs.sort_by(|a, b| {
            let pa = shares.priority(a.project, a.submit_time, now);
            let pb = shares.priority(b.project, b.submit_time, now);
            pb.partial_cmp(&pa).expect("priorities are finite")
        });
        self.queue = jobs.into();
    }
}

impl BatchScheduler for FairshareEasy {
    fn name(&self) -> &'static str {
        "fairshare-easy"
    }

    fn submit(&mut self, _now: SimTime, job: Job) {
        self.queue.push_back(job);
    }

    fn on_complete(&mut self, now: SimTime, id: JobId) {
        self.running.remove(id);
        if let Some((cores, start, project)) = self.charge_info.remove(&id) {
            let wall = now.saturating_since(start).as_secs_f64();
            self.shares.charge(project, now, cores as f64 * wall);
        }
    }

    fn make_decisions(
        &mut self,
        now: SimTime,
        cluster: &mut Cluster,
        core_speed: f64,
    ) -> Vec<Started> {
        self.rerank(now);
        let mut started = Vec::new();
        easy_pass_unindexed(
            &mut self.queue,
            &mut self.running,
            now,
            cluster,
            core_speed,
            &mut started,
            &mut self.backfilled,
        );
        for s in &started {
            self.charge_info
                .insert(s.job.id, (s.job.cores, now, s.job.project));
        }
        started
    }

    fn queue_len(&self) -> usize {
        self.queue.len()
    }

    fn backfills(&self) -> u64 {
        self.backfilled
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tg_workload::{ProjectId, UserId};

    fn job(id: usize, project: usize, cores: usize, secs: u64, submit: u64) -> Job {
        Job::batch(
            JobId(id),
            UserId(id),
            ProjectId(project),
            SimTime::from_secs(submit),
            cores,
            SimDuration::from_secs(secs),
        )
    }

    fn sched() -> FairshareEasy {
        FairshareEasy::new(SimDuration::from_days(7))
    }

    #[test]
    fn behaves_like_easy_with_no_usage_history() {
        let mut s = sched();
        let mut c = Cluster::new(SimTime::ZERO, 10);
        s.submit(SimTime::ZERO, job(0, 0, 6, 100, 0));
        s.submit(SimTime::ZERO, job(1, 1, 4, 100, 0));
        let started = s.make_decisions(SimTime::ZERO, &mut c, 1.0);
        assert_eq!(started.len(), 2, "both fit; no history → FIFO");
        assert_eq!(started[0].job.id, JobId(0));
    }

    #[test]
    fn heavy_project_sinks_behind_light_project() {
        let mut s = sched();
        let mut c = Cluster::new(SimTime::ZERO, 10);
        // Project 0 burns the machine for a while.
        s.submit(SimTime::ZERO, job(0, 0, 10, 50_000, 0));
        let st = s.make_decisions(SimTime::ZERO, &mut c, 1.0);
        assert_eq!(st.len(), 1);
        let t1 = SimTime::from_secs(50_000);
        c.release(t1, 10);
        s.on_complete(t1, JobId(0)); // charges 500k core-seconds to project 0
                                     // Now project 0 submits first, project 1 second; both need the
                                     // whole machine. Fair share puts project 1 ahead.
        s.submit(t1, job(1, 0, 10, 100, 50_000));
        s.submit(t1, job(2, 1, 10, 100, 50_000));
        let started = s.make_decisions(t1, &mut c, 1.0);
        assert_eq!(started.len(), 1);
        assert_eq!(started[0].job.id, JobId(2), "light project overtakes");
        assert_eq!(s.queue_len(), 1);
    }

    #[test]
    fn long_waits_eventually_beat_usage_penalty() {
        let mut s = sched();
        let mut c = Cluster::new(SimTime::ZERO, 10);
        s.submit(SimTime::ZERO, job(0, 0, 10, 1000, 0));
        let st = s.make_decisions(SimTime::ZERO, &mut c, 1.0);
        let t1 = SimTime::from_secs(1000);
        c.release(t1, 10);
        s.on_complete(t1, st[0].job.id);
        // Project 0's next job has waited two days; project 1's arrives now.
        let t2 = SimTime::from_secs(1000 + 2 * 86_400);
        s.submit(t1, job(1, 0, 10, 100, 1000));
        s.submit(t2, job(2, 1, 10, 100, 1000 + 2 * 86_400));
        let started = s.make_decisions(t2, &mut c, 1.0);
        assert_eq!(
            started[0].job.id,
            JobId(1),
            "48 h of waiting outweighs the usage penalty"
        );
    }

    #[test]
    fn charges_accrue_only_for_completed_work() {
        let mut s = sched();
        let mut c = Cluster::new(SimTime::ZERO, 8);
        s.submit(SimTime::ZERO, job(0, 3, 4, 600, 0));
        s.make_decisions(SimTime::ZERO, &mut c, 1.0);
        assert_eq!(s.shares().usage_of(ProjectId(3), SimTime::ZERO), 0.0);
        let t = SimTime::from_secs(600);
        c.release(t, 4);
        s.on_complete(t, JobId(0));
        let usage = s.shares().usage_of(ProjectId(3), t);
        assert!((usage - 2400.0).abs() < 1e-6, "4 cores × 600 s = {usage}");
    }

    #[test]
    fn backfill_still_works_under_reranking() {
        let mut s = sched();
        let mut c = Cluster::new(SimTime::ZERO, 10);
        s.submit(SimTime::ZERO, job(0, 0, 6, 1000, 0));
        s.make_decisions(SimTime::ZERO, &mut c, 1.0);
        s.submit(SimTime::ZERO, job(1, 1, 8, 100, 0)); // blocked head
        s.submit(SimTime::ZERO, job(2, 2, 4, 500, 0)); // backfills
        let started = s.make_decisions(SimTime::ZERO, &mut c, 1.0);
        assert_eq!(started.len(), 1);
        assert_eq!(started[0].job.id, JobId(2));
    }
}
