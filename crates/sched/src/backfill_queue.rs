//! An indexed FIFO queue for EASY-style backfill scans.
//!
//! The naive Phase-3 backfill scan walks the whole queue on every decision
//! pass. On saturated sites that is O(queue) per completion — the dominant
//! cost of large-scenario runs (measured: ~25 000-job average scan depth,
//! billions of visited entries, almost all of which fail the same two
//! tests). This module replaces the walk with an index exploiting the two
//! monotonicities of the scan:
//!
//! * free cores only *decrease* while picking, so a job wider than the
//!   current free pool can be skipped for the rest of the pass, and
//! * the reservation's spare ("extra") cores only decrease, so once a
//!   width exceeds `extra`, *long* jobs of that width are unstartable for
//!   the rest of the pass.
//!
//! Job widths come from small discrete sets (the workload profiles draw
//! from ~a dozen power-of-two core counts), so the queue is kept as one
//! **lane per distinct width**. Each lane stores its jobs in arrival order
//! under a segment tree of minimum *estimated runtime*, answering
//!
//! > "first job of this width, at or after position `i`, estimated to run
//! >  at most `limit`"
//!
//! in O(log lane). A backfill pass heap-merges the per-lane candidates in
//! global arrival order and touches only jobs that are actually startable
//! under the current free/extra budgets (plus one boundary probe per lane)
//! — O((picks + distinct widths) · log) per pass instead of O(queue).
//!
//! Decisions are **bit-identical** to the naive walk; the differential
//! suite (`tests/differential.rs`, plus the property tests in this crate)
//! drives both against identical traffic to prove it.

use crate::queue::estimated_runtime;
use std::collections::{BTreeMap, VecDeque};
use tg_workload::Job;

/// Dead-slot sentinel in the lane segment trees. Real estimates are u64
/// microseconds, so `u64::MAX as u128` (`ALIVE_LIMIT`) admits every live
/// entry while the sentinel admits none.
const DEAD: u128 = u128::MAX;

/// Query limit that matches any live entry regardless of estimate.
pub(crate) const ALIVE_LIMIT: u128 = u64::MAX as u128;

/// Jobs of one width, in arrival order, under a min-estimate segment tree.
#[derive(Debug, Default)]
pub(crate) struct WidthLane {
    /// Arrival-ordered sequence numbers; dead entries keep their slot until
    /// the next rebuild.
    seqs: Vec<u64>,
    /// Segment tree over `seqs` of estimated runtime in microseconds
    /// (`DEAD` for killed slots). `seg[cap + i]` is the leaf for `seqs[i]`.
    seg: Vec<u128>,
    /// Leaf capacity (power of two ≥ `seqs.len()`).
    cap: usize,
    /// Live seq → slot index.
    by_seq: BTreeMap<u64, usize>,
}

impl WidthLane {
    fn rebuild(&mut self, entries: Vec<(u64, u128)>) {
        let cap = entries.len().next_power_of_two().max(8);
        let mut seg = vec![DEAD; 2 * cap];
        let mut seqs = Vec::with_capacity(cap);
        let mut by_seq = BTreeMap::new();
        for (i, (seq, est)) in entries.into_iter().enumerate() {
            seg[cap + i] = est;
            by_seq.insert(seq, i);
            seqs.push(seq);
        }
        for n in (1..cap).rev() {
            seg[n] = seg[2 * n].min(seg[2 * n + 1]);
        }
        self.seqs = seqs;
        self.seg = seg;
        self.cap = cap;
        self.by_seq = by_seq;
    }

    /// Live entries in arrival order (used by rebuilds).
    fn live_entries(&self) -> Vec<(u64, u128)> {
        self.by_seq
            .iter()
            .map(|(&seq, &i)| (seq, self.seg[self.cap + i]))
            .collect()
    }

    fn update_path(&mut self, i: usize, v: u128) {
        let mut n = self.cap + i;
        self.seg[n] = v;
        while n > 1 {
            n /= 2;
            self.seg[n] = self.seg[2 * n].min(self.seg[2 * n + 1]);
        }
    }

    /// Append a job (seqs are globally increasing, so arrival order holds).
    fn push(&mut self, seq: u64, est_micros: u64) {
        if self.seqs.len() == self.cap {
            // No free slot: rebuild from the live entries (dropping dead
            // slots) with the new job appended; `rebuild` sizes the tree
            // with room to grow. Amortized O(1) per push.
            let mut entries = self.live_entries();
            entries.push((seq, est_micros as u128));
            self.rebuild(entries);
            return;
        }
        let i = self.seqs.len();
        self.seqs.push(seq);
        self.by_seq.insert(seq, i);
        self.update_path(i, est_micros as u128);
    }

    /// Kill `seq` (it left the queue). Compacts when mostly dead.
    fn kill(&mut self, seq: u64) {
        let Some(i) = self.by_seq.remove(&seq) else {
            return;
        };
        self.update_path(i, DEAD);
        if self.seqs.len() >= 32 && self.by_seq.len() * 2 < self.seqs.len() {
            self.rebuild(self.live_entries());
        }
    }

    /// Estimated runtime (µs) of the live entry at slot `i`.
    pub(crate) fn est_at(&self, i: usize) -> u128 {
        self.seg[self.cap + i]
    }

    /// Seq of the entry at slot `i`.
    pub(crate) fn seq_at(&self, i: usize) -> u64 {
        self.seqs[i]
    }

    /// First slot ≥ `from` whose estimate is ≤ `limit`, if any.
    pub(crate) fn first_le(&self, from: usize, limit: u128) -> Option<usize> {
        if from >= self.seqs.len() {
            return None;
        }
        self.descend(1, 0, self.cap, from, limit)
    }

    fn descend(
        &self,
        node: usize,
        lo: usize,
        hi: usize,
        from: usize,
        limit: u128,
    ) -> Option<usize> {
        if hi <= from || self.seg[node] > limit {
            return None;
        }
        if hi - lo == 1 {
            return (lo < self.seqs.len()).then_some(lo);
        }
        let mid = (lo + hi) / 2;
        self.descend(2 * node, lo, mid, from, limit)
            .or_else(|| self.descend(2 * node + 1, mid, hi, from, limit))
    }
}

/// FIFO job queue indexed for backfill: a seq-ordered job map plus one
/// [`WidthLane`] per distinct core width.
///
/// Estimates are indexed at the site's `core_speed`, which `submit` doesn't
/// receive — newly submitted jobs are *staged* and folded into the index at
/// the start of the next decision pass ([`BackfillQueue::integrate`]).
#[derive(Debug, Default)]
pub(crate) struct BackfillQueue {
    jobs: BTreeMap<u64, Job>,
    lanes: BTreeMap<usize, WidthLane>,
    staged: VecDeque<Job>,
    next_seq: u64,
    /// Captured at first integration; the per-site speed never changes.
    core_speed: Option<f64>,
}

impl BackfillQueue {
    pub(crate) fn new() -> Self {
        BackfillQueue::default()
    }

    /// Stage a newly submitted job (indexed at the next decision pass).
    pub(crate) fn push_back(&mut self, job: Job) {
        self.staged.push_back(job);
    }

    /// Queued jobs (staged included).
    pub(crate) fn len(&self) -> usize {
        self.jobs.len() + self.staged.len()
    }

    /// Fold staged submissions into the index. Must run before any other
    /// query in a decision pass.
    pub(crate) fn integrate(&mut self, core_speed: f64) {
        debug_assert!(
            self.core_speed.replace(core_speed).unwrap_or(core_speed) == core_speed,
            "a site's core speed is constant"
        );
        while let Some(job) = self.staged.pop_front() {
            let seq = self.next_seq;
            self.next_seq += 1;
            let est = estimated_runtime(&job, core_speed).as_micros();
            self.lanes.entry(job.cores).or_default().push(seq, est);
            self.jobs.insert(seq, job);
        }
    }

    /// The queue head (after [`BackfillQueue::integrate`]).
    pub(crate) fn front(&self) -> Option<&Job> {
        self.jobs.first_key_value().map(|(_, j)| j)
    }

    /// Seq of the queue head.
    pub(crate) fn head_seq(&self) -> Option<u64> {
        self.jobs.first_key_value().map(|(&s, _)| s)
    }

    /// Pop the queue head.
    pub(crate) fn pop_front(&mut self) -> Option<Job> {
        let (seq, job) = self.jobs.pop_first()?;
        self.lane_kill(job.cores, seq);
        Some(job)
    }

    /// Remove an arbitrary queued job by seq (a backfill pick).
    pub(crate) fn remove(&mut self, seq: u64) -> Job {
        let job = self.jobs.remove(&seq).expect("picked seq is queued");
        self.lane_kill(job.cores, seq);
        job
    }

    fn lane_kill(&mut self, cores: usize, seq: u64) {
        self.lanes
            .get_mut(&cores)
            .expect("lane exists for queued width")
            .kill(seq);
    }

    /// Integrated jobs in arrival order (drain/pre-drain passes, tests).
    pub(crate) fn iter(&self) -> impl Iterator<Item = (u64, &Job)> {
        self.jobs.iter().map(|(&s, j)| (s, j))
    }

    /// Width lanes at or below `max_width`, for candidate seeding.
    pub(crate) fn lanes_up_to(
        &self,
        max_width: usize,
    ) -> impl Iterator<Item = (usize, &WidthLane)> {
        self.lanes.range(..=max_width).map(|(&w, l)| (w, l))
    }

    /// The lane for `width` (must exist).
    pub(crate) fn lane(&self, width: usize) -> &WidthLane {
        &self.lanes[&width]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tg_des::{SimDuration, SimTime};
    use tg_workload::{JobId, ProjectId, UserId};

    fn job(id: usize, cores: usize, secs: u64) -> Job {
        Job::batch(
            JobId(id),
            UserId(0),
            ProjectId(0),
            SimTime::ZERO,
            cores,
            SimDuration::from_secs(secs),
        )
    }

    #[test]
    fn fifo_order_is_preserved_across_widths() {
        let mut q = BackfillQueue::new();
        q.push_back(job(0, 4, 10));
        q.push_back(job(1, 8, 10));
        q.push_back(job(2, 4, 10));
        q.integrate(1.0);
        let ids: Vec<_> = q.iter().map(|(_, j)| j.id.0).collect();
        assert_eq!(ids, vec![0, 1, 2]);
        assert_eq!(q.pop_front().unwrap().id, JobId(0));
        assert_eq!(q.front().unwrap().id, JobId(1));
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn staged_jobs_count_but_integrate_lazily() {
        let mut q = BackfillQueue::new();
        q.push_back(job(0, 2, 5));
        assert_eq!(q.len(), 1);
        assert!(q.front().is_none(), "not integrated yet");
        q.integrate(1.0);
        assert_eq!(q.front().unwrap().id, JobId(0));
    }

    #[test]
    fn first_le_finds_the_earliest_short_job_per_width() {
        let mut q = BackfillQueue::new();
        q.push_back(job(0, 4, 1000)); // long
        q.push_back(job(1, 4, 10)); // short
        q.push_back(job(2, 4, 20)); // short
        q.integrate(1.0);
        let lane = q.lane(4);
        let limit = SimDuration::from_secs(100).as_micros() as u128;
        let i = lane.first_le(0, limit).expect("short job exists");
        assert_eq!(lane.seq_at(i), 1);
        assert_eq!(lane.first_le(i + 1, limit).map(|j| lane.seq_at(j)), Some(2));
        assert_eq!(
            lane.first_le(0, SimDuration::from_secs(1).as_micros() as u128),
            None
        );
    }

    #[test]
    fn removal_kills_lane_entries() {
        let mut q = BackfillQueue::new();
        for i in 0..100 {
            q.push_back(job(i, 2, 10 + i as u64));
        }
        q.integrate(1.0);
        // Remove every other job; survivors stay reachable in order.
        let seqs: Vec<u64> = q.iter().map(|(s, _)| s).collect();
        for &s in seqs.iter().step_by(2) {
            q.remove(s);
        }
        assert_eq!(q.len(), 50);
        let lane = q.lane(2);
        let mut seen = Vec::new();
        let mut from = 0;
        while let Some(i) = lane.first_le(from, ALIVE_LIMIT) {
            seen.push(lane.seq_at(i));
            from = i + 1;
        }
        let expect: Vec<u64> = seqs.iter().skip(1).step_by(2).copied().collect();
        assert_eq!(seen, expect);
    }

    #[test]
    fn growth_and_compaction_keep_the_index_consistent() {
        let mut q = BackfillQueue::new();
        let mut next = 0usize;
        for round in 0..8 {
            for _ in 0..64 {
                q.push_back(job(next, 4, 60 + (next as u64 % 7) * 60));
                next += 1;
            }
            q.integrate(1.0);
            // Drain three quarters from the front.
            for _ in 0..48 {
                q.pop_front();
            }
            let want = (round + 1) * 16;
            assert_eq!(q.len(), want);
            // Lane view matches the job map exactly.
            let lane = q.lane(4);
            let mut lane_seqs = Vec::new();
            let mut from = 0;
            while let Some(i) = lane.first_le(from, ALIVE_LIMIT) {
                lane_seqs.push(lane.seq_at(i));
                from = i + 1;
            }
            let map_seqs: Vec<u64> = q.iter().map(|(s, _)| s).collect();
            assert_eq!(lane_seqs, map_seqs);
        }
    }

    #[test]
    fn estimates_are_indexed_at_site_speed() {
        let mut q = BackfillQueue::new();
        q.push_back(job(0, 4, 100));
        q.integrate(2.0); // twice the reference speed → 50 s estimate
        let lane = q.lane(4);
        let i = lane
            .first_le(0, SimDuration::from_secs(50).as_micros() as u128)
            .expect("50 s at speed 2");
        assert_eq!(lane.seq_at(i), 0);
        assert_eq!(
            lane.first_le(0, SimDuration::from_secs(49).as_micros() as u128),
            None
        );
    }
}
