//! Requeue-on-failure bookkeeping: bounded retries with exponential backoff.
//!
//! When fault injection kills a running job (node crash, site outage), the
//! driver consults a [`RetryPolicy`] to decide whether to resubmit it — and
//! after how long — or abandon it. The policy is pure arithmetic; the
//! [`RetryBook`] tracks per-job failure counts across attempts.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use tg_des::SimDuration;
use tg_workload::JobId;

/// Bounded-retry policy with exponential backoff.
///
/// A killed job is resubmitted after `backoff_base_s · backoff_factor^(n−1)`
/// seconds (capped at `backoff_cap_s`), where `n` is its failure count; after
/// `max_retries` failures it is abandoned. All four fields are required when
/// a JSON fault spec overrides the policy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Failures tolerated before the job is abandoned.
    pub max_retries: u32,
    /// Backoff before the first resubmission, seconds.
    pub backoff_base_s: f64,
    /// Multiplier applied per additional failure (≥ 1 is sensible).
    pub backoff_factor: f64,
    /// Upper bound on any single backoff, seconds.
    pub backoff_cap_s: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            backoff_base_s: 60.0,
            backoff_factor: 2.0,
            backoff_cap_s: 3600.0,
        }
    }
}

impl RetryPolicy {
    /// Backoff before retry number `attempt` (1-based; 0 is treated as 1).
    pub fn backoff(&self, attempt: u32) -> SimDuration {
        let exp = attempt.max(1) - 1;
        // powi saturates fine for our range; cap the exponent so a pathological
        // spec can't produce inf·0-style surprises.
        let secs = self.backoff_base_s * self.backoff_factor.powi(exp.min(64) as i32);
        SimDuration::from_secs_f64(secs.min(self.backoff_cap_s).max(0.0))
    }

    /// Has `attempt` failures exhausted the policy?
    pub fn exhausted(&self, attempts: u32) -> bool {
        attempts > self.max_retries
    }
}

/// Per-job failure counts across fault-induced resubmissions.
#[derive(Debug, Clone, Default)]
pub struct RetryBook {
    attempts: HashMap<JobId, u32>,
}

impl RetryBook {
    /// An empty book.
    pub fn new() -> Self {
        RetryBook::default()
    }

    /// Record one more failure for `job`, returning the updated count.
    pub fn record(&mut self, job: JobId) -> u32 {
        let n = self.attempts.entry(job).or_insert(0);
        *n += 1;
        *n
    }

    /// Failures recorded so far for `job`.
    pub fn attempts(&self, job: JobId) -> u32 {
        self.attempts.get(&job).copied().unwrap_or(0)
    }

    /// Drop bookkeeping for `job` (completed or abandoned).
    pub fn forget(&mut self, job: JobId) {
        self.attempts.remove(&job);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_exponentially_and_caps() {
        let p = RetryPolicy::default();
        assert_eq!(p.backoff(1), SimDuration::from_secs(60));
        assert_eq!(p.backoff(2), SimDuration::from_secs(120));
        assert_eq!(p.backoff(3), SimDuration::from_secs(240));
        assert_eq!(p.backoff(30), SimDuration::from_secs(3600), "capped");
        assert_eq!(p.backoff(0), p.backoff(1), "0 treated as first attempt");
    }

    #[test]
    fn exhaustion_is_strictly_beyond_max_retries() {
        let p = RetryPolicy::default();
        assert!(!p.exhausted(3));
        assert!(p.exhausted(4));
    }

    #[test]
    fn book_counts_and_forgets() {
        let mut b = RetryBook::new();
        assert_eq!(b.attempts(JobId(7)), 0);
        assert_eq!(b.record(JobId(7)), 1);
        assert_eq!(b.record(JobId(7)), 2);
        assert_eq!(b.attempts(JobId(7)), 2);
        b.forget(JobId(7));
        assert_eq!(b.attempts(JobId(7)), 0);
    }

    #[test]
    fn policy_serde_roundtrip() {
        let p = RetryPolicy {
            max_retries: 5,
            backoff_base_s: 30.0,
            backoff_factor: 3.0,
            backoff_cap_s: 600.0,
        };
        let json = serde_json::to_string(&p).unwrap();
        let back: RetryPolicy = serde_json::from_str(&json).unwrap();
        assert_eq!(back, p);
    }
}
