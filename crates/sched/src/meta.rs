//! Cross-site metascheduling: choosing where an unpinned job goes.
//!
//! Policies mirror the resource-selection tools TeraGrid offered its users:
//!
//! * [`MetaPolicy::Random`] — the null policy (what an uninformed user does).
//! * [`MetaPolicy::LeastLoaded`] — most free cores right now.
//! * [`MetaPolicy::ShortestEta`] — minimize an estimated time-to-start
//!   derived from queued work ahead of the job.
//! * [`MetaPolicy::DataAware`] — [`MetaPolicy::ShortestEta`] plus the input-
//!   staging transfer time from the data's home site.
//! * [`MetaPolicy::DataLocality`] — replica-catalog aware: route to a site
//!   already holding the job's dataset when one is feasible, otherwise fall
//!   back to a transfer-cost-weighted choice from the nearest replica.
//!
//! The metascheduler works on [`SiteView`] snapshots so it can be tested
//! without a simulation, and never sees scheduler internals. Replica
//! locations reach it through a [`DataContext`] snapshot for the same
//! reason.

use serde::{Deserialize, Serialize};
use tg_des::{SimDuration, SimRng};
use tg_model::{Network, SiteId};
use tg_workload::Job;

/// A snapshot of one site as the metascheduler sees it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SiteView {
    /// The site.
    pub site: SiteId,
    /// Total batch cores.
    pub total_cores: usize,
    /// Cores free right now.
    pub free_cores: usize,
    /// Core-seconds of *estimated* work queued ahead (sum over queued jobs of
    /// `cores × estimate`).
    pub queued_core_seconds: f64,
    /// Relative core speed.
    pub core_speed: f64,
}

impl SiteView {
    /// Crude expected time-to-start for a job needing `cores`: zero if they
    /// are free now, else the queued work divided by machine throughput.
    ///
    /// This is the deliberately simple ETA heuristic of the selection tools
    /// the paper's era shipped — not a queue simulation.
    pub fn eta(&self, cores: usize) -> SimDuration {
        if cores <= self.free_cores {
            return SimDuration::ZERO;
        }
        let throughput = self.total_cores as f64 * self.core_speed.max(1e-9);
        SimDuration::from_secs_f64(self.queued_core_seconds / throughput)
    }
}

/// What the metascheduler knows about a job's dataset at selection time:
/// which sites currently hold a copy (permanent replica or warm cache) and
/// how large it is. Snapshot semantics, like [`SiteView`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DataContext<'a> {
    /// Sites holding the dataset right now, sorted by site index.
    pub resident: &'a [SiteId],
    /// Dataset size in MB (what a miss would move over the WAN).
    pub size_mb: f64,
}

/// Site-selection policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum MetaPolicy {
    /// Uniformly random among sites that can ever fit the job.
    Random,
    /// The site with the most free cores.
    LeastLoaded,
    /// The site with the smallest [`SiteView::eta`].
    ShortestEta,
    /// ETA plus input-staging time from `data_home`.
    DataAware,
    /// Replica-catalog aware: prefer the minimum-ETA feasible site already
    /// holding the job's dataset; when none is feasible, weight every site
    /// by ETA plus the WAN fetch time from its nearest replica. Jobs
    /// without a dataset fall back to [`MetaPolicy::DataAware`] behaviour.
    DataLocality,
}

impl MetaPolicy {
    /// All policies, for sweeps.
    pub const ALL: [MetaPolicy; 5] = [
        MetaPolicy::Random,
        MetaPolicy::LeastLoaded,
        MetaPolicy::ShortestEta,
        MetaPolicy::DataAware,
        MetaPolicy::DataLocality,
    ];

    /// Stable short name.
    pub fn name(self) -> &'static str {
        match self {
            MetaPolicy::Random => "random",
            MetaPolicy::LeastLoaded => "least-loaded",
            MetaPolicy::ShortestEta => "eta",
            MetaPolicy::DataAware => "data-aware",
            MetaPolicy::DataLocality => "data-locality",
        }
    }

    /// Choose a site for `job`. `data_home` is where the job's input lives
    /// (used by [`MetaPolicy::DataAware`]); `network` prices the staging;
    /// `data` carries the job's replica locations when the scenario runs a
    /// data grid (used by [`MetaPolicy::DataLocality`], ignored by the
    /// rest). Returns `None` if no site can ever fit the job.
    pub fn select(
        self,
        job: &Job,
        views: &[SiteView],
        data_home: SiteId,
        network: &Network,
        data: Option<&DataContext>,
        rng: &mut SimRng,
    ) -> Option<SiteId> {
        let feasible: Vec<&SiteView> = views
            .iter()
            .filter(|v| job.cores <= v.total_cores)
            .collect();
        if feasible.is_empty() {
            return None;
        }
        let chosen = match self {
            MetaPolicy::Random => **rng.pick(&feasible),
            MetaPolicy::LeastLoaded => **feasible
                .iter()
                .max_by_key(|v| (v.free_cores, std::cmp::Reverse(v.site)))
                .expect("non-empty"),
            MetaPolicy::ShortestEta => **feasible
                .iter()
                .min_by(|a, b| {
                    // Equal ETAs (usually both zero) break toward the freer
                    // machine so idle capacity spreads instead of piling
                    // onto the lowest site id.
                    a.eta(job.cores)
                        .cmp(&b.eta(job.cores))
                        .then(b.free_cores.cmp(&a.free_cores))
                        .then(a.site.cmp(&b.site))
                })
                .expect("non-empty"),
            MetaPolicy::DataAware => **feasible
                .iter()
                .min_by(|a, b| {
                    let cost = |v: &SiteView| {
                        v.eta(job.cores) + network.transfer_time(data_home, v.site, job.input_mb)
                    };
                    cost(a).cmp(&cost(b)).then(a.site.cmp(&b.site))
                })
                .expect("non-empty"),
            MetaPolicy::DataLocality => {
                let resident = data.map(|d| d.resident).unwrap_or(&[]);
                if resident.is_empty() {
                    // No dataset (or nothing resident yet): behave like
                    // DataAware so mixed workloads still route sensibly.
                    return MetaPolicy::DataAware.select(job, views, data_home, network, data, rng);
                }
                let holders: Vec<&&SiteView> = feasible
                    .iter()
                    .filter(|v| resident.binary_search(&v.site).is_ok())
                    .collect();
                if let Some(v) = holders.iter().min_by(|a, b| {
                    a.eta(job.cores)
                        .cmp(&b.eta(job.cores))
                        .then(a.site.cmp(&b.site))
                }) {
                    ***v
                } else {
                    // No feasible holder: weigh every site by ETA plus the
                    // cheapest replica fetch it would trigger.
                    let size = data.map(|d| d.size_mb).unwrap_or(job.input_mb);
                    **feasible
                        .iter()
                        .min_by(|a, b| {
                            let cost = |v: &SiteView| {
                                let fetch = resident
                                    .iter()
                                    .map(|&r| network.transfer_time(r, v.site, size))
                                    .min()
                                    .unwrap_or(SimDuration::ZERO);
                                v.eta(job.cores) + fetch
                            };
                            cost(a).cmp(&cost(b)).then(a.site.cmp(&b.site))
                        })
                        .expect("non-empty")
                }
            }
        };
        Some(chosen.site)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tg_des::{SimRng, SimTime};
    use tg_model::network::Uplink;
    use tg_workload::{JobId, ProjectId, UserId};

    fn job(cores: usize, input_mb: f64) -> Job {
        Job::batch(
            JobId(0),
            UserId(0),
            ProjectId(0),
            SimTime::ZERO,
            cores,
            tg_des::SimDuration::from_secs(3600),
        )
        .with_data(input_mb, 0.0)
    }

    fn views() -> Vec<SiteView> {
        vec![
            SiteView {
                site: SiteId(0),
                total_cores: 1000,
                free_cores: 10,
                queued_core_seconds: 8.0e6,
                core_speed: 1.0,
            },
            SiteView {
                site: SiteId(1),
                total_cores: 500,
                free_cores: 200,
                queued_core_seconds: 1.0e6,
                core_speed: 1.0,
            },
            SiteView {
                site: SiteId(2),
                total_cores: 100,
                free_cores: 0,
                queued_core_seconds: 0.5e6,
                core_speed: 2.0,
            },
        ]
    }

    fn net() -> Network {
        let mut n = Network::new();
        n.add_uplink(Uplink::new(1000.0, 10.0));
        n.add_uplink(Uplink::new(1000.0, 10.0));
        n.add_uplink(Uplink::new(10.0, 10.0)); // site2 has a thin pipe
        n
    }

    #[test]
    fn eta_zero_when_cores_free() {
        let v = views()[1];
        assert_eq!(v.eta(100), SimDuration::ZERO);
        assert!(v.eta(400) > SimDuration::ZERO);
    }

    #[test]
    fn least_loaded_picks_most_free() {
        let mut rng = SimRng::seeded(1);
        let s = MetaPolicy::LeastLoaded
            .select(&job(50, 0.0), &views(), SiteId(0), &net(), None, &mut rng)
            .unwrap();
        assert_eq!(s, SiteId(1));
    }

    #[test]
    fn shortest_eta_prefers_free_cores_then_light_queue() {
        let mut rng = SimRng::seeded(2);
        // 50 cores: free at site1 (eta 0) → site1.
        let s = MetaPolicy::ShortestEta
            .select(&job(50, 0.0), &views(), SiteId(0), &net(), None, &mut rng)
            .unwrap();
        assert_eq!(s, SiteId(1));
        // 90 cores: site0 eta 8e6/1000=8000 s; site1 free → 0; site2 eta
        // 0.5e6/200=2500 s. Site1 wins again.
        let s = MetaPolicy::ShortestEta
            .select(&job(90, 0.0), &views(), SiteId(0), &net(), None, &mut rng)
            .unwrap();
        assert_eq!(s, SiteId(1));
        // 300 cores: only sites 0,1 feasible; site0 eta 8000, site1 eta 2000.
        let s = MetaPolicy::ShortestEta
            .select(&job(300, 0.0), &views(), SiteId(0), &net(), None, &mut rng)
            .unwrap();
        assert_eq!(s, SiteId(1));
    }

    #[test]
    fn random_respects_feasibility() {
        let mut rng = SimRng::seeded(3);
        for _ in 0..100 {
            let s = MetaPolicy::Random
                .select(&job(600, 0.0), &views(), SiteId(0), &net(), None, &mut rng)
                .unwrap();
            assert_eq!(s, SiteId(0), "only site0 fits 600 cores");
        }
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(
                MetaPolicy::Random
                    .select(&job(10, 0.0), &views(), SiteId(0), &net(), None, &mut rng)
                    .unwrap(),
            );
        }
        assert_eq!(seen.len(), 3, "all feasible sites eventually chosen");
    }

    #[test]
    fn infeasible_everywhere_is_none() {
        let mut rng = SimRng::seeded(4);
        assert_eq!(
            MetaPolicy::ShortestEta.select(
                &job(10_000, 0.0),
                &views(),
                SiteId(0),
                &net(),
                None,
                &mut rng
            ),
            None
        );
    }

    #[test]
    fn data_aware_avoids_thin_pipes_for_big_inputs() {
        let mut rng = SimRng::seeded(5);
        // Big input at site0; site2 would be fastest by ETA for small jobs
        // queued there... craft: job of 50 cores: ETA site1=0 so site1 wins
        // under both; instead compare against eta policy on 90-core job with
        // data at site2 and huge input: data-aware should stay at site2's
        // neighbours... Use explicit check: cost(site1) includes transfer
        // from site0 (fat pipes, cheap); cost(site2) would include thin pipe.
        let big = job(90, 100_000.0);
        let s = MetaPolicy::DataAware
            .select(&big, &views(), SiteId(0), &net(), None, &mut rng)
            .unwrap();
        assert_eq!(s, SiteId(1), "fat-pipe site with zero ETA wins");
        // Data already at site2 and job fits there: transfer to site2 is
        // free; to site1 it crosses the thin pipe (10 MB/s → 10,000 s).
        let local = job(90, 100_000.0);
        let s = MetaPolicy::DataAware
            .select(&local, &views(), SiteId(2), &net(), None, &mut rng)
            .unwrap();
        assert_eq!(s, SiteId(2), "keeping compute near data wins");
    }

    #[test]
    fn data_locality_routes_to_replica_holders() {
        let mut rng = SimRng::seeded(6);
        // The dataset sits at sites 0 and 2; a 90-core job fits all three
        // sites. Holder ETAs: site0 8000 s, site2 2500 s → site2 wins even
        // though site1 has zero ETA, because site1 would pay a WAN fetch.
        let ctx = DataContext {
            resident: &[SiteId(0), SiteId(2)],
            size_mb: 5_000.0,
        };
        let s = MetaPolicy::DataLocality
            .select(
                &job(90, 0.0),
                &views(),
                SiteId(0),
                &net(),
                Some(&ctx),
                &mut rng,
            )
            .unwrap();
        assert_eq!(s, SiteId(2), "min-ETA replica holder wins");
        // 300 cores: site2 infeasible, so holders = {site0}. Site0 wins over
        // the empty site1 because holding the data beats fetching it.
        let s = MetaPolicy::DataLocality
            .select(
                &job(300, 0.0),
                &views(),
                SiteId(0),
                &net(),
                Some(&ctx),
                &mut rng,
            )
            .unwrap();
        assert_eq!(s, SiteId(0), "feasible holder preferred over non-holder");
        // Only a thin-piped holder: 600 cores fits only site0; site0 holds
        // nothing, the fallback weighs fetch cost and still must pick it.
        let ctx2 = DataContext {
            resident: &[SiteId(2)],
            size_mb: 5_000.0,
        };
        let s = MetaPolicy::DataLocality
            .select(
                &job(600, 0.0),
                &views(),
                SiteId(0),
                &net(),
                Some(&ctx2),
                &mut rng,
            )
            .unwrap();
        assert_eq!(s, SiteId(0), "fallback picks the only feasible site");
    }

    #[test]
    fn data_locality_without_a_dataset_matches_data_aware() {
        for (cores, mb, home) in [(90usize, 100_000.0, 2usize), (50, 0.0, 0), (300, 10.0, 1)] {
            let mut r1 = SimRng::seeded(9);
            let mut r2 = SimRng::seeded(9);
            let a = MetaPolicy::DataAware.select(
                &job(cores, mb),
                &views(),
                SiteId(home),
                &net(),
                None,
                &mut r1,
            );
            let b = MetaPolicy::DataLocality.select(
                &job(cores, mb),
                &views(),
                SiteId(home),
                &net(),
                None,
                &mut r2,
            );
            assert_eq!(a, b, "cores={cores} mb={mb} home={home}");
        }
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(MetaPolicy::Random.name(), "random");
        assert_eq!(MetaPolicy::DataAware.name(), "data-aware");
        assert_eq!(MetaPolicy::DataLocality.name(), "data-locality");
        assert_eq!(MetaPolicy::ALL.len(), 5);
    }
}
