//! The scheduler interface and shared queue machinery.

use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};
use tg_des::span::WaitCause;
use tg_des::{SimDuration, SimTime};
use tg_model::Cluster;
use tg_workload::{Job, JobId};

/// A job the scheduler has decided to start *now*.
#[derive(Debug, Clone, PartialEq)]
pub struct Started {
    /// The job (removed from the queue).
    pub job: Job,
    /// What the scheduler believes the end time is (estimate-based); the
    /// driver computes the *actual* completion from the true runtime.
    pub estimated_end: SimTime,
    /// The dominant reason the job waited until now (observability only —
    /// never consulted by scheduling logic).
    pub cause: WaitCause,
}

/// A running job as the scheduler tracks it (estimates, not truth).
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct RunningJob {
    pub id: JobId,
    pub cores: usize,
    pub estimated_end: SimTime,
}

/// The indexed running set shared by every scheduler: an id→job map for
/// O(1)-expected completion removal plus an `(estimated_end, id)`-ordered
/// view so shadow-time and profile computations iterate completions in end
/// order without re-sorting per decision pass.
///
/// The end-ordered view iterates by *raw* estimated end. Shadow-time callers
/// clamp ends to `now`; clamping `max(now)` preserves the non-decreasing
/// order, so cumulative-core scans over this view cross any threshold at
/// exactly the time the sorted-per-pass implementation found (ties at equal
/// clamped time are order-independent for a cumulative sum).
#[derive(Debug, Default)]
pub(crate) struct RunningSet {
    by_id: HashMap<JobId, RunningJob>,
    by_end: BTreeMap<(SimTime, JobId), usize>,
}

impl RunningSet {
    pub(crate) fn new() -> Self {
        RunningSet::default()
    }

    pub(crate) fn insert(&mut self, r: RunningJob) {
        self.by_end.insert((r.estimated_end, r.id), r.cores);
        self.by_id.insert(r.id, r);
    }

    pub(crate) fn remove(&mut self, id: JobId) -> Option<RunningJob> {
        let r = self.by_id.remove(&id)?;
        self.by_end.remove(&(r.estimated_end, r.id));
        Some(r)
    }

    /// Running jobs in ascending `(estimated_end, id)` order.
    pub(crate) fn iter_by_end(&self) -> impl Iterator<Item = RunningJob> + '_ {
        self.by_end.iter().map(|(&(end, id), &cores)| RunningJob {
            id,
            cores,
            estimated_end: end,
        })
    }
}

/// The per-site batch scheduler interface.
///
/// Protocol (enforced by the driver in `tg-core`):
/// 1. [`submit`](BatchScheduler::submit) when a job arrives;
/// 2. [`on_complete`](BatchScheduler::on_complete) when a running job ends;
/// 3. after any of the above — and at
///    [`next_wakeup`](BatchScheduler::next_wakeup) instants —
///    [`make_decisions`](BatchScheduler::make_decisions), acquiring cluster
///    cores for every job returned.
pub trait BatchScheduler: Send {
    /// Scheduler name for reports.
    fn name(&self) -> &'static str;

    /// Enqueue a job at `now`.
    fn submit(&mut self, now: SimTime, job: Job);

    /// Notify that running job `id` completed at `now`.
    fn on_complete(&mut self, now: SimTime, id: JobId);

    /// Start whatever should start now. Implementations must acquire cores
    /// from `cluster` for each returned job. `core_speed` converts the job's
    /// reference estimate into machine time.
    fn make_decisions(
        &mut self,
        now: SimTime,
        cluster: &mut Cluster,
        core_speed: f64,
    ) -> Vec<Started>;

    /// Queue length (jobs waiting).
    fn queue_len(&self) -> usize;

    /// Next instant the scheduler wants an unconditional `make_decisions`
    /// call (used by time-triggered policies like weekly drain).
    fn next_wakeup(&self, _now: SimTime) -> Option<SimTime> {
        None
    }

    /// Advance notice of a site outage at `Some(at)`: until the notice is
    /// lifted (`None`, on recovery) the scheduler should avoid starting work
    /// it estimates would still be running at `at` — a graceful drain.
    /// Default: ignore the notice (the fault layer will kill running work at
    /// the outage instant regardless).
    fn drain_notice(&mut self, _at: Option<SimTime>) {}

    /// Jobs started out of FIFO order by backfilling so far (observability
    /// counter; policies without a backfill phase report 0).
    fn backfills(&self) -> u64 {
        0
    }

    /// Completed drain phases so far (observability counter; policies
    /// without a drain mechanism report 0).
    fn drains(&self) -> u64 {
        0
    }
}

/// Closed enumeration of the batch schedulers, for configs and sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum SchedulerKind {
    /// Strict first-come-first-served.
    Fcfs,
    /// EASY backfill (one reservation).
    Easy,
    /// Conservative backfill (all reservations).
    Conservative,
    /// Weekly-drain capability policy over EASY.
    WeeklyDrain,
    /// Weekly drain without pre-drain filling (stop-the-world baseline for
    /// the A2 ablation).
    NaiveDrain,
    /// EASY backfill over a fair-share-ordered queue (one-week usage decay).
    FairshareEasy,
}

impl SchedulerKind {
    /// All kinds, for sweeps.
    pub const ALL: [SchedulerKind; 6] = [
        SchedulerKind::Fcfs,
        SchedulerKind::Easy,
        SchedulerKind::Conservative,
        SchedulerKind::WeeklyDrain,
        SchedulerKind::NaiveDrain,
        SchedulerKind::FairshareEasy,
    ];

    /// Instantiate the scheduler.
    pub fn build(self, machine_cores: usize) -> Box<dyn BatchScheduler> {
        match self {
            SchedulerKind::Fcfs => Box::new(crate::fcfs::Fcfs::new()),
            SchedulerKind::Easy => Box::new(crate::easy::EasyBackfill::new()),
            SchedulerKind::Conservative => {
                Box::new(crate::conservative::ConservativeBackfill::new())
            }
            SchedulerKind::WeeklyDrain => Box::new(crate::drain::WeeklyDrain::new(
                crate::easy::EasyBackfill::new(),
                SimDuration::from_weeks(1),
                machine_cores,
            )),
            SchedulerKind::NaiveDrain => Box::new(
                crate::drain::WeeklyDrain::new(
                    crate::easy::EasyBackfill::new(),
                    SimDuration::from_weeks(1),
                    machine_cores,
                )
                .with_predrain_fill(false),
            ),
            SchedulerKind::FairshareEasy => Box::new(crate::fairshare_easy::FairshareEasy::new(
                SimDuration::from_weeks(1),
            )),
        }
    }

    /// Instantiate the retained naive (pre-optimization) implementation —
    /// the differential-test oracle of [`crate::reference`]. Same decisions
    /// as [`SchedulerKind::build`], worse asymptotics; meant for tests and
    /// benchmarks only.
    pub fn build_reference(self, machine_cores: usize) -> Box<dyn BatchScheduler> {
        use crate::reference::*;
        match self {
            SchedulerKind::Fcfs => Box::new(NaiveFcfs::new()),
            SchedulerKind::Easy => Box::new(NaiveEasy::new()),
            SchedulerKind::Conservative => Box::new(NaiveConservative::new()),
            SchedulerKind::WeeklyDrain => Box::new(NaiveWeeklyDrain::new(
                SimDuration::from_weeks(1),
                machine_cores,
            )),
            SchedulerKind::NaiveDrain => Box::new(
                NaiveWeeklyDrain::new(SimDuration::from_weeks(1), machine_cores)
                    .with_predrain_fill(false),
            ),
            SchedulerKind::FairshareEasy => {
                Box::new(NaiveFairshareEasy::new(SimDuration::from_weeks(1)))
            }
        }
    }

    /// Stable short name.
    pub fn name(self) -> &'static str {
        match self {
            SchedulerKind::Fcfs => "fcfs",
            SchedulerKind::Easy => "easy",
            SchedulerKind::Conservative => "conservative",
            SchedulerKind::WeeklyDrain => "weekly-drain",
            SchedulerKind::NaiveDrain => "naive-drain",
            SchedulerKind::FairshareEasy => "fairshare-easy",
        }
    }
}

/// Wait attribution for a job starting at `now`: a job that starts at its
/// submission instant never waited ([`WaitCause::Immediate`]); otherwise the
/// caller's `delayed` cause — the policy-specific reason the start was
/// pushed past submission — stands.
///
/// Schedulers see the job's *routed* submit time, which is also when their
/// first decision round over the job runs, so `submit_time >= now` exactly
/// captures "started at the first opportunity".
pub(crate) fn attribute(now: SimTime, job: &Job, delayed: WaitCause) -> WaitCause {
    if job.submit_time >= now {
        WaitCause::Immediate
    } else {
        delayed
    }
}

/// Scheduler-side estimate of a job's runtime on a machine with relative
/// `core_speed` (always based on the *estimate*, never the true runtime —
/// schedulers don't get to peek).
pub(crate) fn estimated_runtime(job: &Job, core_speed: f64) -> SimDuration {
    job.estimate.mul_f64(1.0 / core_speed.max(1e-9))
}

/// Shared helper: earliest time at which `cores_needed` cores will be free,
/// given current free cores and the running set (by estimates). Returns
/// `now` if they are free already.
///
/// This is the "shadow time" computation at the heart of every backfill
/// variant.
pub(crate) fn earliest_fit(
    now: SimTime,
    free_cores: usize,
    cores_needed: usize,
    running: &RunningSet,
) -> SimTime {
    if cores_needed <= free_cores {
        return now;
    }
    let mut free = free_cores;
    for r in running.iter_by_end() {
        free += r.cores;
        if free >= cores_needed {
            return r.estimated_end.max(now);
        }
    }
    // Unreachable if the job fits the machine (total cores = free + running).
    SimTime::MAX
}

/// Cores free at instant `at ≥ now`: the currently free pool plus every
/// running job estimated (clamped to `now`) to have completed by then.
///
/// Early exit is sound because `at ≥ now` makes `end.max(now) ≤ at`
/// equivalent to `end ≤ at`, and the set iterates by ascending raw end.
pub(crate) fn free_at(now: SimTime, free_cores: usize, at: SimTime, running: &RunningSet) -> usize {
    debug_assert!(at >= now, "free_at queries the future");
    let mut free = free_cores;
    for r in running.iter_by_end() {
        if r.estimated_end.max(now) > at {
            break;
        }
        free += r.cores;
    }
    free
}

#[cfg(test)]
mod tests {
    use super::*;
    use tg_workload::{ProjectId, UserId};

    fn running(id: usize, cores: usize, end_s: u64) -> RunningJob {
        RunningJob {
            id: JobId(id),
            cores,
            estimated_end: SimTime::from_secs(end_s),
        }
    }

    fn set(jobs: &[RunningJob]) -> RunningSet {
        let mut s = RunningSet::new();
        for &r in jobs {
            s.insert(r);
        }
        s
    }

    #[test]
    fn earliest_fit_now_when_free() {
        assert_eq!(
            earliest_fit(SimTime::from_secs(5), 10, 8, &set(&[])),
            SimTime::from_secs(5)
        );
    }

    #[test]
    fn earliest_fit_waits_for_enough_completions() {
        let r = set(&[running(0, 4, 100), running(1, 4, 50), running(2, 2, 200)]);
        // free 0, need 6: at t=50 free 4; at t=100 free 8 ≥ 6.
        assert_eq!(
            earliest_fit(SimTime::ZERO, 0, 6, &r),
            SimTime::from_secs(100)
        );
        // need 4: satisfied at first completion.
        assert_eq!(
            earliest_fit(SimTime::ZERO, 0, 4, &r),
            SimTime::from_secs(50)
        );
    }

    #[test]
    fn earliest_fit_clamps_past_estimates_to_now() {
        // A running job whose estimate already elapsed (overrun) still counts
        // as ending "now or later", never in the past.
        let r = set(&[running(0, 8, 10)]);
        let t = earliest_fit(SimTime::from_secs(100), 0, 8, &r);
        assert_eq!(t, SimTime::from_secs(100));
    }

    #[test]
    fn earliest_fit_unsatisfiable_is_max() {
        let r = set(&[running(0, 2, 10)]);
        assert_eq!(earliest_fit(SimTime::ZERO, 1, 10, &r), SimTime::MAX);
    }

    #[test]
    fn free_at_counts_clamped_completions_up_to_the_instant() {
        let r = set(&[running(0, 4, 100), running(1, 4, 50), running(2, 2, 200)]);
        assert_eq!(free_at(SimTime::ZERO, 0, SimTime::from_secs(49), &r), 0);
        assert_eq!(free_at(SimTime::ZERO, 0, SimTime::from_secs(50), &r), 4);
        assert_eq!(free_at(SimTime::ZERO, 0, SimTime::from_secs(100), &r), 8);
        assert_eq!(free_at(SimTime::ZERO, 0, SimTime::MAX, &r), 10);
        // Overrun jobs (raw end in the past) clamp to `now` and count.
        let late = set(&[running(0, 8, 10)]);
        let now = SimTime::from_secs(100);
        assert_eq!(free_at(now, 1, now, &late), 9);
    }

    #[test]
    fn running_set_remove_keeps_both_views_consistent() {
        let mut s = set(&[running(0, 4, 100), running(1, 2, 50)]);
        let r = s.remove(JobId(1)).expect("present");
        assert_eq!(r.cores, 2);
        assert!(s.remove(JobId(1)).is_none(), "second remove is a no-op");
        let ends: Vec<_> = s.iter_by_end().map(|r| r.id).collect();
        assert_eq!(ends, vec![JobId(0)]);
    }

    #[test]
    fn estimated_runtime_scales() {
        let j = Job::batch(
            JobId(0),
            UserId(0),
            ProjectId(0),
            SimTime::ZERO,
            4,
            SimDuration::from_secs(100),
        )
        .with_estimate(SimDuration::from_secs(200));
        assert_eq!(estimated_runtime(&j, 1.0), SimDuration::from_secs(200));
        assert_eq!(estimated_runtime(&j, 2.0), SimDuration::from_secs(100));
    }

    #[test]
    fn kinds_build_and_name() {
        for k in SchedulerKind::ALL {
            let s = k.build(1024);
            assert!(!s.name().is_empty());
            assert_eq!(s.queue_len(), 0);
        }
        assert_eq!(SchedulerKind::Easy.name(), "easy");
    }
}
