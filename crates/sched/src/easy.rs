//! EASY backfill (Lifka 1995).
//!
//! The queue head gets a *reservation* at the earliest instant enough cores
//! will be free (by running-job estimates). Any other queued job may start
//! immediately if it fits in the currently free cores **and** doesn't delay
//! that reservation — either because it will finish (by estimate) before the
//! reservation time, or because it only uses cores the reservation doesn't
//! need ("extra" cores).
//!
//! EASY is what most TeraGrid-era sites actually ran, and is the scheduler
//! the F3 wait-time experiment centers on.

use crate::backfill_queue::{BackfillQueue, ALIVE_LIMIT};
use crate::queue::{
    attribute, earliest_fit, estimated_runtime, free_at, BatchScheduler, RunningJob, RunningSet,
    Started,
};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use tg_des::span::WaitCause;
use tg_des::SimTime;
use tg_model::Cluster;
use tg_workload::{Job, JobId};

/// EASY backfill scheduler.
#[derive(Debug, Default)]
pub struct EasyBackfill {
    queue: BackfillQueue,
    running: RunningSet,
    backfilled: u64,
    /// Armed outage notice: don't start work estimated to outlive this.
    outage: Option<SimTime>,
}

impl EasyBackfill {
    /// An empty EASY scheduler.
    pub fn new() -> Self {
        EasyBackfill::default()
    }
}

/// Decision pass under a drain horizon (an armed outage notice, or the
/// weekly-drain wall): start queued jobs in order whenever they fit *and*
/// are estimated to finish before `horizon`. No head reservation — the head
/// may be exactly the job that cannot finish in time, and reserving cores
/// for it would idle the machine for work the drain will stop anyway.
pub(crate) fn drain_pass(
    queue: &mut BackfillQueue,
    running: &mut RunningSet,
    now: SimTime,
    cluster: &mut Cluster,
    core_speed: f64,
    horizon: SimTime,
    started: &mut Vec<Started>,
) {
    queue.integrate(core_speed);
    // Jobs need ≥1 core, so a saturated cluster can start nothing: the scan
    // below would pick zero jobs. Skipping it changes no decision.
    if cluster.free_cores() == 0 {
        return;
    }
    let mut picked = Vec::new();
    for (seq, job) in queue.iter() {
        if cluster.can_fit(job.cores) && now + estimated_runtime(job, core_speed) <= horizon {
            assert!(cluster.acquire(now, job.cores), "can_fit said yes");
            picked.push(seq);
        }
    }
    for seq in picked {
        let job = queue.remove(seq);
        record_start(
            now,
            core_speed,
            job,
            WaitCause::DrainWindow,
            running,
            started,
        );
    }
}

/// Start `job` on `cluster`, recording it in `running` and `out`. `delayed`
/// is the wait cause attributed when the job did not start at submission
/// ([`attribute`] downgrades it to `Immediate` otherwise).
pub(crate) fn start_job(
    now: SimTime,
    cluster: &mut Cluster,
    core_speed: f64,
    job: Job,
    delayed: WaitCause,
    running: &mut RunningSet,
    out: &mut Vec<Started>,
) {
    assert!(cluster.acquire(now, job.cores), "caller checked fit");
    record_start(now, core_speed, job, delayed, running, out);
}

/// The bookkeeping half of [`start_job`]: record `job` as running and
/// started. The caller has already acquired its cores (scan-then-compact
/// passes acquire during the scan so later decisions see the updated free
/// pool, and record here during the single compaction drain).
pub(crate) fn record_start(
    now: SimTime,
    core_speed: f64,
    job: Job,
    delayed: WaitCause,
    running: &mut RunningSet,
    out: &mut Vec<Started>,
) {
    let estimated_end = now + estimated_runtime(&job, core_speed);
    let cause = attribute(now, &job, delayed);
    running.insert(RunningJob {
        id: job.id,
        cores: job.cores,
        estimated_end,
    });
    out.push(Started {
        job,
        estimated_end,
        cause,
    });
}

/// Remove the queue entries at `picked` (ascending indices whose cores the
/// scan already acquired) in one O(queue) compaction drain, recording each
/// as started in queue order — the same start order the old per-job
/// `VecDeque::remove` produced, without its O(n) shift per start. No-op
/// (and no reallocation) when nothing was picked.
pub(crate) fn compact_starts(
    queue: &mut VecDeque<Job>,
    picked: &[usize],
    now: SimTime,
    core_speed: f64,
    delayed: WaitCause,
    running: &mut RunningSet,
    out: &mut Vec<Started>,
) {
    if picked.is_empty() {
        return;
    }
    // Few picks in a long queue: point removals (cost min(i, n-i) each, no
    // allocation) beat rebuilding. Many picks: one drain-and-rebuild pass.
    if picked.len() * 8 < queue.len() {
        for (k, &i) in picked.iter().enumerate() {
            let job = queue.remove(i - k).expect("picked index valid");
            record_start(now, core_speed, job, delayed, running, out);
        }
        return;
    }
    let mut next = picked.iter().copied().peekable();
    let mut rest = VecDeque::with_capacity(queue.len() - picked.len());
    for (i, job) in queue.drain(..).enumerate() {
        if next.peek() == Some(&i) {
            next.next();
            record_start(now, core_speed, job, delayed, running, out);
        } else {
            rest.push_back(job);
        }
    }
    *queue = rest;
}

/// One EASY decision pass over an indexed queue: FCFS starts, head
/// reservation, then reservation-respecting backfill. Shared with the
/// weekly-drain policy's normal phase. Every Phase-3 start (a job
/// overtaking the blocked head) bumps `backfills`.
///
/// Phase 3 visits candidates through the per-width lanes of
/// [`BackfillQueue`] instead of walking the whole queue: lanes wider than
/// the free pool are never consulted (free cores only shrink while
/// picking), and a lane wider than the remaining `extra` yields only jobs
/// short enough to finish before the reservation. A min-heap merges the
/// lanes back into global arrival order, so the decisions — picks, start
/// order, core/extra accounting — are bit-identical to the naive walk that
/// [`crate::reference::NaiveEasy`] retains (the differential suite proves
/// it). Cost per pass: O((picks + distinct widths) · log queue).
pub(crate) fn easy_pass(
    queue: &mut BackfillQueue,
    running: &mut RunningSet,
    now: SimTime,
    cluster: &mut Cluster,
    core_speed: f64,
    started: &mut Vec<Started>,
    backfills: &mut u64,
) {
    queue.integrate(core_speed);
    // Phase 1: start queue heads FCFS-style while they fit.
    while let Some(head) = queue.front() {
        if !cluster.can_fit(head.cores) {
            break;
        }
        let job = queue.pop_front().expect("peeked");
        // A head that had to wait was blocked behind earlier work.
        start_job(
            now,
            cluster,
            core_speed,
            job,
            WaitCause::AheadInQueue,
            running,
            started,
        );
    }
    let Some(head) = queue.front() else {
        return;
    };
    // Saturated cluster: every queued job needs ≥1 core, so neither the
    // reservation (pure computation) nor the backfill scan can start
    // anything — skip both. Decisions are untouched; only the walk that
    // would have picked nothing is avoided.
    if cluster.free_cores() == 0 {
        return;
    }
    // Phase 2: reservation for the (blocked) head.
    let shadow = earliest_fit(now, cluster.free_cores(), head.cores, running);
    // Cores free at the shadow time beyond what the head needs: a backfilled
    // job running past the shadow may use only these.
    let head_cores = head.cores;
    let free_at_shadow = free_at(now, cluster.free_cores(), shadow, running);
    let mut extra = free_at_shadow.saturating_sub(head_cores);

    // Phase 3: backfill in arrival order via the width lanes. A job may
    // start if it fits the free cores and either finishes (by estimate)
    // before the reservation or uses only `extra` cores. `shadow ≥ now`
    // always (earliest_fit clamps), so `est ≤ shadow − now` in integer
    // microseconds is exactly the naive `now + est ≤ shadow` test.
    let head_seq = queue.head_seq().expect("head exists");
    let short_limit = shadow.saturating_since(now).as_micros() as u128;
    // A lane no wider than `extra` may yield any live job; a wider lane
    // only jobs that finish before the reservation.
    let lane_limit = |w: usize, extra: usize| {
        if w <= extra {
            ALIVE_LIMIT
        } else {
            short_limit
        }
    };
    // One in-flight candidate per lane, merged by (seq) = arrival order.
    let mut heap: BinaryHeap<Reverse<(u64, usize, usize)>> = BinaryHeap::new();
    for (w, lane) in queue.lanes_up_to(cluster.free_cores()) {
        if let Some(i) = lane.first_le(0, lane_limit(w, extra)) {
            heap.push(Reverse((lane.seq_at(i), w, i)));
        }
    }
    let mut picked: Vec<u64> = Vec::new();
    while let Some(Reverse((seq, w, i))) = heap.pop() {
        if !cluster.can_fit(w) {
            // Free cores only shrink during the pass: this lane is done.
            continue;
        }
        let lane = queue.lane(w);
        if seq == head_seq {
            // The head holds the reservation; it never backfills.
            if let Some(n) = lane.first_le(i + 1, lane_limit(w, extra)) {
                heap.push(Reverse((lane.seq_at(n), w, n)));
            }
            continue;
        }
        if lane.est_at(i) > short_limit {
            // Runs past the reservation: only `extra` cores may serve it.
            if w > extra {
                // Candidate staled by a shrunk `extra`: from here this lane
                // can only start reservation-safe (short) jobs.
                if let Some(n) = lane.first_le(i + 1, short_limit) {
                    heap.push(Reverse((lane.seq_at(n), w, n)));
                }
                continue;
            }
            extra -= w;
        }
        assert!(cluster.acquire(now, w), "can_fit said yes");
        picked.push(seq);
        *backfills += 1;
        if let Some(n) = lane.first_le(i + 1, lane_limit(w, extra)) {
            heap.push(Reverse((lane.seq_at(n), w, n)));
        }
    }
    // Overtaking jobs waited only until a hole opened up. Removal is
    // deferred so lane slots stay stable during the scan; `picked` is in
    // arrival order, preserving the naive start order.
    for seq in picked {
        let job = queue.remove(seq);
        record_start(
            now,
            core_speed,
            job,
            WaitCause::BackfillHole,
            running,
            started,
        );
    }
}

/// The [`easy_pass`] decision logic over a plain `VecDeque` — for
/// schedulers whose queue order is rebuilt per pass (fair-share re-ranks by
/// decayed priority each round), where a persistent arrival-order index
/// cannot amortize. Decisions are identical to `easy_pass` on the same
/// queue order.
pub(crate) fn easy_pass_unindexed(
    queue: &mut VecDeque<Job>,
    running: &mut RunningSet,
    now: SimTime,
    cluster: &mut Cluster,
    core_speed: f64,
    started: &mut Vec<Started>,
    backfills: &mut u64,
) {
    // Phase 1: start queue heads FCFS-style while they fit.
    while let Some(head) = queue.front() {
        if !cluster.can_fit(head.cores) {
            break;
        }
        let job = queue.pop_front().expect("peeked");
        start_job(
            now,
            cluster,
            core_speed,
            job,
            WaitCause::AheadInQueue,
            running,
            started,
        );
    }
    let Some(head) = queue.front() else {
        return;
    };
    if cluster.free_cores() == 0 {
        return;
    }
    // Phase 2: reservation for the (blocked) head.
    let shadow = earliest_fit(now, cluster.free_cores(), head.cores, running);
    let free_at_shadow = free_at(now, cluster.free_cores(), shadow, running);
    let head_cores = head.cores;
    let mut extra = free_at_shadow.saturating_sub(head_cores);

    // Phase 3: backfill the rest of the queue in order.
    let mut picked = Vec::new();
    for (i, job) in queue.iter().enumerate().skip(1) {
        if !cluster.can_fit(job.cores) {
            continue;
        }
        let est_end = now + estimated_runtime(job, core_speed);
        if est_end > shadow {
            if job.cores > extra {
                continue;
            }
            extra -= job.cores;
        }
        assert!(cluster.acquire(now, job.cores), "can_fit said yes");
        picked.push(i);
    }
    *backfills += picked.len() as u64;
    compact_starts(
        queue,
        &picked,
        now,
        core_speed,
        WaitCause::BackfillHole,
        running,
        started,
    );
}

impl BatchScheduler for EasyBackfill {
    fn name(&self) -> &'static str {
        "easy"
    }

    fn submit(&mut self, _now: SimTime, job: Job) {
        self.queue.push_back(job);
    }

    fn on_complete(&mut self, _now: SimTime, id: JobId) {
        self.running.remove(id);
    }

    fn make_decisions(
        &mut self,
        now: SimTime,
        cluster: &mut Cluster,
        core_speed: f64,
    ) -> Vec<Started> {
        let mut started = Vec::new();
        if let Some(horizon) = self.outage {
            drain_pass(
                &mut self.queue,
                &mut self.running,
                now,
                cluster,
                core_speed,
                horizon,
                &mut started,
            );
        } else {
            easy_pass(
                &mut self.queue,
                &mut self.running,
                now,
                cluster,
                core_speed,
                &mut started,
                &mut self.backfilled,
            );
        }
        started
    }

    fn queue_len(&self) -> usize {
        self.queue.len()
    }

    fn backfills(&self) -> u64 {
        self.backfilled
    }

    fn drain_notice(&mut self, at: Option<SimTime>) {
        self.outage = at;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tg_des::SimDuration;
    use tg_workload::{ProjectId, UserId};

    fn job(id: usize, cores: usize, secs: u64) -> Job {
        Job::batch(
            JobId(id),
            UserId(0),
            ProjectId(0),
            SimTime::ZERO,
            cores,
            SimDuration::from_secs(secs),
        )
    }

    /// The canonical EASY scenario: a blocked wide head plus a short narrow
    /// job that finishes before the reservation → backfills.
    #[test]
    fn short_job_backfills_ahead_of_blocked_head() {
        let mut s = EasyBackfill::new();
        let mut c = Cluster::new(SimTime::ZERO, 10);
        s.submit(SimTime::ZERO, job(0, 6, 1000)); // starts
        s.make_decisions(SimTime::ZERO, &mut c, 1.0);
        s.submit(SimTime::ZERO, job(1, 8, 100)); // blocked head → reservation at t=1000
        s.submit(SimTime::ZERO, job(2, 4, 500)); // fits free 4, ends 500 ≤ 1000 → backfill
        let started = s.make_decisions(SimTime::ZERO, &mut c, 1.0);
        assert_eq!(started.len(), 1);
        assert_eq!(started[0].job.id, JobId(2));
        assert_eq!(s.queue_len(), 1, "head still waits");
    }

    #[test]
    fn backfill_may_not_delay_the_reservation() {
        let mut s = EasyBackfill::new();
        let mut c = Cluster::new(SimTime::ZERO, 10);
        s.submit(SimTime::ZERO, job(0, 6, 1000));
        s.make_decisions(SimTime::ZERO, &mut c, 1.0);
        s.submit(SimTime::ZERO, job(1, 8, 100)); // reservation at t=1000 needs 8 cores
                                                 // Runs past the shadow and would eat cores the reservation needs
                                                 // (free at shadow = 10, extra = 2 < 4):
        s.submit(SimTime::ZERO, job(2, 4, 5000));
        let started = s.make_decisions(SimTime::ZERO, &mut c, 1.0);
        assert!(started.is_empty(), "long wide job must not backfill");
    }

    #[test]
    fn long_narrow_job_backfills_into_extra_cores() {
        let mut s = EasyBackfill::new();
        let mut c = Cluster::new(SimTime::ZERO, 10);
        s.submit(SimTime::ZERO, job(0, 6, 1000));
        s.make_decisions(SimTime::ZERO, &mut c, 1.0);
        s.submit(SimTime::ZERO, job(1, 8, 100)); // extra = 10 - 8 = 2
        s.submit(SimTime::ZERO, job(2, 2, 9999)); // narrow enough for extra
        let started = s.make_decisions(SimTime::ZERO, &mut c, 1.0);
        assert_eq!(started.len(), 1);
        assert_eq!(started[0].job.id, JobId(2));
    }

    #[test]
    fn extra_cores_are_consumed_by_backfills() {
        let mut s = EasyBackfill::new();
        let mut c = Cluster::new(SimTime::ZERO, 10);
        s.submit(SimTime::ZERO, job(0, 6, 1000));
        s.make_decisions(SimTime::ZERO, &mut c, 1.0);
        s.submit(SimTime::ZERO, job(1, 8, 100));
        s.submit(SimTime::ZERO, job(2, 2, 9999)); // takes both extra cores
        s.submit(SimTime::ZERO, job(3, 2, 9999)); // no extra left → waits
        let started = s.make_decisions(SimTime::ZERO, &mut c, 1.0);
        assert_eq!(started.len(), 1);
        assert_eq!(started[0].job.id, JobId(2));
        assert_eq!(s.queue_len(), 2);
    }

    #[test]
    fn reservation_honored_on_completion() {
        let mut s = EasyBackfill::new();
        let mut c = Cluster::new(SimTime::ZERO, 10);
        s.submit(SimTime::ZERO, job(0, 6, 1000));
        let st = s.make_decisions(SimTime::ZERO, &mut c, 1.0);
        s.submit(SimTime::ZERO, job(1, 8, 100));
        s.make_decisions(SimTime::ZERO, &mut c, 1.0);
        // Head's reservation comes due.
        let t = SimTime::from_secs(1000);
        c.release(t, 6);
        s.on_complete(t, st[0].job.id);
        let started = s.make_decisions(t, &mut c, 1.0);
        assert_eq!(started.len(), 1);
        assert_eq!(started[0].job.id, JobId(1));
        assert_eq!(
            started[0].cause,
            tg_des::span::WaitCause::AheadInQueue,
            "delayed head start is attributed to queue order"
        );
    }

    #[test]
    fn fifo_among_backfill_candidates() {
        let mut s = EasyBackfill::new();
        let mut c = Cluster::new(SimTime::ZERO, 10);
        s.submit(SimTime::ZERO, job(0, 6, 1000));
        s.make_decisions(SimTime::ZERO, &mut c, 1.0);
        s.submit(SimTime::ZERO, job(1, 8, 100));
        s.submit(SimTime::ZERO, job(2, 3, 500));
        s.submit(SimTime::ZERO, job(3, 3, 500)); // only one of 2,3 fits (free=4)
        let started = s.make_decisions(SimTime::ZERO, &mut c, 1.0);
        assert_eq!(started.len(), 1);
        assert_eq!(started[0].job.id, JobId(2), "earlier candidate wins");
    }

    #[test]
    fn wait_causes_distinguish_immediate_from_backfill() {
        use tg_des::span::WaitCause;
        let mut s = EasyBackfill::new();
        let mut c = Cluster::new(SimTime::ZERO, 10);
        s.submit(SimTime::ZERO, job(0, 6, 1000));
        let st = s.make_decisions(SimTime::ZERO, &mut c, 1.0);
        assert_eq!(st[0].cause, WaitCause::Immediate, "started at submission");
        s.submit(SimTime::ZERO, job(1, 8, 100)); // blocked head
        s.submit(SimTime::ZERO, job(2, 4, 500));
        // Decision round later than submission: the overtake is a backfill
        // and the wait is attributed to the hole that finally opened.
        let st = s.make_decisions(SimTime::from_secs(5), &mut c, 1.0);
        assert_eq!(st.len(), 1);
        assert_eq!(st[0].job.id, JobId(2));
        assert_eq!(st[0].cause, WaitCause::BackfillHole);
    }

    #[test]
    fn drain_notice_blocks_jobs_that_would_outlive_the_outage() {
        use tg_des::span::WaitCause;
        let mut s = EasyBackfill::new();
        let mut c = Cluster::new(SimTime::ZERO, 10);
        s.drain_notice(Some(SimTime::from_secs(300)));
        s.submit(SimTime::ZERO, job(0, 4, 1000)); // would outlive the outage
        s.submit(SimTime::ZERO, job(1, 4, 100)); // finishes in time
        let started = s.make_decisions(SimTime::from_secs(5), &mut c, 1.0);
        assert_eq!(started.len(), 1);
        assert_eq!(started[0].job.id, JobId(1), "only the short job starts");
        assert_eq!(started[0].cause, WaitCause::DrainWindow);
        assert_eq!(s.queue_len(), 1);
        // Lifting the notice restores normal EASY behavior.
        s.drain_notice(None);
        let started = s.make_decisions(SimTime::from_secs(10), &mut c, 1.0);
        assert_eq!(started.len(), 1);
        assert_eq!(started[0].job.id, JobId(0));
    }

    #[test]
    fn empty_queue_is_a_noop() {
        let mut s = EasyBackfill::new();
        let mut c = Cluster::new(SimTime::ZERO, 4);
        assert!(s.make_decisions(SimTime::ZERO, &mut c, 1.0).is_empty());
    }

    #[test]
    fn backfill_counter_counts_only_overtakes() {
        let mut s = EasyBackfill::new();
        let mut c = Cluster::new(SimTime::ZERO, 10);
        s.submit(SimTime::ZERO, job(0, 6, 1000)); // FCFS start — not a backfill
        s.make_decisions(SimTime::ZERO, &mut c, 1.0);
        assert_eq!(s.backfills(), 0);
        s.submit(SimTime::ZERO, job(1, 8, 100)); // blocked head
        s.submit(SimTime::ZERO, job(2, 4, 500)); // overtakes → backfill
        s.make_decisions(SimTime::ZERO, &mut c, 1.0);
        assert_eq!(s.backfills(), 1);
        assert_eq!(s.drains(), 0, "EASY has no drain mechanism");
    }
}
