//! EASY backfill (Lifka 1995).
//!
//! The queue head gets a *reservation* at the earliest instant enough cores
//! will be free (by running-job estimates). Any other queued job may start
//! immediately if it fits in the currently free cores **and** doesn't delay
//! that reservation — either because it will finish (by estimate) before the
//! reservation time, or because it only uses cores the reservation doesn't
//! need ("extra" cores).
//!
//! EASY is what most TeraGrid-era sites actually ran, and is the scheduler
//! the F3 wait-time experiment centers on.

use crate::queue::{
    attribute, earliest_fit, estimated_runtime, BatchScheduler, RunningJob, Started,
};
use std::collections::VecDeque;
use tg_des::span::WaitCause;
use tg_des::SimTime;
use tg_model::Cluster;
use tg_workload::{Job, JobId};

/// EASY backfill scheduler.
#[derive(Debug, Default)]
pub struct EasyBackfill {
    queue: VecDeque<Job>,
    running: Vec<RunningJob>,
    backfilled: u64,
    /// Armed outage notice: don't start work estimated to outlive this.
    outage: Option<SimTime>,
}

impl EasyBackfill {
    /// An empty EASY scheduler.
    pub fn new() -> Self {
        EasyBackfill::default()
    }
}

/// Decision pass under an armed outage notice: start queued jobs in order
/// whenever they fit *and* are estimated to finish before `horizon`. No
/// head reservation — the head may be exactly the job that cannot finish in
/// time, and reserving cores for it would idle the machine for work the
/// outage will kill anyway.
pub(crate) fn drain_pass(
    queue: &mut VecDeque<Job>,
    running: &mut Vec<RunningJob>,
    now: SimTime,
    cluster: &mut Cluster,
    core_speed: f64,
    horizon: SimTime,
    started: &mut Vec<Started>,
) {
    let mut i = 0;
    while i < queue.len() {
        let job = &queue[i];
        if cluster.can_fit(job.cores) && now + estimated_runtime(job, core_speed) <= horizon {
            let job = queue.remove(i).expect("index valid");
            start_job(
                now,
                cluster,
                core_speed,
                job,
                WaitCause::DrainWindow,
                running,
                started,
            );
            continue; // same index now holds the next job
        }
        i += 1;
    }
}

/// Start `job` on `cluster`, recording it in `running` and `out`. `delayed`
/// is the wait cause attributed when the job did not start at submission
/// ([`attribute`] downgrades it to `Immediate` otherwise).
pub(crate) fn start_job(
    now: SimTime,
    cluster: &mut Cluster,
    core_speed: f64,
    job: Job,
    delayed: WaitCause,
    running: &mut Vec<RunningJob>,
    out: &mut Vec<Started>,
) {
    assert!(cluster.acquire(now, job.cores), "caller checked fit");
    let estimated_end = now + estimated_runtime(&job, core_speed);
    let cause = attribute(now, &job, delayed);
    running.push(RunningJob {
        id: job.id,
        cores: job.cores,
        estimated_end,
    });
    out.push(Started {
        job,
        estimated_end,
        cause,
    });
}

/// One EASY decision pass over `queue`: FCFS starts, head reservation, then
/// reservation-respecting backfill. Shared with the weekly-drain policy's
/// normal phase. Every Phase-3 start (a job overtaking the blocked head)
/// bumps `backfills`.
pub(crate) fn easy_pass(
    queue: &mut VecDeque<Job>,
    running: &mut Vec<RunningJob>,
    now: SimTime,
    cluster: &mut Cluster,
    core_speed: f64,
    started: &mut Vec<Started>,
    backfills: &mut u64,
) {
    // Phase 1: start queue heads FCFS-style while they fit.
    while let Some(head) = queue.front() {
        if !cluster.can_fit(head.cores) {
            break;
        }
        let job = queue.pop_front().expect("peeked");
        // A head that had to wait was blocked behind earlier work.
        start_job(
            now,
            cluster,
            core_speed,
            job,
            WaitCause::AheadInQueue,
            running,
            started,
        );
    }
    let Some(head) = queue.front() else {
        return;
    };
    // Phase 2: reservation for the (blocked) head.
    let shadow = earliest_fit(now, cluster.free_cores(), head.cores, running);
    // Cores free at the shadow time beyond what the head needs: a backfilled
    // job running past the shadow may use only these.
    let free_at_shadow = {
        let mut free = cluster.free_cores();
        for r in running.iter() {
            if r.estimated_end.max(now) <= shadow {
                free += r.cores;
            }
        }
        free
    };
    let head_cores = head.cores;
    let mut extra = free_at_shadow.saturating_sub(head_cores);

    // Phase 3: backfill the rest of the queue in order.
    let mut i = 1; // skip the head
    while i < queue.len() {
        let job = &queue[i];
        if cluster.can_fit(job.cores) {
            let est_end = now + estimated_runtime(job, core_speed);
            let ok = if est_end <= shadow {
                true
            } else {
                job.cores <= extra
            };
            if ok {
                if est_end > shadow {
                    extra -= job.cores;
                }
                let job = queue.remove(i).expect("index valid");
                // An overtaking job waited only until a hole opened up.
                start_job(
                    now,
                    cluster,
                    core_speed,
                    job,
                    WaitCause::BackfillHole,
                    running,
                    started,
                );
                *backfills += 1;
                continue; // same index now holds the next job
            }
        }
        i += 1;
    }
}

impl BatchScheduler for EasyBackfill {
    fn name(&self) -> &'static str {
        "easy"
    }

    fn submit(&mut self, _now: SimTime, job: Job) {
        self.queue.push_back(job);
    }

    fn on_complete(&mut self, _now: SimTime, id: JobId) {
        if let Some(pos) = self.running.iter().position(|r| r.id == id) {
            self.running.swap_remove(pos);
        }
    }

    fn make_decisions(
        &mut self,
        now: SimTime,
        cluster: &mut Cluster,
        core_speed: f64,
    ) -> Vec<Started> {
        let mut started = Vec::new();
        if let Some(horizon) = self.outage {
            drain_pass(
                &mut self.queue,
                &mut self.running,
                now,
                cluster,
                core_speed,
                horizon,
                &mut started,
            );
        } else {
            easy_pass(
                &mut self.queue,
                &mut self.running,
                now,
                cluster,
                core_speed,
                &mut started,
                &mut self.backfilled,
            );
        }
        started
    }

    fn queue_len(&self) -> usize {
        self.queue.len()
    }

    fn backfills(&self) -> u64 {
        self.backfilled
    }

    fn drain_notice(&mut self, at: Option<SimTime>) {
        self.outage = at;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tg_des::SimDuration;
    use tg_workload::{ProjectId, UserId};

    fn job(id: usize, cores: usize, secs: u64) -> Job {
        Job::batch(
            JobId(id),
            UserId(0),
            ProjectId(0),
            SimTime::ZERO,
            cores,
            SimDuration::from_secs(secs),
        )
    }

    /// The canonical EASY scenario: a blocked wide head plus a short narrow
    /// job that finishes before the reservation → backfills.
    #[test]
    fn short_job_backfills_ahead_of_blocked_head() {
        let mut s = EasyBackfill::new();
        let mut c = Cluster::new(SimTime::ZERO, 10);
        s.submit(SimTime::ZERO, job(0, 6, 1000)); // starts
        s.make_decisions(SimTime::ZERO, &mut c, 1.0);
        s.submit(SimTime::ZERO, job(1, 8, 100)); // blocked head → reservation at t=1000
        s.submit(SimTime::ZERO, job(2, 4, 500)); // fits free 4, ends 500 ≤ 1000 → backfill
        let started = s.make_decisions(SimTime::ZERO, &mut c, 1.0);
        assert_eq!(started.len(), 1);
        assert_eq!(started[0].job.id, JobId(2));
        assert_eq!(s.queue_len(), 1, "head still waits");
    }

    #[test]
    fn backfill_may_not_delay_the_reservation() {
        let mut s = EasyBackfill::new();
        let mut c = Cluster::new(SimTime::ZERO, 10);
        s.submit(SimTime::ZERO, job(0, 6, 1000));
        s.make_decisions(SimTime::ZERO, &mut c, 1.0);
        s.submit(SimTime::ZERO, job(1, 8, 100)); // reservation at t=1000 needs 8 cores
                                                 // Runs past the shadow and would eat cores the reservation needs
                                                 // (free at shadow = 10, extra = 2 < 4):
        s.submit(SimTime::ZERO, job(2, 4, 5000));
        let started = s.make_decisions(SimTime::ZERO, &mut c, 1.0);
        assert!(started.is_empty(), "long wide job must not backfill");
    }

    #[test]
    fn long_narrow_job_backfills_into_extra_cores() {
        let mut s = EasyBackfill::new();
        let mut c = Cluster::new(SimTime::ZERO, 10);
        s.submit(SimTime::ZERO, job(0, 6, 1000));
        s.make_decisions(SimTime::ZERO, &mut c, 1.0);
        s.submit(SimTime::ZERO, job(1, 8, 100)); // extra = 10 - 8 = 2
        s.submit(SimTime::ZERO, job(2, 2, 9999)); // narrow enough for extra
        let started = s.make_decisions(SimTime::ZERO, &mut c, 1.0);
        assert_eq!(started.len(), 1);
        assert_eq!(started[0].job.id, JobId(2));
    }

    #[test]
    fn extra_cores_are_consumed_by_backfills() {
        let mut s = EasyBackfill::new();
        let mut c = Cluster::new(SimTime::ZERO, 10);
        s.submit(SimTime::ZERO, job(0, 6, 1000));
        s.make_decisions(SimTime::ZERO, &mut c, 1.0);
        s.submit(SimTime::ZERO, job(1, 8, 100));
        s.submit(SimTime::ZERO, job(2, 2, 9999)); // takes both extra cores
        s.submit(SimTime::ZERO, job(3, 2, 9999)); // no extra left → waits
        let started = s.make_decisions(SimTime::ZERO, &mut c, 1.0);
        assert_eq!(started.len(), 1);
        assert_eq!(started[0].job.id, JobId(2));
        assert_eq!(s.queue_len(), 2);
    }

    #[test]
    fn reservation_honored_on_completion() {
        let mut s = EasyBackfill::new();
        let mut c = Cluster::new(SimTime::ZERO, 10);
        s.submit(SimTime::ZERO, job(0, 6, 1000));
        let st = s.make_decisions(SimTime::ZERO, &mut c, 1.0);
        s.submit(SimTime::ZERO, job(1, 8, 100));
        s.make_decisions(SimTime::ZERO, &mut c, 1.0);
        // Head's reservation comes due.
        let t = SimTime::from_secs(1000);
        c.release(t, 6);
        s.on_complete(t, st[0].job.id);
        let started = s.make_decisions(t, &mut c, 1.0);
        assert_eq!(started.len(), 1);
        assert_eq!(started[0].job.id, JobId(1));
        assert_eq!(
            started[0].cause,
            tg_des::span::WaitCause::AheadInQueue,
            "delayed head start is attributed to queue order"
        );
    }

    #[test]
    fn fifo_among_backfill_candidates() {
        let mut s = EasyBackfill::new();
        let mut c = Cluster::new(SimTime::ZERO, 10);
        s.submit(SimTime::ZERO, job(0, 6, 1000));
        s.make_decisions(SimTime::ZERO, &mut c, 1.0);
        s.submit(SimTime::ZERO, job(1, 8, 100));
        s.submit(SimTime::ZERO, job(2, 3, 500));
        s.submit(SimTime::ZERO, job(3, 3, 500)); // only one of 2,3 fits (free=4)
        let started = s.make_decisions(SimTime::ZERO, &mut c, 1.0);
        assert_eq!(started.len(), 1);
        assert_eq!(started[0].job.id, JobId(2), "earlier candidate wins");
    }

    #[test]
    fn wait_causes_distinguish_immediate_from_backfill() {
        use tg_des::span::WaitCause;
        let mut s = EasyBackfill::new();
        let mut c = Cluster::new(SimTime::ZERO, 10);
        s.submit(SimTime::ZERO, job(0, 6, 1000));
        let st = s.make_decisions(SimTime::ZERO, &mut c, 1.0);
        assert_eq!(st[0].cause, WaitCause::Immediate, "started at submission");
        s.submit(SimTime::ZERO, job(1, 8, 100)); // blocked head
        s.submit(SimTime::ZERO, job(2, 4, 500));
        // Decision round later than submission: the overtake is a backfill
        // and the wait is attributed to the hole that finally opened.
        let st = s.make_decisions(SimTime::from_secs(5), &mut c, 1.0);
        assert_eq!(st.len(), 1);
        assert_eq!(st[0].job.id, JobId(2));
        assert_eq!(st[0].cause, WaitCause::BackfillHole);
    }

    #[test]
    fn drain_notice_blocks_jobs_that_would_outlive_the_outage() {
        use tg_des::span::WaitCause;
        let mut s = EasyBackfill::new();
        let mut c = Cluster::new(SimTime::ZERO, 10);
        s.drain_notice(Some(SimTime::from_secs(300)));
        s.submit(SimTime::ZERO, job(0, 4, 1000)); // would outlive the outage
        s.submit(SimTime::ZERO, job(1, 4, 100)); // finishes in time
        let started = s.make_decisions(SimTime::from_secs(5), &mut c, 1.0);
        assert_eq!(started.len(), 1);
        assert_eq!(started[0].job.id, JobId(1), "only the short job starts");
        assert_eq!(started[0].cause, WaitCause::DrainWindow);
        assert_eq!(s.queue_len(), 1);
        // Lifting the notice restores normal EASY behavior.
        s.drain_notice(None);
        let started = s.make_decisions(SimTime::from_secs(10), &mut c, 1.0);
        assert_eq!(started.len(), 1);
        assert_eq!(started[0].job.id, JobId(0));
    }

    #[test]
    fn empty_queue_is_a_noop() {
        let mut s = EasyBackfill::new();
        let mut c = Cluster::new(SimTime::ZERO, 4);
        assert!(s.make_decisions(SimTime::ZERO, &mut c, 1.0).is_empty());
    }

    #[test]
    fn backfill_counter_counts_only_overtakes() {
        let mut s = EasyBackfill::new();
        let mut c = Cluster::new(SimTime::ZERO, 10);
        s.submit(SimTime::ZERO, job(0, 6, 1000)); // FCFS start — not a backfill
        s.make_decisions(SimTime::ZERO, &mut c, 1.0);
        assert_eq!(s.backfills(), 0);
        s.submit(SimTime::ZERO, job(1, 8, 100)); // blocked head
        s.submit(SimTime::ZERO, job(2, 4, 500)); // overtakes → backfill
        s.make_decisions(SimTime::ZERO, &mut c, 1.0);
        assert_eq!(s.backfills(), 1);
        assert_eq!(s.drains(), 0, "EASY has no drain mechanism");
    }
}
