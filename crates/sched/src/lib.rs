//! # tg-sched — batch, capability, cross-site, and reconfigurable scheduling
//!
//! The queueing dynamics that shape every observable the modality-measurement
//! pipeline reads. Four families:
//!
//! * **Per-site batch schedulers** (all implementing [`BatchScheduler`]):
//!   [`fcfs::Fcfs`] — strict first-come-first-served; [`easy::EasyBackfill`]
//!   — aggressive backfilling with one reservation for the queue head;
//!   [`conservative::ConservativeBackfill`] — a reservation for every queued
//!   job; [`drain::WeeklyDrain`] — the capability policy that force-drains
//!   the machine on a weekly boundary and then runs full-machine "hero" jobs
//!   back-to-back.
//! * **Fair-share priority** ([`fairshare`]) — decayed-usage priorities that
//!   any queue-ordering policy can consume.
//! * **Metascheduling** ([`meta`]) — site selection for jobs that don't pin a
//!   site: random, least-loaded, shortest-ETA, and data-aware policies.
//! * **Reconfigurable-task scheduling** ([`reconf`]) — the extension the
//!   calibration bands call out: an RC-blind baseline that places hardware
//!   tasks like ordinary jobs, and an RC-aware policy that prices
//!   configuration reuse, bitstream caching, and eviction before placing,
//!   and falls back to the software implementation when hardware setup
//!   doesn't pay.
//!
//! Schedulers are *driven*: the simulation loop in `tg-core` calls
//! [`BatchScheduler::submit`] / [`BatchScheduler::on_complete`] and then
//! [`BatchScheduler::make_decisions`]; schedulers never own the event queue,
//! which keeps them unit-testable without a simulator.
//!
//! ```
//! use tg_des::{SimDuration, SimTime};
//! use tg_model::Cluster;
//! use tg_sched::{BatchScheduler, SchedulerKind};
//! use tg_workload::{Job, JobId, ProjectId, UserId};
//!
//! let mut sched = SchedulerKind::Easy.build(64);
//! let mut cluster = Cluster::new(SimTime::ZERO, 64);
//! let job = |id, cores, secs| {
//!     Job::batch(JobId(id), UserId(0), ProjectId(0), SimTime::ZERO, cores,
//!                SimDuration::from_secs(secs))
//! };
//! sched.submit(SimTime::ZERO, job(0, 48, 3_600)); // wide, long
//! sched.submit(SimTime::ZERO, job(1, 32, 60));    // blocked head → reservation
//! sched.submit(SimTime::ZERO, job(2, 16, 600));   // backfills around it
//! let started = sched.make_decisions(SimTime::ZERO, &mut cluster, 1.0);
//! assert_eq!(started.len(), 2); // jobs 0 and 2; job 1 holds its reservation
//! assert_eq!(sched.queue_len(), 1);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub(crate) mod backfill_queue;
pub mod coalloc;
pub mod conservative;
pub mod drain;
pub mod easy;
pub mod fairshare;
pub mod fairshare_easy;
pub mod fcfs;
pub mod meta;
pub mod queue;
pub mod reconf;
pub mod reference;
pub mod reservation;
pub mod retry;

pub use coalloc::{plan_and_reserve, plan_coallocation, CoallocPlan, CoallocRequest};
pub use conservative::{ConservativeBackfill, Profile};
pub use drain::WeeklyDrain;
pub use easy::EasyBackfill;
pub use fairshare_easy::FairshareEasy;
pub use fcfs::Fcfs;
pub use meta::{DataContext, MetaPolicy, SiteView};
pub use queue::{BatchScheduler, SchedulerKind, Started};
pub use reconf::{RcDecision, RcPolicy};
pub use reservation::{Reservation, ReservingConservative};
pub use retry::{RetryBook, RetryPolicy};
