//! Conservative backfill (Mu'alem & Feitelson 2001).
//!
//! Every queued job holds a reservation; a job may move earlier only if it
//! delays *no* reservation. Implemented by rebuilding an availability
//! profile (piecewise-constant free-core function of future time) from the
//! running set on every decision round and greedily placing each queued job
//! at its earliest consistent start. Jobs whose start is *now* actually
//! start. Rebuilding per round is O(queue × segments) — simple, and cheap at
//! the queue lengths grid sites see.

use crate::queue::{attribute, estimated_runtime, BatchScheduler, RunningJob, RunningSet, Started};
use std::collections::VecDeque;
use tg_des::span::WaitCause;
use tg_des::{SimDuration, SimTime};
use tg_model::Cluster;
use tg_workload::{Job, JobId};

/// Piecewise-constant free-core profile over future time.
///
/// `segments[i]` covers `[segments[i].0, segments[i+1].0)`; the last segment
/// extends to infinity. Invariant: times strictly increase.
///
/// Besides backing conservative backfill, the profile is the planning
/// substrate for cross-site co-allocation (see [`crate::coalloc`]).
#[derive(Debug, Clone, PartialEq)]
pub struct Profile {
    segments: Vec<(SimTime, usize)>,
}

impl Profile {
    /// An empty-machine profile: `free` cores available from `now` onward.
    pub fn new(now: SimTime, free: usize) -> Self {
        Profile {
            segments: vec![(now, free)],
        }
    }

    /// Mark `cores` as occupied from the profile's start until `end`
    /// (a running job, from the planner's point of view).
    pub fn occupy_until(&mut self, end: SimTime, cores: usize) {
        let start = self.segments[0].0;
        if end > start {
            // Equivalent to reserving [start, end).
            self.reserve(start, end - start, cores);
        }
    }

    /// Profile starting at `now` with `free` cores, minus each running job's
    /// cores until its estimated end. The running jobs may come in any order
    /// (the profile is a commutative sum of per-job contributions).
    pub(crate) fn from_running<I>(now: SimTime, free: usize, running: I) -> Self
    where
        I: IntoIterator<Item = RunningJob>,
    {
        let mut p = Profile::new(now, free);
        for r in running {
            // Each running job occupies its cores from now until its end.
            let end = r.estimated_end.max(now);
            if end > now {
                p.add_free_at(end, r.cores);
            }
        }
        p
    }

    /// Increase free cores from `at` onward by `cores`.
    fn add_free_at(&mut self, at: SimTime, cores: usize) {
        self.split_at(at);
        for seg in &mut self.segments {
            if seg.0 >= at {
                seg.1 += cores;
            }
        }
    }

    /// Ensure a breakpoint exists at `at` (if within range).
    fn split_at(&mut self, at: SimTime) {
        if at <= self.segments[0].0 {
            return;
        }
        match self.segments.binary_search_by_key(&at, |s| s.0) {
            Ok(_) => {}
            Err(idx) => {
                let free = self.segments[idx - 1].1;
                self.segments.insert(idx, (at, free));
            }
        }
    }

    /// Free cores at instant `t`.
    pub fn free_at(&self, t: SimTime) -> usize {
        match self.segments.binary_search_by_key(&t, |s| s.0) {
            Ok(idx) => self.segments[idx].1,
            Err(0) => self.segments[0].1, // before profile start: treat as start
            Err(idx) => self.segments[idx - 1].1,
        }
    }

    /// Earliest start `t ≥ from` such that `free ≥ cores` throughout
    /// `[t, t + dur)`. Returns [`SimTime::MAX`] if no such start exists
    /// (cores exceed the profile's eventual free count).
    pub fn find_slot(&self, from: SimTime, cores: usize, dur: SimDuration) -> SimTime {
        let mut candidate = from.max(self.segments[0].0);
        'outer: loop {
            let end = candidate + dur;
            for (i, &(seg_start, seg_free)) in self.segments.iter().enumerate() {
                let seg_end = self
                    .segments
                    .get(i + 1)
                    .map(|s| s.0)
                    .unwrap_or(SimTime::MAX);
                if seg_end <= candidate {
                    continue; // segment entirely before the window
                }
                if seg_start >= end {
                    break; // segment entirely after the window
                }
                if seg_free < cores {
                    if seg_end == SimTime::MAX {
                        return SimTime::MAX; // never enough cores
                    }
                    candidate = seg_end;
                    continue 'outer;
                }
            }
            return candidate;
        }
    }

    /// Reserve `cores` during `[t, t + dur)`. Panics if the window lacks
    /// capacity (callers plan with [`Profile::find_slot`] first).
    pub fn reserve(&mut self, t: SimTime, dur: SimDuration, cores: usize) {
        let end = t + dur;
        self.split_at(t);
        self.split_at(end);
        for seg in &mut self.segments {
            if seg.0 >= t && seg.0 < end {
                assert!(seg.1 >= cores, "over-reservation in profile");
                seg.1 -= cores;
            }
        }
    }
}

/// Conservative backfill scheduler.
#[derive(Debug, Default)]
pub struct ConservativeBackfill {
    queue: VecDeque<Job>,
    running: RunningSet,
}

impl ConservativeBackfill {
    /// An empty conservative scheduler.
    pub fn new() -> Self {
        ConservativeBackfill::default()
    }
}

impl BatchScheduler for ConservativeBackfill {
    fn name(&self) -> &'static str {
        "conservative"
    }

    fn submit(&mut self, _now: SimTime, job: Job) {
        self.queue.push_back(job);
    }

    fn on_complete(&mut self, _now: SimTime, id: JobId) {
        self.running.remove(id);
    }

    fn make_decisions(
        &mut self,
        now: SimTime,
        cluster: &mut Cluster,
        core_speed: f64,
    ) -> Vec<Started> {
        let mut profile =
            Profile::from_running(now, cluster.free_cores(), self.running.iter_by_end());
        let mut started = Vec::new();
        let mut remaining = VecDeque::with_capacity(self.queue.len());
        for job in self.queue.drain(..) {
            let dur = estimated_runtime(&job, core_speed);
            let slot = profile.find_slot(now, job.cores, dur);
            if slot == now {
                assert!(cluster.acquire(now, job.cores), "profile said free");
                profile.reserve(now, dur, job.cores);
                let estimated_end = now + dur;
                // Under conservative backfill every delay traces back to the
                // reservations of earlier-arrived jobs.
                let cause = attribute(now, &job, WaitCause::AheadInQueue);
                self.running.insert(RunningJob {
                    id: job.id,
                    cores: job.cores,
                    estimated_end,
                });
                started.push(Started {
                    job,
                    estimated_end,
                    cause,
                });
            } else {
                if slot != SimTime::MAX {
                    profile.reserve(slot, dur, job.cores);
                }
                remaining.push_back(job);
            }
        }
        self.queue = remaining;
        started
    }

    fn queue_len(&self) -> usize {
        self.queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tg_workload::{ProjectId, UserId};

    fn job(id: usize, cores: usize, secs: u64) -> Job {
        Job::batch(
            JobId(id),
            UserId(0),
            ProjectId(0),
            SimTime::ZERO,
            cores,
            SimDuration::from_secs(secs),
        )
    }

    #[test]
    fn profile_construction_and_queries() {
        let running = vec![
            RunningJob {
                id: JobId(0),
                cores: 4,
                estimated_end: SimTime::from_secs(100),
            },
            RunningJob {
                id: JobId(1),
                cores: 2,
                estimated_end: SimTime::from_secs(50),
            },
        ];
        let p = Profile::from_running(SimTime::ZERO, 4, running);
        assert_eq!(p.free_at(SimTime::ZERO), 4);
        assert_eq!(p.free_at(SimTime::from_secs(49)), 4);
        assert_eq!(p.free_at(SimTime::from_secs(50)), 6);
        assert_eq!(p.free_at(SimTime::from_secs(100)), 10);
    }

    #[test]
    fn find_slot_spans_segments() {
        let running = vec![RunningJob {
            id: JobId(0),
            cores: 6,
            estimated_end: SimTime::from_secs(100),
        }];
        let p = Profile::from_running(SimTime::ZERO, 4, running);
        // 4 cores for 50 s fits immediately.
        assert_eq!(
            p.find_slot(SimTime::ZERO, 4, SimDuration::from_secs(50)),
            SimTime::ZERO
        );
        // 6 cores must wait for the completion at t=100.
        assert_eq!(
            p.find_slot(SimTime::ZERO, 6, SimDuration::from_secs(10)),
            SimTime::from_secs(100)
        );
        // 11 cores never fit.
        assert_eq!(
            p.find_slot(SimTime::ZERO, 11, SimDuration::from_secs(1)),
            SimTime::MAX
        );
    }

    #[test]
    fn reserve_blocks_subsequent_slots() {
        let mut p = Profile::from_running(SimTime::ZERO, 10, []);
        p.reserve(SimTime::from_secs(100), SimDuration::from_secs(100), 8);
        // 4 cores for 300 s starting now would overlap the reservation
        // window where only 2 are free.
        assert_eq!(
            p.find_slot(SimTime::ZERO, 4, SimDuration::from_secs(300)),
            SimTime::from_secs(200)
        );
        // 2 cores sneak through the whole window.
        assert_eq!(
            p.find_slot(SimTime::ZERO, 2, SimDuration::from_secs(300)),
            SimTime::ZERO
        );
    }

    #[test]
    fn short_job_backfills_but_reservation_delaying_job_does_not() {
        let mut s = ConservativeBackfill::new();
        let mut c = Cluster::new(SimTime::ZERO, 10);
        s.submit(SimTime::ZERO, job(0, 6, 1000));
        s.make_decisions(SimTime::ZERO, &mut c, 1.0);
        s.submit(SimTime::ZERO, job(1, 8, 100)); // reservation at t=1000
        s.submit(SimTime::ZERO, job(2, 4, 500)); // ends before 1000 → ok
        let started = s.make_decisions(SimTime::ZERO, &mut c, 1.0);
        assert_eq!(started.len(), 1);
        assert_eq!(started[0].job.id, JobId(2));

        // A long 4-core job would collide with job 1's reservation
        // ([1000,1100) has free 10-8=2... after job2 started, profile at
        // [0,500) free 0; job 3 must not start now.
        s.submit(SimTime::ZERO, job(3, 4, 2000));
        let started = s.make_decisions(SimTime::ZERO, &mut c, 1.0);
        assert!(started.is_empty());
    }

    #[test]
    fn conservative_protects_every_reservation_not_just_head() {
        // Machine 10. Running: 10 cores until t=100.
        // Queue: A(10 cores, est 100) reserves [100,200).
        //        B(2, est 100) reserves [200,300).
        //        C(2, est 300): must not delay B; earliest consistent slot
        //        is t=200 (alongside B: free 10-10=0 in [100,200)... wait).
        let mut s = ConservativeBackfill::new();
        let mut c = Cluster::new(SimTime::ZERO, 10);
        s.submit(SimTime::ZERO, job(0, 10, 100));
        let st = s.make_decisions(SimTime::ZERO, &mut c, 1.0);
        assert_eq!(st.len(), 1);
        s.submit(SimTime::ZERO, job(1, 10, 100)); // reserves [100,200)
        s.submit(SimTime::ZERO, job(2, 2, 100)); // reserves [200,300)
        s.submit(SimTime::ZERO, job(3, 2, 300)); // fits [200,500) alongside 2
        let started = s.make_decisions(SimTime::ZERO, &mut c, 1.0);
        assert!(started.is_empty(), "nothing can start while machine full");
        assert_eq!(s.queue_len(), 3);
        // At t=100, job 0 completes; job 1 starts; 2 and 3 wait.
        c.release(SimTime::from_secs(100), 10);
        s.on_complete(SimTime::from_secs(100), JobId(0));
        let started = s.make_decisions(SimTime::from_secs(100), &mut c, 1.0);
        assert_eq!(started.len(), 1);
        assert_eq!(started[0].job.id, JobId(1));
    }

    #[test]
    fn starts_multiple_independent_jobs_in_one_round() {
        let mut s = ConservativeBackfill::new();
        let mut c = Cluster::new(SimTime::ZERO, 10);
        for i in 0..5 {
            s.submit(SimTime::ZERO, job(i, 2, 100));
        }
        let started = s.make_decisions(SimTime::ZERO, &mut c, 1.0);
        assert_eq!(started.len(), 5);
        assert_eq!(c.free_cores(), 0);
    }
}
