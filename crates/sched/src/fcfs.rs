//! Strict first-come-first-served scheduling.
//!
//! The head of the queue starts as soon as it fits; nothing behind it may
//! overtake. Simple, fair, and the utilization floor every backfill variant
//! is measured against.

use crate::queue::{attribute, estimated_runtime, BatchScheduler, RunningJob, RunningSet, Started};
use std::collections::VecDeque;
use tg_des::span::WaitCause;
use tg_des::SimTime;
use tg_model::Cluster;
use tg_workload::{Job, JobId};

/// FCFS scheduler.
#[derive(Debug, Default)]
pub struct Fcfs {
    queue: VecDeque<Job>,
    running: RunningSet,
    /// Armed outage notice: don't start work estimated to outlive this.
    outage: Option<SimTime>,
}

impl Fcfs {
    /// An empty FCFS scheduler.
    pub fn new() -> Self {
        Fcfs::default()
    }
}

impl BatchScheduler for Fcfs {
    fn name(&self) -> &'static str {
        "fcfs"
    }

    fn submit(&mut self, _now: SimTime, job: Job) {
        self.queue.push_back(job);
    }

    fn on_complete(&mut self, _now: SimTime, id: JobId) {
        self.running.remove(id);
    }

    fn make_decisions(
        &mut self,
        now: SimTime,
        cluster: &mut Cluster,
        core_speed: f64,
    ) -> Vec<Started> {
        let mut started = Vec::new();
        while let Some(head) = self.queue.front() {
            if !cluster.can_fit(head.cores) {
                break;
            }
            // Under an outage notice the head also may not start unless it is
            // estimated to finish before the outage. Strict FCFS: nothing
            // overtakes it, so the queue simply waits out the drain.
            if let Some(horizon) = self.outage {
                if now + estimated_runtime(head, core_speed) > horizon {
                    break;
                }
            }
            let job = self.queue.pop_front().expect("peeked");
            assert!(cluster.acquire(now, job.cores), "can_fit said yes");
            let estimated_end = now + estimated_runtime(&job, core_speed);
            // Under strict FCFS a delayed start is always queue-order.
            let cause = attribute(now, &job, WaitCause::AheadInQueue);
            self.running.insert(RunningJob {
                id: job.id,
                cores: job.cores,
                estimated_end,
            });
            started.push(Started {
                job,
                estimated_end,
                cause,
            });
        }
        started
    }

    fn queue_len(&self) -> usize {
        self.queue.len()
    }

    fn drain_notice(&mut self, at: Option<SimTime>) {
        self.outage = at;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tg_des::SimDuration;
    use tg_workload::{ProjectId, UserId};

    fn job(id: usize, cores: usize, secs: u64) -> Job {
        Job::batch(
            JobId(id),
            UserId(0),
            ProjectId(0),
            SimTime::ZERO,
            cores,
            SimDuration::from_secs(secs),
        )
    }

    #[test]
    fn starts_in_order_while_fitting() {
        let mut s = Fcfs::new();
        let mut c = Cluster::new(SimTime::ZERO, 10);
        s.submit(SimTime::ZERO, job(0, 4, 100));
        s.submit(SimTime::ZERO, job(1, 4, 100));
        s.submit(SimTime::ZERO, job(2, 4, 100)); // doesn't fit
        let started = s.make_decisions(SimTime::ZERO, &mut c, 1.0);
        assert_eq!(started.len(), 2);
        assert_eq!(started[0].job.id, JobId(0));
        assert_eq!(started[1].job.id, JobId(1));
        assert_eq!(s.queue_len(), 1);
        assert_eq!(c.free_cores(), 2);
    }

    #[test]
    fn head_blocks_everything_behind_it() {
        let mut s = Fcfs::new();
        let mut c = Cluster::new(SimTime::ZERO, 10);
        s.submit(SimTime::ZERO, job(0, 10, 100)); // full machine
        s.submit(SimTime::ZERO, job(1, 1, 10)); // tiny, would fit — must wait
        let started = s.make_decisions(SimTime::ZERO, &mut c, 1.0);
        assert_eq!(started.len(), 1);
        s.submit(SimTime::ZERO, job(2, 1, 10));
        let started = s.make_decisions(SimTime::ZERO, &mut c, 1.0);
        assert!(started.is_empty(), "FCFS never backfills");
        assert_eq!(s.queue_len(), 2);
    }

    #[test]
    fn completion_frees_the_head() {
        let mut s = Fcfs::new();
        let mut c = Cluster::new(SimTime::ZERO, 10);
        s.submit(SimTime::ZERO, job(0, 10, 100));
        let st = s.make_decisions(SimTime::ZERO, &mut c, 1.0);
        s.submit(SimTime::ZERO, job(1, 6, 50));
        let t1 = SimTime::from_secs(100);
        c.release(t1, 10);
        s.on_complete(t1, st[0].job.id);
        let started = s.make_decisions(t1, &mut c, 1.0);
        assert_eq!(started.len(), 1);
        assert_eq!(started[0].job.id, JobId(1));
        assert_eq!(started[0].estimated_end, SimTime::from_secs(150));
    }

    #[test]
    fn drain_notice_holds_the_head_until_lifted() {
        let mut s = Fcfs::new();
        let mut c = Cluster::new(SimTime::ZERO, 10);
        s.drain_notice(Some(SimTime::from_secs(50)));
        s.submit(SimTime::ZERO, job(0, 2, 100)); // outlives the outage
        s.submit(SimTime::ZERO, job(1, 2, 10)); // would fit, but FCFS never overtakes
        assert!(s.make_decisions(SimTime::ZERO, &mut c, 1.0).is_empty());
        s.drain_notice(None);
        let started = s.make_decisions(SimTime::ZERO, &mut c, 1.0);
        assert_eq!(started.len(), 2);
    }

    #[test]
    fn estimated_end_uses_core_speed() {
        let mut s = Fcfs::new();
        let mut c = Cluster::new(SimTime::ZERO, 4);
        s.submit(SimTime::ZERO, job(0, 2, 100));
        let st = s.make_decisions(SimTime::ZERO, &mut c, 2.0);
        assert_eq!(st[0].estimated_end, SimTime::from_secs(50));
    }
}
