//! Reconfigurable-task scheduling.
//!
//! A task with an [`RcRequirement`] has two implementations: a software
//! version that runs on ordinary cores, and a hardware kernel that runs
//! `speedup`× faster once a fabric region is configured. The scheduler's
//! job is to decide, per task: *which node*, *reuse or reconfigure*, and
//! *hardware or software at all* — trading the reconfiguration pipeline
//! (bitstream transfer + fabric programming) against the kernel speedup.
//!
//! Two poles, as in the reconfigurable-grid simulation literature:
//!
//! * **RC-blind** ([`RcPolicy::BLIND`]): treats RC nodes like ordinary
//!   processors — first node with room wins, hardware is always used,
//!   setup costs are not considered. This is what a traditional grid
//!   scheduler does when pointed at reconfigurable resources.
//! * **RC-aware** ([`RcPolicy::AWARE`]): seeks configuration *reuse* first,
//!   prices bitstream caching and eviction, packs best-fit to limit
//!   fragmentation, and falls back to the software version when hardware
//!   setup doesn't pay (or a deadline demands it).
//!
//! The policy is a pure function of the partition snapshot, so experiments
//! can sweep its knobs ([`Packing`], `seek_reuse`, `cost_aware`)
//! independently — these are exactly the F5–F7/T4 axes.
//!
//! [`RcRequirement`]: tg_workload::RcRequirement

use serde::{Deserialize, Serialize};
use tg_des::{SimDuration, SimTime};
use tg_model::reconf::{HostPlan, RcPartition, ReconfCost};
use tg_model::{ConfigId, ConfigLibrary, NodeId};
use tg_workload::Job;

/// How to choose among nodes that would need a fresh configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum Packing {
    /// Lowest node index with room.
    FirstFit,
    /// Fewest evictions, then smallest leftover free area (tightest fit).
    BestFit,
}

/// A reconfigurable-task scheduling policy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RcPolicy {
    /// Prefer idle regions already configured with the task's kernel.
    pub seek_reuse: bool,
    /// Node-selection rule for fresh configurations.
    pub packing: Packing,
    /// Compare hardware total time against the software version and honor
    /// deadlines; when off, hardware is always chosen if feasible.
    pub cost_aware: bool,
}

impl RcPolicy {
    /// The RC-blind baseline.
    pub const BLIND: RcPolicy = RcPolicy {
        seek_reuse: false,
        packing: Packing::FirstFit,
        cost_aware: false,
    };

    /// The full RC-aware policy.
    pub const AWARE: RcPolicy = RcPolicy {
        seek_reuse: true,
        packing: Packing::BestFit,
        cost_aware: true,
    };

    /// Stable short name for reports.
    pub fn name(&self) -> &'static str {
        match (self.seek_reuse, self.cost_aware, self.packing) {
            (false, false, Packing::FirstFit) => "rc-blind",
            (true, true, Packing::BestFit) => "rc-aware",
            (true, true, Packing::FirstFit) => "rc-aware-ff",
            (true, false, _) => "rc-reuse-only",
            _ => "rc-custom",
        }
    }
}

/// The scheduler's verdict for one task.
#[derive(Debug, Clone, PartialEq)]
pub enum RcDecision {
    /// Commit `plan` on `node` and run the hardware kernel; total setup
    /// latency is `setup` (zero on reuse).
    PlaceHw {
        /// Target node within the partition.
        node: NodeId,
        /// The placement plan to commit.
        plan: HostPlan,
        /// Setup latency before execution starts.
        setup: ReconfCost,
    },
    /// Run the software version on ordinary cores.
    RunSw,
    /// Nothing feasible right now; retry when a region frees up.
    Defer,
}

impl RcPolicy {
    /// Decide placement for `job` (which must carry an RC requirement)
    /// against a partition snapshot. `fetch_time` prices a bitstream fetch
    /// to this partition's site; `core_speed` converts reference runtimes.
    pub fn decide(
        &self,
        job: &Job,
        partition: &RcPartition,
        lib: &ConfigLibrary,
        fetch_time: impl Fn(ConfigId) -> SimDuration,
        now: SimTime,
        core_speed: f64,
    ) -> RcDecision {
        let rc = job.rc.expect("decide() called on a non-RC job");
        let config = rc.config;
        let need_area = lib.get(config).area;
        let sw_runtime = job.runtime_on(core_speed, false);
        let hw_runtime = job.runtime_on(core_speed, true);
        let deadline_abs = rc.deadline.map(|d| job.submit_time + d);

        // Gather feasible plans.
        let mut reuse: Option<NodeId> = None;
        let mut configure: Vec<(NodeId, HostPlan, ReconfCost, usize, u32)> = Vec::new();
        for node in partition.iter() {
            match node.plan(config, lib) {
                HostPlan::Infeasible => {}
                HostPlan::Reuse(rid) => {
                    if reuse.is_none() {
                        reuse = Some(node.id());
                    }
                    // Blind policies treat reuse as just another placement.
                    if !self.seek_reuse {
                        configure.push((
                            node.id(),
                            HostPlan::Reuse(rid),
                            ReconfCost::default(),
                            0,
                            node.free_area(),
                        ));
                    }
                }
                plan @ HostPlan::Configure { .. } => {
                    let cost = node.cost_of(&plan, config, lib, fetch_time(config));
                    let evictions = match &plan {
                        HostPlan::Configure { evict, .. } => evict.len(),
                        _ => 0,
                    };
                    let leftover = node
                        .free_area()
                        .saturating_add(evicted_area(&plan, node, lib))
                        .saturating_sub(need_area);
                    configure.push((node.id(), plan, cost, evictions, leftover));
                }
            }
        }

        // Aware: reuse wins outright (zero setup beats everything).
        let best = if self.seek_reuse {
            if let Some(node_id) = reuse {
                let node = partition.node(node_id);
                let plan = node.plan(config, lib);
                debug_assert!(matches!(plan, HostPlan::Reuse(_)));
                Some((node_id, plan, ReconfCost::default()))
            } else {
                self.pick_configure(configure)
            }
        } else {
            self.pick_configure(configure)
        };

        match best {
            Some((node, plan, setup)) => {
                if !self.cost_aware {
                    return RcDecision::PlaceHw { node, plan, setup };
                }
                let hw_done = now + setup.total() + hw_runtime;
                let sw_done = now + sw_runtime;
                if let Some(deadline) = deadline_abs {
                    match (hw_done <= deadline, sw_done <= deadline) {
                        (true, _) => RcDecision::PlaceHw { node, plan, setup },
                        (false, true) => RcDecision::RunSw,
                        (false, false) => {
                            // Both miss: take the lesser evil.
                            if hw_done <= sw_done {
                                RcDecision::PlaceHw { node, plan, setup }
                            } else {
                                RcDecision::RunSw
                            }
                        }
                    }
                } else if hw_done <= sw_done {
                    RcDecision::PlaceHw { node, plan, setup }
                } else {
                    RcDecision::RunSw
                }
            }
            None => {
                // No node can host right now.
                let fits_somewhere = partition.iter().any(|n| n.area_total() >= need_area);
                if !fits_somewhere {
                    return RcDecision::RunSw; // never feasible on this fabric
                }
                if self.cost_aware {
                    if let Some(deadline) = deadline_abs {
                        if now + sw_runtime <= deadline {
                            return RcDecision::RunSw; // don't gamble on the queue
                        }
                    }
                }
                RcDecision::Defer
            }
        }
    }

    fn pick_configure(
        &self,
        mut candidates: Vec<(NodeId, HostPlan, ReconfCost, usize, u32)>,
    ) -> Option<(NodeId, HostPlan, ReconfCost)> {
        if candidates.is_empty() {
            return None;
        }
        match self.packing {
            Packing::FirstFit => {
                candidates.sort_by_key(|&(node, ..)| node);
            }
            Packing::BestFit => {
                // Packing-first: fewest evictions, tightest leftover, then
                // cheapest setup. (Reuse still wins under `seek_reuse`,
                // which short-circuits before this sort.)
                candidates.sort_by_key(|&(node, _, cost, evictions, leftover)| {
                    (evictions, leftover, cost.total(), node)
                });
            }
        }
        let (node, plan, cost, _, _) = candidates.into_iter().next().expect("non-empty");
        Some((node, plan, cost))
    }
}

/// Total area of the regions a plan would evict.
fn evicted_area(plan: &HostPlan, node: &tg_model::RcNode, _lib: &ConfigLibrary) -> u32 {
    match plan {
        HostPlan::Configure { evict, .. } if !evict.is_empty() => {
            // Eviction targets are idle regions; their area is part of the
            // node's configured-but-idle area. We can't read individual
            // region areas through the public API, so bound it by idle area —
            // exact enough for the leftover tie-break.
            let _ = evict;
            node.idle_area_now()
        }
        _ => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tg_model::config::ProcessorConfig;
    use tg_workload::{JobId, ProjectId, RcRequirement, UserId};

    fn lib() -> (ConfigLibrary, ConfigId, ConfigId) {
        let mut lib = ConfigLibrary::new();
        let mut a = ProcessorConfig::new("a", 4, 10.0);
        a.reconfig_time = SimDuration::from_secs(10);
        let mut b = ProcessorConfig::new("b", 6, 5.0);
        b.reconfig_time = SimDuration::from_secs(10);
        let a = lib.add(a);
        let b = lib.add(b);
        (lib, a, b)
    }

    fn rc_job(id: usize, config: ConfigId, speedup: f64, runtime_s: u64) -> Job {
        Job::batch(
            JobId(id),
            UserId(0),
            ProjectId(0),
            SimTime::ZERO,
            1,
            SimDuration::from_secs(runtime_s),
        )
        .with_rc(RcRequirement {
            config,
            speedup,
            deadline: None,
        })
    }

    fn no_fetch(_c: ConfigId) -> SimDuration {
        SimDuration::ZERO
    }

    #[test]
    fn aware_prefers_reuse_over_fresh_fabric() {
        let (lib, a, _) = lib();
        let mut p = RcPartition::new(SimTime::ZERO, 2, 8, 4);
        // Node 0 hosted `a` and finished → idle region with `a`.
        let plan = p.node(NodeId(0)).plan(a, &lib);
        let r = p.node_mut(NodeId(0)).commit(plan, a, &lib, SimTime::ZERO);
        p.node_mut(NodeId(0)).finish(r, SimTime::from_secs(5));
        let job = rc_job(1, a, 10.0, 3600);
        let d = RcPolicy::AWARE.decide(&job, &p, &lib, no_fetch, SimTime::from_secs(5), 1.0);
        match d {
            RcDecision::PlaceHw { node, setup, plan } => {
                assert_eq!(node, NodeId(0));
                assert_eq!(setup.total(), SimDuration::ZERO);
                assert!(matches!(plan, HostPlan::Reuse(_)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn blind_takes_first_node_regardless_of_reuse() {
        let (lib, a, _) = lib();
        let mut p = RcPartition::new(SimTime::ZERO, 3, 8, 4);
        // Node 2 has an idle region with `a`; blind still lands on node 0.
        let plan = p.node(NodeId(2)).plan(a, &lib);
        let r = p.node_mut(NodeId(2)).commit(plan, a, &lib, SimTime::ZERO);
        p.node_mut(NodeId(2)).finish(r, SimTime::from_secs(5));
        let job = rc_job(1, a, 10.0, 3600);
        let d = RcPolicy::BLIND.decide(&job, &p, &lib, no_fetch, SimTime::from_secs(5), 1.0);
        match d {
            RcDecision::PlaceHw { node, .. } => assert_eq!(node, NodeId(0)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn aware_falls_back_to_software_when_setup_dominates() {
        let (mut libr, a, _) = {
            let (l, a, b) = lib();
            (l, a, b)
        };
        // Make reconfiguration brutally slow.
        let huge = ProcessorConfig {
            reconfig_time: SimDuration::from_hours(10),
            ..libr.get(a).clone()
        };
        let mut l2 = ConfigLibrary::new();
        let a2 = l2.add(huge);
        libr = l2;
        let p = RcPartition::new(SimTime::ZERO, 2, 8, 4);
        // Short task: SW 60 s vs HW 6 s + 10 h setup.
        let job = rc_job(1, a2, 10.0, 60);
        let d = RcPolicy::AWARE.decide(&job, &p, &libr, no_fetch, SimTime::ZERO, 1.0);
        assert_eq!(d, RcDecision::RunSw);
        // Blind ignores the cost and pays the 10 hours.
        let d = RcPolicy::BLIND.decide(&job, &p, &libr, no_fetch, SimTime::ZERO, 1.0);
        assert!(matches!(d, RcDecision::PlaceHw { .. }));
    }

    #[test]
    fn fetch_time_counts_toward_the_crossover() {
        let (libr, a, _) = lib();
        let p = RcPartition::new(SimTime::ZERO, 1, 8, 4);
        // SW 100 s. HW runtime 10 s + reconfig 10 s = 20 s → HW wins with
        // free fetch; with a 200 s fetch, SW wins.
        let job = rc_job(1, a, 10.0, 100);
        let d = RcPolicy::AWARE.decide(&job, &p, &libr, no_fetch, SimTime::ZERO, 1.0);
        assert!(matches!(d, RcDecision::PlaceHw { .. }));
        let slow_fetch = |_c: ConfigId| SimDuration::from_secs(200);
        let d = RcPolicy::AWARE.decide(&job, &p, &libr, slow_fetch, SimTime::ZERO, 1.0);
        assert_eq!(d, RcDecision::RunSw);
    }

    #[test]
    fn deadline_forces_software_when_hw_cannot_meet_it() {
        let (libr, a, _) = lib();
        let p = RcPartition::new(SimTime::ZERO, 1, 8, 4);
        let mut job = rc_job(1, a, 2.0, 100); // SW 100 s, HW 50+10 = 60 s
        job.rc = Some(RcRequirement {
            config: a,
            speedup: 2.0,
            deadline: Some(SimDuration::from_secs(55)),
        });
        // HW misses (60 > 55), SW also misses (100 > 55) → lesser evil = HW.
        let d = RcPolicy::AWARE.decide(&job, &p, &libr, no_fetch, SimTime::ZERO, 1.0);
        assert!(matches!(d, RcDecision::PlaceHw { .. }));
        // Loosen to 120 s: HW meets (60 ≤ 120) → HW.
        job.rc.as_mut().unwrap().deadline = Some(SimDuration::from_secs(120));
        let d = RcPolicy::AWARE.decide(&job, &p, &libr, no_fetch, SimTime::ZERO, 1.0);
        assert!(matches!(d, RcDecision::PlaceHw { .. }));
        // Deadline 70 with slow fetch: HW now 260 s (misses), SW 100 s
        // (misses 70 too)... use deadline 150: HW 260 misses, SW 100 meets.
        job.rc.as_mut().unwrap().deadline = Some(SimDuration::from_secs(150));
        let slow_fetch = |_c: ConfigId| SimDuration::from_secs(200);
        let d = RcPolicy::AWARE.decide(&job, &p, &libr, slow_fetch, SimTime::ZERO, 1.0);
        assert_eq!(d, RcDecision::RunSw);
    }

    #[test]
    fn defer_when_fabric_busy_and_no_deadline() {
        let (libr, a, b) = lib();
        let mut p = RcPartition::new(SimTime::ZERO, 1, 8, 4);
        // Fill the single node with two busy `a` regions (4+4 = 8).
        for _ in 0..2 {
            let plan = p.node(NodeId(0)).plan(a, &libr);
            p.node_mut(NodeId(0)).commit(plan, a, &libr, SimTime::ZERO);
        }
        let job = rc_job(9, b, 5.0, 3600);
        let d = RcPolicy::AWARE.decide(&job, &p, &libr, no_fetch, SimTime::ZERO, 1.0);
        assert_eq!(d, RcDecision::Defer);
    }

    #[test]
    fn busy_fabric_with_deadline_prefers_sw_over_gambling() {
        let (libr, a, b) = lib();
        let mut p = RcPartition::new(SimTime::ZERO, 1, 8, 4);
        for _ in 0..2 {
            let plan = p.node(NodeId(0)).plan(a, &libr);
            p.node_mut(NodeId(0)).commit(plan, a, &libr, SimTime::ZERO);
        }
        let mut job = rc_job(9, b, 5.0, 3600);
        job.rc.as_mut().unwrap().deadline = Some(SimDuration::from_hours(2));
        let d = RcPolicy::AWARE.decide(&job, &p, &libr, no_fetch, SimTime::ZERO, 1.0);
        assert_eq!(d, RcDecision::RunSw);
    }

    #[test]
    fn oversized_kernel_runs_in_software_forever() {
        let mut libr = ConfigLibrary::new();
        let giant = libr.add(ProcessorConfig::new("giant", 64, 100.0));
        let p = RcPartition::new(SimTime::ZERO, 4, 8, 4);
        let job = rc_job(1, giant, 100.0, 3600);
        for policy in [RcPolicy::AWARE, RcPolicy::BLIND] {
            assert_eq!(
                policy.decide(&job, &p, &libr, no_fetch, SimTime::ZERO, 1.0),
                RcDecision::RunSw,
                "{}",
                policy.name()
            );
        }
    }

    #[test]
    fn best_fit_prefers_tighter_node() {
        let (libr, a, b) = lib();
        let mut p = RcPartition::new(SimTime::ZERO, 2, 8, 4);
        // Node 0: one busy `b` region (6 area) → free 2 < 4, infeasible for a
        // without eviction... make it cleaner: node 0 busy a (4) → free 4
        // (tight); node 1 empty → free 8 (loose). Best-fit picks node 0.
        let plan = p.node(NodeId(0)).plan(a, &libr);
        p.node_mut(NodeId(0)).commit(plan, a, &libr, SimTime::ZERO);
        let job = rc_job(1, a, 10.0, 3600);
        // seek_reuse off so the busy region on node 0 doesn't matter; cost
        // equal on both nodes (same fetch/reconfig) → leftover decides.
        let policy = RcPolicy {
            seek_reuse: false,
            packing: Packing::BestFit,
            cost_aware: false,
        };
        match policy.decide(&job, &p, &libr, no_fetch, SimTime::ZERO, 1.0) {
            RcDecision::PlaceHw { node, .. } => assert_eq!(node, NodeId(0), "tight fit wins"),
            other => panic!("{other:?}"),
        }
        // First-fit picks node 0 here too; flip the layout to separate them.
        let mut p2 = RcPartition::new(SimTime::ZERO, 2, 8, 4);
        let plan = p2.node(NodeId(1)).plan(a, &libr);
        p2.node_mut(NodeId(1)).commit(plan, a, &libr, SimTime::ZERO);
        match policy.decide(&job, &p2, &libr, no_fetch, SimTime::ZERO, 1.0) {
            RcDecision::PlaceHw { node, .. } => assert_eq!(node, NodeId(1), "tight fit wins"),
            other => panic!("{other:?}"),
        }
        let ff = RcPolicy {
            packing: Packing::FirstFit,
            ..policy
        };
        match ff.decide(&job, &p2, &libr, no_fetch, SimTime::ZERO, 1.0) {
            RcDecision::PlaceHw { node, .. } => {
                assert_eq!(node, NodeId(0), "first fit is index order")
            }
            other => panic!("{other:?}"),
        }
        let _ = b;
    }

    #[test]
    fn bitstream_cache_biases_best_fit_cost() {
        let (libr, a, _) = lib();
        let mut p = RcPartition::new(SimTime::ZERO, 2, 8, 4);
        // Node 1 has fetched `a` before (cache hit on reconfigure).
        let plan = p.node(NodeId(1)).plan(a, &libr);
        let r = p.node_mut(NodeId(1)).commit(plan, a, &libr, SimTime::ZERO);
        p.node_mut(NodeId(1)).finish(r, SimTime::from_secs(1));
        // Evict a's region from node 1 by hosting something else... instead,
        // turn off seek_reuse so the policy prices both nodes as Configure…
        // node 1's plan would be Reuse; with seek_reuse=false that's a free
        // candidate and wins on cost anyway — which is the point: cached
        // state makes node 1 cheaper.
        let policy = RcPolicy {
            seek_reuse: false,
            packing: Packing::BestFit,
            cost_aware: true,
        };
        let fetch = |_c: ConfigId| SimDuration::from_secs(300);
        let job = rc_job(3, a, 10.0, 7200);
        match policy.decide(&job, &p, &libr, fetch, SimTime::from_secs(2), 1.0) {
            RcDecision::PlaceHw { node, setup, .. } => {
                assert_eq!(node, NodeId(1));
                assert_eq!(setup.total(), SimDuration::ZERO);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn policy_names() {
        assert_eq!(RcPolicy::BLIND.name(), "rc-blind");
        assert_eq!(RcPolicy::AWARE.name(), "rc-aware");
    }

    #[test]
    #[should_panic(expected = "non-RC job")]
    fn non_rc_job_panics() {
        let (libr, _, _) = lib();
        let p = RcPartition::new(SimTime::ZERO, 1, 8, 4);
        let job = Job::batch(
            JobId(0),
            UserId(0),
            ProjectId(0),
            SimTime::ZERO,
            1,
            SimDuration::from_secs(10),
        );
        RcPolicy::AWARE.decide(&job, &p, &libr, no_fetch, SimTime::ZERO, 1.0);
    }
}
