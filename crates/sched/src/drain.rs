//! The weekly-drain capability policy.
//!
//! Large "hero" jobs (full-machine or near-full-machine runs) are
//! irreconcilable with high utilization under on-demand scheduling: the
//! scheduler must idle the whole machine to assemble enough cores, and the
//! idle ramp is pure waste. The policy modeled here — adopted in production
//! on TeraGrid-era capability systems — forces the clear-out onto a fixed
//! **weekly boundary** instead:
//!
//! * While hero jobs are pending, normal jobs keep starting as long as their
//!   *estimated* completion fits before the upcoming drain instant (a
//!   full-machine reservation, in effect). Because generated estimates are
//!   upper bounds on true runtimes, the machine is provably empty at the
//!   drain instant.
//! * At the drain instant the queued hero jobs run **consecutively**
//!   (back-to-back full-machine runs).
//! * When the hero queue empties, normal EASY scheduling resumes.
//!
//! With no hero jobs pending, the policy is exactly EASY.

use crate::backfill_queue::BackfillQueue;
use crate::easy::{drain_pass, easy_pass, start_job};
use crate::queue::{BatchScheduler, RunningSet, Started};
use std::collections::VecDeque;
use tg_des::span::WaitCause;
use tg_des::{SimDuration, SimTime};
use tg_model::Cluster;
use tg_workload::{Job, JobId};

/// Fraction of machine cores at which a job counts as a hero run.
pub const DEFAULT_HERO_FRACTION: f64 = 0.9;

/// Weekly-drain scheduler.
#[derive(Debug)]
pub struct WeeklyDrain {
    normal: BackfillQueue,
    heroes: VecDeque<Job>,
    running: RunningSet,
    period: SimDuration,
    machine_cores: usize,
    hero_threshold: usize,
    /// The active drain instant, set while hero jobs are pending.
    active_drain: Option<SimTime>,
    /// Whether normal jobs may keep starting (estimate-bounded) before the
    /// drain wall. Disabling this models a naive "stop everything" drain —
    /// the A2 ablation's baseline.
    predrain_fill: bool,
    /// Backfill starts during normal-phase EASY passes (observability).
    backfilled: u64,
    /// Completed drain phases — counted when the hero queue empties and the
    /// drain disarms (observability).
    drains_done: u64,
    /// When the most recent drain disarmed — jobs that waited across it get
    /// their wait attributed to the drain window (observability).
    last_disarm: Option<SimTime>,
}

impl WeeklyDrain {
    /// A drain scheduler over an EASY normal phase. `_inner` fixes the
    /// normal-phase algorithm at the type level (only EASY is supported);
    /// `period` is the drain cadence; `machine_cores` sizes the hero
    /// threshold at [`DEFAULT_HERO_FRACTION`].
    pub fn new(
        _inner: crate::easy::EasyBackfill,
        period: SimDuration,
        machine_cores: usize,
    ) -> Self {
        assert!(!period.is_zero(), "drain period must be positive");
        assert!(machine_cores > 0, "machine must have cores");
        WeeklyDrain {
            normal: BackfillQueue::new(),
            heroes: VecDeque::new(),
            running: RunningSet::new(),
            period,
            machine_cores,
            hero_threshold: ((machine_cores as f64) * DEFAULT_HERO_FRACTION).ceil() as usize,
            active_drain: None,
            predrain_fill: true,
            backfilled: 0,
            drains_done: 0,
            last_disarm: None,
        }
    }

    /// Enable/disable estimate-bounded filling before the drain wall
    /// (enabled by default; disabling gives the naive stop-the-world drain).
    pub fn with_predrain_fill(mut self, fill: bool) -> Self {
        self.predrain_fill = fill;
        self
    }

    /// Override the hero threshold (cores at or above which a job is a hero).
    pub fn with_hero_threshold(mut self, cores: usize) -> Self {
        assert!(cores > 0 && cores <= self.machine_cores);
        self.hero_threshold = cores;
        self
    }

    /// Pending hero jobs.
    pub fn hero_queue_len(&self) -> usize {
        self.heroes.len()
    }

    /// The drain instant currently armed, if any.
    pub fn active_drain(&self) -> Option<SimTime> {
        self.active_drain
    }

    /// Next period boundary strictly after `now`.
    fn next_boundary(&self, now: SimTime) -> SimTime {
        let idx = now.as_micros() / self.period.as_micros();
        SimTime::from_micros((idx + 1) * self.period.as_micros())
    }
}

impl BatchScheduler for WeeklyDrain {
    fn name(&self) -> &'static str {
        "weekly-drain"
    }

    fn submit(&mut self, now: SimTime, job: Job) {
        if job.cores >= self.hero_threshold {
            self.heroes.push_back(job);
            if self.active_drain.is_none() {
                self.active_drain = Some(self.next_boundary(now));
            }
        } else {
            self.normal.push_back(job);
        }
    }

    fn on_complete(&mut self, _now: SimTime, id: JobId) {
        self.running.remove(id);
    }

    fn make_decisions(
        &mut self,
        now: SimTime,
        cluster: &mut Cluster,
        core_speed: f64,
    ) -> Vec<Started> {
        let mut started = Vec::new();
        loop {
            match self.active_drain {
                None => {
                    let before = started.len();
                    easy_pass(
                        &mut self.normal,
                        &mut self.running,
                        now,
                        cluster,
                        core_speed,
                        &mut started,
                        &mut self.backfilled,
                    );
                    // Normal jobs held back across the drain wall waited for
                    // the drain, not for queue position: re-attribute starts
                    // of jobs submitted before the last disarm.
                    if let Some(disarm) = self.last_disarm {
                        for s in &mut started[before..] {
                            if s.cause != WaitCause::Immediate && s.job.submit_time < disarm {
                                s.cause = WaitCause::DrainWindow;
                            }
                        }
                    }
                    return started;
                }
                Some(drain) if now < drain => {
                    if !self.predrain_fill {
                        return started; // naive drain: start nothing
                    }
                    // Pre-drain: greedily start normal jobs that fit and
                    // finish (by estimate) before the wall. Any wait these
                    // jobs saw happened under the armed drain's
                    // estimate-bounded fill regime.
                    drain_pass(
                        &mut self.normal,
                        &mut self.running,
                        now,
                        cluster,
                        core_speed,
                        drain,
                        &mut started,
                    );
                    return started;
                }
                Some(_) => {
                    // Drain reached: run heroes back-to-back while the
                    // machine can hold them.
                    let mut any = false;
                    while let Some(hero) = self.heroes.front() {
                        if !cluster.can_fit(hero.cores) {
                            break;
                        }
                        let job = self.heroes.pop_front().expect("peeked");
                        // Heroes wait for the drain boundary by design.
                        start_job(
                            now,
                            cluster,
                            core_speed,
                            job,
                            WaitCause::DrainWindow,
                            &mut self.running,
                            &mut started,
                        );
                        any = true;
                    }
                    if self.heroes.is_empty() {
                        // Hero phase over (or will be once running heroes
                        // finish); disarm and resume normal scheduling.
                        self.active_drain = None;
                        self.drains_done += 1;
                        self.last_disarm = Some(now);
                        continue;
                    }
                    let _ = any;
                    return started;
                }
            }
        }
    }

    fn queue_len(&self) -> usize {
        self.normal.len() + self.heroes.len()
    }

    fn next_wakeup(&self, now: SimTime) -> Option<SimTime> {
        match self.active_drain {
            Some(d) if d > now => Some(d),
            _ => None,
        }
    }

    fn backfills(&self) -> u64 {
        self.backfilled
    }

    fn drains(&self) -> u64 {
        self.drains_done
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::easy::EasyBackfill;

    fn sched(machine: usize) -> WeeklyDrain {
        WeeklyDrain::new(EasyBackfill::new(), SimDuration::from_weeks(1), machine)
    }

    fn job(id: usize, cores: usize, secs: u64) -> Job {
        Job::batch(
            JobId(id),
            tg_workload::UserId(0),
            tg_workload::ProjectId(0),
            SimTime::ZERO,
            cores,
            SimDuration::from_secs(secs),
        )
    }

    #[test]
    fn behaves_like_easy_without_heroes() {
        let mut s = sched(10);
        let mut c = Cluster::new(SimTime::ZERO, 10);
        s.submit(SimTime::ZERO, job(0, 6, 100));
        s.submit(SimTime::ZERO, job(1, 4, 100));
        let started = s.make_decisions(SimTime::ZERO, &mut c, 1.0);
        assert_eq!(started.len(), 2);
        assert_eq!(s.active_drain(), None);
        assert_eq!(s.next_wakeup(SimTime::ZERO), None);
    }

    #[test]
    fn hero_submission_arms_the_next_boundary() {
        let mut s = sched(10);
        let t = SimTime::from_days(3);
        s.submit(t, job(0, 10, 3600));
        assert_eq!(s.active_drain(), Some(SimTime::from_days(7)));
        assert_eq!(s.hero_queue_len(), 1);
        assert_eq!(s.next_wakeup(t), Some(SimTime::from_days(7)));
    }

    #[test]
    fn hero_exactly_at_boundary_arms_following_week() {
        let mut s = sched(10);
        s.submit(SimTime::from_days(7), job(0, 10, 10));
        assert_eq!(s.active_drain(), Some(SimTime::from_days(14)));
    }

    #[test]
    fn pre_drain_blocks_jobs_crossing_the_wall() {
        let mut s = sched(10);
        let mut c = Cluster::new(SimTime::ZERO, 10);
        s.submit(SimTime::ZERO, job(0, 10, 3600)); // hero → drain at day 7
                                                   // A job estimated to end before day 7 starts; one crossing it waits.
        let short = job(1, 4, 3600);
        let long = job(2, 4, 8 * 86_400);
        let t = SimTime::from_days(1);
        s.submit(t, short);
        s.submit(t, long);
        let started = s.make_decisions(t, &mut c, 1.0);
        assert_eq!(started.len(), 1);
        assert_eq!(started[0].job.id, JobId(1));
        assert_eq!(s.queue_len(), 2, "long job + hero still queued");
    }

    #[test]
    fn heroes_run_consecutively_at_the_drain() {
        let mut s = sched(10);
        let mut c = Cluster::new(SimTime::ZERO, 10);
        s.submit(SimTime::ZERO, job(0, 10, 3600));
        s.submit(SimTime::ZERO, job(1, 10, 3600));
        let d = SimTime::from_days(7);
        // Machine is empty at the drain (nothing was started).
        let started = s.make_decisions(d, &mut c, 1.0);
        assert_eq!(started.len(), 1, "one full-machine hero at a time");
        assert_eq!(started[0].job.id, JobId(0));
        assert_eq!(
            started[0].cause,
            WaitCause::DrainWindow,
            "heroes wait for the drain boundary"
        );
        assert_eq!(s.hero_queue_len(), 1);
        // First hero completes; second starts immediately.
        let t2 = d + SimDuration::from_secs(3600);
        c.release(t2, 10);
        s.on_complete(t2, JobId(0));
        let started = s.make_decisions(t2, &mut c, 1.0);
        assert_eq!(started.len(), 1);
        assert_eq!(started[0].job.id, JobId(1));
        assert_eq!(s.active_drain(), None, "disarmed once hero queue empties");
        assert_eq!(s.drains(), 1, "one drain phase completed");
    }

    #[test]
    fn normal_scheduling_resumes_after_heroes() {
        let mut s = sched(10);
        let mut c = Cluster::new(SimTime::ZERO, 10);
        s.submit(SimTime::ZERO, job(0, 10, 3600));
        let d = SimTime::from_days(7);
        s.make_decisions(d, &mut c, 1.0);
        let t2 = d + SimDuration::from_secs(3600);
        c.release(t2, 10);
        s.on_complete(t2, JobId(0));
        s.make_decisions(t2, &mut c, 1.0);
        // Now a long normal job may start — no wall remains.
        s.submit(t2, job(1, 4, 30 * 86_400));
        let started = s.make_decisions(t2, &mut c, 1.0);
        assert_eq!(started.len(), 1);
    }

    #[test]
    fn post_drain_starts_of_jobs_that_waited_across_it_blame_the_drain() {
        let mut s = sched(10);
        let mut c = Cluster::new(SimTime::ZERO, 10);
        s.submit(SimTime::ZERO, job(0, 10, 3600)); // hero → drain at day 7
                                                   // Submitted before the drain, crosses the wall → waits through it.
        s.submit(SimTime::from_secs(10), job(1, 4, 8 * 86_400));
        assert!(s
            .make_decisions(SimTime::from_secs(10), &mut c, 1.0)
            .is_empty());
        let d = SimTime::from_days(7);
        let st = s.make_decisions(d, &mut c, 1.0);
        assert_eq!(st.len(), 1, "hero runs at the wall");
        let t2 = d + SimDuration::from_secs(3600);
        c.release(t2, 10);
        s.on_complete(t2, JobId(0));
        let st = s.make_decisions(t2, &mut c, 1.0);
        assert_eq!(st.len(), 1);
        assert_eq!(st[0].job.id, JobId(1));
        assert_eq!(
            st[0].cause,
            WaitCause::DrainWindow,
            "the wait spanned the drain, so the drain gets the blame"
        );
    }

    #[test]
    fn naive_drain_starts_nothing_pre_wall() {
        let mut s = sched(10).with_predrain_fill(false);
        let mut c = Cluster::new(SimTime::ZERO, 10);
        s.submit(SimTime::ZERO, job(0, 10, 3600)); // hero
        s.submit(SimTime::ZERO, job(1, 2, 60)); // tiny, would fit before wall
        let started = s.make_decisions(SimTime::from_secs(10), &mut c, 1.0);
        assert!(started.is_empty(), "naive drain idles the machine");
        assert_eq!(s.queue_len(), 2);
    }

    #[test]
    fn drain_counter_stays_zero_without_heroes() {
        let mut s = sched(10);
        let mut c = Cluster::new(SimTime::ZERO, 10);
        s.submit(SimTime::ZERO, job(0, 4, 100));
        s.make_decisions(SimTime::ZERO, &mut c, 1.0);
        assert_eq!(s.drains(), 0);
        assert_eq!(s.backfills(), 0);
    }

    #[test]
    fn near_full_jobs_count_as_heroes() {
        let mut s = sched(100); // threshold = 90
        s.submit(SimTime::ZERO, job(0, 95, 60));
        assert_eq!(s.hero_queue_len(), 1);
        s.submit(SimTime::ZERO, job(1, 89, 60));
        assert_eq!(s.hero_queue_len(), 1, "89 < 90 is a normal job");
        let s2 = sched(100).with_hero_threshold(50);
        assert_eq!(s2.hero_threshold, 50);
    }
}
