//! Frozen pre-optimization scheduler implementations (the differential-test
//! oracle).
//!
//! These are faithful ports of the linear-scan schedulers as they stood
//! before the indexed running set landed: a flat `Vec` running set with
//! `position()`-based completion removal, per-pass sorting inside the
//! shadow-time computation, and O(n) `VecDeque::remove` per backfill start.
//! The optimized schedulers in the sibling modules must make **bit-identical
//! decisions** — same `Started` jobs, order, estimated ends, and wait causes
//! — and the differential tests (`tests/differential.rs` at the workspace
//! root, plus the property tests in this crate) prove it by driving both
//! against identical submit/complete/decide sequences.
//!
//! Nothing here is for production runs: the point of keeping the naive code
//! is that it is *obviously* the old behavior, so any divergence indicts the
//! optimization, not the oracle. Name strings deliberately match the
//! optimized schedulers so full-simulation outputs compare byte-for-byte.

use crate::fairshare::FairShare;
use crate::queue::{attribute, estimated_runtime, BatchScheduler, RunningJob, Started};
use std::collections::VecDeque;
use tg_des::span::WaitCause;
use tg_des::{SimDuration, SimTime};
use tg_model::Cluster;
use tg_workload::{Job, JobId};

/// The original sort-per-call shadow-time computation over a flat slice.
fn earliest_fit_naive(
    now: SimTime,
    free_cores: usize,
    cores_needed: usize,
    running: &[RunningJob],
) -> SimTime {
    if cores_needed <= free_cores {
        return now;
    }
    let mut ends: Vec<(SimTime, usize)> = running
        .iter()
        .map(|r| (r.estimated_end.max(now), r.cores))
        .collect();
    ends.sort_unstable_by_key(|&(t, _)| t);
    let mut free = free_cores;
    for (t, cores) in ends {
        free += cores;
        if free >= cores_needed {
            return t;
        }
    }
    SimTime::MAX
}

fn start_job_naive(
    now: SimTime,
    cluster: &mut Cluster,
    core_speed: f64,
    job: Job,
    delayed: WaitCause,
    running: &mut Vec<RunningJob>,
    out: &mut Vec<Started>,
) {
    assert!(cluster.acquire(now, job.cores), "caller checked fit");
    let estimated_end = now + estimated_runtime(&job, core_speed);
    let cause = attribute(now, &job, delayed);
    running.push(RunningJob {
        id: job.id,
        cores: job.cores,
        estimated_end,
    });
    out.push(Started {
        job,
        estimated_end,
        cause,
    });
}

fn on_complete_naive(running: &mut Vec<RunningJob>, id: JobId) {
    if let Some(pos) = running.iter().position(|r| r.id == id) {
        running.swap_remove(pos);
    }
}

fn drain_pass_naive(
    queue: &mut VecDeque<Job>,
    running: &mut Vec<RunningJob>,
    now: SimTime,
    cluster: &mut Cluster,
    core_speed: f64,
    horizon: SimTime,
    started: &mut Vec<Started>,
) {
    let mut i = 0;
    while i < queue.len() {
        let job = &queue[i];
        if cluster.can_fit(job.cores) && now + estimated_runtime(job, core_speed) <= horizon {
            let job = queue.remove(i).expect("index valid");
            start_job_naive(
                now,
                cluster,
                core_speed,
                job,
                WaitCause::DrainWindow,
                running,
                started,
            );
            continue; // same index now holds the next job
        }
        i += 1;
    }
}

#[allow(clippy::too_many_arguments)]
fn easy_pass_naive(
    queue: &mut VecDeque<Job>,
    running: &mut Vec<RunningJob>,
    now: SimTime,
    cluster: &mut Cluster,
    core_speed: f64,
    started: &mut Vec<Started>,
    backfills: &mut u64,
) {
    // Phase 1: start queue heads FCFS-style while they fit.
    while let Some(head) = queue.front() {
        if !cluster.can_fit(head.cores) {
            break;
        }
        let job = queue.pop_front().expect("peeked");
        start_job_naive(
            now,
            cluster,
            core_speed,
            job,
            WaitCause::AheadInQueue,
            running,
            started,
        );
    }
    let Some(head) = queue.front() else {
        return;
    };
    // Phase 2: reservation for the (blocked) head.
    let shadow = earliest_fit_naive(now, cluster.free_cores(), head.cores, running);
    let free_at_shadow = {
        let mut free = cluster.free_cores();
        for r in running.iter() {
            if r.estimated_end.max(now) <= shadow {
                free += r.cores;
            }
        }
        free
    };
    let head_cores = head.cores;
    let mut extra = free_at_shadow.saturating_sub(head_cores);

    // Phase 3: backfill the rest of the queue in order, removing each start
    // with the original O(n) `VecDeque::remove`.
    let mut i = 1; // skip the head
    while i < queue.len() {
        let job = &queue[i];
        if cluster.can_fit(job.cores) {
            let est_end = now + estimated_runtime(job, core_speed);
            let ok = if est_end <= shadow {
                true
            } else {
                job.cores <= extra
            };
            if ok {
                if est_end > shadow {
                    extra -= job.cores;
                }
                let job = queue.remove(i).expect("index valid");
                start_job_naive(
                    now,
                    cluster,
                    core_speed,
                    job,
                    WaitCause::BackfillHole,
                    running,
                    started,
                );
                *backfills += 1;
                continue; // same index now holds the next job
            }
        }
        i += 1;
    }
}

/// Naive EASY backfill (flat running vec, O(n) queue removal).
#[derive(Debug, Default)]
pub struct NaiveEasy {
    queue: VecDeque<Job>,
    running: Vec<RunningJob>,
    backfilled: u64,
    outage: Option<SimTime>,
}

impl NaiveEasy {
    /// An empty naive EASY scheduler.
    pub fn new() -> Self {
        NaiveEasy::default()
    }
}

impl BatchScheduler for NaiveEasy {
    fn name(&self) -> &'static str {
        "easy"
    }

    fn submit(&mut self, _now: SimTime, job: Job) {
        self.queue.push_back(job);
    }

    fn on_complete(&mut self, _now: SimTime, id: JobId) {
        on_complete_naive(&mut self.running, id);
    }

    fn make_decisions(
        &mut self,
        now: SimTime,
        cluster: &mut Cluster,
        core_speed: f64,
    ) -> Vec<Started> {
        let mut started = Vec::new();
        if let Some(horizon) = self.outage {
            drain_pass_naive(
                &mut self.queue,
                &mut self.running,
                now,
                cluster,
                core_speed,
                horizon,
                &mut started,
            );
        } else {
            easy_pass_naive(
                &mut self.queue,
                &mut self.running,
                now,
                cluster,
                core_speed,
                &mut started,
                &mut self.backfilled,
            );
        }
        started
    }

    fn queue_len(&self) -> usize {
        self.queue.len()
    }

    fn backfills(&self) -> u64 {
        self.backfilled
    }

    fn drain_notice(&mut self, at: Option<SimTime>) {
        self.outage = at;
    }
}

/// Naive strict FCFS (flat running vec).
#[derive(Debug, Default)]
pub struct NaiveFcfs {
    queue: VecDeque<Job>,
    running: Vec<RunningJob>,
    outage: Option<SimTime>,
}

impl NaiveFcfs {
    /// An empty naive FCFS scheduler.
    pub fn new() -> Self {
        NaiveFcfs::default()
    }
}

impl BatchScheduler for NaiveFcfs {
    fn name(&self) -> &'static str {
        "fcfs"
    }

    fn submit(&mut self, _now: SimTime, job: Job) {
        self.queue.push_back(job);
    }

    fn on_complete(&mut self, _now: SimTime, id: JobId) {
        on_complete_naive(&mut self.running, id);
    }

    fn make_decisions(
        &mut self,
        now: SimTime,
        cluster: &mut Cluster,
        core_speed: f64,
    ) -> Vec<Started> {
        let mut started = Vec::new();
        while let Some(head) = self.queue.front() {
            if !cluster.can_fit(head.cores) {
                break;
            }
            if let Some(horizon) = self.outage {
                if now + estimated_runtime(head, core_speed) > horizon {
                    break;
                }
            }
            let job = self.queue.pop_front().expect("peeked");
            start_job_naive(
                now,
                cluster,
                core_speed,
                job,
                WaitCause::AheadInQueue,
                &mut self.running,
                &mut started,
            );
        }
        started
    }

    fn queue_len(&self) -> usize {
        self.queue.len()
    }

    fn drain_notice(&mut self, at: Option<SimTime>) {
        self.outage = at;
    }
}

/// Naive conservative backfill (profile rebuilt from a flat running vec).
#[derive(Debug, Default)]
pub struct NaiveConservative {
    queue: VecDeque<Job>,
    running: Vec<RunningJob>,
}

impl NaiveConservative {
    /// An empty naive conservative scheduler.
    pub fn new() -> Self {
        NaiveConservative::default()
    }
}

impl BatchScheduler for NaiveConservative {
    fn name(&self) -> &'static str {
        "conservative"
    }

    fn submit(&mut self, _now: SimTime, job: Job) {
        self.queue.push_back(job);
    }

    fn on_complete(&mut self, _now: SimTime, id: JobId) {
        on_complete_naive(&mut self.running, id);
    }

    fn make_decisions(
        &mut self,
        now: SimTime,
        cluster: &mut Cluster,
        core_speed: f64,
    ) -> Vec<Started> {
        let mut profile = crate::conservative::Profile::from_running(
            now,
            cluster.free_cores(),
            self.running.iter().copied(),
        );
        let mut started = Vec::new();
        let mut remaining = VecDeque::with_capacity(self.queue.len());
        for job in self.queue.drain(..) {
            let dur = estimated_runtime(&job, core_speed);
            let slot = profile.find_slot(now, job.cores, dur);
            if slot == now {
                assert!(cluster.acquire(now, job.cores), "profile said free");
                profile.reserve(now, dur, job.cores);
                let estimated_end = now + dur;
                let cause = attribute(now, &job, WaitCause::AheadInQueue);
                self.running.push(RunningJob {
                    id: job.id,
                    cores: job.cores,
                    estimated_end,
                });
                started.push(Started {
                    job,
                    estimated_end,
                    cause,
                });
            } else {
                if slot != SimTime::MAX {
                    profile.reserve(slot, dur, job.cores);
                }
                remaining.push_back(job);
            }
        }
        self.queue = remaining;
        started
    }

    fn queue_len(&self) -> usize {
        self.queue.len()
    }
}

/// Naive weekly-drain policy over [`easy_pass_naive`].
#[derive(Debug)]
pub struct NaiveWeeklyDrain {
    normal: VecDeque<Job>,
    heroes: VecDeque<Job>,
    running: Vec<RunningJob>,
    period: SimDuration,
    hero_threshold: usize,
    active_drain: Option<SimTime>,
    predrain_fill: bool,
    backfilled: u64,
    drains_done: u64,
    last_disarm: Option<SimTime>,
}

impl NaiveWeeklyDrain {
    /// A naive drain scheduler with the same parameters as
    /// [`crate::drain::WeeklyDrain`].
    pub fn new(period: SimDuration, machine_cores: usize) -> Self {
        assert!(!period.is_zero(), "drain period must be positive");
        assert!(machine_cores > 0, "machine must have cores");
        NaiveWeeklyDrain {
            normal: VecDeque::new(),
            heroes: VecDeque::new(),
            running: Vec::new(),
            period,
            hero_threshold: ((machine_cores as f64) * crate::drain::DEFAULT_HERO_FRACTION).ceil()
                as usize,
            active_drain: None,
            predrain_fill: true,
            backfilled: 0,
            drains_done: 0,
            last_disarm: None,
        }
    }

    /// Enable/disable estimate-bounded pre-drain filling.
    pub fn with_predrain_fill(mut self, fill: bool) -> Self {
        self.predrain_fill = fill;
        self
    }

    fn next_boundary(&self, now: SimTime) -> SimTime {
        let idx = now.as_micros() / self.period.as_micros();
        SimTime::from_micros((idx + 1) * self.period.as_micros())
    }
}

impl BatchScheduler for NaiveWeeklyDrain {
    fn name(&self) -> &'static str {
        "weekly-drain"
    }

    fn submit(&mut self, now: SimTime, job: Job) {
        if job.cores >= self.hero_threshold {
            self.heroes.push_back(job);
            if self.active_drain.is_none() {
                self.active_drain = Some(self.next_boundary(now));
            }
        } else {
            self.normal.push_back(job);
        }
    }

    fn on_complete(&mut self, _now: SimTime, id: JobId) {
        on_complete_naive(&mut self.running, id);
    }

    fn make_decisions(
        &mut self,
        now: SimTime,
        cluster: &mut Cluster,
        core_speed: f64,
    ) -> Vec<Started> {
        let mut started = Vec::new();
        loop {
            match self.active_drain {
                None => {
                    let before = started.len();
                    easy_pass_naive(
                        &mut self.normal,
                        &mut self.running,
                        now,
                        cluster,
                        core_speed,
                        &mut started,
                        &mut self.backfilled,
                    );
                    if let Some(disarm) = self.last_disarm {
                        for s in &mut started[before..] {
                            if s.cause != WaitCause::Immediate && s.job.submit_time < disarm {
                                s.cause = WaitCause::DrainWindow;
                            }
                        }
                    }
                    return started;
                }
                Some(drain) if now < drain => {
                    if !self.predrain_fill {
                        return started;
                    }
                    let mut i = 0;
                    while i < self.normal.len() {
                        let job = &self.normal[i];
                        let est_end = now + estimated_runtime(job, core_speed);
                        if cluster.can_fit(job.cores) && est_end <= drain {
                            let job = self.normal.remove(i).expect("index valid");
                            start_job_naive(
                                now,
                                cluster,
                                core_speed,
                                job,
                                WaitCause::DrainWindow,
                                &mut self.running,
                                &mut started,
                            );
                        } else {
                            i += 1;
                        }
                    }
                    return started;
                }
                Some(_) => {
                    while let Some(hero) = self.heroes.front() {
                        if !cluster.can_fit(hero.cores) {
                            break;
                        }
                        let job = self.heroes.pop_front().expect("peeked");
                        start_job_naive(
                            now,
                            cluster,
                            core_speed,
                            job,
                            WaitCause::DrainWindow,
                            &mut self.running,
                            &mut started,
                        );
                    }
                    if self.heroes.is_empty() {
                        self.active_drain = None;
                        self.drains_done += 1;
                        self.last_disarm = Some(now);
                        continue;
                    }
                    return started;
                }
            }
        }
    }

    fn queue_len(&self) -> usize {
        self.normal.len() + self.heroes.len()
    }

    fn next_wakeup(&self, now: SimTime) -> Option<SimTime> {
        match self.active_drain {
            Some(d) if d > now => Some(d),
            _ => None,
        }
    }

    fn backfills(&self) -> u64 {
        self.backfilled
    }

    fn drains(&self) -> u64 {
        self.drains_done
    }
}

/// Naive fair-share EASY (flat running vec, linear charge-info scan).
#[derive(Debug)]
pub struct NaiveFairshareEasy {
    queue: VecDeque<Job>,
    running: Vec<RunningJob>,
    charge_info: Vec<(JobId, usize, SimTime, tg_workload::ProjectId)>,
    shares: FairShare,
    backfilled: u64,
}

impl NaiveFairshareEasy {
    /// A naive fair-share EASY scheduler with the given decay half-life.
    pub fn new(half_life: SimDuration) -> Self {
        NaiveFairshareEasy {
            queue: VecDeque::new(),
            running: Vec::new(),
            charge_info: Vec::new(),
            shares: FairShare::new(half_life),
            backfilled: 0,
        }
    }

    fn rerank(&mut self, now: SimTime) {
        let shares = &self.shares;
        let mut jobs: Vec<Job> = self.queue.drain(..).collect();
        jobs.sort_by(|a, b| {
            let pa = shares.priority(a.project, a.submit_time, now);
            let pb = shares.priority(b.project, b.submit_time, now);
            pb.partial_cmp(&pa).expect("priorities are finite")
        });
        self.queue = jobs.into();
    }
}

impl BatchScheduler for NaiveFairshareEasy {
    fn name(&self) -> &'static str {
        "fairshare-easy"
    }

    fn submit(&mut self, _now: SimTime, job: Job) {
        self.queue.push_back(job);
    }

    fn on_complete(&mut self, now: SimTime, id: JobId) {
        on_complete_naive(&mut self.running, id);
        if let Some(pos) = self.charge_info.iter().position(|&(jid, ..)| jid == id) {
            let (_, cores, start, project) = self.charge_info.swap_remove(pos);
            let wall = now.saturating_since(start).as_secs_f64();
            self.shares.charge(project, now, cores as f64 * wall);
        }
    }

    fn make_decisions(
        &mut self,
        now: SimTime,
        cluster: &mut Cluster,
        core_speed: f64,
    ) -> Vec<Started> {
        self.rerank(now);
        let mut started = Vec::new();
        easy_pass_naive(
            &mut self.queue,
            &mut self.running,
            now,
            cluster,
            core_speed,
            &mut started,
            &mut self.backfilled,
        );
        for s in &started {
            self.charge_info
                .push((s.job.id, s.job.cores, now, s.job.project));
        }
        started
    }

    fn queue_len(&self) -> usize {
        self.queue.len()
    }

    fn backfills(&self) -> u64 {
        self.backfilled
    }
}
