//! User-survey measurement of modality shares.
//!
//! Accounting records are one measurement mechanism; the other one a
//! federation actually has is **asking the users**. Surveys see the people
//! records can't (gateway end users have no accounts) but suffer sampling
//! error, non-response bias, and self-report confusion. This module models
//! a survey against the ground-truth population so the two mechanisms can
//! be compared quantitatively (experiment T5):
//!
//! 1. invite a random `sample_fraction` of users;
//! 2. each invitee responds with a probability depending on their true
//!    modality (heavy batch users answer their resource provider; transient
//!    gateway users mostly don't);
//! 3. respondents self-report their primary modality, confusing it with a
//!    plausible neighbour with probability `confusion`;
//! 4. estimate population shares, either naively (respondents as-is) or
//!    with inverse-response-probability weighting when the response model
//!    is known.

use serde::{Deserialize, Serialize};
use tg_des::SimRng;
use tg_workload::{Modality, User};

/// Which modality a confused respondent names instead of their true one.
/// Neighbours are chosen for plausibility: ensemble users call themselves
/// batch users, gateway users often name the science domain's workflow, etc.
fn confused_with(m: Modality) -> Modality {
    match m {
        Modality::BatchComputing => Modality::Ensemble,
        Modality::Interactive => Modality::BatchComputing,
        Modality::ScienceGateway => Modality::Workflow,
        Modality::Workflow => Modality::BatchComputing,
        Modality::Ensemble => Modality::BatchComputing,
        Modality::DataMovement => Modality::BatchComputing,
        Modality::RcAccelerated => Modality::BatchComputing,
    }
}

/// Survey design parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SurveyDesign {
    /// Fraction of the user population invited, in `(0, 1]`.
    pub sample_fraction: f64,
    /// Response probability per *true* modality, [`Modality::ALL`] order.
    pub response_rates: [f64; Modality::ALL.len()],
    /// Probability a respondent names the confusable neighbour modality.
    pub confusion: f64,
}

impl SurveyDesign {
    /// A census with perfect response and no confusion (sanity baseline).
    pub fn perfect() -> Self {
        SurveyDesign {
            sample_fraction: 1.0,
            response_rates: [1.0; Modality::ALL.len()],
            confusion: 0.0,
        }
    }

    /// A realistic design: 30% invited; engaged account holders respond
    /// often, gateway end users rarely; 10% self-report confusion.
    pub fn realistic() -> Self {
        let mut rates = [0.0; Modality::ALL.len()];
        rates[Modality::BatchComputing.index()] = 0.6;
        rates[Modality::Interactive.index()] = 0.45;
        rates[Modality::ScienceGateway.index()] = 0.12;
        rates[Modality::Workflow.index()] = 0.5;
        rates[Modality::Ensemble.index()] = 0.5;
        rates[Modality::DataMovement.index()] = 0.4;
        rates[Modality::RcAccelerated.index()] = 0.55;
        SurveyDesign {
            sample_fraction: 0.3,
            response_rates: rates,
            confusion: 0.1,
        }
    }

    /// Validate parameter ranges.
    fn check(&self) {
        assert!(
            self.sample_fraction > 0.0 && self.sample_fraction <= 1.0,
            "sample fraction in (0,1]"
        );
        assert!(
            self.response_rates
                .iter()
                .all(|&r| (0.0..=1.0).contains(&r)),
            "response rates in [0,1]"
        );
        assert!((0.0..=1.0).contains(&self.confusion), "confusion in [0,1]");
    }
}

/// What the survey measured.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SurveyResult {
    /// Users invited.
    pub invited: u64,
    /// Users who responded.
    pub responded: u64,
    /// Raw self-reported counts per modality.
    pub reported: [u64; Modality::ALL.len()],
    /// Naive share estimate: reported counts normalized.
    pub naive_share: [f64; Modality::ALL.len()],
    /// Inverse-response-probability-weighted estimate (requires knowing the
    /// response model; weights use the *reported* modality's rate, which is
    /// all a real analyst has).
    pub weighted_share: [f64; Modality::ALL.len()],
}

impl SurveyResult {
    /// Sum of absolute share errors against a truth distribution
    /// (total variation distance × 2).
    pub fn l1_error(&self, truth: &[f64], weighted: bool) -> f64 {
        let est = if weighted {
            &self.weighted_share
        } else {
            &self.naive_share
        };
        truth.iter().zip(est).map(|(t, e)| (t - e).abs()).sum()
    }
}

/// Run a survey over the population.
pub fn run_survey(users: &[User], design: &SurveyDesign, rng: &mut SimRng) -> SurveyResult {
    design.check();
    let mut invited = 0u64;
    let mut responded = 0u64;
    let mut reported = [0u64; Modality::ALL.len()];
    for user in users {
        if !rng.chance(design.sample_fraction) {
            continue;
        }
        invited += 1;
        if !rng.chance(design.response_rates[user.modality.index()]) {
            continue;
        }
        responded += 1;
        let said = if rng.chance(design.confusion) {
            confused_with(user.modality)
        } else {
            user.modality
        };
        reported[said.index()] += 1;
    }
    let total = responded.max(1) as f64;
    let mut naive_share = [0.0; Modality::ALL.len()];
    for (i, &c) in reported.iter().enumerate() {
        naive_share[i] = c as f64 / total;
    }
    // Inverse-probability weighting by the reported class's response rate.
    let mut weights = [0.0f64; Modality::ALL.len()];
    for (i, &c) in reported.iter().enumerate() {
        let rate = design.response_rates[i].max(1e-6);
        weights[i] = c as f64 / rate;
    }
    let wtotal: f64 = weights.iter().sum::<f64>().max(1e-12);
    let mut weighted_share = [0.0; Modality::ALL.len()];
    for i in 0..weights.len() {
        weighted_share[i] = weights[i] / wtotal;
    }
    SurveyResult {
        invited,
        responded,
        reported,
        naive_share,
        weighted_share,
    }
}

/// Ground-truth user-share distribution of a population, in
/// [`Modality::ALL`] order.
pub fn true_user_shares(users: &[User]) -> [f64; Modality::ALL.len()] {
    let mut counts = [0u64; Modality::ALL.len()];
    for u in users {
        counts[u.modality.index()] += 1;
    }
    let total = users.len().max(1) as f64;
    let mut shares = [0.0; Modality::ALL.len()];
    for (i, &c) in counts.iter().enumerate() {
        shares[i] = c as f64 / total;
    }
    shares
}

#[cfg(test)]
mod tests {
    use super::*;
    use tg_workload::{ProjectId, UserId};

    fn population(per_modality: [usize; 7]) -> Vec<User> {
        let mut users = Vec::new();
        let mut id = 0;
        for (i, &n) in per_modality.iter().enumerate() {
            for _ in 0..n {
                users.push(User::new(UserId(id), ProjectId(0), Modality::ALL[i]));
                id += 1;
            }
        }
        users
    }

    #[test]
    fn perfect_census_recovers_truth_exactly() {
        let users = population([50, 20, 100, 10, 10, 5, 5]);
        let mut rng = SimRng::seeded(1);
        let r = run_survey(&users, &SurveyDesign::perfect(), &mut rng);
        assert_eq!(r.invited, 200);
        assert_eq!(r.responded, 200);
        let truth = true_user_shares(&users);
        assert!(r.l1_error(&truth, false) < 1e-12);
        assert!(r.l1_error(&truth, true) < 1e-12);
    }

    #[test]
    fn nonresponse_bias_shrinks_gateway_share_and_weighting_recovers_it() {
        let users = population([300, 0, 600, 0, 0, 0, 0]);
        let truth = true_user_shares(&users);
        let mut design = SurveyDesign::perfect();
        design.response_rates[Modality::BatchComputing.index()] = 0.8;
        design.response_rates[Modality::ScienceGateway.index()] = 0.1;
        let mut rng = SimRng::seeded(2);
        let r = run_survey(&users, &design, &mut rng);
        // Naive estimate under-counts gateways badly.
        let gw = Modality::ScienceGateway.index();
        assert!(
            r.naive_share[gw] < truth[gw] - 0.2,
            "naive {} vs truth {}",
            r.naive_share[gw],
            truth[gw]
        );
        // Weighting pulls it back near the truth.
        assert!(
            (r.weighted_share[gw] - truth[gw]).abs() < 0.08,
            "weighted {} vs truth {}",
            r.weighted_share[gw],
            truth[gw]
        );
        assert!(r.l1_error(&truth, true) < r.l1_error(&truth, false));
    }

    #[test]
    fn confusion_moves_mass_to_neighbours() {
        let users = population([0, 0, 0, 0, 1000, 0, 0]); // all ensemble
        let mut design = SurveyDesign::perfect();
        design.confusion = 0.3;
        let mut rng = SimRng::seeded(3);
        let r = run_survey(&users, &design, &mut rng);
        let batch = r.naive_share[Modality::BatchComputing.index()];
        assert!((batch - 0.3).abs() < 0.05, "confused mass {batch}");
        let ens = r.naive_share[Modality::Ensemble.index()];
        assert!((ens - 0.7).abs() < 0.05);
    }

    #[test]
    fn sampling_reduces_invitations() {
        let users = population([100, 100, 100, 0, 0, 0, 0]);
        let mut design = SurveyDesign::perfect();
        design.sample_fraction = 0.25;
        let mut rng = SimRng::seeded(4);
        let r = run_survey(&users, &design, &mut rng);
        assert!(r.invited > 40 && r.invited < 110, "invited {}", r.invited);
        assert_eq!(r.invited, r.responded);
    }

    #[test]
    fn empty_population_yields_zero_shares() {
        let mut rng = SimRng::seeded(5);
        let r = run_survey(&[], &SurveyDesign::realistic(), &mut rng);
        assert_eq!(r.invited, 0);
        assert!(r.naive_share.iter().all(|&s| s == 0.0));
        let truth = true_user_shares(&[]);
        assert!(truth.iter().all(|&s| s == 0.0));
    }

    #[test]
    #[should_panic(expected = "sample fraction")]
    fn bad_design_rejected() {
        let mut rng = SimRng::seeded(6);
        let mut d = SurveyDesign::perfect();
        d.sample_fraction = 0.0;
        run_survey(&[], &d, &mut rng);
    }
}
