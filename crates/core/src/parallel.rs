//! Sharded parallel execution of [`GridSim`] with conservative synchronization.
//!
//! The federation is nearly decomposable: sites interact only through the
//! metascheduler's routing decisions, WAN staging, and federation-wide fault
//! events. This module exploits that by giving every site's event stream to
//! a *shard* (a worker thread owning a subset of sites: queue, clock, and
//! scheduler state), while a *coordinator* on the calling thread owns
//! everything global — routing, workflow dependencies, the retry book,
//! samples, and record ingest.
//!
//! ## Determinism
//!
//! The serial engine delivers events in `(time, seq)` order. Shards replay
//! that exact order by keying their queues on [`Rank`] — the causal
//! coordinate of each event (see `tg_des::shard`) — so a sharded run's
//! output is **byte-identical** to the serial engine's, which the
//! differential suite enforces on every config and on random scenarios.
//!
//! ## Conservative protocol
//!
//! Execution is conservative (no rollback): a shard only executes events it
//! can prove safe.
//!
//! * Every cross-shard effect flows through the coordinator, and every
//!   effect an event execution produces carries a coordinate strictly above
//!   the executing event's. Hence a shard whose next event (queue head) is
//!   at coordinate `h` can emit nothing below `h`.
//! * The coordinator grants each shard a monotone *bound*
//!   `B_j = min(own head, min over other shards' heads)`; the shard
//!   free-runs every event strictly below its bound. Shards advance
//!   concurrently between coordinator actions.
//! * Heads that synchronize with global state — completions of *watched*
//!   jobs (dependencies of other jobs) and kill-inducing fault events — are
//!   *emission candidates*. Under the **batched protocol** (the default),
//!   only fault candidates park the shard for a classic clamped interlude
//!   ([`ToShard::ExecuteHead`]); watched completions strictly admitted by
//!   the standing bound execute in place, holding their export conversation
//!   mid-run, and every resolution ack **prefetches the next monotone
//!   bound** (plus any pending outbox batch) so the whole same-shard run
//!   costs the one grant round that admitted it. This is sound because only
//!   the globally minimal shard ever holds admitted work — a grant round
//!   sends exactly one `Advance`, so no peer is in flight during the
//!   exchange. `RunOptions::per_event_sync` restores the one-round-per-
//!   candidate protocol for differential tests and overhead measurement.
//! * Deadlock freedom: the globally minimal head is always executable —
//!   by its own shard (granted past it), by the coordinator (own queue), or
//!   as a candidate (all others are already beyond it). Bounds never need a
//!   null-message cycle because the coordinator sees all heads each round.
//! * The **execution governor** ([`Governor`]) watches sync rounds per
//!   event online and, on a host without two available cores or when
//!   protocol overhead crosses the tripwire, *folds* at an epoch boundary:
//!   every shard surrenders its queue (re-ranked into the coordinator's),
//!   site state, and buffered records, and the run finishes on the fused
//!   serial path — byte-identical output, ~serial wall time.
//!
//! Emission floors from the WAN [`Lookahead`] matrix (staging transfer
//! lower bounds) are computed for diagnostics and validated against the
//! live event stream in debug builds; the head-based bounds above subsume
//! them because routing (`schedule_now`) is zero-latency in this model —
//! see DESIGN.md for the argument.
//!
//! The coordinator also keeps two kinds of *pseudo event* replicas (neither
//! counted as delivered): `Event::NetUpdate` on every shard mirrors a link
//! fault's network effect, and an outage *mirror* on the coordinator keeps
//! `select_site`'s outage filter identical to the serial run while the
//! owning shard executes the real outage event.

use crate::scenario::Governor;
use crate::sim::{BufRecord, EvCtx, Event, ExecRole, ExportReply, FinishedSim, GridSim, SiteProbe};
use crossbeam::channel::{unbounded, Receiver, Sender};
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;
use std::time::Instant;
use tg_des::metrics::{MetricsRegistry, SyncProfile};
use tg_des::series::WindowedSeries;
use tg_des::shard::{Lookahead, Rank, RankQueue};
use tg_des::sketch::{QuantileSketch, SpanSketchbook};
use tg_des::{EventKey, SimDuration, SimTime};
use tg_fault::FaultEventKind;
use tg_model::SiteId;
use tg_workload::{Job, JobId};

/// Global ingest order of a buffered record: the executing event's
/// coordinate plus the record's position within that handler.
type Stamp = (SimTime, Rank, u32);

/// Spin iterations before falling back to a blocking receive. Sync rounds
/// between the coordinator and the shards are the sharded engine's unit of
/// overhead; most replies arrive within a microsecond, so burning a short
/// spin beats paying a futex sleep/wake per round.
const RECV_SPIN: usize = 512;

/// Real events the run must deliver before the execution governor's first
/// epoch check: long enough to smooth startup transients out of the
/// rounds-per-event ratio, short enough that a hopeless configuration (a
/// 1-core host) wastes only milliseconds before folding.
const GOV_WARMUP_EVENTS: u64 = 2048;

/// Events between governor re-evaluations after the warmup.
const GOV_CHECK_EVERY: u64 = 2048;

/// [`Governor::Auto`] tripwire: fold to serial when the run's cumulative
/// sync rounds (candidate + grant) per delivered event exceed this.
/// Healthy batched-protocol runs sit well under 0.1; a pathologically
/// chatty scenario (every run length 1) approaches the PR 6 ratio of
/// ~0.34, where the protocol overhead swamps any parallel gain.
const GOV_SYNC_ROUNDS_PER_EVENT_MAX: f64 = 0.25;

/// Spin only when the peer can actually run concurrently: on a machine with
/// a single available core (common in CI containers), spinning burns the
/// exact timeslice the sender needs and inverts the optimization.
fn spin_budget() -> usize {
    use std::sync::OnceLock;
    static BUDGET: OnceLock<usize> = OnceLock::new();
    *BUDGET.get_or_init(|| {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        if cores > 1 {
            RECV_SPIN
        } else {
            0
        }
    })
}

/// Spin-vs-block tally for one participant's channel receives. Observer
/// data only — it feeds [`SyncProfile`], never the simulation.
#[derive(Default, Clone, Copy)]
struct RecvTally {
    /// Receives satisfied within the spin window.
    spins: u64,
    /// Receives that fell back to a blocking wait.
    blocks: u64,
}

fn recv_spin<T>(rx: &Receiver<T>, tally: &mut RecvTally) -> T {
    for _ in 0..spin_budget() {
        match rx.try_recv() {
            Some(m) => {
                tally.spins += 1;
                return m;
            }
            None => std::hint::spin_loop(),
        }
    }
    tally.blocks += 1;
    rx.recv().unwrap_or_else(|_| panic!("peer alive"))
}

/// The coordinator's half of the sync-round profiler: protocol counters
/// plus wall-clock sketches, folded into a [`SyncProfile`] at merge. All
/// of it is gathered *outside* the deterministic simulation state, so it
/// can never perturb event order or RNG draws.
struct SyncRecorder {
    rounds: u64,
    coord_events: u64,
    candidate_rounds: u64,
    grant_rounds: u64,
    advances_sent: u64,
    parks_received: u64,
    interlude_messages: u64,
    bound_clamps: u64,
    batched_candidates: u64,
    governor_fired: bool,
    governor_at_events: u64,
    serial_tail_events: u64,
    recv: RecvTally,
    round_wall: QuantileSketch,
    candidate_wall: QuantileSketch,
    grant_occupancy: QuantileSketch,
}

impl SyncRecorder {
    fn new() -> Self {
        SyncRecorder {
            rounds: 0,
            coord_events: 0,
            candidate_rounds: 0,
            grant_rounds: 0,
            advances_sent: 0,
            parks_received: 0,
            interlude_messages: 0,
            bound_clamps: 0,
            batched_candidates: 0,
            governor_fired: false,
            governor_at_events: 0,
            serial_tail_events: 0,
            recv: RecvTally::default(),
            round_wall: QuantileSketch::new(),
            candidate_wall: QuantileSketch::new(),
            grant_occupancy: QuantileSketch::new(),
        }
    }

    fn into_profile(self, shards: usize, shard_recv: RecvTally) -> SyncProfile {
        SyncProfile {
            shards: shards as u64,
            rounds: self.rounds,
            coord_events: self.coord_events,
            candidate_rounds: self.candidate_rounds,
            grant_rounds: self.grant_rounds,
            advances_sent: self.advances_sent,
            parks_received: self.parks_received,
            interlude_messages: self.interlude_messages,
            bound_clamps: self.bound_clamps,
            batched_candidates: self.batched_candidates,
            governor_fired: self.governor_fired,
            governor_at_events: self.governor_at_events,
            serial_tail_events: self.serial_tail_events,
            recv_spins: self.recv.spins,
            recv_blocks: self.recv.blocks,
            shard_recv_spins: shard_recv.spins,
            shard_recv_blocks: shard_recv.blocks,
            round_wall: self.round_wall.summary(),
            candidate_wall: self.candidate_wall.summary(),
            grant_occupancy: self.grant_occupancy.summary(),
        }
    }
}

/// Cross-shard events awaiting delivery to one shard. Delivery is lazy: the
/// earliest undelivered coordinate joins that shard's *effective head* in
/// every driver decision, and the whole box rides along with the next
/// [`ToShard::Advance`] — so a burst of coordinator-routed events costs one
/// sync round instead of one per event.
#[derive(Default)]
struct Outbox {
    items: Vec<(SimTime, Rank, Event)>,
    min: Option<(SimTime, Rank)>,
}

impl Outbox {
    fn push(&mut self, at: SimTime, rank: Rank, ev: Event) {
        match &self.min {
            Some((t, r)) if (*t, r) <= (at, &rank) => {}
            _ => self.min = Some((at, rank.clone())),
        }
        self.items.push((at, rank, ev));
    }

    fn min(&self) -> Option<(SimTime, &Rank)> {
        self.min.as_ref().map(|(t, r)| (*t, r))
    }

    fn len(&self) -> usize {
        self.items.len()
    }

    fn take(&mut self) -> Vec<(SimTime, Rank, Event)> {
        self.min = None;
        std::mem::take(&mut self.items)
    }
}

/// Which shard owns a site. Sites are dealt round-robin so the large and
/// small sites of a config spread across workers.
fn owner(site: usize, shards: usize) -> usize {
    site % shards
}

/// An exclusive execution bound: `(t, rank)` is admitted iff it sorts
/// strictly below the bound. `rank: None` is a pure time horizon (admits
/// `t < time` only), which sorts below every same-time ranked bound.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Bound {
    time: SimTime,
    rank: Option<Rank>,
}

impl Bound {
    const ZERO: Bound = Bound {
        time: SimTime::ZERO,
        rank: None,
    };

    fn at(time: SimTime, rank: Rank) -> Bound {
        Bound {
            time,
            rank: Some(rank),
        }
    }

    fn admits(&self, t: SimTime, r: &Rank) -> bool {
        match &self.rank {
            None => t < self.time,
            Some(br) => t < self.time || (t == self.time && r < br),
        }
    }
}

impl PartialOrd for Bound {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Bound {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time
            .cmp(&other.time)
            .then_with(|| match (&self.rank, &other.rank) {
                (None, None) => std::cmp::Ordering::Equal,
                (None, Some(_)) => std::cmp::Ordering::Less,
                (Some(_), None) => std::cmp::Ordering::Greater,
                (Some(a), Some(b)) => a.cmp(b),
            })
    }
}

/// Coordinator → shard messages.
enum ToShard {
    /// Deliver cross-shard events and raise the execution bound; the shard
    /// runs everything admitted (stopping at candidates) and parks.
    Advance {
        bound: Bound,
        injects: Vec<(SimTime, Rank, Event)>,
    },
    /// Execute the (candidate) queue head, which must sit at exactly this
    /// coordinate. Exports flow during execution; the shard parks after.
    ExecuteHead { at: SimTime, rank: Rank },
    /// Acknowledge an in-flight export: restore the shared child/record
    /// cursors and absorb events routed back at the exporting shard.
    /// `bound`, when present, is a *prefetched* fresh execution bound
    /// computed from post-interlude heads — the shard adopts it in place of
    /// its standing grant and keeps running, so a same-shard run of
    /// candidates costs one grant round instead of one round each. The
    /// fresh bound may sort *below* the voided grant (interludes create new
    /// event chains), but always strictly above the candidate just
    /// acknowledged, so nothing already executed could have needed it.
    Ack {
        k: u64,
        sub: u32,
        injects: Vec<(SimTime, Rank, Event)>,
        bound: Option<Bound>,
    },
    /// Continue an RC routing decision on the shard owning the fabric,
    /// at the emitting event's coordinate with the shared cursors.
    ExecRcCont {
        now: SimTime,
        rank: Rank,
        k: u64,
        sub: u32,
        site: SiteId,
        job: Box<Job>,
    },
    /// The execution governor folded the run to serial: hand everything
    /// back ([`ToCoord::Surrendered`]) and exit the worker thread.
    Surrender,
    /// Drain finished: harvest and ship the final state.
    Finish,
}

/// A shard's parked state, reported to the coordinator.
struct ShardReport {
    /// Next unexecuted event's coordinate, if any.
    head: Option<(SimTime, Rank)>,
    /// Whether the head is a candidate the shard will *not* self-execute
    /// (needs [`ToShard::ExecuteHead`]): any emission candidate in
    /// per-event mode, fault candidates only in batched mode.
    candidate: bool,
    /// Real (counted) events this shard has executed so far — the
    /// governor's share of the global events-per-round ratio.
    delivered: u64,
    /// Emission floor: earliest possible completion of any watched job here
    /// (diagnostic; head-based bounds subsume it).
    floor: Option<SimTime>,
    /// Latest executed event time (diagnostic).
    last: SimTime,
    /// Real (counted) events remaining in the queue.
    pending: usize,
    /// Occupancy probes for the sites this shard owns.
    probes: Vec<(usize, SiteProbe)>,
}

/// Shard → coordinator messages.
enum ToCoord {
    /// The shard has executed everything it may and is waiting.
    Parked(ShardReport),
    /// A watched job finished (export from inside the completing handler).
    Finished {
        id: JobId,
        now: SimTime,
        rank: Rank,
        k: u64,
        sub: u32,
        probes: Vec<(usize, SiteProbe)>,
    },
    /// A fault kill needs the coordinator's retry book.
    KilledRetry {
        job: Box<Job>,
        now: SimTime,
        rank: Rank,
        k: u64,
        sub: u32,
        probes: Vec<(usize, SiteProbe)>,
    },
    /// A checkpointed kill schedules its requeue on the coordinator
    /// (fire-and-forget; the shard advanced the child cursor itself).
    KilledCheckpoint {
        at: SimTime,
        killed_at: SimTime,
        rank: Rank,
        job: Box<Job>,
    },
    /// An [`ToShard::ExecRcCont`] finished: shared cursors plus the owner's
    /// refreshed parked state (its queue may have changed).
    RcContDone {
        k: u64,
        sub: u32,
        report: ShardReport,
    },
    /// Response to [`ToShard::Surrender`]: the shard's whole remaining
    /// state, ready to fold into the coordinator for the serial tail.
    Surrendered(Box<SurrenderedShard>),
    /// Response to [`ToShard::Finish`].
    Final(Box<ShardFinal>),
}

/// Everything a shard hands back when the governor folds the run: the
/// authoritative per-site simulation state plus the shard's undelivered
/// queue (with its local keys, so the coordinator can translate the
/// completion keys held by running jobs) and its observer tallies.
struct SurrenderedShard {
    yielded: crate::sim::ShardYield,
    queue: Vec<(SimTime, Rank, EventKey, Event)>,
    records: Vec<(Stamp, BufRecord)>,
    delivered: u64,
    last: SimTime,
    peak: usize,
    recv: RecvTally,
}

/// Everything a shard ships home at the end of the run.
struct ShardFinal {
    federation: tg_model::Federation,
    metrics: MetricsRegistry,
    fault_report: Option<tg_fault::FaultReport>,
    records: Vec<(Stamp, BufRecord)>,
    jobs_done: usize,
    delivered: u64,
    last: SimTime,
    peak: usize,
    /// Span sketches recorded by this shard's events (exactly mergeable).
    sketches: SpanSketchbook,
    /// Windowed series columns this shard wrote (single writer per site).
    series: WindowedSeries,
    /// This shard's channel-receive tally (observer data).
    recv: RecvTally,
}

/// How an emission candidate synchronizes with the coordinator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CandidateKind {
    /// A watched-job completion: its only export is [`ToCoord::Finished`],
    /// which blocks on an [`ToShard::Ack`] — so in batched mode the shard
    /// may execute it itself whenever its bound strictly admits it, and the
    /// coordinator prefetches the next bound on the Ack.
    Watched,
    /// A kill-inducing fault event: it can fire-and-forget
    /// [`ToCoord::KilledCheckpoint`] exports (no Ack to carry a fresh
    /// bound), so it always parks the shard for a classic
    /// [`ToShard::ExecuteHead`] round.
    Fault,
}

/// Classify an emission candidate — an event whose execution may export
/// state to the coordinator and therefore needs globally synchronized
/// pacing. `fault_candidate[i]` pre-classifies fault schedule entries
/// (kill-inducing kinds: node crash, site outage).
fn candidate_kind(
    ev: &Event,
    watched: &HashSet<JobId>,
    fault_candidate: &[bool],
) -> Option<CandidateKind> {
    match ev {
        Event::Complete { id } if watched.contains(id) => Some(CandidateKind::Watched),
        Event::RcComplete { job, .. } if watched.contains(&job.id) => Some(CandidateKind::Watched),
        Event::Fault(i) if fault_candidate[*i] => Some(CandidateKind::Fault),
        _ => None,
    }
}

/// Does this head event park its shard for coordinator pacing? In batched
/// mode only fault candidates do; watched completions are self-executed
/// under the bound (their `Finished` export blocks on an Ack, which carries
/// the next bound). In per-event mode every candidate parks (PR 6).
fn parks_on(
    ev: &Event,
    watched: &HashSet<JobId>,
    fault_candidate: &[bool],
    per_event: bool,
) -> bool {
    match candidate_kind(ev, watched, fault_candidate) {
        Some(CandidateKind::Fault) => true,
        Some(CandidateKind::Watched) => per_event,
        None => false,
    }
}

/// The [`EvCtx`] a shard's handlers run against: local rank queue, shared
/// child/record cursors, emission-floor bookkeeping, and the export channel
/// to the coordinator.
struct ShardCtx<'a> {
    queue: &'a mut RankQueue<Event>,
    now: SimTime,
    rank: Rank,
    k: u64,
    sub: u32,
    watched: &'a HashSet<JobId>,
    watched_bounds: &'a mut HashMap<JobId, SimTime>,
    records: &'a mut Vec<(Stamp, BufRecord)>,
    /// The shard's standing execution bound; acknowledgements carrying a
    /// prefetched bound overwrite it mid-run.
    bound: &'a mut Bound,
    tx: &'a Sender<ToCoord>,
    rx: &'a Receiver<ToShard>,
    owned: &'a [usize],
    net_updates: &'a mut usize,
    in_flight: bool,
    recv: &'a mut RecvTally,
}

impl ShardCtx<'_> {
    fn child_rank(&mut self) -> Rank {
        let r = self.rank.child(self.now, self.k);
        self.k += 1;
        r
    }

    fn owned_probes(&self, probes: Vec<SiteProbe>) -> Vec<(usize, SiteProbe)> {
        self.owned.iter().map(|&i| (i, probes[i])).collect()
    }
}

impl EvCtx for ShardCtx<'_> {
    fn now(&self) -> SimTime {
        self.now
    }
    fn pending(&self) -> usize {
        self.queue.len() - *self.net_updates
    }
    fn schedule_at(&mut self, at: SimTime, ev: Event) -> EventKey {
        debug_assert!(at >= self.now, "scheduling into the past");
        let at = at.max(self.now);
        let rank = self.child_rank();
        self.queue.schedule(at, rank, ev)
    }
    fn schedule_after(&mut self, after: SimDuration, ev: Event) -> EventKey {
        self.schedule_at(self.now + after, ev)
    }
    fn schedule_now(&mut self, ev: Event) -> EventKey {
        self.schedule_at(self.now, ev)
    }
    fn cancel(&mut self, key: EventKey) -> bool {
        self.queue.cancel(key)
    }
    fn exec_mode(&self) -> ExecRole {
        ExecRole::Shard
    }
    fn is_watched(&self, id: JobId) -> bool {
        self.watched.contains(&id)
    }
    fn buffers_records(&self) -> bool {
        true
    }
    fn buffer_record(&mut self, rec: BufRecord) {
        self.records
            .push(((self.now, self.rank.clone(), self.sub), rec));
        self.sub += 1;
    }
    fn export_finish(&mut self, id: JobId, probes: Vec<SiteProbe>) {
        let probes = self.owned_probes(probes);
        self.tx
            .send(ToCoord::Finished {
                id,
                now: self.now,
                rank: self.rank.clone(),
                k: self.k,
                sub: self.sub,
                probes,
            })
            .unwrap_or_else(|_| panic!("coordinator alive"));
        self.in_flight = true;
    }
    fn export_requeue(&mut self, at: SimTime, killed_at: SimTime, job: Box<Job>) {
        let rank = self.child_rank();
        self.tx
            .send(ToCoord::KilledCheckpoint {
                at,
                killed_at,
                rank,
                job,
            })
            .unwrap_or_else(|_| panic!("coordinator alive"));
    }
    fn export_kill_retry(&mut self, job: Box<Job>, probes: Vec<SiteProbe>) {
        let probes = self.owned_probes(probes);
        self.tx
            .send(ToCoord::KilledRetry {
                job,
                now: self.now,
                rank: self.rank.clone(),
                k: self.k,
                sub: self.sub,
                probes,
            })
            .unwrap_or_else(|_| panic!("coordinator alive"));
        self.in_flight = true;
    }
    fn export_in_flight(&self) -> bool {
        self.in_flight
    }
    fn recv_export_reply(&mut self) -> ExportReply {
        match recv_spin(self.rx, self.recv) {
            ToShard::Ack {
                k,
                sub,
                injects,
                bound,
            } => {
                self.k = k;
                self.sub = sub;
                for (at, rank, ev) in injects {
                    debug_assert!(!matches!(ev, Event::NetUpdate(_)));
                    self.queue.schedule(at, rank, ev);
                }
                if let Some(b) = bound {
                    *self.bound = b;
                }
                self.in_flight = false;
                ExportReply::Acked
            }
            ToShard::ExecRcCont {
                now,
                rank,
                k,
                sub,
                site,
                job,
            } => {
                debug_assert_eq!(now, self.now, "rc continuation at the emitting coordinate");
                self.rank = rank;
                self.k = k;
                self.sub = sub;
                ExportReply::RcCont { site, job }
            }
            _ => unreachable!("only Ack/ExecRcCont while an export is in flight"),
        }
    }
    fn rc_cont_done(&mut self, _probes: Vec<SiteProbe>) {
        unreachable!("mid-export rc continuations are answered by the worker loop")
    }
    fn note_watched_pending(&mut self, id: JobId, earliest_finish: SimTime) {
        self.watched_bounds.insert(id, earliest_finish);
    }
    fn note_watched_started(&mut self, id: JobId, end: SimTime) {
        self.watched_bounds.insert(id, end);
    }
    fn note_watched_done(&mut self, id: JobId) {
        self.watched_bounds.remove(&id);
    }
}

/// One worker shard: a [`GridSim`] replica (authoritative only for its owned
/// sites), a rank-ordered local queue, and the conservative run loop.
struct Shard {
    sim: GridSim,
    queue: RankQueue<Event>,
    bound: Bound,
    watched: Arc<HashSet<JobId>>,
    watched_bounds: HashMap<JobId, SimTime>,
    fault_candidate: Arc<Vec<bool>>,
    records: Vec<(Stamp, BufRecord)>,
    owned: Vec<usize>,
    net_updates: usize,
    delivered: u64,
    last: SimTime,
    /// PR 6 compatibility mode: park on *every* candidate (watched
    /// completions included) instead of self-executing admitted ones.
    /// Kept for differential testing of the batched protocol.
    per_event: bool,
    tx: Sender<ToCoord>,
    rx: Receiver<ToShard>,
    recv: RecvTally,
}

impl Shard {
    /// Prime the shard's queue: owned fault events as real events, link
    /// fault events as uncounted [`Event::NetUpdate`] replicas. Root ranks
    /// mirror the serial priming sequence (submits, then the sample tick,
    /// then the fault schedule).
    fn prime(&mut self, fault_rank_base: u64, me: usize, shards: usize) {
        let Some(faults) = self.sim.faults.as_ref() else {
            return;
        };
        let schedule: Vec<(SimTime, FaultEventKind)> = faults
            .schedule
            .events
            .iter()
            .map(|e| (e.at, e.kind))
            .collect();
        for (i, (at, kind)) in schedule.into_iter().enumerate() {
            let rank = Rank::root(fault_rank_base + i as u64);
            match kind {
                FaultEventKind::LinkDegrade { .. } | FaultEventKind::LinkRestore { .. } => {
                    // Every shard replays link effects on its network copy.
                    self.queue.schedule(at, rank, Event::NetUpdate(i));
                    self.net_updates += 1;
                }
                FaultEventKind::NodeCrash { site, .. }
                | FaultEventKind::NodeRepair { site, .. }
                | FaultEventKind::OutageNotice { site, .. }
                | FaultEventKind::SiteOutage { site }
                | FaultEventKind::SiteRecovery { site } => {
                    if owner(site.index(), shards) == me {
                        self.queue.schedule(at, rank, Event::Fault(i));
                    }
                }
            }
        }
    }

    fn execute(&mut self, at: SimTime, rank: Rank, ev: Event) {
        if let Event::NetUpdate(i) = ev {
            // Pseudo event: replicate the link change, count nothing.
            self.sim.apply_net_update(i);
            self.net_updates -= 1;
            return;
        }
        self.delivered += 1;
        self.last = self.last.max(at);
        let mut ctx = ShardCtx {
            queue: &mut self.queue,
            now: at,
            rank,
            k: 0,
            sub: 0,
            watched: &self.watched,
            watched_bounds: &mut self.watched_bounds,
            records: &mut self.records,
            bound: &mut self.bound,
            tx: &self.tx,
            rx: &self.rx,
            owned: &self.owned,
            net_updates: &mut self.net_updates,
            in_flight: false,
            recv: &mut self.recv,
        };
        self.sim.dispatch_event(&mut ctx, ev);
        debug_assert!(!ctx.in_flight, "handlers drain exports before returning");
    }

    /// Run every admitted event, stopping at parking candidates.
    fn run_admitted(&mut self) {
        loop {
            let Some((at, rank, ev)) = self.queue.peek_full() else {
                return;
            };
            if parks_on(ev, &self.watched, &self.fault_candidate, self.per_event) {
                return;
            }
            // Pseudo NetUpdate replicas exist on *every* shard at the same
            // root coordinate, so the exclusive bound can never pass one
            // shard's copy while another's is its head. Inclusive admission
            // at exactly the bound coordinate is safe for them: a bound
            // reaching that coordinate proves no real event below it exists
            // anywhere, so no arrival below it can ever land here.
            let admitted = self.bound.admits(at, rank)
                || (matches!(ev, Event::NetUpdate(_))
                    && self.bound.time == at
                    && self.bound.rank.as_ref() == Some(rank));
            if !admitted {
                return;
            }
            let (at, rank, ev) = self.queue.pop().expect("peeked");
            self.execute(at, rank, ev);
        }
    }

    fn report(&mut self) -> ShardReport {
        let head = self.queue.peek().map(|(t, r)| (t, r.clone()));
        let candidate = self.queue.peek_full().is_some_and(|(_, _, ev)| {
            parks_on(ev, &self.watched, &self.fault_candidate, self.per_event)
        });
        let probes = self.sim.all_probes();
        ShardReport {
            head,
            candidate,
            delivered: self.delivered,
            floor: self.watched_bounds.values().min().copied(),
            last: self.last,
            pending: self.queue.len() - self.net_updates,
            probes: self.owned.iter().map(|&i| (i, probes[i])).collect(),
        }
    }

    fn park(&mut self) {
        let report = self.report();
        self.tx
            .send(ToCoord::Parked(report))
            .unwrap_or_else(|_| panic!("coordinator alive"));
    }

    fn run(mut self, fault_rank_base: u64, me: usize, shards: usize) {
        self.prime(fault_rank_base, me, shards);
        self.park();
        loop {
            match recv_spin(&self.rx, &mut self.recv) {
                ToShard::Advance { bound, injects } => {
                    for (at, rank, ev) in injects {
                        self.queue.schedule(at, rank, ev);
                    }
                    debug_assert!(bound >= self.bound, "bounds are monotone");
                    self.bound = bound;
                    self.run_admitted();
                    self.park();
                }
                ToShard::ExecuteHead { at, rank } => {
                    let (t, r, ev) = self.queue.pop().expect("candidate head exists");
                    assert!(
                        t == at && r == rank,
                        "candidate head moved between park and execute"
                    );
                    // Executing a candidate voids this shard's standing
                    // bound: the interlude it triggers creates fresh event
                    // chains (released waiters, requeues) whose own watched
                    // completions may land *below* a bound granted earlier —
                    // including the unbounded grant issued when every other
                    // queue was momentarily empty. Clamp to the candidate's
                    // coordinate so the next events here wait for a fresh
                    // grant computed from post-interlude heads.
                    self.bound = Bound::at(t, r.clone());
                    self.execute(t, r, ev);
                    self.run_admitted();
                    self.park();
                }
                ToShard::ExecRcCont {
                    now,
                    rank,
                    k,
                    sub,
                    site,
                    job,
                } => {
                    // A routing continuation at the coordinator's current
                    // coordinate: run it with the shared cursors and report
                    // the refreshed state (the queue may have changed).
                    let mut ctx = ShardCtx {
                        queue: &mut self.queue,
                        now,
                        rank,
                        k,
                        sub,
                        watched: &self.watched,
                        watched_bounds: &mut self.watched_bounds,
                        records: &mut self.records,
                        bound: &mut self.bound,
                        tx: &self.tx,
                        rx: &self.rx,
                        owned: &self.owned,
                        net_updates: &mut self.net_updates,
                        in_flight: false,
                        recv: &mut self.recv,
                    };
                    self.sim.route_rc(&mut ctx, site, *job);
                    debug_assert!(!ctx.in_flight);
                    let (k, sub) = (ctx.k, ctx.sub);
                    let report = self.report();
                    self.tx
                        .send(ToCoord::RcContDone { k, sub, report })
                        .unwrap_or_else(|_| panic!("coordinator alive"));
                }
                ToShard::Ack { .. } => {
                    unreachable!("acks are consumed inside recv_export_reply")
                }
                ToShard::Surrender => {
                    // Governor fold: ship back the owned simulation state
                    // and the undelivered queue (with this shard's local
                    // keys so the coordinator can translate the completion
                    // keys of running jobs), then exit the worker.
                    let q = std::mem::replace(&mut self.queue, RankQueue::new());
                    let peak = q.peak_len();
                    let queue: Vec<(SimTime, Rank, EventKey, Event)> = q.drain();
                    let msg = SurrenderedShard {
                        yielded: self.sim.surrender(),
                        queue,
                        records: self.records,
                        delivered: self.delivered,
                        last: self.last,
                        peak,
                        recv: self.recv,
                    };
                    self.tx
                        .send(ToCoord::Surrendered(Box::new(msg)))
                        .unwrap_or_else(|_| panic!("coordinator alive"));
                    return;
                }
                ToShard::Finish => {
                    assert!(self.queue.is_empty(), "finish with events pending");
                    assert!(
                        self.watched_bounds.is_empty(),
                        "finish with watched jobs unresolved"
                    );
                    self.sim.harvest_scheduler_counters();
                    let metrics =
                        std::mem::replace(&mut self.sim.metrics, MetricsRegistry::disabled());
                    let fault_report = self.sim.faults.take().map(|f| f.report);
                    let sketches =
                        std::mem::replace(&mut self.sim.obs.sketches, SpanSketchbook::disabled());
                    let series =
                        std::mem::replace(&mut self.sim.obs.series, WindowedSeries::disabled());
                    let fin = ShardFinal {
                        federation: self.sim.federation,
                        metrics,
                        fault_report,
                        records: self.records,
                        jobs_done: self.sim.jobs_done,
                        delivered: self.delivered,
                        last: self.last,
                        peak: self.queue.peak_len(),
                        sketches,
                        series,
                        recv: self.recv,
                    };
                    self.tx
                        .send(ToCoord::Final(Box::new(fin)))
                        .unwrap_or_else(|_| panic!("coordinator alive"));
                    return;
                }
            }
        }
    }
}

/// The [`EvCtx`] the coordinator's handlers run against: its own rank
/// queue for global events, per-shard outboxes for cross-shard events, and
/// the synchronous RC-continuation channel.
struct CoordCtx<'a> {
    queue: &'a mut RankQueue<Event>,
    now: SimTime,
    rank: Rank,
    k: u64,
    sub: u32,
    records: &'a mut Vec<(Stamp, BufRecord)>,
    outboxes: &'a mut [Outbox],
    shards: usize,
    to_shards: &'a [Sender<ToShard>],
    from_shards: &'a [Receiver<ToCoord>],
    reports: &'a mut [ShardReport],
    probe_view: &'a mut [SiteProbe],
    recv: &'a mut RecvTally,
    /// Post-fold serial tail: the shards are gone, every event executes
    /// here under the serial role, nothing routes to an outbox, and the
    /// queue is in tail mode (`RankQueue::fuse_serial`). Records skip the
    /// buffer and flow straight through the lossy ingest — execution is
    /// already in serial order, so emission order *is* the replay order.
    fused: bool,
}

impl CoordCtx<'_> {
    fn child_rank(&mut self) -> Rank {
        let r = self.rank.child(self.now, self.k);
        self.k += 1;
        r
    }
}

impl EvCtx for CoordCtx<'_> {
    fn now(&self) -> SimTime {
        self.now
    }
    fn pending(&self) -> usize {
        // The serial engine's queue population, partitioned: global events
        // here, site-local events on the shards, in-flight cross-shard
        // events in the outboxes. Pseudo replicas are excluded on both
        // sides (shard reports already exclude them).
        self.queue.len()
            + self.reports.iter().map(|r| r.pending).sum::<usize>()
            + self.outboxes.iter().map(Outbox::len).sum::<usize>()
    }
    fn schedule_at(&mut self, at: SimTime, ev: Event) -> EventKey {
        debug_assert!(at >= self.now, "scheduling into the past");
        let at = at.max(self.now);
        if self.fused {
            // Tail mode: the queue allocates inline seqs in call order,
            // which is exactly the serial scheduling order. No rank.
            return self.queue.schedule_tail(at, ev);
        }
        let rank = self.child_rank();
        match &ev {
            Event::Enqueue { site, .. } | Event::RcComplete { site, .. } => {
                // Site-local events execute on the owning shard.
                self.outboxes[owner(site.index(), self.shards)].push(at, rank, ev);
                // Cross-shard events are never cancelled (only completion
                // events are, and those live on the shard that created
                // them), so a placeholder key is safe.
                EventKey::placeholder()
            }
            _ => self.queue.schedule(at, rank, ev),
        }
    }
    fn schedule_after(&mut self, after: SimDuration, ev: Event) -> EventKey {
        self.schedule_at(self.now + after, ev)
    }
    fn schedule_now(&mut self, ev: Event) -> EventKey {
        self.schedule_at(self.now, ev)
    }
    fn cancel(&mut self, key: EventKey) -> bool {
        self.queue.cancel(key)
    }
    fn exec_mode(&self) -> ExecRole {
        if self.fused {
            ExecRole::Serial
        } else {
            ExecRole::Coord
        }
    }
    fn buffers_records(&self) -> bool {
        // Pre-fold, records buffer with causal stamps for the merge-time
        // replay; the fused tail executes in serial order, so its records
        // take the serial engine's direct-ingest path.
        !self.fused
    }
    fn buffer_record(&mut self, rec: BufRecord) {
        self.records
            .push(((self.now, self.rank.clone(), self.sub), rec));
        self.sub += 1;
    }
    fn export_route_rc(&mut self, site: SiteId, job: Box<Job>) -> Vec<(usize, SiteProbe)> {
        let o = owner(site.index(), self.shards);
        self.to_shards[o]
            .send(ToShard::ExecRcCont {
                now: self.now,
                rank: self.rank.clone(),
                k: self.k,
                sub: self.sub,
                site,
                job,
            })
            .unwrap_or_else(|_| panic!("shard alive"));
        match recv_spin(&self.from_shards[o], self.recv) {
            ToCoord::RcContDone { k, sub, report } => {
                self.k = k;
                self.sub = sub;
                let probes = report.probes.clone();
                for &(i, p) in &report.probes {
                    self.probe_view[i] = p;
                }
                // The owner's queue changed (a completion or enqueue may
                // now precede its old head); its parked state is refreshed
                // wholesale, including candidate classification.
                self.reports[o] = report;
                probes
            }
            _ => unreachable!("rc continuation answers synchronously"),
        }
    }
}

/// The coordinator: global [`GridSim`] replica (authoritative for routing,
/// dependencies, retries, samples, metrics series, and record ingest), its
/// own queue of global events, and the synchronization driver.
struct Coordinator {
    sim: GridSim,
    queue: RankQueue<Event>,
    /// Uncounted outage mirrors `(at, rank, schedule index)`, sorted; they
    /// share the paired real event's coordinate and apply just before it.
    mirrors: VecDeque<(SimTime, Rank, usize)>,
    outboxes: Vec<Outbox>,
    granted: Vec<Bound>,
    reports: Vec<ShardReport>,
    probe_view: Vec<SiteProbe>,
    records: Vec<(Stamp, BufRecord)>,
    to_shards: Vec<Sender<ToShard>>,
    from_shards: Vec<Receiver<ToCoord>>,
    delivered: u64,
    last: SimTime,
    prof: SyncRecorder,
    /// PR 6 compatibility mode (see [`Shard::per_event`]).
    per_event: bool,
    /// The adaptive execution governor's tripwire configuration.
    governor: Governor,
    /// Next delivered-events threshold at which the governor re-evaluates.
    gov_next_check: u64,
    /// Set once the governor has folded the run to the serial tail.
    fused: bool,
    /// Peak queue lengths handed over by surrendered shards.
    folded_peak: usize,
    /// Channel-receive tallies handed over by surrendered shards.
    folded_recv: RecvTally,
}

impl Coordinator {
    fn shards(&self) -> usize {
        self.to_shards.len()
    }

    /// Prime the coordinator's queue: the whole submit stream (routing is
    /// coordinator-owned), the sample tick, link fault events as real
    /// (counted) events, and outage mirrors. Root rank assignment mirrors
    /// the serial engine's priming seq order exactly.
    fn prime(&mut self) -> u64 {
        let submits: Vec<(SimTime, usize)> = self
            .sim
            .jobs
            .iter()
            .enumerate()
            .map(|(i, j)| (j.as_ref().expect("unconsumed").submit_time, i))
            .collect();
        for (at, i) in submits {
            self.queue
                .schedule(at, Rank::root(i as u64), Event::Submit(i));
        }
        let mut next = self.sim.jobs.len() as u64;
        if let Some(interval) = self.sim.sample_interval {
            self.queue
                .schedule(SimTime::ZERO + interval, Rank::root(next), Event::Sample);
            next += 1;
        }
        let fault_rank_base = next;
        if let Some(f) = self.sim.faults.as_ref() {
            let schedule: Vec<(SimTime, FaultEventKind)> =
                f.schedule.events.iter().map(|e| (e.at, e.kind)).collect();
            let mut mirrors = Vec::new();
            for (i, (at, kind)) in schedule.into_iter().enumerate() {
                let rank = Rank::root(fault_rank_base + i as u64);
                match kind {
                    FaultEventKind::LinkDegrade { .. } | FaultEventKind::LinkRestore { .. } => {
                        // Link faults touch only coordinator-owned state
                        // (report, degradation windows) plus the network
                        // replicas, which shards mirror via NetUpdate.
                        self.queue.schedule(at, rank, Event::Fault(i));
                    }
                    FaultEventKind::SiteOutage { .. } | FaultEventKind::SiteRecovery { .. } => {
                        mirrors.push((at, rank, i));
                    }
                    _ => {}
                }
            }
            mirrors.sort_by(|a, b| a.0.cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
            self.mirrors = mirrors.into();
        }
        fault_rank_base
    }

    /// Pre-spawn priming for a run folding before any shard exists: stage
    /// the entire primed event set straight onto the fused tail in serial
    /// `(time, priming-seq)` order — no ranks, no mirrors, and every
    /// fault-schedule kind as a real coordinator event, since the serial
    /// handler applies each one itself. A stable sort by time keeps the
    /// priming order (submits by job index, then the sample tick, then the
    /// fault schedule) as the tie-break, which is exactly the serial
    /// engine's seq order.
    fn prime_fused(&mut self) {
        let mut entries: Vec<(SimTime, Event)> = self
            .sim
            .jobs
            .iter()
            .enumerate()
            .map(|(i, j)| {
                (
                    j.as_ref().expect("unconsumed").submit_time,
                    Event::Submit(i),
                )
            })
            .collect();
        if let Some(interval) = self.sim.sample_interval {
            entries.push((SimTime::ZERO + interval, Event::Sample));
        }
        if let Some(f) = self.sim.faults.as_ref() {
            entries.extend(
                f.schedule
                    .events
                    .iter()
                    .enumerate()
                    .map(|(i, e)| (e.at, Event::Fault(i))),
            );
        }
        entries.sort_by_key(|e| e.0);
        self.queue.fuse_primed(entries);
        self.fused = true;
    }

    fn recv_parked(&mut self, shard: usize) {
        match recv_spin(&self.from_shards[shard], &mut self.prof.recv) {
            ToCoord::Parked(report) => {
                self.prof.parks_received += 1;
                for &(i, p) in &report.probes {
                    self.probe_view[i] = p;
                }
                self.reports[shard] = report;
            }
            _ => unreachable!("an advancing shard reports by parking"),
        }
    }

    /// Apply every pending outage mirror at or below `limit` (the
    /// coordinate about to execute). The paired real outage event shares
    /// the mirror's coordinate; applying the mirror first reproduces the
    /// serial ordering of `down_since` before the kill loop.
    fn apply_mirrors_through(&mut self, limit: (SimTime, &Rank)) {
        while let Some((at, rank, _)) = self.mirrors.front() {
            if (*at, rank) > (limit.0, limit.1) {
                break;
            }
            let (at, _, i) = self.mirrors.pop_front().expect("peeked");
            self.sim.apply_outage_mirror(i, at);
        }
    }

    /// A fresh execution bound for `emitter`, computed from the *current*
    /// heads: the minimum over the coordinator's own queue head and every
    /// other shard's effective head. Callers must guarantee every other
    /// shard is parked with a fresh report (nothing of theirs in flight),
    /// or the bound could run ahead of an unreported event.
    fn refresh_bound(&mut self, emitter: usize) -> Bound {
        let mut b: Option<Bound> = self.queue.peek().map(|(t, r)| Bound::at(t, r.clone()));
        for m in 0..self.shards() {
            if m == emitter {
                continue;
            }
            if let Some((t, r, _)) = self.effective_head(m) {
                let hb = Bound::at(t, r);
                b = Some(match b {
                    None => hb,
                    Some(cur) => cur.min(hb),
                });
            }
        }
        b.unwrap_or(Bound {
            time: SimTime::MAX,
            rank: None,
        })
    }

    /// Process export conversations from `emitter` until it parks — after
    /// sending [`ToShard::ExecuteHead`] (classic candidate round,
    /// `refresh: false`) or [`ToShard::Advance`] into a batched run
    /// (`refresh: true`, every candidate resolution piggybacks the next
    /// monotone bound on its Ack so the whole same-shard run costs this one
    /// round).
    fn interlude(&mut self, emitter: usize, refresh: bool) {
        loop {
            let msg = recv_spin(&self.from_shards[emitter], &mut self.prof.recv);
            if !matches!(msg, ToCoord::Parked(_)) {
                self.prof.interlude_messages += 1;
            }
            match msg {
                ToCoord::Parked(report) => {
                    self.prof.parks_received += 1;
                    for &(i, p) in &report.probes {
                        self.probe_view[i] = p;
                    }
                    self.reports[emitter] = report;
                    return;
                }
                ToCoord::Finished {
                    id,
                    now,
                    rank,
                    k,
                    sub,
                    probes,
                } => {
                    for &(i, p) in &probes {
                        self.probe_view[i] = p;
                    }
                    self.sim.probes = Some(self.probe_view.clone());
                    let mut ctx = CoordCtx {
                        queue: &mut self.queue,
                        now,
                        rank,
                        k,
                        sub,
                        records: &mut self.records,
                        outboxes: &mut self.outboxes,
                        shards: self.to_shards.len(),
                        to_shards: &self.to_shards,
                        from_shards: &self.from_shards,
                        reports: &mut self.reports,
                        probe_view: &mut self.probe_view,
                        recv: &mut self.prof.recv,
                        fused: false,
                    };
                    self.sim.release_deps(&mut ctx, id);
                    let (k, sub) = (ctx.k, ctx.sub);
                    let injects = self.outboxes[emitter].take();
                    let bound = if refresh {
                        // Prefetch the next bound from post-interlude heads
                        // so the shard keeps running without another round.
                        // It may sort below the standing grant (the
                        // interlude just created fresh event chains), but
                        // always strictly above the completion being
                        // acknowledged.
                        let b = self.refresh_bound(emitter);
                        self.prof.batched_candidates += 1;
                        if b < self.granted[emitter] {
                            // The interlude's fresh chains pulled the
                            // horizon back below the standing grant.
                            self.prof.bound_clamps += 1;
                        }
                        self.granted[emitter] = b.clone();
                        Some(b)
                    } else {
                        None
                    };
                    self.to_shards[emitter]
                        .send(ToShard::Ack {
                            k,
                            sub,
                            injects,
                            bound,
                        })
                        .unwrap_or_else(|_| panic!("shard alive"));
                }
                ToCoord::KilledRetry {
                    job,
                    now,
                    rank,
                    k,
                    sub,
                    probes,
                } => {
                    for &(i, p) in &probes {
                        self.probe_view[i] = p;
                    }
                    self.sim.probes = Some(self.probe_view.clone());
                    let mut ctx = CoordCtx {
                        queue: &mut self.queue,
                        now,
                        rank,
                        k,
                        sub,
                        records: &mut self.records,
                        outboxes: &mut self.outboxes,
                        shards: self.to_shards.len(),
                        to_shards: &self.to_shards,
                        from_shards: &self.from_shards,
                        reports: &mut self.reports,
                        probe_view: &mut self.probe_view,
                        recv: &mut self.prof.recv,
                        fused: false,
                    };
                    self.sim.coord_kill_retry(&mut ctx, job);
                    let (k, sub) = (ctx.k, ctx.sub);
                    let injects = self.outboxes[emitter].take();
                    // Kills happen only on the classic fault-candidate path
                    // (kill-inducing events never batch), so no prefetch.
                    self.to_shards[emitter]
                        .send(ToShard::Ack {
                            k,
                            sub,
                            injects,
                            bound: None,
                        })
                        .unwrap_or_else(|_| panic!("shard alive"));
                }
                ToCoord::KilledCheckpoint {
                    at,
                    killed_at,
                    rank,
                    job,
                } => {
                    // Fire-and-forget: the requeue re-enters routing here.
                    self.queue
                        .schedule(at, rank, Event::Requeue { job, killed_at });
                }
                _ => unreachable!("unexpected message during candidate execution"),
            }
        }
    }

    /// Execute one event from the coordinator's own queue.
    fn execute_own(&mut self, at: SimTime, rank: Rank, ev: Event) {
        self.delivered += 1;
        self.last = self.last.max(at);
        if !self.fused {
            self.sim.probes = Some(self.probe_view.clone());
        }
        let mut ctx = CoordCtx {
            queue: &mut self.queue,
            now: at,
            rank,
            k: 0,
            sub: 0,
            records: &mut self.records,
            outboxes: &mut self.outboxes,
            shards: self.to_shards.len(),
            to_shards: &self.to_shards,
            from_shards: &self.from_shards,
            reports: &mut self.reports,
            probe_view: &mut self.probe_view,
            recv: &mut self.prof.recv,
            fused: self.fused,
        };
        self.sim.dispatch_event(&mut ctx, ev);
    }

    /// A shard's *effective head*: its parked queue head or the earliest
    /// undelivered cross-shard event bound for it, whichever sorts lower.
    /// Undelivered events are part of the global order; ignoring them would
    /// let decisions run ahead of an event that must execute first. The
    /// `bool` is whether the head is a (delivered, in-queue) candidate.
    fn effective_head(&self, j: usize) -> Option<(SimTime, Rank, bool)> {
        let q = self.reports[j].head.as_ref();
        let o = self.outboxes[j].min();
        match (q, o) {
            (Some((qt, qr)), Some((ot, or))) => {
                if (*qt, qr) < (ot, or) {
                    Some((*qt, qr.clone(), self.reports[j].candidate))
                } else {
                    Some((ot, or.clone(), false))
                }
            }
            (Some((qt, qr)), None) => Some((*qt, qr.clone(), self.reports[j].candidate)),
            (None, Some((ot, or))) => Some((ot, or.clone(), false)),
            (None, None) => None,
        }
    }

    /// Total real events delivered across every participant, from the
    /// shards' parked reports (exact whenever all shards are parked —
    /// i.e. at every round top).
    fn total_events(&self) -> u64 {
        self.delivered + self.reports.iter().map(|r| r.delivered).sum::<u64>()
    }

    /// Evaluate the execution governor at an epoch boundary. Cheap: one
    /// comparison per round until the next epoch threshold is crossed.
    fn governor_trips(&mut self) -> bool {
        if matches!(self.governor, Governor::Off) {
            return false;
        }
        let events = self.total_events();
        if events < self.gov_next_check {
            return false;
        }
        self.gov_next_check = events + GOV_CHECK_EVERY;
        match self.governor {
            Governor::Off => false,
            Governor::Force => true,
            Governor::Auto => {
                if spin_budget() == 0 {
                    // A single available core cannot overlap shard and
                    // coordinator execution: every sync round degenerates
                    // to a futex round trip, so serial strictly wins.
                    return true;
                }
                let sync_rounds = self.prof.candidate_rounds + self.prof.grant_rounds;
                (sync_rounds as f64) > GOV_SYNC_ROUNDS_PER_EVENT_MAX * (events as f64)
            }
        }
    }

    /// Governor fold: recall every shard's state and queue, splice them
    /// into the coordinator's replica, and switch to the fused serial
    /// tail. Called only at a round top, where every shard is parked (so
    /// nothing is in flight) — a clean epoch boundary.
    fn fold(&mut self) {
        let shards = self.shards();
        self.prof.governor_fired = true;
        self.prof.governor_at_events = self.total_events();
        for m in 0..shards {
            self.to_shards[m]
                .send(ToShard::Surrender)
                .unwrap_or_else(|_| panic!("shard alive"));
        }
        for m in 0..shards {
            let msg = match recv_spin(&self.from_shards[m], &mut self.prof.recv) {
                ToCoord::Surrendered(b) => *b,
                _ => unreachable!("a parked shard answers surrender immediately"),
            };
            let SurrenderedShard {
                yielded,
                queue,
                records,
                delivered,
                last,
                peak,
                recv,
            } = msg;
            // Reschedule the shard's undelivered events here under fresh
            // keys, remembering the translation: running jobs hold their
            // completion event's key for the fault layer's kill-by-cancel.
            // NetUpdate replicas are dropped — the real link event already
            // lives on this queue and the serial role applies the network
            // change itself.
            let mut keymap: HashMap<EventKey, EventKey> = HashMap::with_capacity(queue.len());
            for (at, rank, old_key, ev) in queue {
                if matches!(ev, Event::NetUpdate(_)) {
                    continue;
                }
                let new_key = self.queue.schedule(at, rank, ev);
                keymap.insert(old_key, new_key);
            }
            // Undelivered outbox events are part of the global order too.
            for (at, rank, ev) in self.outboxes[m].take() {
                debug_assert!(!matches!(ev, Event::NetUpdate(_)));
                self.queue.schedule(at, rank, ev);
            }
            let owned: Vec<usize> = (0..self.sim.federation.len())
                .filter(|&s| owner(s, shards) == m)
                .collect();
            self.sim.absorb_shard(yielded, &owned, &keymap);
            self.records.extend(records);
            self.delivered += delivered;
            self.last = self.last.max(last);
            self.folded_peak += peak;
            self.folded_recv.spins += recv.spins;
            self.folded_recv.blocks += recv.blocks;
        }
        // Pending outage mirrors pair one-to-one with real outage events
        // that were still queued on their owning shards — just folded into
        // this queue, where the full serial handler sets `down_since`
        // itself. Probes off: the serial path reads live site state.
        self.mirrors.clear();
        self.sim.probes = None;
        // The shards' parked reports are history now; in particular their
        // `pending` counts must stop feeding `CoordCtx::pending` (the
        // folded events live in this queue) or the sample tick would renew
        // itself forever.
        for r in &mut self.reports {
            r.head = None;
            r.candidate = false;
            r.pending = 0;
            r.probes.clear();
        }
        // Renumber the merged queue to the serial engine's inline
        // `(time, seq)` ordering and translate the completion keys running
        // jobs hold (see `RankQueue::fuse_serial`).
        let tailmap = self.queue.fuse_serial();
        self.sim.remap_running_keys(&tailmap);
        // Flush the records buffered so far. Conservative execution is
        // globally monotone in `(time, rank)`, so everything buffered here
        // stamps strictly before anything the tail will emit: replaying the
        // sorted prefix now and ingesting directly from here on reproduces
        // the serial ingest (and RNG draw) sequence without holding
        // millions of records to the end of the run.
        let mut records = std::mem::take(&mut self.records);
        sort_records(&mut records);
        for (_, rec) in records {
            self.sim.replay_record(rec);
        }
        self.fused = true;
    }

    /// The serial tail: one fused replica, the exact serial pop-execute
    /// loop, no rounds and no messages. The queue is in tail mode (inline
    /// `(time, seq)` order); ranks are gone, so the execution context
    /// carries a sentinel no handler reads (child ranks and record stamps
    /// are both pre-fold concepts).
    fn run_tail(&mut self) {
        debug_assert!(self.fused, "serial tail before the fold");
        let sentinel = Rank::root(u64::MAX);
        while let Some((t, ev)) = self.queue.pop_tail() {
            self.prof.serial_tail_events += 1;
            self.execute_own(t, sentinel.clone(), ev);
        }
    }

    /// The synchronization driver: decide, act, repeat.
    fn drive(&mut self) {
        let shards = self.shards();
        for i in 0..shards {
            self.recv_parked(i);
        }
        loop {
            if !self.fused && self.governor_trips() {
                self.fold();
            }
            if self.fused {
                self.run_tail();
                return;
            }
            let round_t0 = Instant::now();
            let own_head = self.queue.peek().map(|(t, r)| (t, r.clone()));
            let effs: Vec<Option<(SimTime, Rank, bool)>> =
                (0..shards).map(|j| self.effective_head(j)).collect();
            let done = own_head.is_none() && effs.iter().all(Option::is_none);
            if done {
                // Trailing mirrors (e.g. a recovery window closing after the
                // last real event) are harmless bookkeeping; apply them so
                // the fault layer's view is consistent, then stop.
                while let Some((at, _, i)) = self.mirrors.pop_front() {
                    self.sim.apply_outage_mirror(i, at);
                }
                return;
            }

            // The globally minimal effective head. Every future effect of
            // executing any event carries a strictly larger coordinate, so
            // the minimum is always safe to act on.
            let mut min_shard: Option<usize> = None;
            for (i, e) in effs.iter().enumerate() {
                if let Some((t, r, _)) = e {
                    let better = match min_shard {
                        None => true,
                        Some(m) => {
                            let (mt, mr, _) = effs[m].as_ref().expect("tracked");
                            (*t, r) < (*mt, mr)
                        }
                    };
                    if better {
                        min_shard = Some(i);
                    }
                }
            }
            // Ties go to the coordinator: real coordinates are unique, so
            // an equal shard head can only be a pseudo NetUpdate replica of
            // the coordinator's own (real) link fault at that coordinate —
            // which the serial run executes at exactly this point.
            let coord_is_min = match (&own_head, min_shard) {
                (Some(h), Some(m)) => {
                    let (mt, mr, _) = effs[m].as_ref().expect("tracked");
                    (h.0, &h.1) <= (*mt, mr)
                }
                (Some(_), None) => true,
                (None, _) => false,
            };

            if coord_is_min {
                let (at, rank) = own_head.expect("checked");
                self.apply_mirrors_through((at, &rank));
                let (t, r, ev) = self.queue.pop().expect("peeked");
                self.execute_own(t, r, ev);
                self.prof.rounds += 1;
                self.prof.coord_events += 1;
                self.prof
                    .round_wall
                    .record(round_t0.elapsed().as_secs_f64());
                continue;
            }

            let j = min_shard.expect("not done, so some head exists");
            let (at, rank, candidate) = effs[j].clone().expect("tracked");
            if candidate {
                // Everyone else has drained strictly below this coordinate;
                // probes in the reports are synchronized to exactly here.
                // (Shard j's undelivered events all sort above it, or one of
                // them would be the effective head instead.)
                debug_assert!(
                    self.reports
                        .iter()
                        .enumerate()
                        .all(|(m, rep)| m == j || rep.last <= at),
                    "a shard executed past the candidate coordinate {:?}",
                    (at, &rank),
                );
                self.apply_mirrors_through((at, &rank));
                // Mirror the shard-side bound clamp (see ExecuteHead):
                // whatever was granted before is void once the interlude
                // runs, so the bound book must drop with it or later grant
                // comparisons would skip re-raising it.
                let clamp = Bound::at(at, rank.clone());
                if clamp < self.granted[j] {
                    // The shard held a higher free-running grant; the
                    // interlude voids it and the bound book drops back.
                    self.prof.bound_clamps += 1;
                }
                self.granted[j] = clamp;
                self.to_shards[j]
                    .send(ToShard::ExecuteHead { at, rank })
                    .unwrap_or_else(|_| panic!("shard alive"));
                let interlude_t0 = Instant::now();
                self.interlude(j, false);
                self.prof.rounds += 1;
                self.prof.candidate_rounds += 1;
                self.prof
                    .candidate_wall
                    .record(interlude_t0.elapsed().as_secs_f64());
                self.prof
                    .round_wall
                    .record(round_t0.elapsed().as_secs_f64());
                continue;
            }

            // Non-candidate minimum (a parked head or an undelivered
            // event): raise the min shard's bound so it free-runs.
            //
            // Only the min shard can have admitted work — every other
            // shard's bound is clamped by this shard's head, which sorts
            // below everything they hold — so the batched protocol grants
            // exactly one shard per round: B_j = min over the coordinator's
            // head and every *other* shard's effective head, all strictly
            // above shard j's own minimum, so j always progresses. The
            // Advance carries j's whole outbox: a raised bound may admit
            // undelivered events, and they are always above the
            // destination's executed frontier (every cross-shard event is
            // created above every bound standing at its creation). Watched
            // completions inside the run resolve through refresh
            // interludes on this same round (the Ack prefetches the next
            // bound), so a same-shard run of K admitted events — candidate
            // completions included — costs exactly one grant round.
            //
            // Per-event mode (PR 6) broadcasts bounds to every shard whose
            // bound can rise and parks each candidate individually.
            if !self.per_event {
                let mut b: Option<Bound> = own_head.as_ref().map(|(t, r)| Bound::at(*t, r.clone()));
                for (i, e) in effs.iter().enumerate() {
                    if i == j {
                        continue;
                    }
                    if let Some((t, r, _)) = e {
                        let hb = Bound::at(*t, r.clone());
                        b = Some(match b {
                            None => hb,
                            Some(cur) => cur.min(hb),
                        });
                    }
                }
                // No other participant has any event left: the shard may
                // drain everything it has (fault candidates still park it).
                let b = b.unwrap_or(Bound {
                    time: SimTime::MAX,
                    rank: None,
                });
                debug_assert!(
                    b > self.granted[j],
                    "the min shard's grant always rises (at {:?})",
                    (at, &rank),
                );
                self.granted[j] = b.clone();
                let injects = self.outboxes[j].take();
                self.to_shards[j]
                    .send(ToShard::Advance { bound: b, injects })
                    .unwrap_or_else(|_| panic!("shard alive"));
                self.prof.rounds += 1;
                self.prof.grant_rounds += 1;
                self.prof.advances_sent += 1;
                self.prof.grant_occupancy.record(1.0);
                self.interlude(j, true);
                self.prof
                    .round_wall
                    .record(round_t0.elapsed().as_secs_f64());
                continue;
            }

            let mut awaiting = Vec::new();
            for m in 0..shards {
                let mut b: Option<Bound> = own_head.as_ref().map(|(t, r)| Bound::at(*t, r.clone()));
                for (i, e) in effs.iter().enumerate() {
                    if i == m {
                        continue;
                    }
                    if let Some((t, r, _)) = e {
                        let hb = Bound::at(*t, r.clone());
                        b = Some(match b {
                            None => hb,
                            Some(cur) => cur.min(hb),
                        });
                    }
                }
                // No other participant has any event left: this shard may
                // drain everything it has. (Its own candidates still park
                // it, and executing one clamps this grant back down, so
                // chains seeded by a later interlude stay paced.)
                let b = b.unwrap_or(Bound {
                    time: SimTime::MAX,
                    rank: None,
                });
                if b > self.granted[m] {
                    self.granted[m] = b.clone();
                    let injects = self.outboxes[m].take();
                    self.to_shards[m]
                        .send(ToShard::Advance { bound: b, injects })
                        .unwrap_or_else(|_| panic!("shard alive"));
                    awaiting.push(m);
                }
            }
            assert!(
                !awaiting.is_empty(),
                "conservative driver stalled at {:?} (emission floors: {:?})",
                (at, &rank),
                self.reports.iter().map(|r| r.floor).collect::<Vec<_>>(),
            );
            self.prof.rounds += 1;
            self.prof.grant_rounds += 1;
            self.prof.advances_sent += awaiting.len() as u64;
            self.prof.grant_occupancy.record(awaiting.len() as f64);
            for m in awaiting {
                self.recv_parked(m);
            }
            self.prof
                .round_wall
                .record(round_t0.elapsed().as_secs_f64());
        }
    }
}

/// The result of a sharded run, shaped like the serial path's outputs.
pub(crate) struct ShardedOutcome {
    pub(crate) finished: FinishedSim,
    pub(crate) delivered: u64,
    pub(crate) peak_queue_len: usize,
    /// The federation-wide minimum staged lookahead (diagnostic).
    pub(crate) min_lookahead: SimDuration,
    /// Sync-round profile of the conservative protocol (observer data;
    /// the harness attaches it to the run's [`tg_des::EngineProfile`]).
    pub(crate) sync: SyncProfile,
}

/// Run `threads`-way sharded (one coordinator on the calling thread plus
/// `min(threads - 1, sites)` shard workers), producing output byte-identical
/// to the serial engine.
///
/// `make_sim` builds one deterministic [`GridSim`] replica; every
/// participant constructs its own (identical RNG draws, identical fault
/// schedule), then touches only the state it owns. The merge swaps the
/// authoritative per-site state back into the coordinator's replica and
/// replays buffered accounting records in global serial order.
pub(crate) fn run_sharded(
    make_sim: &(dyn Fn() -> GridSim + Sync),
    threads: usize,
    watched: Arc<HashSet<JobId>>,
    governor: Governor,
    per_event: bool,
) -> ShardedOutcome {
    let coord_sim = make_sim();
    let nsites = coord_sim.federation.len();
    let shards = (threads - 1).min(nsites).max(1);

    // Conservative lookahead matrix from the WAN uplinks (diagnostic: the
    // head-based bounds subsume it; see the module docs).
    let (lat, bw): (Vec<f64>, Vec<f64>) = (0..nsites)
        .map(|i| {
            let u = coord_sim.federation.network.uplink(SiteId(i));
            (u.latency.as_secs_f64(), u.bandwidth_mbps)
        })
        .unzip();
    let lookahead = Lookahead::from_uplinks(&lat, &bw, crate::sim::STAGING_THRESHOLD_MB);

    let fault_candidate: Arc<Vec<bool>> = Arc::new(
        coord_sim
            .faults
            .as_ref()
            .map(|f| {
                f.schedule
                    .events
                    .iter()
                    .map(|e| {
                        matches!(
                            e.kind,
                            FaultEventKind::NodeCrash { .. } | FaultEventKind::SiteOutage { .. }
                        )
                    })
                    .collect()
            })
            .unwrap_or_default(),
    );

    let mut to_shards = Vec::new();
    let mut from_shards = Vec::new();
    let mut shard_ends = Vec::new();
    for _ in 0..shards {
        let (tx_cmd, rx_cmd) = unbounded::<ToShard>();
        let (tx_rep, rx_rep) = unbounded::<ToCoord>();
        to_shards.push(tx_cmd);
        from_shards.push(rx_rep);
        shard_ends.push((rx_cmd, tx_rep));
    }

    let probe_view = coord_sim.all_probes();
    let mut coordinator = Coordinator {
        sim: coord_sim,
        queue: RankQueue::new(),
        mirrors: VecDeque::new(),
        outboxes: (0..shards).map(|_| Outbox::default()).collect(),
        granted: vec![Bound::ZERO; shards],
        reports: (0..shards)
            .map(|_| ShardReport {
                head: None,
                candidate: false,
                delivered: 0,
                floor: None,
                last: SimTime::ZERO,
                pending: 0,
                probes: Vec::new(),
            })
            .collect(),
        probe_view,
        records: Vec::new(),
        to_shards,
        from_shards,
        delivered: 0,
        last: SimTime::ZERO,
        prof: SyncRecorder::new(),
        per_event,
        governor,
        gov_next_check: GOV_WARMUP_EVENTS,
        fused: false,
        folded_peak: 0,
        folded_recv: RecvTally::default(),
    };
    // Pre-spawn fold: on a host with one available core the governor's
    // tripwire is a foregone conclusion (`spin_budget() == 0` — no core to
    // overlap shard and coordinator execution on), and the dominant cost of
    // a doomed sharded start is building the per-shard workload replicas.
    // Fold before the fleet exists: prime everything (all fault kinds
    // included) on this queue, fuse it to the serial tail, and never spawn.
    if matches!(governor, Governor::Auto) && spin_budget() == 0 {
        coordinator.prof.governor_fired = true;
        coordinator.prof.governor_at_events = 0;
        coordinator.prime_fused();
        coordinator.run_tail();
        return merge(coordinator, Vec::new(), lookahead);
    }

    let fault_rank_base = coordinator.prime();

    std::thread::scope(|scope| {
        for (me, (rx, tx)) in shard_ends.into_iter().enumerate() {
            let watched = Arc::clone(&watched);
            let fault_candidate = Arc::clone(&fault_candidate);
            scope.spawn(move || {
                let sim = make_sim();
                let owned: Vec<usize> = (0..nsites).filter(|&s| owner(s, shards) == me).collect();
                let shard = Shard {
                    sim,
                    queue: RankQueue::new(),
                    bound: Bound::ZERO,
                    watched,
                    watched_bounds: HashMap::new(),
                    fault_candidate,
                    records: Vec::new(),
                    owned,
                    net_updates: 0,
                    delivered: 0,
                    last: SimTime::ZERO,
                    per_event,
                    tx,
                    rx,
                    recv: RecvTally::default(),
                };
                shard.run(fault_rank_base, me, shards);
            });
        }

        coordinator.drive();

        if coordinator.fused {
            // The governor folded mid-run: every shard already surrendered
            // its state and exited; there is nothing left to finish.
            return merge(coordinator, Vec::new(), lookahead);
        }

        // Drain finished: collect every shard's final state.
        let mut finals: Vec<ShardFinal> = Vec::with_capacity(shards);
        for i in 0..shards {
            coordinator.to_shards[i]
                .send(ToShard::Finish)
                .unwrap_or_else(|_| panic!("shard alive"));
        }
        for i in 0..shards {
            match coordinator.from_shards[i]
                .recv()
                .unwrap_or_else(|_| panic!("shard alive"))
            {
                ToCoord::Final(f) => finals.push(*f),
                _ => unreachable!("finish answers with the final state"),
            }
        }
        merge(coordinator, finals, lookahead)
    })
}

/// Sort buffered accounting records into global serial (stamp) order, so a
/// replay through the virgin ingest channel sees the exact serial draw
/// sequence.
fn sort_records(records: &mut [(Stamp, BufRecord)]) {
    records.sort_by(|a, b| {
        let ((ta, ra, sa), _) = a;
        let ((tb, rb, sb), _) = b;
        ta.cmp(tb).then_with(|| ra.cmp(rb)).then_with(|| sa.cmp(sb))
    });
}

/// Fold the shards' final state into the coordinator's replica and finish
/// the run exactly as the serial `GridSim::run` would.
fn merge(mut c: Coordinator, finals: Vec<ShardFinal>, lookahead: Lookahead) -> ShardedOutcome {
    let shards = c.shards();
    let mut delivered = c.delivered;
    let mut end = c.last;
    let mut peak = c.queue.peak_len() + c.folded_peak;
    let mut jobs_done = c.sim.jobs_done;
    let mut records = std::mem::take(&mut c.records);
    let mut shard_recv = c.folded_recv;

    for (me, mut f) in finals.into_iter().enumerate() {
        // Swap in the authoritative per-site state (utilization integrals,
        // RC fabric stats) from the owning shard.
        for s in 0..c.sim.federation.len() {
            if owner(s, shards) == me {
                std::mem::swap(
                    c.sim.federation.site_mut(SiteId(s)),
                    f.federation.site_mut(SiteId(s)),
                );
            }
        }
        c.sim.metrics.merge_from(&f.metrics);
        if let Some(rep) = f.fault_report {
            c.sim
                .faults
                .as_mut()
                .expect("shards report faults only when the layer exists")
                .report
                .merge_from(&rep);
        }
        records.extend(f.records);
        jobs_done += f.jobs_done;
        delivered += f.delivered;
        end = end.max(f.last);
        peak += f.peak;
        shard_recv.spins += f.recv.spins;
        shard_recv.blocks += f.recv.blocks;
        // Pool this shard's span sketches (element-wise counts — exact,
        // order-free) and series columns (single writer per site) into the
        // coordinator's book. Iterating `finals` in shard order keeps even
        // the f64 gauge-area sums byte-identical at any thread count.
        if c.sim.obs.is_enabled() {
            c.sim.obs.sketches.merge_from(&f.sketches);
            c.sim.obs.series.merge_from(&f.series);
        }
    }

    assert_eq!(
        jobs_done, c.sim.jobs_total,
        "sharded run drained with jobs unfinished"
    );

    // Replay every buffered accounting record in global serial (stamp)
    // order through the coordinator's virgin ingest channel: the lossy
    // ingest RNG sees the exact serial draw sequence.
    sort_records(&mut records);
    for (_, rec) in records {
        c.sim.replay_record(rec);
    }

    c.sim.harvest_scheduler_counters();
    let metrics = c.sim.metrics.snapshot(end);
    let trace_flush_ok = c.sim.tracer.close_sink();
    let fault_report = c.sim.faults.take().map(|f| f.report);
    let ingest_tally = c.sim.record_sink.as_mut().map(|s| s.close());
    let stats = c.sim.obs.finish(end);
    // The data layer is touched only by routing, which runs here on the
    // coordinator — its replica holds the complete catalog/cache history.
    let data_report = c.sim.data.as_ref().map(tg_data::DataLayer::report);
    let sync = c.prof.into_profile(shards, shard_recv);
    let finished = FinishedSim {
        federation: c.sim.federation,
        db: c.sim.db,
        truth: c.sim.truth,
        end,
        samples: c.sim.samples,
        metrics,
        tracer: c.sim.tracer,
        trace_flush_ok,
        fault_report,
        ingest_tally,
        stats,
        data_report,
    };
    ShardedOutcome {
        finished,
        delivered,
        peak_queue_len: peak,
        min_lookahead: lookahead.min_staged(),
        sync,
    }
}
