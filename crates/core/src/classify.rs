//! Inferring usage modalities from accounting records.
//!
//! This is the paper's proposal made executable: given only what central
//! accounting stores, label every job with the modality it served. Two
//! modes, which together make the paper's argument quantitative:
//!
//! * [`ClassifierMode::WithAttributes`] — uses the *added* instrumentation
//!   TeraGrid deployed for exactly this purpose: gateway end-user
//!   attributes, submit-interface tags, and RC placement records.
//! * [`ClassifierMode::RecordsOnly`] — pre-instrumentation accounting: job
//!   shape, timing, session and transfer records only. Gateway and workflow
//!   traffic must be recognized by behavioural fingerprint, which is
//!   noisy — the measured accuracy gap *is* the case for the attributes.
//!
//! The classifier is decision rules, not learned weights: the point is that
//! the records determine the modality, not that a model can be fit.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use tg_accounting::query::{user_summaries, UserSummary};
use tg_accounting::{AccountingDb, JobRecord};
use tg_des::SimDuration;
use tg_workload::{JobId, Modality, SubmitInterface, UserId};

/// Which record streams the classifier may consult.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum ClassifierMode {
    /// Full instrumentation: gateway attributes, interface tags, RC records.
    WithAttributes,
    /// Legacy accounting only: shape, timing, sessions, transfers.
    RecordsOnly,
}

impl ClassifierMode {
    /// Stable short name.
    pub fn name(self) -> &'static str {
        match self {
            ClassifierMode::WithAttributes => "with-attributes",
            ClassifierMode::RecordsOnly => "records-only",
        }
    }
}

/// Tunable thresholds of the rule set (defaults are sensible for the
/// baseline scenario; experiments may sweep them).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RuleThresholds {
    /// Same-instant batch size at or above which a batch counts as
    /// machine-generated (ensemble or workflow stage).
    pub batch_size: u64,
    /// Jobs/day above which an account looks like a gateway community
    /// account (records-only mode).
    pub gateway_rate: f64,
    /// Wall-clock cutoff for "interactive-short" jobs.
    pub interactive_wall: SimDuration,
    /// Core cutoff for "interactive-small" jobs.
    pub interactive_cores: usize,
    /// MB transferred per core-hour above which an account is data-centric.
    pub data_mb_per_core_hour: f64,
}

impl Default for RuleThresholds {
    fn default() -> Self {
        RuleThresholds {
            batch_size: 5,
            gateway_rate: 20.0,
            interactive_wall: SimDuration::from_mins(30),
            interactive_cores: 8,
            data_mb_per_core_hour: 1_000.0,
        }
    }
}

/// Classify every job in the database. Returns `(job id → inferred
/// modality)`, deterministically.
pub fn classify_all(db: &AccountingDb, mode: ClassifierMode) -> HashMap<JobId, Modality> {
    classify_with(db, mode, &RuleThresholds::default())
}

/// [`classify_all`] with explicit thresholds.
pub fn classify_with(
    db: &AccountingDb,
    mode: ClassifierMode,
    t: &RuleThresholds,
) -> HashMap<JobId, Modality> {
    let summaries: HashMap<UserId, UserSummary> = user_summaries(db)
        .into_iter()
        .map(|s| (s.user, s))
        .collect();
    // Same-instant batch index: (user, submit) → (count, uniform cores?).
    let mut batches: HashMap<(UserId, tg_des::SimTime), (u64, usize, bool)> = HashMap::new();
    for j in &db.jobs {
        let e = batches
            .entry((j.user, j.submit))
            .or_insert((0, j.cores, true));
        e.0 += 1;
        if j.cores != e.1 {
            e.2 = false;
        }
    }

    let mut out = HashMap::with_capacity(db.jobs.len());
    for j in &db.jobs {
        let summary = summaries.get(&j.user).expect("summary for every account");
        let (batch_n, _, batch_uniform) = batches[&(j.user, j.submit)];
        let m = classify_one(db, j, summary, batch_n, batch_uniform, mode, t);
        out.insert(j.job, m);
    }
    out
}

#[allow(clippy::too_many_arguments)]
fn classify_one(
    db: &AccountingDb,
    j: &JobRecord,
    summary: &UserSummary,
    batch_n: u64,
    batch_uniform: bool,
    mode: ClassifierMode,
    t: &RuleThresholds,
) -> Modality {
    match mode {
        ClassifierMode::WithAttributes => {
            // Strong evidence first.
            if db.rc_placement_of(j.job).is_some() || j.used_hw {
                return Modality::RcAccelerated;
            }
            if db.has_gateway_attr(j.job) {
                return Modality::ScienceGateway;
            }
            if j.interface == SubmitInterface::WorkflowEngine {
                return Modality::Workflow;
            }
            shape_rules(j, summary, batch_n, batch_uniform, t)
        }
        ClassifierMode::RecordsOnly => {
            // No attributes: RC fabric usage is still visible in the job
            // record's partition (we model it as the used_hw flag, which a
            // site's local RM reports even without federation attributes)…
            // no — records-only means *legacy* accounting: hide it.
            // Gateways: community accounts show extreme *sustained* rates —
            // require volume so a single busy afternoon doesn't qualify.
            if summary.jobs >= 30
                && summary.jobs_per_day >= t.gateway_rate
                && summary.small_frac > 0.5
            {
                return Modality::ScienceGateway;
            }
            shape_rules(j, summary, batch_n, batch_uniform, t)
        }
    }
}

/// Shape/timing rules shared by both modes.
fn shape_rules(
    j: &JobRecord,
    summary: &UserSummary,
    batch_n: u64,
    batch_uniform: bool,
    t: &RuleThresholds,
) -> Modality {
    // Machine-generated same-instant batches.
    if batch_n >= t.batch_size {
        return if batch_uniform {
            Modality::Ensemble
        } else {
            Modality::Workflow
        };
    }
    // Data-centric accounts: lots of bytes per unit compute.
    if summary.transfers > 0 {
        let mb_per_ch = summary.transfer_mb / summary.core_hours.max(1e-6);
        if mb_per_ch >= t.data_mb_per_core_hour {
            return Modality::DataMovement;
        }
    }
    // Interactive: short + small + the account holds login sessions.
    if summary.sessions > 0 && j.wall() <= t.interactive_wall && j.cores <= t.interactive_cores {
        return Modality::Interactive;
    }
    Modality::BatchComputing
}

#[cfg(test)]
mod tests {
    use super::*;
    use tg_accounting::{GatewayAttribute, RcPlacementRecord, SessionRecord, TransferRecord};
    use tg_des::SimTime;
    use tg_model::{ConfigId, NodeId, SiteId};
    use tg_workload::{GatewayId, ProjectId};

    fn job(id: usize, user: usize, submit: u64, wall_s: u64, cores: usize) -> JobRecord {
        JobRecord {
            job: JobId(id),
            user: UserId(user),
            project: ProjectId(0),
            site: SiteId(0),
            submit: SimTime::from_secs(submit),
            start: SimTime::from_secs(submit + 60),
            end: SimTime::from_secs(submit + 60 + wall_s),
            cores,
            interface: SubmitInterface::CommandLine,
            used_hw: false,
            input_mb: 0.0,
            output_mb: 0.0,
        }
    }

    #[test]
    fn gateway_attr_wins_with_attributes_only() {
        let mut db = AccountingDb::new();
        db.add_job(job(0, 1, 0, 600, 2));
        db.add_gateway_attr(GatewayAttribute {
            gateway: GatewayId(0),
            job: JobId(0),
            end_user: 5,
        });
        let with = classify_all(&db, ClassifierMode::WithAttributes);
        assert_eq!(with[&JobId(0)], Modality::ScienceGateway);
        let without = classify_all(&db, ClassifierMode::RecordsOnly);
        assert_ne!(
            without[&JobId(0)],
            Modality::ScienceGateway,
            "one slow-rate job can't be recognized without the attribute"
        );
    }

    #[test]
    fn high_rate_small_job_account_reads_as_gateway_without_attrs() {
        let mut db = AccountingDb::new();
        // 100 small jobs in one day from one account, spread out (no batches).
        for i in 0..100 {
            db.add_job(job(i, 7, i as u64 * 800, 600, 2));
        }
        let inferred = classify_all(&db, ClassifierMode::RecordsOnly);
        assert_eq!(inferred[&JobId(50)], Modality::ScienceGateway);
    }

    #[test]
    fn engine_interface_marks_workflow() {
        let mut db = AccountingDb::new();
        db.add_job(JobRecord {
            interface: SubmitInterface::WorkflowEngine,
            ..job(0, 2, 0, 3600, 16)
        });
        let inferred = classify_all(&db, ClassifierMode::WithAttributes);
        assert_eq!(inferred[&JobId(0)], Modality::Workflow);
    }

    #[test]
    fn uniform_batches_read_as_ensemble_nonuniform_as_workflow() {
        let mut db = AccountingDb::new();
        for i in 0..8 {
            db.add_job(job(i, 3, 1000, 3600, 4)); // uniform
        }
        for i in 10..16 {
            db.add_job(job(i, 4, 2000, 3600, 1 + i)); // non-uniform
        }
        for mode in [ClassifierMode::WithAttributes, ClassifierMode::RecordsOnly] {
            let inferred = classify_all(&db, mode);
            assert_eq!(inferred[&JobId(3)], Modality::Ensemble, "{}", mode.name());
            assert_eq!(inferred[&JobId(12)], Modality::Workflow, "{}", mode.name());
        }
    }

    #[test]
    fn rc_placement_record_marks_rc() {
        let mut db = AccountingDb::new();
        db.add_job(JobRecord {
            used_hw: true,
            ..job(0, 5, 0, 120, 1)
        });
        db.add_rc_placement(RcPlacementRecord {
            job: JobId(0),
            site: SiteId(0),
            node: NodeId(0),
            config: ConfigId(0),
            reused: false,
            transfer: SimDuration::ZERO,
            reconfig: SimDuration::from_millis(100),
            deadline_met: None,
        });
        let inferred = classify_all(&db, ClassifierMode::WithAttributes);
        assert_eq!(inferred[&JobId(0)], Modality::RcAccelerated);
    }

    #[test]
    fn sessions_plus_short_small_reads_interactive() {
        let mut db = AccountingDb::new();
        db.add_job(job(0, 6, 0, 600, 2));
        db.add_session(SessionRecord {
            user: UserId(6),
            site: SiteId(0),
            login: SimTime::ZERO,
            logout: SimTime::from_secs(700),
        });
        let inferred = classify_all(&db, ClassifierMode::WithAttributes);
        assert_eq!(inferred[&JobId(0)], Modality::Interactive);
        // The same user's long wide job is still batch.
        db.add_job(job(1, 6, 5000, 86_400, 256));
        let inferred = classify_all(&db, ClassifierMode::WithAttributes);
        assert_eq!(inferred[&JobId(1)], Modality::BatchComputing);
    }

    #[test]
    fn heavy_transfer_account_reads_data_movement() {
        let mut db = AccountingDb::new();
        db.add_job(job(0, 8, 0, 300, 1));
        db.add_transfer(TransferRecord {
            user: UserId(8),
            project: ProjectId(0),
            src: SiteId(0),
            dst: SiteId(1),
            mb: 1_000_000.0,
            start: SimTime::ZERO,
            end: SimTime::from_secs(100),
        });
        let inferred = classify_all(&db, ClassifierMode::WithAttributes);
        assert_eq!(inferred[&JobId(0)], Modality::DataMovement);
    }

    #[test]
    fn default_is_batch() {
        let mut db = AccountingDb::new();
        db.add_job(job(0, 9, 0, 4 * 3600, 64));
        for mode in [ClassifierMode::WithAttributes, ClassifierMode::RecordsOnly] {
            let inferred = classify_all(&db, mode);
            assert_eq!(inferred[&JobId(0)], Modality::BatchComputing);
        }
    }

    #[test]
    fn every_job_gets_a_label() {
        let mut db = AccountingDb::new();
        for i in 0..50 {
            db.add_job(job(i, i % 5, i as u64 * 100, 100 + i as u64, 1 + i % 16));
        }
        let inferred = classify_all(&db, ClassifierMode::WithAttributes);
        assert_eq!(inferred.len(), 50);
    }
}
