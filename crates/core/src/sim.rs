//! The event-driven federation simulator.
//!
//! `GridSim` wires the passive resource model (`tg-model`), the generated
//! workload (`tg-workload`), and the schedulers (`tg-sched`) into one event
//! loop, and emits accounting records (`tg-accounting`) as a production
//! federation would.
//!
//! ## Job lifecycle
//!
//! ```text
//! Submit ──deps?──▶ held until parents complete (workflow engine release)
//!        └────────▶ route: RC task → RC partition flow
//!                          else    → metascheduler picks site
//!                   staging: big inputs transfer before queueing
//!                   site queue → batch scheduler → start → complete
//!                   completion → records, dependent release, backfill pass
//! ```
//!
//! ## Instrumentation fidelity
//!
//! Records carry only what production accounting sees. Two deliberate
//! touches of realism:
//!
//! * Gateway jobs are recorded under their gateway's **community account**
//!   (one account per gateway), with a `GatewayAttribute` naming the end
//!   user — exactly the mechanism TeraGrid introduced. The submitting
//!   person's identity is *not* in the job record.
//! * A workflow task's recorded submit time is its *release* time (when its
//!   dependencies finished and the engine handed it to the queue), because
//!   that is when the queue first saw it.

use std::collections::{HashMap, HashSet, VecDeque};
use tg_accounting::{
    AccountingDb, GatewayAttribute, IngestTally, JobRecord, RcPlacementRecord, RecordRef,
    RecordSink, SessionRecord, TransferRecord,
};
use tg_data::{DataLayer, DataReport, Locate};
use tg_des::metrics::{CounterId, GaugeId, MetricsRegistry, MetricsSnapshot, SeriesId};
use tg_des::series::{SeriesSnapshot, WindowedSeries};
use tg_des::sketch::{SpanSketchbook, SpanStatsSnapshot};
use tg_des::span::{SpanKind, WaitCause, SPAN_CATEGORY, SPAN_SCHEMA_VERSION};
use tg_des::trace::{TraceValue, Tracer};
use tg_des::{
    Ctx, Engine, EventKey, RngFactory, SimDuration, SimRng, SimTime, Simulation, StopCondition,
    StreamId,
};
use tg_fault::{FaultEventKind, FaultReport, FaultSchedule, FaultSpec, OutagePolicy};
use tg_model::reconf::HostPlan;
use tg_model::{Federation, SiteId};
use tg_sched::{
    BatchScheduler, DataContext, MetaPolicy, RcDecision, RcPolicy, RetryBook, RetryPolicy, SiteView,
};
use tg_workload::{Job, JobId, Modality, UserId};

/// Base offset for synthetic gateway community accounts in job records.
pub const COMMUNITY_ACCOUNT_BASE: usize = 10_000_000;

/// Inputs/outputs at or above this size (MB) are staged over the WAN and
/// produce transfer records; smaller ones ride along invisibly.
pub const STAGING_THRESHOLD_MB: f64 = 500.0;

/// Simulation events.
#[derive(Debug)]
pub enum Event {
    /// A job arrives from the workload trace (index into the job list).
    Submit(usize),
    /// A job arrives from a *streamed* workload (the job rides in the event
    /// itself — there is no materialized job list to index into). Serial
    /// runs only; the sharded coordinator requires the materialized list.
    SubmitJob(Box<Job>),
    /// A job (input staged, deps met) reaches a site's batch queue.
    Enqueue {
        /// Target site.
        site: SiteId,
        /// The job.
        job: Box<Job>,
        /// How the job's dataset was satisfied (`CacheHit`/`CacheMiss`),
        /// carried from the coordinator's routing decision so the span
        /// emitted at enqueue time — possibly on another shard — names the
        /// cause. `None` for jobs without a dataset (the pre-data-grid
        /// event, byte-identical behaviour).
        cause: Option<WaitCause>,
    },
    /// A batch job completes. The job itself (plus its site and start time)
    /// lives in the simulation's running registry — the event carries only
    /// the id, so dispatching never clones the job.
    Complete {
        /// The finished job.
        id: JobId,
    },
    /// An RC (hardware) task completes on a fabric region.
    RcComplete {
        /// Site of the RC partition.
        site: SiteId,
        /// Node within the partition.
        node: tg_model::NodeId,
        /// Region to release.
        region: tg_model::reconf::RegionId,
        /// The finished job.
        job: Box<Job>,
        /// When its *execution* began (after setup).
        started: SimTime,
        /// The placement record to emit.
        placement: RcPlacementRecord,
    },
    /// Timer for time-triggered scheduler policies (weekly drain).
    SchedWakeup {
        /// Site whose scheduler asked for the wakeup.
        site: SiteId,
    },
    /// Periodic metric sample (enabled via [`GridSim::with_sampling`]).
    Sample,
    /// A compiled fault-schedule event fires (index into the schedule
    /// attached by [`GridSim::with_faults`]).
    Fault(usize),
    /// A fault-killed job returns from its retry backoff and resubmits.
    Requeue {
        /// The job being resubmitted.
        job: Box<Job>,
        /// When the fault killed it (the requeue span's start; carried in
        /// the event so the coordinator of a sharded run — where the kill
        /// happened on a shard — emits the same span the serial run does).
        killed_at: SimTime,
    },
    /// Sharded runs only: apply a link-kind fault event to this shard's
    /// replica of the network state (no report/counter side effects — the
    /// coordinator owns those). Never scheduled in serial runs.
    NetUpdate(usize),
}

/// Which execution role a context is driving (see [`EvCtx`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ExecRole {
    /// The classic single-threaded engine loop.
    Serial,
    /// A worker shard owning a subset of sites in a sharded run.
    Shard,
    /// The coordinator of a sharded run (owns routing and global state).
    Coord,
}

/// A point-in-time observation of one site, carried across shard boundaries
/// so the coordinator can build byte-identical metascheduler views and
/// samples without owning the site state.
#[derive(Debug, Clone, Copy)]
pub(crate) struct SiteProbe {
    pub(crate) free_cores: usize,
    pub(crate) busy_cores: usize,
    pub(crate) total_cores: usize,
    pub(crate) queue_len: usize,
    pub(crate) core_speed: f64,
}

/// One accounting record awaiting (possibly lossy) ingest. In sharded runs
/// records are buffered with their causal stamp and replayed through the
/// ingest channel in global serial order at merge time, which keeps the
/// per-record loss/duplication fate sequence byte-identical to a serial run.
#[derive(Debug, Clone)]
pub(crate) enum BufRecord {
    Job(JobRecord),
    Transfer(TransferRecord),
    Session(SessionRecord),
    Gateway(GatewayAttribute),
    Rc(RcPlacementRecord),
}

impl BufRecord {
    pub(crate) fn apply(self, db: &mut AccountingDb) {
        match self {
            BufRecord::Job(r) => db.add_job(r),
            BufRecord::Transfer(r) => db.add_transfer(r),
            BufRecord::Session(r) => db.add_session(r),
            BufRecord::Gateway(r) => db.add_gateway_attr(r),
            BufRecord::Rc(r) => db.add_rc_placement(r),
        }
    }

    /// Borrowed view for streaming sinks.
    pub(crate) fn as_record_ref(&self) -> RecordRef<'_> {
        match self {
            BufRecord::Job(r) => RecordRef::Job(r),
            BufRecord::Transfer(r) => RecordRef::Transfer(r),
            BufRecord::Session(r) => RecordRef::Session(r),
            BufRecord::Gateway(r) => RecordRef::Gateway(r),
            BufRecord::Rc(r) => RecordRef::Rc(r),
        }
    }
}

/// The scheduling surface a [`GridSim`] handler runs against.
///
/// The serial engine's [`Ctx`] implements this 1:1 (the hooks keep their
/// no-op defaults, so the monomorphized serial instantiation is the exact
/// pre-sharding code path). The sharded contexts in [`crate::parallel`]
/// additionally route cross-shard effects through the hooks: exports carry
/// work that the serial run would have done inline to the participant that
/// owns the state, and the `note_watched_*` family maintains the emission
/// floor that bounds how far other shards may safely advance.
pub(crate) trait EvCtx {
    fn now(&self) -> SimTime;
    fn pending(&self) -> usize;
    fn schedule_at(&mut self, at: SimTime, ev: Event) -> EventKey;
    fn schedule_after(&mut self, after: SimDuration, ev: Event) -> EventKey;
    fn schedule_now(&mut self, ev: Event) -> EventKey;
    fn cancel(&mut self, key: EventKey) -> bool;
    fn exec_mode(&self) -> ExecRole {
        ExecRole::Serial
    }
    /// Is this job a dependency of some other job (so its completion must
    /// synchronize with the coordinator's dependency bookkeeping)?
    fn is_watched(&self, _id: JobId) -> bool {
        false
    }
    /// Whether accounting records should be buffered for merge-time replay
    /// instead of ingested immediately.
    fn buffers_records(&self) -> bool {
        false
    }
    fn buffer_record(&mut self, _rec: BufRecord) {
        unreachable!("serial contexts never buffer records")
    }
    /// Shard → coordinator: a watched job finished here; release dependents.
    /// Non-blocking: the coordinator's acknowledgement is consumed later at
    /// a safe point by [`GridSim::sync_exports`].
    fn export_finish(&mut self, _id: JobId, _probes: Vec<SiteProbe>) {
        unreachable!("serial contexts never export")
    }
    /// Shard → coordinator: schedule a requeue (checkpoint-restart path).
    /// Fire-and-forget — the shard advances its own child cursor, so no
    /// acknowledgement is owed.
    #[allow(clippy::boxed_local)] // boxed to match the shard-side message payload
    fn export_requeue(&mut self, _at: SimTime, _killed_at: SimTime, _job: Box<Job>) {
        unreachable!("serial contexts never export")
    }
    /// Shard → coordinator: a kill needs the global retry book to decide
    /// requeue-vs-abandon. Non-blocking, acknowledged via
    /// [`GridSim::sync_exports`].
    #[allow(clippy::boxed_local)] // boxed to match the shard-side message payload
    fn export_kill_retry(&mut self, _job: Box<Job>, _probes: Vec<SiteProbe>) {
        unreachable!("serial contexts never export")
    }
    /// Coordinator → shard: continue an RC routing decision on the shard
    /// that owns the fabric, synchronously. Returns the owner's refreshed
    /// probes for the sites it owns, which the caller folds back into the
    /// coordinator's global view (the rest of the emitting handler may
    /// read them).
    #[allow(clippy::boxed_local)] // boxed to match the shard-side message payload
    fn export_route_rc(&mut self, _site: SiteId, _job: Box<Job>) -> Vec<(usize, SiteProbe)> {
        unreachable!("serial contexts never export")
    }
    /// Is an acknowledgement from the coordinator still owed for an earlier
    /// export? Serial and coordinator contexts never owe one.
    fn export_in_flight(&self) -> bool {
        false
    }
    /// Block until the coordinator answers the in-flight export. The
    /// acknowledgement's cursor/inject payload is absorbed internally; an
    /// RC continuation request surfaces to the caller (see
    /// [`GridSim::sync_exports`]).
    fn recv_export_reply(&mut self) -> ExportReply {
        unreachable!("serial contexts never await exports")
    }
    /// Report an RC continuation's completion (with refreshed owned-site
    /// probes) back to the coordinator.
    fn rc_cont_done(&mut self, _probes: Vec<SiteProbe>) {
        unreachable!("serial contexts never run rc continuations")
    }
    fn note_watched_pending(&mut self, _id: JobId, _earliest_finish: SimTime) {}
    fn note_watched_started(&mut self, _id: JobId, _end: SimTime) {}
    fn note_watched_done(&mut self, _id: JobId) {}
}

/// What [`EvCtx::recv_export_reply`] surfaced while a shard waited out an
/// export acknowledgement.
pub(crate) enum ExportReply {
    /// The coordinator finished processing the export; the shard's child
    /// and record cursors were advanced and any events aimed back at this
    /// shard were absorbed into its queue.
    Acked,
    /// Mid-acknowledgement, the coordinator needs an RC routing decision
    /// continued on this shard (it owns the fabric). The caller runs
    /// [`GridSim::route_rc`] and answers with [`EvCtx::rc_cont_done`].
    RcCont {
        /// Site owning the fabric.
        site: SiteId,
        /// The RC job.
        job: Box<Job>,
    },
}

impl EvCtx for Ctx<'_, Event> {
    fn now(&self) -> SimTime {
        Ctx::now(self)
    }
    fn pending(&self) -> usize {
        Ctx::pending(self)
    }
    fn schedule_at(&mut self, at: SimTime, ev: Event) -> EventKey {
        Ctx::schedule_at(self, at, ev)
    }
    fn schedule_after(&mut self, after: SimDuration, ev: Event) -> EventKey {
        Ctx::schedule_after(self, after, ev)
    }
    fn schedule_now(&mut self, ev: Event) -> EventKey {
        Ctx::schedule_now(self, ev)
    }
    fn cancel(&mut self, key: EventKey) -> bool {
        Ctx::cancel(self, key)
    }
}

/// Where a job currently is in its lifecycle, for span emission. Tracked
/// only while the tracer is enabled; spans are pure observers and never
/// influence simulation behavior.
#[derive(Debug, Clone, Copy)]
struct SpanTrack {
    /// When the current lifecycle phase began.
    phase_start: SimTime,
    /// Whether the job sat in an RC backlog (fabric full) this phase.
    deferred: bool,
}

/// The online observability layer (`--live-stats`): span-duration sketches
/// plus the windowed operational series, with an optional JSONL sink that
/// receives one row per closed series bucket. Disabled by default; see
/// [`GridSim::with_live_stats`]. Like the tracer and metrics, everything
/// here is a pure observer — it never draws randomness, schedules events,
/// or feeds back into a decision, so observed and unobserved runs stay
/// byte-identical.
pub(crate) struct Obs {
    pub(crate) sketches: SpanSketchbook,
    pub(crate) series: WindowedSeries,
    /// Live JSONL sink for closed buckets (serial runs only; sharded runs
    /// snapshot the merged series at join instead).
    sink: Option<Box<dyn std::io::Write + Send>>,
    sink_errors: u64,
}

impl Obs {
    fn disabled() -> Self {
        Obs {
            sketches: SpanSketchbook::disabled(),
            series: WindowedSeries::disabled(),
            sink: None,
            sink_errors: 0,
        }
    }

    pub(crate) fn is_enabled(&self) -> bool {
        self.sketches.is_enabled()
    }

    /// Emit any series buckets that closed before `now` to the live sink.
    /// One compare when no sink is attached or no boundary has passed.
    fn tick(&mut self, now: SimTime) {
        if self.sink.is_none() {
            return;
        }
        let rows = self.series.drain_closed(now);
        if rows.is_empty() {
            return;
        }
        let sink = self.sink.as_mut().expect("checked above");
        for row in rows {
            let line = serde_json::to_string(&row).expect("series row serializes");
            if writeln!(sink, "{line}").is_err() {
                self.sink_errors += 1;
            }
        }
    }

    /// Close out the layer at run end: flush remaining buckets to the sink
    /// and snapshot the final report. `None` when the layer was disabled.
    pub(crate) fn finish(&mut self, end: SimTime) -> Option<StatsReport> {
        if !self.is_enabled() {
            return None;
        }
        let spans = self.sketches.snapshot();
        let already = self.series.drained_buckets();
        let series = self.series.snapshot(end);
        if let Some(sink) = self.sink.as_mut() {
            // The final snapshot covers every bucket; emit the tail the
            // periodic drain had not reached (the last row is the partial
            // end-of-run bucket, so live files always end on the final
            // window).
            for row in series.rows.iter().skip(already) {
                let line = serde_json::to_string(row).expect("series row serializes");
                if writeln!(sink, "{line}").is_err() {
                    self.sink_errors += 1;
                }
            }
            if sink.flush().is_err() {
                self.sink_errors += 1;
            }
        }
        Some(StatsReport {
            spans,
            series,
            live_sink_errors: self.sink_errors,
        })
    }
}

/// Final online-statistics report: the analyzer-aligned sketch tables plus
/// the windowed series. Rides in [`FinishedSim::stats`] /
/// `SimOutput::stats` when `--live-stats` is on.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct StatsReport {
    /// Span-duration sketch tables (kind / cause / site / modality).
    pub spans: SpanStatsSnapshot,
    /// Windowed operational series, one row per virtual-time bucket.
    pub series: SeriesSnapshot,
    /// Write failures on the live JSONL sink (0 when none was attached).
    pub live_sink_errors: u64,
}

/// One periodic metric snapshot.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SampleRow {
    /// When the snapshot was taken.
    pub at: SimTime,
    /// Instantaneous busy-core fraction per site.
    pub busy_fraction: Vec<f64>,
    /// Queue length per site.
    pub queue_len: Vec<usize>,
}

/// Pre-registered instrument handles for [`GridSim`]'s metrics registry.
/// Registration happens unconditionally in [`GridSim::new`] (it is cheap and
/// keeps the layout independent of configuration); the registry only records
/// once [`GridSim::with_metrics`] enables it.
struct Instruments {
    submits: CounterId,
    enqueues: CounterId,
    staging_bytes: CounterId,
    staging_transfers: CounterId,
    rc_deferrals: CounterId,
    /// `completed.site.<name>`, site order.
    site_completions: Vec<CounterId>,
    /// `completed.modality.<name>`, [`Modality::ALL`] order.
    modality_completions: Vec<CounterId>,
    /// `sched.backfills.<name>` / `sched.drains.<name>`, harvested from the
    /// schedulers at end of run.
    site_backfills: Vec<CounterId>,
    site_drains: Vec<CounterId>,
    /// Time-weighted busy-core and queue-length gauges per site.
    busy_cores: Vec<GaugeId>,
    queue_len: Vec<GaugeId>,
    /// Sampled busy-fraction and queue-length series per site (fed by the
    /// periodic sampler when [`GridSim::with_sampling`] is on).
    busy_fraction_series: Vec<SeriesId>,
    queue_len_series: Vec<SeriesId>,
}

impl Instruments {
    fn register(m: &mut MetricsRegistry, federation: &Federation) -> Self {
        let site_names: Vec<String> = federation.sites().map(|s| s.name().to_string()).collect();
        Instruments {
            submits: m.counter("jobs.submitted"),
            enqueues: m.counter("jobs.enqueued"),
            staging_bytes: m.counter("staging.bytes"),
            staging_transfers: m.counter("staging.transfers"),
            rc_deferrals: m.counter("rc.deferrals"),
            site_completions: site_names
                .iter()
                .map(|n| m.counter(format!("completed.site.{n}")))
                .collect(),
            modality_completions: Modality::ALL
                .iter()
                .map(|md| m.counter(format!("completed.modality.{}", md.name())))
                .collect(),
            site_backfills: site_names
                .iter()
                .map(|n| m.counter(format!("sched.backfills.{n}")))
                .collect(),
            site_drains: site_names
                .iter()
                .map(|n| m.counter(format!("sched.drains.{n}")))
                .collect(),
            busy_cores: site_names
                .iter()
                .map(|n| m.gauge(format!("busy_cores.{n}"), SimTime::ZERO, 0.0))
                .collect(),
            queue_len: site_names
                .iter()
                .map(|n| m.gauge(format!("queue_len.{n}"), SimTime::ZERO, 0.0))
                .collect(),
            busy_fraction_series: site_names
                .iter()
                .map(|n| m.series(format!("busy_fraction.{n}")))
                .collect(),
            queue_len_series: site_names
                .iter()
                .map(|n| m.series(format!("queue_len.{n}")))
                .collect(),
        }
    }
}

/// A batch job currently executing. The registry owns each dispatched job
/// exactly once — completion moves it back out, and fault injection can kill
/// it by cancelling its completion event (which carries only the id) and
/// requeueing or abandoning the job taken from here. No clone on either
/// path.
struct RunningRec {
    site: SiteId,
    cores: usize,
    key: EventKey,
    started: SimTime,
    job: Job,
}

/// The lossy accounting-ingest channel. Both uniforms are drawn for *every*
/// record regardless of the configured probabilities, so the per-record fate
/// sequence is identical across loss rates (monotone coupling — the R1
/// experiment's accuracy curve degrades monotonically instead of jittering
/// with resampled randomness).
struct IngestChannel {
    loss: f64,
    dup: f64,
    rng: SimRng,
}

/// What the lossy ingest does with one record.
enum IngestFate {
    Keep,
    Drop,
    Duplicate,
}

/// Everything fault injection needs at run time, attached by
/// [`GridSim::with_faults`]. `None` (the default) means the fault path is
/// completely inert: no events, no RNG draws, no job clones.
pub(crate) struct FaultLayer {
    pub(crate) schedule: FaultSchedule,
    outage_policy: OutagePolicy,
    retry: RetryPolicy,
    book: RetryBook,
    ingest: Option<IngestChannel>,
    /// Cores per site currently out of service from node crashes.
    crashed_cores: Vec<usize>,
    /// Free cores per site parked for the duration of a whole-site outage.
    outage_offline: Vec<usize>,
    /// Outage start per site (`Some` while the site is dark).
    down_since: Vec<Option<SimTime>>,
    /// Degradation-window start per site (`Some` while the uplink is slow).
    degraded_since: Vec<Option<SimTime>>,
    pub(crate) report: FaultReport,
}

/// The assembled simulation.
pub struct GridSim {
    /// The resource model (mutated as jobs run).
    pub federation: Federation,
    pub(crate) schedulers: Vec<Box<dyn BatchScheduler>>,
    meta_policy: MetaPolicy,
    rc_policy: RcPolicy,
    data_home: SiteId,
    /// The data grid: replica catalog plus per-site caches (`None` — the
    /// default — is the pre-data-grid simulator, byte-identical behaviour).
    /// Touched only by the routing path, which runs on the coordinator in
    /// sharded runs, so shard replicas never mutate theirs.
    pub(crate) data: Option<DataLayer>,
    pub(crate) jobs: Vec<Option<Job>>,
    /// Ground-truth labels by job id (kept OUT of the record stream).
    pub(crate) truth: HashMap<JobId, Modality>,
    /// Jobs waiting on workflow dependencies. Each held job is registered
    /// under exactly *one* of its unmet deps; when that dep completes the
    /// job is re-examined and either routed or re-registered under another
    /// still-unmet dep. (A per-job unmet counter would go stale: deps the
    /// job is not registered under can complete in the meantime.)
    dep_waiters: HashMap<JobId, Vec<Job>>,
    completed: HashSet<JobId>,
    /// Deferred RC tasks per site (fabric was full).
    rc_backlog: HashMap<SiteId, VecDeque<Job>>,
    /// Running batch jobs by id — the single owner of every dispatched job
    /// until its completion event delivers (RC fabric tasks are tracked by
    /// their own events). Also the fault layer's kill index.
    running: HashMap<JobId, RunningRec>,
    /// Armed scheduler wakeups (dedupe).
    armed_wakeups: HashMap<SiteId, SimTime>,
    rng: RngFactory,
    /// The accounting database being populated.
    pub db: AccountingDb,
    pub(crate) jobs_done: usize,
    pub(crate) jobs_total: usize,
    pub(crate) sample_interval: Option<tg_des::SimDuration>,
    pub(crate) samples: Vec<SampleRow>,
    /// Run-level metrics (disabled by default; see [`GridSim::with_metrics`]).
    pub(crate) metrics: MetricsRegistry,
    ins: Instruments,
    /// Structured event trace (disabled by default; see
    /// [`GridSim::with_tracer`]).
    pub(crate) tracer: Tracer,
    /// Per-job lifecycle phase state for span emission (populated only while
    /// the tracer or the online-stats layer is enabled).
    span_track: HashMap<JobId, SpanTrack>,
    /// Online observability (disabled by default; see
    /// [`GridSim::with_live_stats`]).
    pub(crate) obs: Obs,
    /// Fault injection (disabled by default; see [`GridSim::with_faults`]).
    pub(crate) faults: Option<FaultLayer>,
    /// Streaming mode: jobs arrive via [`Event::SubmitJob`] and ground
    /// truth is recorded at admission instead of up front.
    streaming: bool,
    /// Record sink (None = retain in `db`, the default). See
    /// [`GridSim::with_record_sink`].
    pub(crate) record_sink: Option<Box<dyn RecordSink>>,
    /// Sharded-coordinator mode only: the freshest per-site observations
    /// gathered from the owning shards, substituted wherever a serial run
    /// would read site state directly (metascheduler views, samples).
    pub(crate) probes: Option<Vec<SiteProbe>>,
}

impl GridSim {
    /// Assemble a simulation.
    ///
    /// `schedulers` must have one entry per federation site. `jobs` is the
    /// generated workload (its ground-truth labels are extracted and
    /// quarantined here).
    pub fn new(
        federation: Federation,
        schedulers: Vec<Box<dyn BatchScheduler>>,
        meta_policy: MetaPolicy,
        rc_policy: RcPolicy,
        data_home: SiteId,
        jobs: Vec<Job>,
        rng: RngFactory,
    ) -> Self {
        assert_eq!(schedulers.len(), federation.len(), "one scheduler per site");
        assert!(data_home.index() < federation.len(), "data home must exist");
        let truth: HashMap<JobId, Modality> =
            jobs.iter().map(|j| (j.id, j.true_modality)).collect();
        let jobs_total = jobs.len();
        let rc_backlog = federation
            .site_ids()
            .map(|s| (s, VecDeque::new()))
            .collect();
        let mut metrics = MetricsRegistry::disabled();
        let ins = Instruments::register(&mut metrics, &federation);
        GridSim {
            federation,
            schedulers,
            meta_policy,
            rc_policy,
            data_home,
            data: None,
            jobs: jobs.into_iter().map(Some).collect(),
            truth,
            dep_waiters: HashMap::new(),
            completed: HashSet::new(),
            rc_backlog,
            running: HashMap::new(),
            armed_wakeups: HashMap::new(),
            rng,
            db: AccountingDb::new(),
            jobs_done: 0,
            jobs_total,
            sample_interval: None,
            samples: Vec::new(),
            metrics,
            ins,
            tracer: Tracer::new(4096),
            span_track: HashMap::new(),
            obs: Obs::disabled(),
            faults: None,
            streaming: false,
            record_sink: None,
            probes: None,
        }
    }

    /// Assemble a streaming-mode simulation: no materialized job list.
    /// Exactly `jobs_total` jobs must later arrive through the stream
    /// handed to [`GridSim::run_streaming`]; ground-truth labels are
    /// collected at admission (complete by the end of the run, identical
    /// final contents to the materialized constructor's up-front map).
    pub fn new_streaming(
        federation: Federation,
        schedulers: Vec<Box<dyn BatchScheduler>>,
        meta_policy: MetaPolicy,
        rc_policy: RcPolicy,
        data_home: SiteId,
        jobs_total: usize,
        rng: RngFactory,
    ) -> Self {
        let mut sim = Self::new(
            federation,
            schedulers,
            meta_policy,
            rc_policy,
            data_home,
            Vec::new(),
            rng,
        );
        sim.jobs_total = jobs_total;
        sim.streaming = true;
        sim
    }

    /// Divert accounting records to `sink` instead of retaining them in the
    /// in-memory database. The sink sees the exact post-ingest-fate record
    /// stream the database would have stored (order included); records
    /// never feed back into simulation behaviour, so the diversion cannot
    /// change any event, draw, or decision.
    pub fn with_record_sink(mut self, sink: Box<dyn RecordSink>) -> Self {
        self.record_sink = Some(sink);
        self
    }

    /// Attach a data grid (replica catalog + per-site caches). Dataset-
    /// carrying jobs then resolve their input through the catalog — routed
    /// toward replica holders by the locality-aware metascheduler policy,
    /// hitting or missing the destination cache — instead of paying the
    /// flat `data_home` staging charge. Jobs without a dataset are
    /// untouched, so a workload that attaches no datasets runs
    /// byte-identically with or without the layer.
    pub fn with_data_grid(mut self, layer: DataLayer) -> Self {
        self.data = Some(layer);
        self
    }

    /// Emit one lifecycle span (`cat == "span"`) covering `[t0, t1]` for
    /// `job`. See `tg_des::span` for the schema; `t1` may lie in the future
    /// relative to `now` (stage-out), which is why both bounds are explicit
    /// fields rather than derived from the entry timestamp.
    #[allow(clippy::too_many_arguments)] // a span's fields arrive together
    fn emit_span(
        &mut self,
        now: SimTime,
        job: &Job,
        kind: SpanKind,
        t0: SimTime,
        t1: SimTime,
        site: Option<SiteId>,
        cause: Option<WaitCause>,
    ) {
        // Online stats see every span close the tracer would, without
        // requiring a retained trace.
        self.obs.sketches.record(
            kind,
            cause,
            site.map(|s| s.index()),
            Some(job.true_modality.index()),
            t1.saturating_since(t0).as_secs_f64(),
        );
        self.tracer.emit_event(now, SPAN_CATEGORY, || {
            let mut fields: Vec<(&'static str, TraceValue)> = vec![
                ("v", SPAN_SCHEMA_VERSION.into()),
                ("job", job.id.index().into()),
                ("kind", kind.name().into()),
                ("t0", t0.as_secs_f64().into()),
                ("t1", t1.as_secs_f64().into()),
                ("modality", job.true_modality.name().into()),
            ];
            if let Some(s) = site {
                fields.push(("site", s.index().into()));
            }
            if let Some(c) = cause {
                fields.push(("cause", c.name().into()));
            }
            fields
        });
    }

    /// Sharded runs only: bring this participant's span-phase entry for
    /// `job` up to date before a span-emitting handler runs. On the serial
    /// path `admit` seeds the entry and `route` keeps it current, but
    /// `admit`/`route` run on the *coordinator*, so a shard first meets a
    /// job here with no entry (fresh arrival) or a stale one (a previous
    /// attempt's phase, older than the requeued `submit_time`).
    ///
    /// The rule is a no-op on the serial path by construction: `route`
    /// bumps `job.submit_time` to the routing instant and resets
    /// `phase_start` to that same instant, so at every `enqueue` /
    /// `route_rc` entry the serial invariant `phase_start >= submit_time`
    /// already holds and neither arm fires.
    fn sync_span_phase(&mut self, job: &Job) {
        if !self.obs.is_enabled() {
            return;
        }
        match self.span_track.get_mut(&job.id) {
            Some(track) if track.phase_start < job.submit_time => {
                track.phase_start = job.submit_time;
                track.deferred = false;
            }
            Some(_) => {}
            None => {
                self.span_track.insert(
                    job.id,
                    SpanTrack {
                        phase_start: job.submit_time,
                        deferred: false,
                    },
                );
            }
        }
    }

    /// Enable run-level metrics collection. Metrics are pure observers —
    /// they never draw randomness or schedule events — so enabling them
    /// cannot change any simulation result.
    pub fn with_metrics(mut self) -> Self {
        self.metrics.set_enabled(true);
        self
    }

    /// Attach a (typically enabled, possibly sink-bearing) tracer. The
    /// tracer observes the same event stream the records come from; like
    /// metrics it never perturbs the simulation.
    pub fn with_tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = tracer;
        self
    }

    /// Enable periodic metric sampling at `interval`. Sampling stops on its
    /// own once no other events remain, so the run still drains.
    pub fn with_sampling(mut self, interval: tg_des::SimDuration) -> Self {
        assert!(!interval.is_zero(), "sample interval must be positive");
        self.sample_interval = Some(interval);
        self
    }

    /// Enable the online observability layer: span-duration sketches keyed
    /// by `(kind, cause, site, modality)` updated at every span close, plus
    /// the windowed operational series at `bucket` granularity. Pure
    /// observers — nothing here draws randomness, schedules events, or
    /// feeds a decision — so enabling it cannot change any simulation
    /// result, and the per-shard state merges byte-deterministically at a
    /// sharded join.
    pub fn with_live_stats(mut self, bucket: tg_des::SimDuration) -> Self {
        let modalities = Modality::ALL.iter().map(|m| m.name().to_string()).collect();
        self.obs.sketches = SpanSketchbook::enabled(self.federation.len(), modalities);
        let cores: Vec<f64> = self
            .federation
            .sites()
            .map(|s| s.cluster.total_cores() as f64)
            .collect();
        self.obs.series = WindowedSeries::enabled(bucket, &cores);
        self
    }

    /// Attach a live JSONL sink receiving one [`tg_des::series::SeriesRow`]
    /// per closed series bucket (requires [`GridSim::with_live_stats`]).
    /// Write failures are tallied, never fatal, mirroring the trace sink.
    pub fn with_live_sink(mut self, sink: Box<dyn std::io::Write + Send>) -> Self {
        assert!(
            self.obs.is_enabled(),
            "attach a live sink after enabling live stats"
        );
        self.obs.sink = Some(sink);
        self
    }

    /// Attach fault injection. The spec compiles against this simulation's
    /// federation and master seed using dedicated `fault.*` RNG streams, so
    /// the schedule is deterministic per `(spec, seed)` and attaching a
    /// trivial spec — or none at all — leaves every other draw, event, and
    /// record byte-identical to a fault-free run.
    pub fn with_faults(mut self, spec: &FaultSpec) -> Self {
        let site_cores: Vec<usize> = self
            .federation
            .sites()
            .map(|s| s.cluster.total_cores())
            .collect();
        let schedule = spec.compile(&site_cores, &self.rng);
        let sites = site_cores.len();
        let ingest = spec.ingest.map(|i| IngestChannel {
            loss: i.loss,
            dup: i.duplication,
            rng: self.rng.stream(StreamId::new("fault.ingest", 0)),
        });
        self.faults = Some(FaultLayer {
            schedule,
            outage_policy: spec.outage_policy,
            retry: spec.retry_policy(),
            book: RetryBook::new(),
            ingest,
            crashed_cores: vec![0; sites],
            outage_offline: vec![0; sites],
            down_since: vec![None; sites],
            degraded_since: vec![None; sites],
            report: FaultReport::new(sites),
        });
        self
    }

    fn take_sample(&mut self, ctx: &mut impl EvCtx) {
        // Sharded coordinator: sample the shard-reported probes (gathered at
        // exactly this event's coordinate), not the stale local replicas.
        let (busy_fraction, queue_len): (Vec<f64>, Vec<usize>) = match &self.probes {
            Some(probes) => probes
                .iter()
                .map(|p| (p.busy_cores as f64 / p.total_cores as f64, p.queue_len))
                .unzip(),
            None => (
                self.federation
                    .sites()
                    .map(|s| s.cluster.busy_cores() as f64 / s.cluster.total_cores() as f64)
                    .collect(),
                self.schedulers.iter().map(|s| s.queue_len()).collect(),
            ),
        };
        for (i, (&bf, &ql)) in busy_fraction.iter().zip(&queue_len).enumerate() {
            self.metrics
                .push(self.ins.busy_fraction_series[i], ctx.now(), bf);
            self.metrics
                .push(self.ins.queue_len_series[i], ctx.now(), ql as f64);
        }
        self.samples.push(SampleRow {
            at: ctx.now(),
            busy_fraction,
            queue_len,
        });
        // Reschedule only while other work remains; otherwise the sampler
        // would keep the event queue alive forever.
        if ctx.pending() > 0 {
            let interval = self.sample_interval.expect("sampling enabled");
            ctx.schedule_after(interval, Event::Sample);
        }
    }

    /// Schedule the whole workload's submit events onto `engine`. The
    /// arrival stream goes in as one staged batch: delivery order is
    /// bit-identical to per-job `schedule_at` calls, but the engine's heap
    /// stays sized to the *dynamic* event population instead of holding the
    /// entire workload up front.
    pub fn prime(&self, engine: &mut Engine<Event>) {
        engine.schedule_batch(self.jobs.iter().enumerate().map(|(i, job)| {
            let job = job.as_ref().expect("unconsumed at prime time");
            (job.submit_time, Event::Submit(i))
        }));
        self.prime_aux(engine);
    }

    /// The non-workload half of priming: the sample tick, then the fault
    /// schedule — in that order, after the submit stream's sequence block,
    /// exactly as [`GridSim::prime`] produces.
    fn prime_aux(&self, engine: &mut Engine<Event>) {
        if let Some(interval) = self.sample_interval {
            engine.schedule_at(SimTime::ZERO + interval, Event::Sample);
        }
        if let Some(f) = &self.faults {
            for (i, ev) in f.schedule.events.iter().enumerate() {
                engine.schedule_at(ev.at, Event::Fault(i));
            }
        }
    }

    /// Run to completion (all jobs done) with a hard event-horizon guard.
    /// Returns the final virtual time.
    pub fn run(self, engine: &mut Engine<Event>) -> FinishedSim {
        self.prime(engine);
        self.drive(engine)
    }

    /// Run a streaming-mode simulation (see [`GridSim::new_streaming`]) to
    /// completion. `jobs` must yield exactly the declared `jobs_total`
    /// jobs sorted by `(submit_time, id)`; the engine pulls them on demand,
    /// so pending workload is O(in-flight), and the delivered event
    /// sequence is bit-identical to a materialized run of the same jobs
    /// (the stream's sequence block is reserved before the sample tick and
    /// fault schedule, mirroring [`GridSim::prime`]'s order).
    pub fn run_streaming(
        self,
        engine: &mut Engine<Event>,
        jobs: impl Iterator<Item = Job> + Send + 'static,
    ) -> FinishedSim {
        assert!(self.streaming, "built with new_streaming");
        engine.schedule_stream(
            self.jobs_total as u64,
            jobs.map(|j| (j.submit_time, Event::SubmitJob(Box::new(j)))),
        );
        self.prime_aux(engine);
        self.drive(engine)
    }

    fn drive(mut self, engine: &mut Engine<Event>) -> FinishedSim {
        engine.run_until(&mut self, StopCondition::Exhausted);
        assert_eq!(
            self.jobs_done,
            self.jobs_total,
            "simulation drained with {} of {} jobs unfinished",
            self.jobs_total - self.jobs_done,
            self.jobs_total
        );
        // Harvest scheduler-side observability counters, then freeze.
        self.harvest_scheduler_counters();
        let metrics = self.metrics.snapshot(engine.now());
        let trace_flush_ok = self.tracer.close_sink();
        debug_assert!(self.running.is_empty(), "registry drained with the jobs");
        let fault_report = self.faults.take().map(|f| f.report);
        let ingest_tally = self.record_sink.as_mut().map(|s| s.close());
        let stats = self.obs.finish(engine.now());
        let data_report = self.data.as_ref().map(DataLayer::report);
        FinishedSim {
            federation: self.federation,
            db: self.db,
            truth: self.truth,
            end: engine.now(),
            samples: self.samples,
            metrics,
            tracer: self.tracer,
            trace_flush_ok,
            fault_report,
            ingest_tally,
            stats,
            data_report,
        }
    }

    /// Ground-truth modality of a job (for scoring only).
    pub fn truth_of(&self, id: JobId) -> Option<Modality> {
        self.truth.get(&id).copied()
    }

    /// Jobs completed so far.
    pub fn jobs_done(&self) -> usize {
        self.jobs_done
    }

    // ------------------------------------------------------------------
    // Routing
    // ------------------------------------------------------------------

    fn route(&mut self, ctx: &mut impl EvCtx, mut job: Job) {
        // Workflow release semantics: the queue sees the task now.
        job.submit_time = job.submit_time.max(ctx.now());
        // Span: time between original submission and routing was spent held
        // on workflow dependencies.
        if let Some(track) = self.span_track.get(&job.id).copied() {
            if ctx.now() > track.phase_start {
                self.emit_span(
                    ctx.now(),
                    &job,
                    SpanKind::Held,
                    track.phase_start,
                    ctx.now(),
                    None,
                    None,
                );
            }
            self.span_track.insert(
                job.id,
                SpanTrack {
                    phase_start: ctx.now(),
                    deferred: false,
                },
            );
        }
        if job.rc.is_some() {
            let site = self.rc_site_for(&job);
            if ctx.exec_mode() == ExecRole::Coord {
                // The fabric lives on a shard: ship the decision there. The
                // continuation executes under this event's own rank, exactly
                // where the serial run inlines it, and its effects on the
                // owner's occupancy come back as refreshed probes so the
                // rest of the emitting handler sees them.
                let refreshed = ctx.export_route_rc(site, Box::new(job));
                if let Some(probes) = self.probes.as_mut() {
                    for (i, p) in refreshed {
                        probes[i] = p;
                    }
                }
            } else {
                self.route_rc(ctx, site, job);
            }
            return;
        }
        let site = match job.site_hint {
            Some(s) => s,
            None => self.select_site(&job),
        };
        // Data-grid path: a named dataset replaces the flat input-staging
        // charge with replica-catalog / cache mechanics. A hit at the
        // chosen site enqueues immediately; a miss pays the WAN from the
        // nearest replica holder and admits the dataset into the site's
        // cache. Either way the resolution cause rides the event so the
        // stage-in span (possibly emitted on another shard) names it.
        if let (Some(ds), true) = (job.dataset, self.data.is_some()) {
            match self.data.as_mut().expect("checked above").access(
                ds,
                site,
                &self.federation.network,
            ) {
                Locate::Hit => {
                    ctx.schedule_now(Event::Enqueue {
                        site,
                        job: Box::new(job),
                        cause: Some(WaitCause::CacheHit),
                    });
                }
                Locate::Miss { source } => {
                    let mb = self.data.as_ref().expect("checked above").size_mb(ds);
                    let dur = self.federation.network.transfer_time(source, site, mb);
                    self.metrics.add(self.ins.staging_bytes, (mb * 1e6) as u64);
                    self.metrics.inc(self.ins.staging_transfers);
                    self.tracer.emit_event(ctx.now(), "xfer", || {
                        vec![
                            ("job", job.id.index().into()),
                            ("dir", "in".into()),
                            ("src", source.index().into()),
                            ("dst", site.index().into()),
                            ("mb", mb.into()),
                        ]
                    });
                    let rec = TransferRecord {
                        user: self.account_of(&job),
                        project: job.project,
                        src: source,
                        dst: site,
                        mb,
                        start: ctx.now(),
                        end: ctx.now() + dur,
                    };
                    self.ingest(ctx, BufRecord::Transfer(rec));
                    ctx.schedule_after(
                        dur,
                        Event::Enqueue {
                            site,
                            job: Box::new(job),
                            cause: Some(WaitCause::CacheMiss),
                        },
                    );
                }
            }
            return;
        }
        // Input staging for large inputs: pay the WAN before queueing.
        if job.input_mb >= STAGING_THRESHOLD_MB && site != self.data_home {
            let dur = self
                .federation
                .network
                .transfer_time(self.data_home, site, job.input_mb);
            self.metrics
                .add(self.ins.staging_bytes, (job.input_mb * 1e6) as u64);
            self.metrics.inc(self.ins.staging_transfers);
            self.tracer.emit_event(ctx.now(), "xfer", || {
                vec![
                    ("job", job.id.index().into()),
                    ("dir", "in".into()),
                    ("dst", site.index().into()),
                    ("mb", job.input_mb.into()),
                ]
            });
            let rec = TransferRecord {
                user: self.account_of(&job),
                project: job.project,
                src: self.data_home,
                dst: site,
                mb: job.input_mb,
                start: ctx.now(),
                end: ctx.now() + dur,
            };
            self.ingest(ctx, BufRecord::Transfer(rec));
            ctx.schedule_after(
                dur,
                Event::Enqueue {
                    site,
                    job: Box::new(job),
                    cause: None,
                },
            );
        } else {
            ctx.schedule_now(Event::Enqueue {
                site,
                job: Box::new(job),
                cause: None,
            });
        }
    }

    fn select_site(&mut self, job: &Job) -> SiteId {
        // Queue depth by scheduler queue length × job-average shape is a
        // coarse stand-in; use queue length × estimate of this job. In a
        // sharded run the coordinator reads the shard-reported probes
        // (synchronized to exactly this event) instead of its stale local
        // replicas — the view vectors are byte-identical either way.
        let queued =
            |queue_len: usize| queue_len as f64 * job.cores as f64 * job.estimate.as_secs_f64();
        let views: Vec<SiteView> = match &self.probes {
            Some(probes) => probes
                .iter()
                .enumerate()
                .map(|(i, p)| SiteView {
                    site: SiteId(i),
                    total_cores: p.total_cores,
                    free_cores: p.free_cores,
                    queued_core_seconds: queued(p.queue_len),
                    core_speed: p.core_speed,
                })
                .collect(),
            None => self
                .federation
                .sites()
                .enumerate()
                .map(|(i, s)| SiteView {
                    site: s.id(),
                    total_cores: s.cluster.total_cores(),
                    free_cores: s.cluster.free_cores(),
                    queued_core_seconds: queued(self.schedulers[i].queue_len()),
                    core_speed: s.core_speed(),
                })
                .collect(),
        };
        // Under an active whole-site outage the metascheduler routes around
        // the dark site(s) — unless no surviving site could fit this job
        // (or everything is dark), in which case it routes to its normal
        // choice and waits out the outage there. The filter only engages
        // while a site is actually down, so fault-free runs build the
        // identical view vector.
        let views = match &self.faults {
            Some(f)
                if f.down_since.iter().any(Option::is_some)
                    && views.iter().any(|v| {
                        f.down_since[v.site.index()].is_none() && job.cores <= v.total_cores
                    }) =>
            {
                views
                    .into_iter()
                    .filter(|v| f.down_since[v.site.index()].is_none())
                    .collect()
            }
            _ => views,
        };
        // Data-locality context: where the job's dataset is resident right
        // now (permanent replicas plus warm caches) and how big it is. Only
        // dataset-carrying jobs build one; everything else passes `None`,
        // which every policy ignores.
        let holders = job
            .dataset
            .and_then(|d| self.data.as_ref().map(|l| (l.holders(d), l.size_mb(d))));
        let dctx = holders.as_ref().map(|(sites, mb)| DataContext {
            resident: sites,
            size_mb: *mb,
        });
        let mut rng = self
            .rng
            .stream(StreamId::new("meta", job.id.index() as u64));
        self.meta_policy
            .select(
                job,
                &views,
                self.data_home,
                &self.federation.network,
                dctx.as_ref(),
                &mut rng,
            )
            .expect("at least one site fits any generated job")
    }

    fn rc_site_for(&self, job: &Job) -> SiteId {
        if let Some(s) = job.site_hint {
            if self.federation.site(s).has_rc() {
                return s;
            }
        }
        self.federation
            .sites()
            .find(|s| s.has_rc())
            .map(|s| s.id())
            .unwrap_or_else(|| job.site_hint.unwrap_or(SiteId(0)))
    }

    // ------------------------------------------------------------------
    // Batch path
    // ------------------------------------------------------------------

    fn enqueue(&mut self, ctx: &mut impl EvCtx, site: SiteId, job: Job, cause: Option<WaitCause>) {
        self.metrics.inc(self.ins.enqueues);
        if ctx.exec_mode() == ExecRole::Shard {
            self.sync_span_phase(&job);
        }
        // Span: any gap since routing was input staging over the WAN.
        // Dataset jobs always close a stage-in span — a cache hit closes a
        // zero-length one — so the hit/miss cause is observable; jobs
        // without a dataset keep the pre-data-grid emission rule.
        if let Some(track) = self.span_track.get(&job.id).copied() {
            if ctx.now() > track.phase_start || cause.is_some() {
                self.emit_span(
                    ctx.now(),
                    &job,
                    SpanKind::StageIn,
                    track.phase_start,
                    ctx.now(),
                    Some(site),
                    cause,
                );
                self.span_track.insert(
                    job.id,
                    SpanTrack {
                        phase_start: ctx.now(),
                        ..track
                    },
                );
            }
        }
        self.tracer.emit_event(ctx.now(), "queue", || {
            vec![
                ("job", job.id.index().into()),
                ("site", site.index().into()),
                ("cores", job.cores.into()),
            ]
        });
        if ctx.exec_mode() == ExecRole::Shard {
            // Emission floor: a watched job can finish no earlier than its
            // arrival plus its minimum runtime at this site.
            let speed = self.federation.site(site).core_speed();
            ctx.note_watched_pending(job.id, ctx.now() + job.runtime_on(speed, false));
        }
        self.schedulers[site.index()].submit(ctx.now(), job);
        self.dispatch(ctx, site);
    }

    fn dispatch(&mut self, ctx: &mut impl EvCtx, site: SiteId) {
        // A site in a whole-site outage is frozen: its queue keeps accepting
        // work but nothing starts until recovery (which dispatches again).
        if self.site_is_down(site) {
            return;
        }
        let speed = self.federation.site(site).core_speed();
        let cluster = &mut self.federation.site_mut(site).cluster;
        let started = self.schedulers[site.index()].make_decisions(ctx.now(), cluster, speed);
        for s in started {
            let actual = s.job.runtime_on(speed, false);
            self.obs.series.on_start(ctx.now());
            if ctx.exec_mode() == ExecRole::Shard {
                // The start pins the exact completion instant; tighten this
                // job's contribution to the shard's emission floor.
                ctx.note_watched_started(s.job.id, ctx.now() + actual);
            }
            // Span: queued phase closes at start. The scheduler attributes the
            // wait from the job's routed submit time; jobs whose queued phase
            // began this instant (e.g. after staging) started immediately.
            if let Some(track) = self.span_track.get(&s.job.id).copied() {
                let cause = if track.phase_start >= ctx.now() {
                    WaitCause::Immediate
                } else {
                    s.cause
                };
                self.emit_span(
                    ctx.now(),
                    &s.job,
                    SpanKind::Queued,
                    track.phase_start,
                    ctx.now(),
                    Some(site),
                    Some(cause),
                );
                self.span_track.insert(
                    s.job.id,
                    SpanTrack {
                        phase_start: ctx.now(),
                        ..track
                    },
                );
            }
            self.tracer.emit_event(ctx.now(), "sched", || {
                vec![
                    ("job", s.job.id.index().into()),
                    ("site", site.index().into()),
                    ("cores", s.job.cores.into()),
                ]
            });
            // The registry takes ownership of the job (no clone); the
            // completion event carries only the id, and the stored event key
            // lets a crash/outage cancel the attempt and requeue the job.
            let key = ctx.schedule_after(actual, Event::Complete { id: s.job.id });
            self.running.insert(
                s.job.id,
                RunningRec {
                    site,
                    cores: s.job.cores,
                    key,
                    started: ctx.now(),
                    job: s.job,
                },
            );
        }
        // Arm a wakeup if the policy wants one (weekly drain).
        if let Some(at) = self.schedulers[site.index()].next_wakeup(ctx.now()) {
            let armed = self.armed_wakeups.get(&site).copied();
            if armed != Some(at) {
                self.armed_wakeups.insert(site, at);
                ctx.schedule_at(at, Event::SchedWakeup { site });
            }
        }
        self.observe_site(ctx.now(), site);
    }

    /// Refresh a site's time-weighted gauges after its state changed.
    fn observe_site(&mut self, now: SimTime, site: SiteId) {
        let series_on = self.obs.series.is_enabled();
        if !self.metrics.is_enabled() && !series_on {
            return;
        }
        let busy = self.federation.site(site).cluster.busy_cores();
        let queued = self.schedulers[site.index()].queue_len();
        self.metrics
            .gauge_set(self.ins.busy_cores[site.index()], now, busy as f64);
        self.metrics
            .gauge_set(self.ins.queue_len[site.index()], now, queued as f64);
        if series_on {
            self.obs
                .series
                .set_site(site.index(), now, busy as f64, queued as f64);
        }
    }

    fn complete_batch(&mut self, ctx: &mut impl EvCtx, id: JobId) {
        if ctx.exec_mode() == ExecRole::Shard {
            ctx.note_watched_done(id);
        }
        let rec = self
            .running
            .remove(&id)
            .expect("completion delivered for a registered running job");
        let RunningRec {
            site, started, job, ..
        } = rec;
        if let Some(f) = self.faults.as_mut() {
            f.book.forget(job.id);
        }
        self.federation
            .site_mut(site)
            .cluster
            .release(ctx.now(), job.cores);
        self.obs.series.on_stop(ctx.now());
        {
            self.schedulers[site.index()].on_complete(ctx.now(), job.id);
        }
        if self.span_track.contains_key(&job.id) {
            self.emit_span(
                ctx.now(),
                &job,
                SpanKind::Run,
                started,
                ctx.now(),
                Some(site),
                None,
            );
        }
        self.tracer.emit_event(ctx.now(), "done", || {
            vec![
                ("job", job.id.index().into()),
                ("site", site.index().into()),
                (
                    "wait_s",
                    started
                        .saturating_since(job.submit_time)
                        .as_secs_f64()
                        .into(),
                ),
            ]
        });
        {
            self.emit_records(ctx, site, &job, started, false, None);
            self.finish_job(ctx, &job);
            self.sync_exports(ctx);
        }
        {
            self.dispatch(ctx, site);
        }
    }

    // ------------------------------------------------------------------
    // RC path
    // ------------------------------------------------------------------

    pub(crate) fn route_rc(&mut self, ctx: &mut impl EvCtx, site: SiteId, job: Job) {
        if ctx.exec_mode() == ExecRole::Shard {
            self.sync_span_phase(&job);
        }
        if !self.federation.site(site).has_rc() {
            // No fabric anywhere: run the software version.
            self.enqueue(ctx, site, job, None);
            return;
        }
        let decision = {
            let fed = &self.federation;
            let s = fed.site(site);
            self.rc_policy.decide(
                &job,
                &s.rc,
                &fed.library,
                |c| fed.bitstream_fetch_time(c, site),
                ctx.now(),
                s.core_speed(),
            )
        };
        match decision {
            RcDecision::PlaceHw { node, plan, setup } => {
                let reused = matches!(plan, HostPlan::Reuse(_));
                let library = self.federation.library.clone();
                let rc_cfg = job.rc.expect("rc job").config;
                let speed = self.federation.site(site).core_speed();
                let region = self.federation.site_mut(site).rc.node_mut(node).commit(
                    plan,
                    rc_cfg,
                    &library,
                    ctx.now(),
                );
                let exec_start = ctx.now() + setup.total();
                // Spans: queued-for-fabric (zero-length unless the job sat in
                // the deferral backlog), then bitstream transfer + reconfig.
                if let Some(track) = self.span_track.get(&job.id).copied() {
                    let cause = if track.deferred {
                        WaitCause::FabricBusy
                    } else {
                        WaitCause::Immediate
                    };
                    self.emit_span(
                        ctx.now(),
                        &job,
                        SpanKind::Queued,
                        track.phase_start,
                        ctx.now(),
                        Some(site),
                        Some(cause),
                    );
                    self.emit_span(
                        ctx.now(),
                        &job,
                        SpanKind::Reconfig,
                        ctx.now(),
                        exec_start,
                        Some(site),
                        Some(WaitCause::ReconfigLatency),
                    );
                    self.span_track.insert(
                        job.id,
                        SpanTrack {
                            phase_start: exec_start,
                            ..track
                        },
                    );
                }
                let hw_runtime = job.runtime_on(speed, true);
                let end = exec_start + hw_runtime;
                let deadline_met = job
                    .rc
                    .and_then(|rc| rc.deadline)
                    .map(|d| end <= job.submit_time + d);
                let placement = RcPlacementRecord {
                    job: job.id,
                    site,
                    node,
                    config: rc_cfg,
                    reused,
                    transfer: setup.transfer,
                    reconfig: setup.reconfig,
                    deadline_met,
                };
                if ctx.exec_mode() == ExecRole::Shard {
                    ctx.note_watched_started(job.id, end);
                }
                self.obs.series.on_start(ctx.now());
                ctx.schedule_at(
                    end,
                    Event::RcComplete {
                        site,
                        node,
                        region,
                        job: Box::new(job),
                        started: exec_start,
                        placement,
                    },
                );
            }
            RcDecision::RunSw => {
                // A deferred job falling back to software spent its backlog
                // time waiting on the fabric, not staging input.
                if let Some(track) = self.span_track.get(&job.id).copied() {
                    if ctx.now() > track.phase_start {
                        self.emit_span(
                            ctx.now(),
                            &job,
                            SpanKind::Queued,
                            track.phase_start,
                            ctx.now(),
                            Some(site),
                            Some(WaitCause::FabricBusy),
                        );
                        self.span_track.insert(
                            job.id,
                            SpanTrack {
                                phase_start: ctx.now(),
                                ..track
                            },
                        );
                    }
                }
                self.enqueue(ctx, site, job, None);
            }
            RcDecision::Defer => {
                self.metrics.inc(self.ins.rc_deferrals);
                self.tracer.emit_event(ctx.now(), "rc", || {
                    vec![("job", job.id.index().into()), ("deferred", true.into())]
                });
                if let Some(track) = self.span_track.get_mut(&job.id) {
                    track.deferred = true;
                }
                if ctx.exec_mode() == ExecRole::Shard {
                    // Floor for a deferred rc job: it cannot finish before
                    // now plus its faster of hardware/software runtimes.
                    let speed = self.federation.site(site).core_speed();
                    let d = job
                        .runtime_on(speed, true)
                        .min(job.runtime_on(speed, false));
                    ctx.note_watched_pending(job.id, ctx.now() + d);
                }
                self.rc_backlog
                    .get_mut(&site)
                    .expect("site backlog exists")
                    .push_back(job);
            }
        }
    }

    #[allow(clippy::too_many_arguments)] // event fields arrive together
    fn complete_rc(
        &mut self,
        ctx: &mut impl EvCtx,
        site: SiteId,
        node: tg_model::NodeId,
        region: tg_model::reconf::RegionId,
        job: Job,
        started: SimTime,
        placement: RcPlacementRecord,
    ) {
        if ctx.exec_mode() == ExecRole::Shard {
            ctx.note_watched_done(job.id);
        }
        self.federation
            .site_mut(site)
            .rc
            .node_mut(node)
            .finish(region, ctx.now());
        self.obs.series.on_stop(ctx.now());
        if self.span_track.contains_key(&job.id) {
            self.emit_span(
                ctx.now(),
                &job,
                SpanKind::Run,
                started,
                ctx.now(),
                Some(site),
                None,
            );
        }
        self.tracer.emit_event(ctx.now(), "rc", || {
            vec![
                ("job", job.id.index().into()),
                ("site", site.index().into()),
                ("reused", placement.reused.into()),
            ]
        });
        self.emit_records(ctx, site, &job, started, true, Some(placement));
        self.finish_job(ctx, &job);
        self.sync_exports(ctx);
        // Fabric freed: retry deferred tasks (FIFO, stop at first re-defer).
        loop {
            let next = self
                .rc_backlog
                .get_mut(&site)
                .expect("site backlog exists")
                .pop_front();
            let Some(next) = next else { break };
            let before = self.rc_backlog[&site].len();
            self.route_rc(ctx, site, next);
            // If route_rc deferred it again it went to the back; avoid
            // spinning over a full backlog in one pass.
            if self.rc_backlog[&site].len() > before {
                break;
            }
        }
    }

    // ------------------------------------------------------------------
    // Fault injection
    // ------------------------------------------------------------------

    /// Is `site` inside a whole-site outage window right now?
    fn site_is_down(&self, site: SiteId) -> bool {
        self.faults
            .as_ref()
            .is_some_and(|f| f.down_since[site.index()].is_some())
    }

    fn handle_fault(&mut self, ctx: &mut impl EvCtx, index: usize) {
        let ev = self
            .faults
            .as_ref()
            .expect("fault event without a fault layer")
            .schedule
            .events[index];
        match ev.kind {
            FaultEventKind::NodeCrash { site, cores } => self.fault_node_crash(ctx, site, cores),
            FaultEventKind::NodeRepair { site, cores } => self.fault_node_repair(ctx, site, cores),
            FaultEventKind::OutageNotice { site, outage_at } => {
                // Graceful drain: the scheduler stops starting work that
                // would outlive the deadline; short jobs keep flowing until
                // the lights go out.
                self.schedulers[site.index()].drain_notice(Some(outage_at));
                self.dispatch(ctx, site);
            }
            FaultEventKind::SiteOutage { site } => self.fault_site_outage(ctx, site),
            FaultEventKind::SiteRecovery { site } => self.fault_site_recovery(ctx, site),
            FaultEventKind::LinkDegrade {
                site,
                bandwidth_factor,
                latency_factor,
            } => {
                let f = self.faults.as_mut().expect("fault layer");
                if f.degraded_since[site.index()].is_none() {
                    f.degraded_since[site.index()] = Some(ctx.now());
                }
                self.federation
                    .network
                    .set_degradation(site, bandwidth_factor, latency_factor);
            }
            FaultEventKind::LinkRestore { site } => {
                let f = self.faults.as_mut().expect("fault layer");
                if let Some(since) = f.degraded_since[site.index()].take() {
                    f.report.degraded_by_site[site.index()] +=
                        ctx.now().saturating_since(since).as_secs_f64();
                }
                self.federation.network.clear_degradation(site);
            }
        }
    }

    /// `cores` cores fail at `site`: enough running jobs are killed (newest
    /// start first) to vacate them, then the cores leave service until the
    /// paired repair. Crashes during a whole-site outage are absorbed by it.
    fn fault_node_crash(&mut self, ctx: &mut impl EvCtx, site: SiteId, cores: usize) {
        if self.site_is_down(site) {
            return;
        }
        let cluster = &self.federation.site(site).cluster;
        let in_service = cluster.total_cores() - cluster.offline_cores();
        let target = cores.min(in_service);
        if target == 0 {
            return;
        }
        self.faults
            .as_mut()
            .expect("fault layer")
            .report
            .node_crashes += 1;
        while self.federation.site(site).cluster.free_cores() < target {
            let Some(victim) = self.pick_victim(site) else {
                break;
            };
            self.kill_running(ctx, victim, WaitCause::NodeFailure, false);
            self.sync_exports(ctx);
        }
        let take = target.min(self.federation.site(site).cluster.free_cores());
        if take > 0 {
            self.federation
                .site_mut(site)
                .cluster
                .take_offline(ctx.now(), take);
            self.faults.as_mut().expect("fault layer").crashed_cores[site.index()] += take;
        }
        // Kills freed cores beyond the crashed ones; let the queue use them.
        self.dispatch(ctx, site);
    }

    fn fault_node_repair(&mut self, ctx: &mut impl EvCtx, site: SiteId, cores: usize) {
        let f = self.faults.as_mut().expect("fault layer");
        let fixed = cores.min(f.crashed_cores[site.index()]);
        if fixed == 0 {
            return;
        }
        f.crashed_cores[site.index()] -= fixed;
        if f.down_since[site.index()].is_some() {
            // The site is dark anyway: repaired cores wait out the outage
            // in the parked pool and return with it at recovery.
            f.outage_offline[site.index()] += fixed;
            return;
        }
        self.federation
            .site_mut(site)
            .cluster
            .bring_online(ctx.now(), fixed);
        self.dispatch(ctx, site);
    }

    /// The whole site goes dark: running work is killed (or checkpointed per
    /// [`OutagePolicy`]), the queue freezes, and every core leaves service
    /// until the paired recovery.
    fn fault_site_outage(&mut self, ctx: &mut impl EvCtx, site: SiteId) {
        if self.site_is_down(site) {
            return; // overlapping windows merge into the first
        }
        let checkpoint = {
            let f = self.faults.as_mut().expect("fault layer");
            f.report.site_outages += 1;
            f.down_since[site.index()] = Some(ctx.now());
            f.outage_policy == OutagePolicy::Checkpoint
        };
        self.federation.site_mut(site).set_available(false);
        let cause = WaitCause::SiteOutage;
        while let Some(victim) = self.pick_victim(site) {
            self.kill_running(ctx, victim, cause, checkpoint);
            self.sync_exports(ctx);
        }
        // Park everything free (all in-service cores, now that the running
        // work is gone) until recovery; crashed cores stay in their pool.
        let free = self.federation.site(site).cluster.free_cores();
        if free > 0 {
            self.federation
                .site_mut(site)
                .cluster
                .take_offline(ctx.now(), free);
            self.faults.as_mut().expect("fault layer").outage_offline[site.index()] += free;
        }
    }

    fn fault_site_recovery(&mut self, ctx: &mut impl EvCtx, site: SiteId) {
        let parked = {
            let f = self.faults.as_mut().expect("fault layer");
            let Some(since) = f.down_since[site.index()].take() else {
                return; // recovery of a merged/duplicate window
            };
            f.report.downtime_by_site[site.index()] +=
                ctx.now().saturating_since(since).as_secs_f64();
            std::mem::take(&mut f.outage_offline[site.index()])
        };
        self.federation.site_mut(site).set_available(true);
        if parked > 0 {
            self.federation
                .site_mut(site)
                .cluster
                .bring_online(ctx.now(), parked);
        }
        self.schedulers[site.index()].drain_notice(None);
        self.dispatch(ctx, site);
    }

    /// The running job at `site` that started last (ties: highest id) — the
    /// deterministic kill order for crashes and outages. Preferring the
    /// newest attempt loses the least completed work.
    fn pick_victim(&self, site: SiteId) -> Option<JobId> {
        self.running
            .values()
            .filter(|r| r.site == site)
            .max_by_key(|r| (r.started, r.job.id.index()))
            .map(|r| r.job.id)
    }

    /// Kill one running job: cancel its completion event, free its cores
    /// (without counting a completion), emit a `fault` span for the lost
    /// execution, and requeue it after backoff — or checkpoint-restart it,
    /// or abandon it once the retry budget is exhausted.
    fn kill_running(
        &mut self,
        ctx: &mut impl EvCtx,
        id: JobId,
        cause: WaitCause,
        checkpoint: bool,
    ) {
        let rec = self
            .running
            .remove(&id)
            .expect("victim is in the running registry");
        assert!(
            ctx.cancel(rec.key),
            "completion already delivered for a registered running job"
        );
        self.federation
            .site_mut(rec.site)
            .cluster
            .preempt(ctx.now(), rec.cores);
        self.obs.series.on_stop(ctx.now());
        self.schedulers[rec.site.index()].on_complete(ctx.now(), id);
        self.faults
            .as_mut()
            .expect("fault layer")
            .report
            .jobs_killed += 1;
        if let Some(track) = self.span_track.get(&id).copied() {
            self.emit_span(
                ctx.now(),
                &rec.job,
                SpanKind::Fault,
                track.phase_start,
                ctx.now(),
                Some(rec.site),
                Some(cause),
            );
            self.span_track.insert(
                id,
                SpanTrack {
                    phase_start: ctx.now(),
                    ..track
                },
            );
        }
        self.tracer.emit_event(ctx.now(), "fault", || {
            vec![
                ("job", id.index().into()),
                ("site", rec.site.index().into()),
                ("cause", cause.name().into()),
            ]
        });
        let mut job = rec.job;
        if ctx.exec_mode() == ExecRole::Shard {
            ctx.note_watched_done(id);
        }
        if checkpoint {
            // Checkpoint at the kill instant: only the remaining work reruns
            // and the retry budget is not charged.
            let speed = self.federation.site(rec.site).core_speed();
            let done_ref = ctx.now().saturating_since(rec.started).as_secs_f64() * speed;
            let remaining = (job.runtime.as_secs_f64() - done_ref).max(1.0);
            job.runtime = SimDuration::from_secs_f64(remaining);
            job.estimate = job.estimate.max(job.runtime);
            let f = self.faults.as_mut().expect("fault layer");
            f.report.checkpoint_restarts += 1;
            f.report.jobs_requeued += 1;
            let backoff = f.retry.backoff(1);
            if ctx.exec_mode() == ExecRole::Shard {
                // Requeues re-enter routing, which is coordinator-owned.
                let at = ctx.now() + backoff;
                ctx.export_requeue(at, ctx.now(), Box::new(job));
            } else {
                ctx.schedule_after(
                    backoff,
                    Event::Requeue {
                        job: Box::new(job),
                        killed_at: ctx.now(),
                    },
                );
            }
            return;
        }
        if ctx.exec_mode() == ExecRole::Shard {
            // The retry book (and the abandon-vs-requeue decision it feeds)
            // is coordinator state; ship the victim across with fresh site
            // probes so a retry routes against current occupancy.
            let probes = self.all_probes();
            ctx.export_kill_retry(Box::new(job), probes);
            return;
        }
        let f = self.faults.as_mut().expect("fault layer");
        let attempts = f.book.record(id);
        if f.retry.exhausted(attempts) {
            f.report.jobs_abandoned += 1;
            f.book.forget(id);
            self.tracer.emit_event(ctx.now(), "abandon", || {
                vec![
                    ("job", id.index().into()),
                    ("attempts", (attempts as usize).into()),
                ]
            });
            // The job never completes and leaves no accounting record, but
            // it still counts toward the drain and releases its dependents.
            self.finish_job(ctx, &job);
        } else {
            f.report.jobs_requeued += 1;
            let backoff = f.retry.backoff(attempts);
            ctx.schedule_after(
                backoff,
                Event::Requeue {
                    job: Box::new(job),
                    killed_at: ctx.now(),
                },
            );
        }
    }

    /// A killed job returns from backoff: emit the `requeue` span covering
    /// the backoff wait, then route it as a fresh submission (`route` bumps
    /// `submit_time`, so accounting sees the final attempt's resubmission).
    ///
    /// The span's start is `killed_at`, carried in the event rather than
    /// read from `span_track`: in a serial run the kill site just set
    /// `phase_start` to the kill time so the two are identical, but in a
    /// sharded run the kill happened on a shard and the coordinator's
    /// track (seeded at admit) is stale.
    fn requeue(&mut self, ctx: &mut impl EvCtx, job: Job, killed_at: SimTime) {
        if self.span_track.contains_key(&job.id) {
            if ctx.now() > killed_at {
                self.emit_span(
                    ctx.now(),
                    &job,
                    SpanKind::Requeue,
                    killed_at,
                    ctx.now(),
                    None,
                    None,
                );
            }
            self.span_track.insert(
                job.id,
                SpanTrack {
                    phase_start: ctx.now(),
                    deferred: false,
                },
            );
        }
        self.tracer.emit_event(ctx.now(), "requeue", || {
            vec![("job", job.id.index().into())]
        });
        self.route(ctx, job);
    }

    // ------------------------------------------------------------------
    // Records & dependency release
    // ------------------------------------------------------------------

    /// Lossy-ingest fate for the next accounting record. Draws both
    /// uniforms on every call whenever the channel exists (see
    /// [`IngestChannel`] for why), and none otherwise.
    fn ingest_fate(&mut self) -> IngestFate {
        let Some(ch) = self.faults.as_mut().and_then(|f| f.ingest.as_mut()) else {
            return IngestFate::Keep;
        };
        let u_loss = ch.rng.uniform();
        let u_dup = ch.rng.uniform();
        if u_loss < ch.loss {
            IngestFate::Drop
        } else if u_dup < ch.dup {
            IngestFate::Duplicate
        } else {
            IngestFate::Keep
        }
    }

    /// Route one accounting record through the (possibly lossy) ingest.
    /// Ground truth is never touched — this models measurement loss.
    ///
    /// In sharded runs the record is buffered (with its causal stamp) on
    /// the emitting participant instead: the coordinator replays every
    /// buffered record in global stamp order at merge time, so the ingest
    /// RNG sees the exact serial draw sequence.
    fn ingest(&mut self, ctx: &mut impl EvCtx, rec: BufRecord) {
        if ctx.buffers_records() {
            ctx.buffer_record(rec);
            return;
        }
        self.replay_record(rec);
    }

    /// Apply one record through the lossy-ingest channel immediately.
    /// Serial runs land here straight from [`GridSim::ingest`]; sharded
    /// runs land here during the coordinator's merge replay.
    pub(crate) fn replay_record(&mut self, rec: BufRecord) {
        match self.ingest_fate() {
            IngestFate::Keep => self.store_record(rec, 1),
            IngestFate::Drop => {
                self.faults
                    .as_mut()
                    .expect("lossy fate implies a channel")
                    .report
                    .records_lost += 1;
            }
            IngestFate::Duplicate => {
                self.store_record(rec, 2);
                self.faults
                    .as_mut()
                    .expect("lossy fate implies a channel")
                    .report
                    .records_duplicated += 1;
            }
        }
    }

    /// Final landing point of a surviving record: the sink when one is
    /// attached, the in-memory database otherwise. The sink sees the same
    /// copies in the same order the database would have stored.
    fn store_record(&mut self, rec: BufRecord, copies: usize) {
        if let Some(sink) = self.record_sink.as_mut() {
            for _ in 0..copies {
                sink.write(rec.as_record_ref());
            }
        } else {
            for _ in 1..copies {
                rec.clone().apply(&mut self.db);
            }
            rec.apply(&mut self.db);
        }
    }

    /// The account a job is recorded under: the gateway community account
    /// for gateway traffic, the personal account otherwise.
    fn account_of(&self, job: &Job) -> UserId {
        match job.gateway {
            Some(gw) => UserId(COMMUNITY_ACCOUNT_BASE + gw.index()),
            None => job.user,
        }
    }

    fn emit_records(
        &mut self,
        ctx: &mut impl EvCtx,
        site: SiteId,
        job: &Job,
        started: SimTime,
        used_hw: bool,
        placement: Option<RcPlacementRecord>,
    ) {
        let account = self.account_of(job);
        self.metrics.inc(self.ins.site_completions[site.index()]);
        self.metrics
            .inc(self.ins.modality_completions[job.true_modality.index()]);
        let rec = JobRecord {
            job: job.id,
            user: account,
            project: job.project,
            site,
            submit: job.submit_time,
            start: started,
            end: ctx.now(),
            cores: job.cores,
            interface: job.interface,
            used_hw,
            input_mb: job.input_mb,
            output_mb: job.output_mb,
        };
        self.ingest(ctx, BufRecord::Job(rec));
        if let Some(gw) = job.gateway {
            // The gateway declares which of its community end users this job
            // served; the tag is the gateway's own id space (we use the
            // generating person's id, which accounting treats as opaque).
            let rec = GatewayAttribute {
                gateway: gw,
                job: job.id,
                end_user: job.user.index() as u64,
            };
            self.ingest(ctx, BufRecord::Gateway(rec));
        }
        if let Some(p) = placement {
            self.ingest(ctx, BufRecord::Rc(p));
        }
        // Interactive work implies a login session wrapping the job.
        if job.true_modality == Modality::Interactive {
            let rec = SessionRecord {
                user: account,
                site,
                login: job.submit_time,
                logout: ctx.now(),
            };
            self.ingest(ctx, BufRecord::Session(rec));
        }
        // Output staging to the archive for big outputs.
        if job.output_mb >= STAGING_THRESHOLD_MB && site != self.data_home {
            let dur = self
                .federation
                .network
                .transfer_time(site, self.data_home, job.output_mb);
            self.metrics
                .add(self.ins.staging_bytes, (job.output_mb * 1e6) as u64);
            self.metrics.inc(self.ins.staging_transfers);
            if self.span_track.contains_key(&job.id) {
                self.emit_span(
                    ctx.now(),
                    job,
                    SpanKind::StageOut,
                    ctx.now(),
                    ctx.now() + dur,
                    Some(site),
                    None,
                );
            }
            self.tracer.emit_event(ctx.now(), "xfer", || {
                vec![
                    ("job", job.id.index().into()),
                    ("dir", "out".into()),
                    ("src", site.index().into()),
                    ("mb", job.output_mb.into()),
                ]
            });
            let rec = TransferRecord {
                user: account,
                project: job.project,
                src: site,
                dst: self.data_home,
                mb: job.output_mb,
                start: ctx.now(),
                end: ctx.now() + dur,
            };
            self.ingest(ctx, BufRecord::Transfer(rec));
        }
    }

    fn finish_job(&mut self, ctx: &mut impl EvCtx, job: &Job) {
        self.span_track.remove(&job.id);
        self.obs.series.on_complete(ctx.now());
        self.jobs_done += 1;
        if ctx.exec_mode() == ExecRole::Shard {
            // Dependency state lives on the coordinator. Only completions
            // other jobs actually wait on need to cross the wire; the rest
            // are fully local (nothing downstream ever consults them).
            if ctx.is_watched(job.id) {
                let probes = self.all_probes();
                ctx.export_finish(job.id, probes);
            }
            return;
        }
        self.release_deps(ctx, job.id);
    }

    /// Mark `id` complete and route any jobs whose last unmet dependency
    /// it was. Runs on the serial path inline and on the coordinator when
    /// a shard reports a watched completion.
    pub(crate) fn release_deps(&mut self, ctx: &mut impl EvCtx, id: JobId) {
        self.completed.insert(id);
        if let Some(waiters) = self.dep_waiters.remove(&id) {
            for waiter in waiters {
                match waiter
                    .deps
                    .iter()
                    .copied()
                    .find(|d| !self.completed.contains(d))
                {
                    None => self.route(ctx, waiter),
                    Some(next_dep) => {
                        self.dep_waiters.entry(next_dep).or_default().push(waiter);
                    }
                }
            }
        }
    }

    fn submit_from_trace(&mut self, ctx: &mut impl EvCtx, index: usize) {
        let job = self.jobs[index].take().expect("submit delivered once");
        self.admit(ctx, job);
    }

    /// Admit a newly arrived job — the shared trunk of both submit paths.
    /// In streaming mode the ground-truth label is quarantined here (the
    /// materialized constructor did it up front; final map contents are
    /// identical because every job is admitted exactly once).
    fn admit(&mut self, ctx: &mut impl EvCtx, job: Job) {
        if self.streaming {
            self.truth.insert(job.id, job.true_modality);
        }
        self.metrics.inc(self.ins.submits);
        self.tracer.emit_event(ctx.now(), "submit", || {
            vec![
                ("job", job.id.index().into()),
                ("cores", job.cores.into()),
                ("deps", job.deps.len().into()),
            ]
        });
        self.obs.series.on_submit(ctx.now());
        if self.tracer.is_enabled() || self.obs.is_enabled() {
            self.span_track.insert(
                job.id,
                SpanTrack {
                    phase_start: job.submit_time,
                    deferred: false,
                },
            );
        }
        let first_unmet = job
            .deps
            .iter()
            .copied()
            .find(|d| !self.completed.contains(d));
        match first_unmet {
            None => self.route(ctx, job),
            Some(dep) => {
                self.dep_waiters.entry(dep).or_default().push(job);
            }
        }
    }
}

impl GridSim {
    /// The event dispatch table, shared verbatim by the serial engine
    /// ([`Simulation::handle`]) and the sharded participants (which call it
    /// with their own [`EvCtx`] implementations).
    pub(crate) fn dispatch_event(&mut self, ctx: &mut impl EvCtx, event: Event) {
        // Live-stats sink: flush series buckets that closed before this
        // event (a no-op compare unless a sink is attached, which only the
        // serial engine does).
        self.obs.tick(ctx.now());
        match event {
            Event::Submit(index) => self.submit_from_trace(ctx, index),
            Event::SubmitJob(job) => self.admit(ctx, *job),
            Event::Enqueue { site, job, cause } => self.enqueue(ctx, site, *job, cause),
            Event::Complete { id } => self.complete_batch(ctx, id),
            Event::RcComplete {
                site,
                node,
                region,
                job,
                started,
                placement,
            } => self.complete_rc(ctx, site, node, region, *job, started, placement),
            Event::SchedWakeup { site } => {
                self.armed_wakeups.remove(&site);
                self.dispatch(ctx, site);
            }
            Event::Sample => self.take_sample(ctx),
            Event::Fault(index) => self.handle_fault(ctx, index),
            Event::Requeue { job, killed_at } => self.requeue(ctx, *job, killed_at),
            Event::NetUpdate(index) => self.apply_net_update(index),
        }
    }

    /// Replicate a link fault's network effect on a shard. The coordinator
    /// owns the counted `Fault` event (report + `degraded_since`); every
    /// shard applies only the transfer-time change to its network replica.
    pub(crate) fn apply_net_update(&mut self, index: usize) {
        let ev = self
            .faults
            .as_ref()
            .expect("net update without a fault layer")
            .schedule
            .events[index];
        match ev.kind {
            FaultEventKind::LinkDegrade {
                site,
                bandwidth_factor,
                latency_factor,
            } => {
                self.federation
                    .network
                    .set_degradation(site, bandwidth_factor, latency_factor);
            }
            FaultEventKind::LinkRestore { site } => {
                self.federation.network.clear_degradation(site);
            }
            _ => unreachable!("NetUpdate is only scheduled for link events"),
        }
    }

    /// Replicate a site outage window's *routing visibility* on the
    /// coordinator. The owning shard executes the real (counted) `Fault`
    /// event with its kills and report bookkeeping; the coordinator only
    /// needs `down_since` to keep `select_site`'s outage filter identical
    /// to the serial run.
    pub(crate) fn apply_outage_mirror(&mut self, index: usize, now: SimTime) {
        let f = self
            .faults
            .as_mut()
            .expect("outage mirror without a fault layer");
        let ev = f.schedule.events[index];
        match ev.kind {
            FaultEventKind::SiteOutage { site } => {
                // Overlapping windows merge into the first, as in
                // `fault_site_outage`.
                if f.down_since[site.index()].is_none() {
                    f.down_since[site.index()] = Some(now);
                }
            }
            FaultEventKind::SiteRecovery { site } => {
                f.down_since[site.index()] = None;
            }
            _ => unreachable!("outage mirror is only scheduled for outage events"),
        }
    }

    /// Coordinator half of a shard-exported kill: charge the retry book and
    /// either abandon the job (counting it done and releasing dependents)
    /// or schedule its requeue after backoff. Byte-for-byte the bottom of
    /// the serial [`GridSim::kill_running`].
    pub(crate) fn coord_kill_retry(&mut self, ctx: &mut impl EvCtx, job: Box<Job>) {
        let id = job.id;
        let f = self.faults.as_mut().expect("fault layer");
        let attempts = f.book.record(id);
        if f.retry.exhausted(attempts) {
            f.report.jobs_abandoned += 1;
            f.book.forget(id);
            self.tracer.emit_event(ctx.now(), "abandon", || {
                vec![
                    ("job", id.index().into()),
                    ("attempts", (attempts as usize).into()),
                ]
            });
            self.finish_job(ctx, &job);
        } else {
            f.report.jobs_requeued += 1;
            let backoff = f.retry.backoff(attempts);
            // The interlude runs this at the shard's kill time, so `now`
            // is the moment the fault struck — the requeue span's start.
            ctx.schedule_after(
                backoff,
                Event::Requeue {
                    job,
                    killed_at: ctx.now(),
                },
            );
        }
    }

    /// Drain any in-flight export acknowledgement at a safe re-entrancy
    /// point (after a kill or a finish, where `&mut self` is available
    /// again). While the coordinator processes the export it may need an RC
    /// routing decision continued *on this very shard*; that continuation
    /// runs here, inline, exactly where the serial run would have inlined
    /// it — its effects (fabric occupancy, freed cores) are visible to the
    /// remainder of the emitting handler, and the acknowledgement restores
    /// the shared child/record cursors before any further scheduling calls.
    ///
    /// Serial and coordinator contexts never owe an acknowledgement, so
    /// this compiles to nothing on those paths.
    pub(crate) fn sync_exports(&mut self, ctx: &mut impl EvCtx) {
        while ctx.export_in_flight() {
            match ctx.recv_export_reply() {
                ExportReply::Acked => {}
                ExportReply::RcCont { site, job } => {
                    self.route_rc(ctx, site, *job);
                    let probes = self.all_probes();
                    ctx.rc_cont_done(probes);
                }
            }
        }
    }

    /// Fold the scheduler-side observability counters (backfills, drains)
    /// into the metrics registry. The serial `run` calls this once at the
    /// end; sharded participants call it on their own registries before
    /// the merge.
    pub(crate) fn harvest_scheduler_counters(&mut self) {
        for i in 0..self.schedulers.len() {
            let b = self.schedulers[i].backfills();
            let d = self.schedulers[i].drains();
            self.metrics.add(self.ins.site_backfills[i], b);
            self.metrics.add(self.ins.site_drains[i], d);
        }
    }

    /// Shard half of the mid-run governor fold: strip the replica down to
    /// the state the coordinator must take over. Everything else (the jobs
    /// arena, the untouched data-layer replica, the network copy) is
    /// dropped here — the coordinator's own replica is authoritative for
    /// all of it. Scheduler counters are deliberately *not* harvested: the
    /// boxes themselves move across, and the coordinator's single
    /// end-of-run [`GridSim::harvest_scheduler_counters`] reads their
    /// cumulative totals exactly once.
    pub(crate) fn surrender(self) -> ShardYield {
        ShardYield {
            federation: self.federation,
            schedulers: self.schedulers,
            running: self.running,
            span_track: self.span_track,
            rc_backlog: self.rc_backlog,
            armed_wakeups: self.armed_wakeups,
            faults: self.faults.map(|f| FaultYield {
                crashed_cores: f.crashed_cores,
                outage_offline: f.outage_offline,
                down_since: f.down_since,
                report: f.report,
            }),
            metrics: self.metrics,
            sketches: self.obs.sketches,
            series: self.obs.series,
            jobs_done: self.jobs_done,
        }
    }

    /// Coordinator half of the governor fold: take over a surrendering
    /// shard's authoritative state so the remainder of the run can execute
    /// on the exact serial path. `owned` lists the site indices the shard
    /// owned; `keymap` translates the shard's queue keys to the
    /// coordinator's (completion events were rescheduled into the
    /// coordinator's queue under fresh keys, and the kill path cancels by
    /// [`RunningRec`] key).
    pub(crate) fn absorb_shard(
        &mut self,
        mut y: ShardYield,
        owned: &[usize],
        keymap: &HashMap<EventKey, EventKey>,
    ) {
        for &s in owned {
            std::mem::swap(
                self.federation.site_mut(SiteId(s)),
                y.federation.site_mut(SiteId(s)),
            );
            std::mem::swap(&mut self.schedulers[s], &mut y.schedulers[s]);
        }
        for (id, mut rec) in y.running {
            rec.key = *keymap
                .get(&rec.key)
                .expect("running job's completion event folded with its shard");
            let prev = self.running.insert(id, rec);
            debug_assert!(prev.is_none(), "job running on two participants");
        }
        for (id, track) in y.span_track {
            self.span_track.insert(id, track);
        }
        for (site, q) in y.rc_backlog {
            if owned.contains(&site.index()) {
                self.rc_backlog.insert(site, q);
            }
        }
        for (site, at) in y.armed_wakeups {
            self.armed_wakeups.insert(site, at);
        }
        if let Some(fy) = y.faults {
            let f = self
                .faults
                .as_mut()
                .expect("shards have a fault layer only when the coordinator does");
            // Per-site fault state is single-writer: the owning shard's
            // values are authoritative for its sites. `degraded_since` stays
            // ours — link windows are replicated everywhere and already
            // tracked here.
            for &s in owned {
                f.crashed_cores[s] = fy.crashed_cores[s];
                f.outage_offline[s] = fy.outage_offline[s];
                f.down_since[s] = fy.down_since[s];
            }
            f.report.merge_from(&fy.report);
        }
        self.metrics.merge_from(&y.metrics);
        if self.obs.is_enabled() {
            self.obs.sketches.merge_from(&y.sketches);
            self.obs.series.merge_from(&y.series);
        }
        self.jobs_done += y.jobs_done;
    }

    /// Translate the completion-event keys held by running jobs after the
    /// governor's fold renumbered the coordinator queue
    /// (`RankQueue::fuse_serial`). Every running job's completion event is
    /// live on that queue — cancellation removes the job from the registry
    /// too — so a missing translation is a protocol bug, not a tolerable
    /// state (a stale raw key could collide with a fresh seq and cancel the
    /// wrong event).
    pub(crate) fn remap_running_keys(&mut self, keymap: &tg_des::shard::KeyTranslation) {
        for rec in self.running.values_mut() {
            rec.key = keymap
                .get(rec.key)
                .expect("running job's completion event is pending on the fused queue");
        }
    }

    /// Occupancy probes for every site, read from this participant's
    /// replica. Only the probes of sites this participant *owns* are
    /// meaningful; the sharded driver filters to those when assembling the
    /// coordinator's global view.
    pub(crate) fn all_probes(&self) -> Vec<SiteProbe> {
        self.federation
            .sites()
            .enumerate()
            .map(|(i, s)| SiteProbe {
                free_cores: s.cluster.free_cores(),
                busy_cores: s.cluster.busy_cores(),
                total_cores: s.cluster.total_cores(),
                queue_len: self.schedulers[i].queue_len(),
                core_speed: s.core_speed(),
            })
            .collect()
    }
}

/// The state a shard hands back when the execution governor folds the run
/// to serial mid-flight: exactly the per-site state the shard owned, plus
/// its observer books. Built by [`GridSim::surrender`], consumed by
/// [`GridSim::absorb_shard`]; the driver ships it across the shard channel
/// boxed together with the shard's drained queue.
pub(crate) struct ShardYield {
    federation: Federation,
    schedulers: Vec<Box<dyn BatchScheduler>>,
    running: HashMap<JobId, RunningRec>,
    span_track: HashMap<JobId, SpanTrack>,
    rc_backlog: HashMap<SiteId, VecDeque<Job>>,
    armed_wakeups: HashMap<SiteId, SimTime>,
    faults: Option<FaultYield>,
    metrics: MetricsRegistry,
    sketches: SpanSketchbook,
    series: WindowedSeries,
    jobs_done: usize,
}

/// The fault-layer slice of a [`ShardYield`]: per-site single-writer state
/// plus the shard's half of the fault report. The retry book, ingest
/// channel, and policies stay with the coordinator (it already owns them).
struct FaultYield {
    crashed_cores: Vec<usize>,
    outage_offline: Vec<usize>,
    down_since: Vec<Option<SimTime>>,
    report: FaultReport,
}

impl Simulation for GridSim {
    type Event = Event;

    fn handle(&mut self, ctx: &mut Ctx<Event>, event: Event) {
        self.dispatch_event(ctx, event);
    }
}

/// Everything a finished simulation leaves behind.
pub struct FinishedSim {
    /// Final resource-model state (utilization integrals, RC stats).
    pub federation: Federation,
    /// The accounting database.
    pub db: AccountingDb,
    /// Ground truth, for scoring only.
    pub truth: HashMap<JobId, Modality>,
    /// Final virtual time.
    pub end: SimTime,
    /// Periodic metric snapshots (empty unless sampling was enabled).
    pub samples: Vec<SampleRow>,
    /// Run-level metrics snapshot (`None` unless [`GridSim::with_metrics`]
    /// was on). The engine profile slot is filled by the harness, which is
    /// where wall-clock time is measured.
    pub metrics: Option<MetricsSnapshot>,
    /// The tracer, ring buffer intact (sink already flushed and closed).
    pub tracer: Tracer,
    /// Whether the trace sink's final flush succeeded (`true` when no sink
    /// was attached). Combined with [`Tracer::sink_errors`] this tells a
    /// caller whether an archived trace file is complete.
    pub trace_flush_ok: bool,
    /// What fault injection did (`None` unless [`GridSim::with_faults`]).
    pub fault_report: Option<FaultReport>,
    /// Final tally from an attached record sink (`None` when records were
    /// retained in `db`, i.e. the default path).
    pub ingest_tally: Option<IngestTally>,
    /// Online observability report (`None` unless
    /// [`GridSim::with_live_stats`] was on): pooled span sketches plus the
    /// windowed operational series.
    pub stats: Option<StatsReport>,
    /// Data-grid outcome (`None` unless [`GridSim::with_data_grid`]):
    /// per-site cache hit rates, WAN bytes moved, eviction counts.
    pub data_report: Option<DataReport>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use tg_model::config::ProcessorConfig;
    use tg_model::{ConfigLibrary, Federation, SiteConfig};
    use tg_sched::SchedulerKind;
    use tg_workload::{ProjectId, RcRequirement, SubmitInterface, WorkflowId};

    fn tiny_federation() -> Federation {
        let mut lib = ConfigLibrary::new();
        let mut cfg = ProcessorConfig::new("k", 4, 10.0);
        cfg.reconfig_time = SimDuration::from_secs(5);
        lib.add(cfg);
        Federation::builder()
            .site(SiteConfig {
                batch_nodes: 4,
                cores_per_node: 4,
                ..SiteConfig::medium("alpha")
            })
            .site(SiteConfig {
                batch_nodes: 2,
                cores_per_node: 4,
                rc_nodes: 2,
                rc_area_per_node: 8,
                ..SiteConfig::medium("gamma")
            })
            .library(lib)
            .repository_at(0)
            .build()
    }

    fn schedulers(fed: &Federation, kind: SchedulerKind) -> Vec<Box<dyn BatchScheduler>> {
        fed.sites()
            .map(|s| kind.build(s.cluster.total_cores()))
            .collect()
    }

    fn run_jobs(jobs: Vec<Job>) -> FinishedSim {
        let fed = tiny_federation();
        let scheds = schedulers(&fed, SchedulerKind::Easy);
        let sim = GridSim::new(
            fed,
            scheds,
            MetaPolicy::ShortestEta,
            RcPolicy::AWARE,
            SiteId(0),
            jobs,
            RngFactory::new(1),
        );
        let mut engine = Engine::new();
        sim.run(&mut engine)
    }

    fn job(id: usize, cores: usize, secs: u64, submit: u64) -> Job {
        Job::batch(
            JobId(id),
            UserId(id),
            ProjectId(0),
            SimTime::from_secs(submit),
            cores,
            SimDuration::from_secs(secs),
        )
    }

    #[test]
    fn single_job_runs_and_is_recorded() {
        let out = run_jobs(vec![job(0, 4, 100, 0).with_site(SiteId(0))]);
        assert_eq!(out.db.jobs.len(), 1);
        let r = &out.db.jobs[0];
        assert_eq!(r.site, SiteId(0));
        assert_eq!(r.wait(), SimDuration::ZERO);
        assert_eq!(r.wall(), SimDuration::from_secs(100));
        assert!(!r.used_hw);
        assert_eq!(out.end, SimTime::from_secs(100));
        // Cluster is idle again.
        assert_eq!(out.federation.site(SiteId(0)).cluster.busy_cores(), 0);
    }

    #[test]
    fn queueing_when_machine_full() {
        // Site 0 has 16 cores; two 16-core jobs serialize.
        let out = run_jobs(vec![
            job(0, 16, 100, 0).with_site(SiteId(0)),
            job(1, 16, 100, 0).with_site(SiteId(0)),
        ]);
        let r1 = out.db.jobs.iter().find(|r| r.job == JobId(1)).unwrap();
        assert_eq!(r1.wait(), SimDuration::from_secs(100));
        assert_eq!(out.end, SimTime::from_secs(200));
    }

    #[test]
    fn unpinned_jobs_go_through_the_metascheduler() {
        let out = run_jobs(vec![job(0, 4, 100, 0), job(1, 4, 100, 0)]);
        assert_eq!(out.db.jobs.len(), 2);
        for r in &out.db.jobs {
            assert!(r.site.index() < 2);
        }
    }

    #[test]
    fn workflow_dependencies_serialize_execution() {
        let wf = WorkflowId(0);
        let a = job(0, 2, 100, 0).in_workflow(wf, vec![]);
        let b = job(1, 2, 50, 0).in_workflow(wf, vec![JobId(0)]);
        let c = job(2, 2, 25, 0).in_workflow(wf, vec![JobId(0), JobId(1)]);
        let out = run_jobs(vec![a, b, c]);
        let rec = |id: usize| out.db.jobs.iter().find(|r| r.job == JobId(id)).unwrap();
        assert_eq!(
            rec(1).submit,
            SimTime::from_secs(100),
            "released at parent end"
        );
        assert!(rec(1).start >= rec(0).end);
        assert!(rec(2).start >= rec(1).end);
        assert_eq!(out.end, SimTime::from_secs(175));
        assert_eq!(rec(1).interface, SubmitInterface::WorkflowEngine);
    }

    #[test]
    fn gateway_jobs_use_community_account_and_attrs() {
        let g = job(0, 1, 60, 0).via_gateway(tg_workload::GatewayId(3));
        let out = run_jobs(vec![g]);
        let r = &out.db.jobs[0];
        assert_eq!(r.user, UserId(COMMUNITY_ACCOUNT_BASE + 3));
        assert_eq!(out.db.gateway_attrs.len(), 1);
        assert_eq!(out.db.gateway_attrs[0].end_user, 0, "person id as tag");
        assert!(out.db.has_gateway_attr(JobId(0)));
    }

    #[test]
    fn interactive_jobs_leave_session_records() {
        let j = job(0, 1, 300, 10)
            .labeled(Modality::Interactive)
            .with_site(SiteId(0));
        let out = run_jobs(vec![j]);
        assert_eq!(out.db.sessions.len(), 1);
        let s = &out.db.sessions[0];
        assert_eq!(s.login, SimTime::from_secs(10));
        assert_eq!(s.logout, SimTime::from_secs(310));
    }

    #[test]
    fn rc_job_runs_on_fabric_with_placement_record() {
        let r = job(0, 1, 1000, 0)
            .with_rc(RcRequirement {
                config: tg_model::ConfigId(0),
                speedup: 10.0,
                deadline: None,
            })
            .with_site(SiteId(1));
        let out = run_jobs(vec![r]);
        let rec = &out.db.jobs[0];
        assert!(rec.used_hw);
        assert_eq!(out.db.rc_placements.len(), 1);
        let p = &out.db.rc_placements[0];
        assert!(!p.reused, "first placement reconfigures");
        assert!(p.reconfig > SimDuration::ZERO);
        // HW runtime 100 s + setup (fetch from site0 + 5 s reconfig).
        assert!(out.end >= SimTime::from_secs(105));
        let stats = out.federation.site(SiteId(1)).rc.total_stats();
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.reconfigs, 1);
    }

    #[test]
    fn second_rc_task_with_same_config_reuses() {
        let mk = |id: usize, submit: u64| {
            job(id, 1, 1000, submit)
                .with_rc(RcRequirement {
                    config: tg_model::ConfigId(0),
                    speedup: 10.0,
                    deadline: None,
                })
                .with_site(SiteId(1))
        };
        let out = run_jobs(vec![mk(0, 0), mk(1, 2000)]);
        assert_eq!(out.db.rc_placements.len(), 2);
        let second = out
            .db
            .rc_placements
            .iter()
            .find(|p| p.job == JobId(1))
            .unwrap();
        assert!(second.reused, "same config, idle region → reuse");
        assert_eq!(second.transfer, SimDuration::ZERO);
        let stats = out.federation.site(SiteId(1)).rc.total_stats();
        assert_eq!(stats.reuses, 1);
        assert_eq!(stats.reconfigs, 1);
    }

    #[test]
    fn rc_backlog_drains_on_completion() {
        // 2 nodes × 8 area, config area 4 → 4 concurrent tasks; submit 6.
        let mk = |id: usize| {
            job(id, 1, 1000, 0)
                .with_rc(RcRequirement {
                    config: tg_model::ConfigId(0),
                    speedup: 10.0,
                    deadline: None,
                })
                .with_site(SiteId(1))
        };
        let out = run_jobs((0..6).map(mk).collect());
        assert_eq!(out.db.jobs.len(), 6);
        assert!(out.db.jobs.iter().all(|r| r.used_hw));
        let stats = out.federation.site(SiteId(1)).rc.total_stats();
        assert_eq!(stats.completed, 6);
        assert!(stats.reuses >= 2, "deferred tasks reuse freed regions");
    }

    #[test]
    fn big_inputs_are_staged_and_recorded() {
        let j = job(0, 2, 100, 0)
            .with_site(SiteId(1))
            .with_data(5_000.0, 10_000.0);
        let out = run_jobs(vec![j]);
        assert_eq!(out.db.transfers.len(), 2, "stage-in and stage-out");
        let stage_in = &out.db.transfers[0];
        assert_eq!(stage_in.src, SiteId(0));
        assert_eq!(stage_in.dst, SiteId(1));
        let r = &out.db.jobs[0];
        assert!(
            r.start > SimTime::ZERO,
            "staging delays the start: {}",
            r.start
        );
    }

    #[test]
    fn small_inputs_ride_free() {
        let j = job(0, 2, 100, 0).with_site(SiteId(1)).with_data(10.0, 10.0);
        let out = run_jobs(vec![j]);
        assert!(out.db.transfers.is_empty());
        assert_eq!(out.db.jobs[0].start, SimTime::ZERO);
    }

    #[test]
    fn determinism_same_seed_same_records() {
        let jobs: Vec<Job> = (0..20)
            .map(|i| job(i, 1 + i % 8, 100 + i as u64, i as u64))
            .collect();
        let a = run_jobs(jobs.clone());
        let b = run_jobs(jobs);
        assert_eq!(a.db.jobs.len(), b.db.jobs.len());
        for (x, y) in a.db.jobs.iter().zip(&b.db.jobs) {
            assert_eq!(x, y);
        }
        assert_eq!(a.end, b.end);
    }

    #[test]
    fn truth_is_quarantined_from_records() {
        let g = job(0, 1, 60, 0).via_gateway(tg_workload::GatewayId(0));
        let fed = tiny_federation();
        let scheds = schedulers(&fed, SchedulerKind::Easy);
        let sim = GridSim::new(
            fed,
            scheds,
            MetaPolicy::Random,
            RcPolicy::AWARE,
            SiteId(0),
            vec![g],
            RngFactory::new(1),
        );
        assert_eq!(sim.truth_of(JobId(0)), Some(Modality::ScienceGateway));
        assert_eq!(sim.truth_of(JobId(99)), None);
    }

    #[test]
    fn metrics_conserve_job_counts() {
        let fed = tiny_federation();
        let scheds = schedulers(&fed, SchedulerKind::Easy);
        let jobs: Vec<Job> = (0..12)
            .map(|i| job(i, 1 + i % 4, 200 + i as u64 * 10, i as u64 * 30))
            .collect();
        let sim = GridSim::new(
            fed,
            scheds,
            MetaPolicy::ShortestEta,
            RcPolicy::AWARE,
            SiteId(0),
            jobs,
            RngFactory::new(7),
        )
        .with_metrics()
        .with_sampling(SimDuration::from_secs(60));
        let mut engine = Engine::new();
        let out = sim.run(&mut engine);
        let snap = out.metrics.expect("metrics enabled");
        // Conservation: every recorded job shows up exactly once in the
        // per-site family and once in the per-modality family.
        assert_eq!(
            snap.counter_sum("completed.site."),
            out.db.jobs.len() as u64
        );
        assert_eq!(
            snap.counter_sum("completed.modality."),
            out.db.jobs.len() as u64
        );
        assert_eq!(snap.counter("jobs.submitted"), Some(12));
        assert_eq!(snap.counter("jobs.enqueued"), Some(12));
        // Gauges: time-weighted busy-core averages are within capacity.
        for site in out.federation.sites() {
            let g = snap
                .gauge(&format!("busy_cores.{}", site.name()))
                .expect("registered");
            let cap = site.cluster.total_cores() as f64;
            assert!(g.average >= 0.0 && g.average <= cap, "avg {}", g.average);
            assert!(g.peak <= cap);
            assert_eq!(g.current, 0.0, "machine drained");
            let s = snap
                .series(&format!("busy_fraction.{}", site.name()))
                .expect("registered");
            assert!(!s.points.is_empty(), "sampler fed the series");
            assert!(s.points.iter().all(|&(_, v)| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn metrics_disabled_by_default_and_inert() {
        let out = run_jobs(vec![job(0, 4, 100, 0).with_site(SiteId(0))]);
        assert!(out.metrics.is_none());
        assert!(out.tracer.is_empty(), "tracer off by default");
    }

    #[test]
    fn tracer_sees_the_job_lifecycle() {
        let fed = tiny_federation();
        let scheds = schedulers(&fed, SchedulerKind::Easy);
        let sim = GridSim::new(
            fed,
            scheds,
            MetaPolicy::ShortestEta,
            RcPolicy::AWARE,
            SiteId(0),
            vec![job(0, 4, 100, 0).with_site(SiteId(0))],
            RngFactory::new(1),
        )
        .with_tracer(tg_des::Tracer::enabled(64));
        let mut engine = Engine::new();
        let out = sim.run(&mut engine);
        let cats: Vec<&str> = out.tracer.entries().map(|e| e.category).collect();
        assert_eq!(
            cats,
            vec!["submit", "queue", "span", "sched", "span", "done"]
        );
    }

    fn run_jobs_faulted(jobs: Vec<Job>, spec: &FaultSpec) -> FinishedSim {
        let fed = tiny_federation();
        let scheds = schedulers(&fed, SchedulerKind::Easy);
        let sim = GridSim::new(
            fed,
            scheds,
            MetaPolicy::ShortestEta,
            RcPolicy::AWARE,
            SiteId(0),
            jobs,
            RngFactory::new(1),
        )
        .with_faults(spec);
        let mut engine = Engine::new();
        sim.run(&mut engine)
    }

    /// An outage window over `[start_s, start_s + len_s]` seconds on site 0.
    fn outage_at(start_s: f64, len_s: f64) -> tg_fault::OutageWindow {
        tg_fault::OutageWindow {
            site: 0,
            start_hours: start_s / 3600.0,
            duration_hours: len_s / 3600.0,
            notice_hours: 0.0,
        }
    }

    #[test]
    fn trivial_fault_spec_is_inert() {
        let jobs: Vec<Job> = (0..10).map(|i| job(i, 2, 100, i as u64 * 10)).collect();
        let plain = run_jobs(jobs.clone());
        let faulted = run_jobs_faulted(jobs, &FaultSpec::default());
        assert_eq!(plain.db.jobs, faulted.db.jobs);
        assert_eq!(plain.end, faulted.end);
        let report = faulted.fault_report.expect("layer attached");
        assert_eq!(report, FaultReport::new(2), "nothing fired");
        assert!(plain.fault_report.is_none());
    }

    #[test]
    fn site_outage_kills_requeues_and_recovers() {
        let spec = FaultSpec {
            site_outages: vec![outage_at(50.0, 100.0)],
            ..FaultSpec::default()
        };
        let out = run_jobs_faulted(vec![job(0, 4, 100, 0).with_site(SiteId(0))], &spec);
        let report = out.fault_report.expect("faults attached");
        assert_eq!(report.site_outages, 1);
        assert_eq!(report.jobs_killed, 1);
        assert_eq!(report.jobs_requeued, 1);
        assert_eq!(report.jobs_abandoned, 0);
        assert!((report.downtime_by_site[0] - 100.0).abs() < 1e-6);
        let r = &out.db.jobs[0];
        assert_eq!(
            r.submit,
            SimTime::from_secs(110),
            "resubmitted after the 60 s default backoff"
        );
        assert_eq!(r.start, SimTime::from_secs(150), "held until recovery");
        assert_eq!(r.end, SimTime::from_secs(250), "rerun from scratch");
        let c = &out.federation.site(SiteId(0)).cluster;
        assert_eq!(c.offline_cores(), 0, "machine fully back in service");
        assert_eq!(c.busy_cores(), 0);
    }

    #[test]
    fn checkpoint_policy_reruns_only_the_remainder() {
        let spec = FaultSpec {
            site_outages: vec![outage_at(50.0, 100.0)],
            outage_policy: tg_fault::OutagePolicy::Checkpoint,
            ..FaultSpec::default()
        };
        let out = run_jobs_faulted(vec![job(0, 4, 100, 0).with_site(SiteId(0))], &spec);
        let report = out.fault_report.expect("faults attached");
        assert_eq!(report.checkpoint_restarts, 1);
        assert_eq!(report.jobs_killed, 1);
        let r = &out.db.jobs[0];
        assert_eq!(r.start, SimTime::from_secs(150));
        assert_eq!(r.end, SimTime::from_secs(200), "only 50 s remained");
    }

    #[test]
    fn exhausted_retries_abandon_the_job() {
        let spec = FaultSpec {
            site_outages: vec![outage_at(50.0, 100.0)],
            retry: Some(RetryPolicy {
                max_retries: 0,
                backoff_base_s: 60.0,
                backoff_factor: 2.0,
                backoff_cap_s: 3600.0,
            }),
            ..FaultSpec::default()
        };
        let out = run_jobs_faulted(vec![job(0, 4, 100, 0).with_site(SiteId(0))], &spec);
        let report = out.fault_report.expect("faults attached");
        assert_eq!(report.jobs_abandoned, 1);
        assert_eq!(report.jobs_requeued, 0);
        assert!(out.db.jobs.is_empty(), "abandoned work leaves no record");
    }

    #[test]
    fn abandoned_parent_still_releases_dependents() {
        let wf = WorkflowId(0);
        let parent = job(0, 4, 100, 0)
            .with_site(SiteId(0))
            .in_workflow(wf, vec![]);
        let child = job(1, 2, 50, 0).in_workflow(wf, vec![JobId(0)]);
        let spec = FaultSpec {
            site_outages: vec![outage_at(50.0, 100.0)],
            retry: Some(RetryPolicy {
                max_retries: 0,
                backoff_base_s: 60.0,
                backoff_factor: 2.0,
                backoff_cap_s: 3600.0,
            }),
            ..FaultSpec::default()
        };
        let out = run_jobs_faulted(vec![parent, child], &spec);
        assert_eq!(out.db.jobs.len(), 1, "child ran despite abandoned parent");
        assert_eq!(out.db.jobs[0].job, JobId(1));
    }

    #[test]
    fn node_crashes_repair_and_the_machine_drains() {
        let spec = FaultSpec {
            node_crashes: Some(tg_fault::NodeCrashSpec {
                mtbf_hours: 1.0,
                repair_hours: 0.5,
                cores_per_crash: 8,
                horizon_days: 1.0,
            }),
            ..FaultSpec::default()
        };
        let jobs: Vec<Job> = (0..40)
            .map(|i| job(i, 4, 1800, i as u64 * 600).with_site(SiteId(0)))
            .collect();
        let out = run_jobs_faulted(jobs, &spec);
        let report = out.fault_report.expect("faults attached");
        assert!(report.node_crashes > 0, "a day at 1 h MTBF crashes");
        assert_eq!(
            out.db.jobs.len() as u64 + report.jobs_abandoned,
            40,
            "every job completes or is abandoned"
        );
        let c = &out.federation.site(SiteId(0)).cluster;
        assert_eq!(c.offline_cores(), 0, "all repairs fired");
        assert_eq!(c.busy_cores(), 0);
    }

    #[test]
    fn total_ingest_loss_empties_the_db_but_not_truth() {
        let spec = FaultSpec {
            ingest: Some(tg_fault::IngestFaults {
                loss: 1.0,
                duplication: 0.0,
            }),
            ..FaultSpec::default()
        };
        let jobs: Vec<Job> = (0..5).map(|i| job(i, 2, 100, i as u64)).collect();
        let out = run_jobs_faulted(jobs, &spec);
        assert!(out.db.jobs.is_empty(), "every record dropped in flight");
        assert_eq!(out.truth.len(), 5, "ground truth untouched");
        let report = out.fault_report.expect("faults attached");
        assert_eq!(report.records_lost, 5);
        assert_eq!(report.jobs_killed, 0, "ingest loss never touches execution");
    }

    #[test]
    fn fault_and_requeue_spans_are_emitted() {
        let spec = FaultSpec {
            site_outages: vec![outage_at(50.0, 100.0)],
            ..FaultSpec::default()
        };
        let fed = tiny_federation();
        let scheds = schedulers(&fed, SchedulerKind::Easy);
        let sim = GridSim::new(
            fed,
            scheds,
            MetaPolicy::ShortestEta,
            RcPolicy::AWARE,
            SiteId(0),
            vec![job(0, 4, 100, 0).with_site(SiteId(0))],
            RngFactory::new(1),
        )
        .with_faults(&spec)
        .with_tracer(tg_des::Tracer::enabled(256));
        let mut engine = Engine::new();
        let out = sim.run(&mut engine);
        let cats: Vec<&str> = out.tracer.entries().map(|e| e.category).collect();
        assert!(cats.contains(&"fault"), "kill traced: {cats:?}");
        assert!(cats.contains(&"requeue"), "requeue traced: {cats:?}");
        let field = |e: &tg_des::trace::TraceEntry, name: &str| {
            e.fields
                .iter()
                .find(|(k, _)| *k == name)
                .map(|(_, v)| v.to_string())
        };
        let span_kinds: Vec<String> = out
            .tracer
            .entries()
            .filter(|e| e.category == SPAN_CATEGORY)
            .filter_map(|e| field(e, "kind"))
            .collect();
        assert!(span_kinds.iter().any(|k| k == "fault"), "{span_kinds:?}");
        assert!(span_kinds.iter().any(|k| k == "requeue"), "{span_kinds:?}");
        let fault = out
            .tracer
            .entries()
            .find(|e| e.category == SPAN_CATEGORY && field(e, "kind").as_deref() == Some("fault"))
            .expect("fault span present");
        assert_eq!(field(fault, "cause").as_deref(), Some("site-outage"));
        assert_eq!(
            field(fault, "t1").as_deref(),
            Some("50"),
            "killed at the outage instant"
        );
    }

    #[test]
    fn weekly_drain_scheduler_wakeups_fire() {
        // A hero job on site 0 (16 cores) under WeeklyDrain + a normal job.
        let fed = tiny_federation();
        let scheds: Vec<Box<dyn BatchScheduler>> = fed
            .sites()
            .map(|s| SchedulerKind::WeeklyDrain.build(s.cluster.total_cores()))
            .collect();
        let hero = job(0, 16, 3600, 0).with_site(SiteId(0));
        let small = job(1, 2, 600, 100).with_site(SiteId(0));
        let sim = GridSim::new(
            fed,
            scheds,
            MetaPolicy::Random,
            RcPolicy::AWARE,
            SiteId(0),
            vec![hero, small],
            RngFactory::new(1),
        );
        let mut engine = Engine::new();
        let out = sim.run(&mut engine);
        let hero_rec = out.db.jobs.iter().find(|r| r.job == JobId(0)).unwrap();
        // Hero waits for the weekly boundary.
        assert_eq!(hero_rec.start, SimTime::from_days(7));
        let small_rec = out.db.jobs.iter().find(|r| r.job == JobId(1)).unwrap();
        assert!(
            small_rec.start < SimTime::from_days(7),
            "small job runs pre-drain"
        );
    }
}
