//! Scoring inferred modalities against ground truth.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use tg_workload::{JobId, Modality};

const N: usize = Modality::ALL.len();

/// A 7×7 confusion matrix: `counts[truth][inferred]`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfusionMatrix {
    counts: Vec<Vec<u64>>,
}

impl Default for ConfusionMatrix {
    fn default() -> Self {
        ConfusionMatrix {
            counts: vec![vec![0; N]; N],
        }
    }
}

impl ConfusionMatrix {
    /// An empty matrix.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one `(truth, inferred)` pair.
    pub fn record(&mut self, truth: Modality, inferred: Modality) {
        self.counts[truth.index()][inferred.index()] += 1;
    }

    /// The count at `(truth, inferred)`.
    pub fn get(&self, truth: Modality, inferred: Modality) -> u64 {
        self.counts[truth.index()][inferred.index()]
    }

    /// Total pairs recorded.
    pub fn total(&self) -> u64 {
        self.counts.iter().flatten().sum()
    }

    /// Correctly labeled pairs (the diagonal).
    pub fn correct(&self) -> u64 {
        (0..N).map(|i| self.counts[i][i]).sum()
    }

    /// Build from a truth map and an inferred map (jobs missing from
    /// `inferred` are skipped — they never completed).
    pub fn from_maps(
        truth: &HashMap<JobId, Modality>,
        inferred: &HashMap<JobId, Modality>,
    ) -> Self {
        let mut m = ConfusionMatrix::new();
        for (job, &t) in truth {
            if let Some(&i) = inferred.get(job) {
                m.record(t, i);
            }
        }
        m
    }
}

impl fmt::Display for ConfusionMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:>12}", "truth\\inf")?;
        for m in Modality::ALL {
            write!(f, "{:>12}", m.name())?;
        }
        writeln!(f)?;
        for t in Modality::ALL {
            write!(f, "{:>12}", t.name())?;
            for i in Modality::ALL {
                write!(f, "{:>12}", self.get(t, i))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// Per-class and aggregate accuracy metrics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Accuracy {
    /// The underlying confusion matrix.
    pub matrix: ConfusionMatrix,
    /// Per-class precision, in [`Modality::ALL`] order (`None` if the class
    /// was never predicted).
    pub precision: Vec<Option<f64>>,
    /// Per-class recall (`None` if the class never occurred).
    pub recall: Vec<Option<f64>>,
    /// Per-class F1 (`None` if either component is undefined).
    pub f1: Vec<Option<f64>>,
    /// Overall fraction correct.
    pub accuracy: f64,
    /// Macro-averaged F1 over classes that occurred.
    pub macro_f1: f64,
}

impl Accuracy {
    /// Compute all metrics from a confusion matrix.
    pub fn from_matrix(matrix: ConfusionMatrix) -> Self {
        let mut precision = Vec::with_capacity(N);
        let mut recall = Vec::with_capacity(N);
        let mut f1 = Vec::with_capacity(N);
        for c in 0..N {
            let tp = matrix.counts[c][c];
            let predicted: u64 = (0..N).map(|t| matrix.counts[t][c]).sum();
            let actual: u64 = matrix.counts[c].iter().sum();
            let p = (predicted > 0).then(|| tp as f64 / predicted as f64);
            let r = (actual > 0).then(|| tp as f64 / actual as f64);
            let f = match (p, r) {
                (Some(p), Some(r)) if p + r > 0.0 => Some(2.0 * p * r / (p + r)),
                (Some(_), Some(_)) => Some(0.0),
                _ => None,
            };
            precision.push(p);
            recall.push(r);
            f1.push(f);
        }
        let total = matrix.total();
        let accuracy = if total > 0 {
            matrix.correct() as f64 / total as f64
        } else {
            0.0
        };
        // Macro-F1 over classes that actually occur in the truth.
        let occurring: Vec<f64> = (0..N)
            .filter(|&c| matrix.counts[c].iter().sum::<u64>() > 0)
            .map(|c| f1[c].unwrap_or(0.0))
            .collect();
        let macro_f1 = if occurring.is_empty() {
            0.0
        } else {
            occurring.iter().sum::<f64>() / occurring.len() as f64
        };
        Accuracy {
            matrix,
            precision,
            recall,
            f1,
            accuracy,
            macro_f1,
        }
    }

    /// Convenience: score inferred labels against truth.
    pub fn score(truth: &HashMap<JobId, Modality>, inferred: &HashMap<JobId, Modality>) -> Self {
        Accuracy::from_matrix(ConfusionMatrix::from_maps(truth, inferred))
    }

    /// Per-class F1 for one modality.
    pub fn f1_of(&self, m: Modality) -> Option<f64> {
        self.f1[m.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn maps(
        pairs: &[(usize, Modality, Modality)],
    ) -> (HashMap<JobId, Modality>, HashMap<JobId, Modality>) {
        let truth = pairs.iter().map(|&(i, t, _)| (JobId(i), t)).collect();
        let inferred = pairs.iter().map(|&(i, _, p)| (JobId(i), p)).collect();
        (truth, inferred)
    }

    #[test]
    fn perfect_classification() {
        let (t, i) = maps(&[
            (0, Modality::BatchComputing, Modality::BatchComputing),
            (1, Modality::ScienceGateway, Modality::ScienceGateway),
            (2, Modality::Workflow, Modality::Workflow),
        ]);
        let a = Accuracy::score(&t, &i);
        assert_eq!(a.accuracy, 1.0);
        assert_eq!(a.macro_f1, 1.0);
        assert_eq!(a.f1_of(Modality::Workflow), Some(1.0));
        assert_eq!(a.f1_of(Modality::RcAccelerated), None, "class absent");
    }

    #[test]
    fn mixed_classification_metrics() {
        use Modality::*;
        // 3 batch (2 right, 1 called workflow), 1 workflow called batch.
        let (t, i) = maps(&[
            (0, BatchComputing, BatchComputing),
            (1, BatchComputing, BatchComputing),
            (2, BatchComputing, Workflow),
            (3, Workflow, BatchComputing),
        ]);
        let a = Accuracy::score(&t, &i);
        assert!((a.accuracy - 0.5).abs() < 1e-12);
        // Batch: precision 2/3, recall 2/3 → F1 2/3.
        assert!((a.f1_of(BatchComputing).unwrap() - 2.0 / 3.0).abs() < 1e-12);
        // Workflow: precision 0/1, recall 0/1 → F1 0.
        assert_eq!(a.f1_of(Workflow), Some(0.0));
        assert!((a.macro_f1 - (2.0 / 3.0) / 2.0).abs() < 1e-12);
    }

    #[test]
    fn missing_inferred_jobs_are_skipped() {
        let truth: HashMap<_, _> = [
            (JobId(0), Modality::BatchComputing),
            (JobId(1), Modality::Ensemble),
        ]
        .into_iter()
        .collect();
        let inferred: HashMap<_, _> = [(JobId(0), Modality::BatchComputing)].into_iter().collect();
        let m = ConfusionMatrix::from_maps(&truth, &inferred);
        assert_eq!(m.total(), 1);
        assert_eq!(m.correct(), 1);
    }

    #[test]
    fn empty_is_zero_not_nan() {
        let a = Accuracy::from_matrix(ConfusionMatrix::new());
        assert_eq!(a.accuracy, 0.0);
        assert_eq!(a.macro_f1, 0.0);
    }

    #[test]
    fn display_renders_all_classes() {
        let mut m = ConfusionMatrix::new();
        m.record(Modality::Ensemble, Modality::Workflow);
        let s = m.to_string();
        assert!(s.contains("ensemble"));
        assert!(s.contains("workflow"));
        assert!(s.contains("gateway"));
    }
}
