//! End-to-end scenario assembly: config → workload + federation →
//! simulation → outputs.
//!
//! A [`Scenario`] is a pure function of `(ScenarioConfig, seed)`; every
//! experiment binary is a sweep over configs and seeds.

use crate::sim::{Event, GridSim};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::path::PathBuf;
use tg_accounting::{AccountingDb, ChargePolicy};
use tg_data::{DataGridSpec, DataLayer, DataReport, DatasetSpec};
use tg_des::metrics::{EngineProfile, MetricsSnapshot};
use tg_des::trace::Tracer;
use tg_des::{Engine, RngFactory, SimTime};
use tg_fault::{FaultReport, FaultSpec};
use tg_model::reconf::RcNodeStats;
use tg_model::{ConfigLibrary, Federation, SiteConfig, SiteId};
use tg_sched::{BatchScheduler, MetaPolicy, RcPolicy, SchedulerKind};
use tg_workload::{GeneratorConfig, JobId, Modality, WorkloadGenerator};

/// Everything that defines an experiment run (minus the seed).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScenarioConfig {
    /// Scenario label for reports.
    pub name: String,
    /// The federation's sites.
    pub sites: Vec<SiteConfig>,
    /// Which site hosts the data archive / bitstream repository.
    pub data_home: usize,
    /// Per-site batch scheduling policy (same at every site).
    pub scheduler: SchedulerKind,
    /// Site-selection policy for unpinned jobs.
    pub meta: MetaPolicy,
    /// Reconfigurable-task policy.
    pub rc_policy: RcPolicy,
    /// The workload description.
    pub workload: GeneratorConfig,
    /// Processor-configuration library override. `None` uses
    /// [`ConfigLibrary::synthetic`] sized to the workload's
    /// `rc_config_count` — the reconfiguration-time sweeps inject custom
    /// libraries here.
    pub library: Option<ConfigLibrary>,
    /// Periodic metric sampling interval (`None` disables; see
    /// [`crate::sim::SampleRow`]).
    #[serde(default)]
    pub sample_interval: Option<tg_des::SimDuration>,
    /// Fault-injection spec (`None` — or a trivial spec — runs fault-free,
    /// byte-identical to a config without the field). The compiled schedule
    /// is a pure function of `(spec, seed)`; see [`tg_fault::FaultSpec`].
    #[serde(default)]
    pub faults: Option<FaultSpec>,
    /// Data-grid spec: named datasets with permanent replica placements,
    /// Zipf popularity, and per-modality attach probabilities (`None` — or
    /// a trivial spec — runs the flat staging model, byte-identical to a
    /// config without the field). Per-site cache capacity comes from
    /// [`SiteConfig::data_cache_mb`].
    #[serde(default)]
    pub data: Option<DataGridSpec>,
}

impl ScenarioConfig {
    /// The baseline scenario: three heterogeneous sites (one with RC
    /// fabric), EASY backfill, shortest-ETA metascheduling, RC-aware
    /// placement, and the baseline population.
    pub fn baseline(users: usize, days: u64) -> Self {
        let sites = vec![
            SiteConfig::medium("alpha"),
            SiteConfig::large("bravo"),
            SiteConfig {
                batch_nodes: 256,
                rc_nodes: 32,
                rc_area_per_node: 8,
                ..SiteConfig::medium("carol")
            },
        ];
        let workload = GeneratorConfig::baseline(users, days, sites.len());
        ScenarioConfig {
            name: format!("baseline-{users}u-{days}d"),
            sites,
            data_home: 0,
            scheduler: SchedulerKind::Easy,
            meta: MetaPolicy::ShortestEta,
            rc_policy: RcPolicy::AWARE,
            workload,
            library: None,
            sample_interval: None,
            faults: None,
            data: None,
        }
    }

    /// The large-scale stress scenario: the baseline federation and mix
    /// under a much bigger population over a longer window. This is the
    /// performance-bench workload (`configs/large-3000u-90d.json`) — same
    /// physics as [`ScenarioConfig::baseline`], an order of magnitude more
    /// events.
    pub fn large(users: usize, days: u64) -> Self {
        ScenarioConfig {
            name: format!("large-{users}u-{days}d"),
            ..ScenarioConfig::baseline(users, days)
        }
    }

    /// The million-user streaming scenario: the baseline federation under a
    /// very large, very *sparse* population — per-modality submission rates
    /// scaled down to ~0.01 jobs/user/day overall, so a 1M-user × 365-day
    /// window lands near 3.5M jobs. What this config stresses is the
    /// pending-workload footprint (users × window), not raw event count;
    /// it is the `RunOptions::stream_gen` benchmark workload
    /// (`configs/million-1000000u-365d.json`).
    pub fn million(users: usize, days: u64) -> Self {
        let mut cfg = ScenarioConfig::baseline(users, days);
        cfg.name = format!("million-{users}u-{days}d");
        // The baseline mix produces ~6 jobs/user/day including ensemble and
        // workflow expansion; 0.0016 of that is ~0.01 jobs/user/day.
        for p in &mut cfg.workload.profiles {
            p.per_user_per_day *= 0.0016;
        }
        cfg
    }

    /// The data-grid scenario: the baseline federation shrunk until queues
    /// form, a per-site dataset cache, a Zipf-popular catalog of six
    /// datasets pinned across the sites, and the replica-catalog-aware
    /// metascheduler. This is the locality experiment's workload
    /// (`configs/datagrid-300u-14d.json`); swap `meta` to
    /// [`MetaPolicy::ShortestEta`] for the locality-blind control.
    pub fn datagrid(users: usize, days: u64) -> Self {
        let mut cfg = ScenarioConfig::baseline(users, days);
        cfg.name = format!("datagrid-{users}u-{days}d");
        cfg.meta = MetaPolicy::DataLocality;
        cfg.sites[0].batch_nodes = 128;
        cfg.sites[1].batch_nodes = 256;
        cfg.sites[2].batch_nodes = 64;
        for s in &mut cfg.sites {
            s.data_cache_mb = 6_000.0;
        }
        let ds = |name: &str, size_mb: f64, replicas: Vec<usize>| DatasetSpec {
            name: name.to_string(),
            size_mb,
            replicas,
        };
        cfg.data = Some(DataGridSpec {
            datasets: vec![
                ds("sky-survey", 2_400.0, vec![0]),
                ds("reference-genome", 1_800.0, vec![1]),
                ds("climate-reanalysis", 3_600.0, vec![2]),
                ds("protein-structures", 1_200.0, vec![1]),
                ds("seismic-waveforms", 2_800.0, vec![0]),
                ds("shared-calibration", 900.0, vec![0, 1, 2]),
            ],
            zipf_s: 0.9,
            attach: [
                ("batch".to_string(), 0.6),
                ("ensemble".to_string(), 0.5),
                ("workflow".to_string(), 0.4),
            ]
            .into_iter()
            .collect(),
        });
        cfg
    }

    /// Build the scenario. Panics with a descriptive message on an invalid
    /// data-grid spec (dataset replicas at unknown sites, zero-size or
    /// unnamed datasets, attach probabilities outside [0, 1]).
    pub fn build(self) -> Scenario {
        assert_eq!(
            self.workload.sites,
            self.sites.len(),
            "workload and federation disagree on site count"
        );
        assert!(self.data_home < self.sites.len(), "data home out of range");
        if let Some(spec) = &self.data {
            if let Err(e) = spec.validate(self.sites.len()) {
                panic!("invalid data-grid spec in scenario '{}': {e}", self.name);
            }
        }
        Scenario { config: self }
    }

    /// The workload config this scenario actually generates from: the
    /// data-grid spec's dataset assignment (count, popularity, attach
    /// probabilities) is injected unless the workload already carries an
    /// explicit one. A trivial spec injects nothing, keeping the generator's
    /// draw sequence — and therefore every output byte — unchanged.
    fn effective_workload(&self) -> GeneratorConfig {
        let mut w = self.workload.clone();
        if w.data.is_none() {
            if let Some(spec) = &self.data {
                if !spec.is_trivial() {
                    w.data = Some(spec.assignment());
                }
            }
        }
        w
    }
}

/// Where accounting records land during a run.
#[derive(Debug, Clone, Default, PartialEq)]
pub enum RecordStreaming {
    /// Retain every record in the in-memory [`AccountingDb`] (the default —
    /// post-processing experiments need the records).
    #[default]
    Retain,
    /// Stream records to a JSONL file as they are emitted, keeping only a
    /// running [`tg_accounting::IngestTally`] in memory.
    Jsonl(PathBuf),
    /// Discard records, keeping only the tally. For memory-budget runs
    /// where even the output file is unwanted.
    Discard,
}

/// Observability options for one run. Everything here is an *observer*:
/// enabling any of it cannot change simulation results (the determinism
/// tests hold with or without them — including `reference_schedulers`,
/// whose whole point is producing bit-identical results slower, and
/// `stream_gen`/`record_streaming`, which change *where* the workload and
/// the records live in memory, never what they contain).
#[derive(Debug, Clone, Default)]
pub struct RunOptions {
    /// Collect a [`MetricsSnapshot`] (counters, gauges, series).
    pub metrics: bool,
    /// Stream a JSONL structured trace to this path.
    pub trace_path: Option<PathBuf>,
    /// Build the frozen naive schedulers ([`SchedulerKind::build_reference`])
    /// instead of the optimized ones. The differential suite runs whole
    /// scenarios both ways and asserts identical outputs.
    pub reference_schedulers: bool,
    /// Worker threads for the sharded engine (`0`/`1` = the serial path,
    /// unchanged). With `N ≥ 2`, one coordinator plus up to `N - 1` per-site
    /// shards run the simulation with conservative synchronization — results
    /// are byte-identical to the serial path (the differential suite proves
    /// it), so this too is an observer-only knob. Tracing is serial-only:
    /// `trace_path` forces the serial path with a warning.
    pub threads: usize,
    /// Generate the workload lazily ([`WorkloadGenerator::generate_streaming`])
    /// and feed jobs to the engine on demand, so pending workload is
    /// O(in-flight) instead of O(total jobs). Outputs are byte-identical to
    /// the materialized path at the same seed (the differential suite proves
    /// it). Serial-only: `threads ≥ 2` is ignored with a warning.
    pub stream_gen: bool,
    /// Where accounting records land (retained in `db` by default).
    pub record_streaming: RecordStreaming,
    /// Collect constant-memory online observability: span-latency sketches
    /// keyed by (kind, cause, site, modality) plus the windowed operational
    /// series ([`crate::sim::GridSim::with_live_stats`]). The final
    /// [`crate::sim::StatsReport`] lands in [`SimOutput::stats`]. Works
    /// sharded: per-shard books merge exactly at join, so the report is
    /// byte-identical at any thread count.
    pub live_stats: bool,
    /// Stream each closed series bucket as a JSONL row to this path while
    /// the run progresses (implies `live_stats`). Serial-only: a live file
    /// is written in event order, so this forces the serial path with a
    /// warning, exactly like `trace_path`.
    pub live_stats_path: Option<PathBuf>,
    /// Bucket width for the windowed series (`None` = one hour).
    pub live_stats_bucket: Option<tg_des::SimDuration>,
    /// The sharded engine's adaptive execution governor (see [`Governor`]).
    /// Ignored on the serial path. Like every option here this is an
    /// observer-only knob: a governed fold lands on the byte-identical
    /// serial tail, so outputs never change — only wall time does.
    pub governor: Governor,
    /// PR 6 compatibility: run the sharded protocol with one sync round per
    /// emission candidate instead of batched same-shard runs. Only useful
    /// for differential tests and protocol-overhead measurements; slower.
    pub per_event_sync: bool,
}

/// The sharded engine's adaptive execution governor: when conservative-sync
/// overhead makes `--threads N` slower than serial (a 1-core host, a
/// pathologically chatty scenario), the coordinator recalls every shard's
/// state at a clean epoch boundary mid-run and finishes on the exact serial
/// path — so `--threads` is never much worse than serial. Byte-identity is
/// unaffected either way.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum Governor {
    /// Measure online (via the sync profiler) and fold when the tripwire
    /// trips: fewer than two available cores, or sync rounds per event
    /// above the built-in threshold. The default.
    #[default]
    Auto,
    /// Never fold (bench/protocol measurement).
    Off,
    /// Fold unconditionally at the first epoch boundary (tests).
    Force,
}

impl RunOptions {
    /// Options with metrics collection on.
    pub fn with_metrics() -> Self {
        RunOptions {
            metrics: true,
            ..Self::default()
        }
    }

    /// Options running `threads`-way sharded.
    pub fn with_threads(threads: usize) -> Self {
        RunOptions {
            threads,
            ..Self::default()
        }
    }
}

/// A runnable scenario.
#[derive(Debug, Clone)]
pub struct Scenario {
    config: ScenarioConfig,
}

impl Scenario {
    /// The configuration.
    pub fn config(&self) -> &ScenarioConfig {
        &self.config
    }

    /// Run with `seed`, deterministically.
    pub fn run(&self, seed: u64) -> SimOutput {
        self.run_with(seed, &RunOptions::default())
    }

    /// Run with `seed` and explicit observability options. The simulation
    /// results are identical to [`Scenario::run`] for any options; only the
    /// `metrics`/`profile` side channels differ.
    pub fn run_with(&self, seed: u64, opts: &RunOptions) -> SimOutput {
        let cfg = &self.config;
        let alloc_before = tg_des::memory::alloc_snapshot();
        let library = cfg
            .library
            .clone()
            .unwrap_or_else(|| ConfigLibrary::synthetic(cfg.workload.rc_config_count.max(1)));
        assert!(
            library.len() >= cfg.workload.rc_config_count,
            "library smaller than the config ids the workload draws"
        );
        let federation = build_federation(cfg, &library);
        if opts.stream_gen {
            if opts.threads >= 2 {
                eprintln!(
                    "warning: streaming generation is serial-only; ignoring --threads {}",
                    opts.threads
                );
            }
            return self.run_streaming(seed, opts, federation);
        }
        let mut workload =
            WorkloadGenerator::new(cfg.effective_workload()).generate(&RngFactory::new(seed));
        // Real users size jobs to the machine; the generator doesn't know
        // machine sizes, so clamp here: a pinned job fits its site, an
        // unpinned one fits the largest site.
        let max_cores = federation
            .sites()
            .map(|s| s.cluster.total_cores())
            .max()
            .expect("non-empty federation");
        for job in &mut workload.jobs {
            let cap = match job.site_hint {
                Some(s) => federation.site(s).cluster.total_cores(),
                None => max_cores,
            };
            job.cores = job.cores.min(cap);
        }

        let mut sharded = opts.threads >= 2 && federation.len() >= 2;
        if sharded && opts.trace_path.is_some() {
            eprintln!(
                "warning: structured tracing is serial-only; ignoring --threads {}",
                opts.threads
            );
            sharded = false;
        }
        if sharded && opts.record_streaming != RecordStreaming::Retain {
            eprintln!(
                "warning: record streaming is serial-only; ignoring --threads {}",
                opts.threads
            );
            sharded = false;
        }
        if sharded && opts.live_stats_path.is_some() {
            eprintln!(
                "warning: live-stats streaming is serial-only; ignoring --threads {}",
                opts.threads
            );
            sharded = false;
        }

        // Wall-clock profiling wraps the event loop; it lives OUTSIDE the
        // deterministic outputs (never compared across runs).
        let (finished, events_delivered, peak_queue_len, wall, sync) = if sharded {
            // Every job that something else depends on: its completion
            // must synchronize with the coordinator's dependency book.
            let watched: std::sync::Arc<std::collections::HashSet<JobId>> = std::sync::Arc::new(
                workload
                    .jobs
                    .iter()
                    .flat_map(|j| j.deps.iter().copied())
                    .collect(),
            );
            let jobs = std::mem::take(&mut workload.jobs);
            let make_sim = move || {
                // Each participant builds an identical replica: a fresh
                // factory hands out the same named streams, so every copy
                // compiles the same fault schedule and RNG state.
                assemble(cfg, &library, jobs.clone(), RngFactory::new(seed), opts)
            };
            let wall_start = std::time::Instant::now();
            let outcome = crate::parallel::run_sharded(
                &make_sim,
                opts.threads,
                watched,
                opts.governor,
                opts.per_event_sync,
            );
            let wall = wall_start.elapsed().as_secs_f64();
            debug_assert!(outcome.min_lookahead >= tg_des::SimDuration::ZERO);
            (
                outcome.finished,
                outcome.delivered,
                outcome.peak_queue_len,
                wall,
                Some(outcome.sync),
            )
        } else {
            let jobs = std::mem::take(&mut workload.jobs);
            let mut sim = assemble(cfg, &library, jobs, RngFactory::new(seed), opts);
            if let Some(path) = &opts.trace_path {
                let file = std::fs::File::create(path)
                    .unwrap_or_else(|e| panic!("cannot create trace file {}: {e}", path.display()));
                let mut tracer = Tracer::enabled(4096);
                tracer.set_sink(Box::new(std::io::BufWriter::new(file)));
                sim = sim.with_tracer(tracer);
            }
            if let Some(sink) = build_record_sink(&opts.record_streaming) {
                sim = sim.with_record_sink(sink);
            }
            if let Some(sink) = build_live_sink(opts) {
                sim = sim.with_live_sink(sink);
            }
            let mut engine: Engine<Event> = Engine::with_capacity(1024);
            let wall_start = std::time::Instant::now();
            let finished = sim.run(&mut engine);
            let wall = wall_start.elapsed().as_secs_f64();
            (
                finished,
                engine.delivered(),
                engine.peak_queue_len(),
                wall,
                None,
            )
        };
        let charge_policy = ChargePolicy::new(cfg.sites.iter().map(|s| s.charge_factor).collect());
        // Memory is sampled HERE — after the engine (and, on the sharded
        // path, after `run_sharded`'s scoped join, so every worker shard has
        // dropped its buffers and its high-water is folded into the
        // process-wide `VmHWM`). Sampling inside the coordinator would race
        // the workers and under-report the parallel path.
        let mut profile = EngineProfile::new(events_delivered, wall, peak_queue_len).with_memory(
            tg_des::memory::peak_rss_bytes(),
            tg_des::memory::AllocDelta::since(alloc_before),
        );
        profile.sync = sync;
        let metrics = finished.metrics.map(|mut m| {
            m.engine = Some(profile.clone());
            m
        });

        let site_stats: Vec<SiteStats> = finished
            .federation
            .sites()
            .map(|s| SiteStats {
                name: s.name().to_string(),
                utilization: s.cluster.utilization(finished.end),
                core_seconds: s.cluster.core_seconds(finished.end),
                jobs_finished: s.cluster.jobs_finished(),
                rc_stats: s.rc.total_stats(),
                rc_wasted_area_seconds: s.rc.wasted_area_integral(finished.end),
                rc_busy_area_seconds: s.rc.busy_area_integral(finished.end),
            })
            .collect();

        SimOutput {
            scenario: cfg.name.clone(),
            seed,
            db: finished.db,
            truth: finished.truth,
            end: finished.end,
            charge_policy,
            site_stats,
            samples: finished.samples,
            population: workload.population,
            events_delivered,
            metrics,
            profile,
            trace_health: opts
                .trace_path
                .as_ref()
                .map(|_| finished.tracer.health(finished.trace_flush_ok)),
            fault_report: finished.fault_report,
            ingest_tally: finished.ingest_tally,
            stats: finished.stats,
            data_report: finished.data_report,
        }
    }

    /// The streaming run path: lazy generation, jobs pulled on demand, and
    /// (optionally) records streamed out. Byte-identical outputs to the
    /// materialized serial path at the same seed.
    fn run_streaming(&self, seed: u64, opts: &RunOptions, federation: Federation) -> SimOutput {
        let cfg = &self.config;
        let alloc_before = tg_des::memory::alloc_snapshot();
        let streamed = WorkloadGenerator::new(cfg.effective_workload())
            .generate_streaming(&RngFactory::new(seed));
        let population = streamed.population;
        let total_jobs = streamed.total_jobs;
        // The same machine-size clamp the materialized path applies after
        // generation, moved into the stream adapter so it runs per job.
        let caps: Vec<usize> = federation
            .sites()
            .map(|s| s.cluster.total_cores())
            .collect();
        let max_cores = *caps.iter().max().expect("non-empty federation");
        let jobs = streamed.stream.map(move |mut job| {
            let cap = match job.site_hint {
                Some(s) => caps[s.index()],
                None => max_cores,
            };
            job.cores = job.cores.min(cap);
            job
        });

        let schedulers = build_schedulers(cfg, &federation, opts);
        let mut sim = GridSim::new_streaming(
            federation,
            schedulers,
            cfg.meta,
            cfg.rc_policy,
            SiteId(cfg.data_home),
            total_jobs,
            RngFactory::new(seed),
        );
        sim = apply_sim_options(sim, cfg, opts);
        if let Some(path) = &opts.trace_path {
            let file = std::fs::File::create(path)
                .unwrap_or_else(|e| panic!("cannot create trace file {}: {e}", path.display()));
            let mut tracer = Tracer::enabled(4096);
            tracer.set_sink(Box::new(std::io::BufWriter::new(file)));
            sim = sim.with_tracer(tracer);
        }
        if let Some(sink) = build_record_sink(&opts.record_streaming) {
            sim = sim.with_record_sink(sink);
        }
        if let Some(sink) = build_live_sink(opts) {
            sim = sim.with_live_sink(sink);
        }
        let mut engine: Engine<Event> = Engine::with_capacity(1024);
        let wall_start = std::time::Instant::now();
        let finished = sim.run_streaming(&mut engine, jobs);
        let wall = wall_start.elapsed().as_secs_f64();
        let events_delivered = engine.delivered();
        let peak_queue_len = engine.peak_queue_len();

        let charge_policy = ChargePolicy::new(cfg.sites.iter().map(|s| s.charge_factor).collect());
        let profile = EngineProfile::new(events_delivered, wall, peak_queue_len).with_memory(
            tg_des::memory::peak_rss_bytes(),
            tg_des::memory::AllocDelta::since(alloc_before),
        );
        let metrics = finished.metrics.map(|mut m| {
            m.engine = Some(profile.clone());
            m
        });
        let site_stats: Vec<SiteStats> = finished
            .federation
            .sites()
            .map(|s| SiteStats {
                name: s.name().to_string(),
                utilization: s.cluster.utilization(finished.end),
                core_seconds: s.cluster.core_seconds(finished.end),
                jobs_finished: s.cluster.jobs_finished(),
                rc_stats: s.rc.total_stats(),
                rc_wasted_area_seconds: s.rc.wasted_area_integral(finished.end),
                rc_busy_area_seconds: s.rc.busy_area_integral(finished.end),
            })
            .collect();

        SimOutput {
            scenario: cfg.name.clone(),
            seed,
            db: finished.db,
            truth: finished.truth,
            end: finished.end,
            charge_policy,
            site_stats,
            samples: finished.samples,
            population,
            events_delivered,
            metrics,
            profile,
            trace_health: opts
                .trace_path
                .as_ref()
                .map(|_| finished.tracer.health(finished.trace_flush_ok)),
            fault_report: finished.fault_report,
            ingest_tally: finished.ingest_tally,
            stats: finished.stats,
            data_report: finished.data_report,
        }
    }
}

fn build_federation(cfg: &ScenarioConfig, library: &ConfigLibrary) -> Federation {
    let mut builder = Federation::builder().library(library.clone());
    for s in &cfg.sites {
        builder = builder.site(s.clone());
    }
    builder.repository_at(cfg.data_home).build()
}

/// Assemble one [`GridSim`] replica. Deterministic in `(cfg, jobs, seed)`:
/// the sharded runner calls this once per participant and relies on every
/// copy being identical (same fault schedule, same named RNG streams).
fn assemble(
    cfg: &ScenarioConfig,
    library: &ConfigLibrary,
    jobs: Vec<tg_workload::Job>,
    factory: RngFactory,
    opts: &RunOptions,
) -> GridSim {
    let federation = build_federation(cfg, library);
    let schedulers = build_schedulers(cfg, &federation, opts);
    let sim = GridSim::new(
        federation,
        schedulers,
        cfg.meta,
        cfg.rc_policy,
        SiteId(cfg.data_home),
        jobs,
        factory,
    );
    apply_sim_options(sim, cfg, opts)
}

/// One batch scheduler per site, optimized or frozen-reference per `opts`.
fn build_schedulers(
    cfg: &ScenarioConfig,
    federation: &Federation,
    opts: &RunOptions,
) -> Vec<Box<dyn BatchScheduler>> {
    federation
        .sites()
        .map(|s| {
            if opts.reference_schedulers {
                cfg.scheduler.build_reference(s.cluster.total_cores())
            } else {
                cfg.scheduler.build(s.cluster.total_cores())
            }
        })
        .collect()
}

/// The config/option knobs shared by every construction path (materialized,
/// sharded replica, streaming).
fn apply_sim_options(mut sim: GridSim, cfg: &ScenarioConfig, opts: &RunOptions) -> GridSim {
    if let Some(interval) = cfg.sample_interval {
        sim = sim.with_sampling(interval);
    }
    if let Some(spec) = &cfg.data {
        if !spec.is_trivial() {
            let caches: Vec<f64> = cfg.sites.iter().map(|s| s.data_cache_mb).collect();
            sim = sim.with_data_grid(DataLayer::new(spec, &caches));
        }
    }
    if let Some(spec) = &cfg.faults {
        if !spec.is_trivial() {
            sim = sim.with_faults(spec);
        }
    }
    if opts.metrics {
        sim = sim.with_metrics();
    }
    if opts.live_stats || opts.live_stats_path.is_some() {
        let bucket = opts
            .live_stats_bucket
            .unwrap_or(tg_des::SimDuration::from_hours(1));
        // Only the enablement is shared; the live sink (serial-only) is
        // attached by the run paths, never to sharded replicas.
        sim = sim.with_live_stats(bucket);
    }
    sim
}

/// Construct the live-stats JSONL sink (`None` when not streaming).
fn build_live_sink(opts: &RunOptions) -> Option<Box<dyn std::io::Write + Send>> {
    let path = opts.live_stats_path.as_ref()?;
    let file = std::fs::File::create(path)
        .unwrap_or_else(|e| panic!("cannot create live-stats file {}: {e}", path.display()));
    Some(Box::new(std::io::BufWriter::new(file)))
}

/// Construct the record sink `opts` asks for (`None` = retain in `db`).
fn build_record_sink(mode: &RecordStreaming) -> Option<Box<dyn tg_accounting::RecordSink>> {
    match mode {
        RecordStreaming::Retain => None,
        RecordStreaming::Jsonl(path) => {
            let sink = tg_accounting::JsonlRecordSink::create(path)
                .unwrap_or_else(|e| panic!("cannot create record sink {}: {e}", path.display()));
            Some(Box::new(sink))
        }
        RecordStreaming::Discard => Some(Box::new(tg_accounting::NullRecordSink::default())),
    }
}

/// Per-site outcome statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SiteStats {
    /// Site name.
    pub name: String,
    /// Average batch utilization over the run.
    pub utilization: f64,
    /// Core-seconds delivered.
    pub core_seconds: f64,
    /// Jobs completed at the site.
    pub jobs_finished: u64,
    /// RC partition counters.
    pub rc_stats: RcNodeStats,
    /// RC wasted-area integral (area·seconds).
    pub rc_wasted_area_seconds: f64,
    /// RC busy-area integral (area·seconds).
    pub rc_busy_area_seconds: f64,
}

/// Everything one run produces.
#[derive(Debug, Clone)]
pub struct SimOutput {
    /// Scenario label.
    pub scenario: String,
    /// The seed used.
    pub seed: u64,
    /// The accounting database.
    pub db: AccountingDb,
    /// Ground-truth labels (scoring only).
    pub truth: HashMap<JobId, Modality>,
    /// Final virtual time.
    pub end: SimTime,
    /// The federation's charging policy.
    pub charge_policy: ChargePolicy,
    /// Per-site statistics.
    pub site_stats: Vec<SiteStats>,
    /// Periodic metric snapshots (empty unless `sample_interval` was set).
    pub samples: Vec<crate::sim::SampleRow>,
    /// The generated population behind the workload (ground truth for
    /// survey experiments and field-of-science reports).
    pub population: tg_workload::user::Population,
    /// Events the engine delivered (cost/scale indicator).
    pub events_delivered: u64,
    /// Run-level metrics snapshot (`None` unless [`RunOptions::metrics`]),
    /// engine profile attached.
    pub metrics: Option<MetricsSnapshot>,
    /// Wall-clock engine profile for this run. Always measured; never part
    /// of the deterministic output (varies run to run).
    pub profile: EngineProfile,
    /// Trace sink health (`Some` only when [`RunOptions::trace_path`] was
    /// set). Lets callers surface dropped entries or write failures instead
    /// of silently shipping a truncated trace.
    pub trace_health: Option<tg_des::TraceHealth>,
    /// What fault injection did to the run (`None` when the config carried
    /// no — or only a trivial — fault spec).
    pub fault_report: Option<FaultReport>,
    /// Final record-sink tally (`Some` only when
    /// [`RunOptions::record_streaming`] diverted records; `db` is empty
    /// then and this carries the summary counts instead).
    pub ingest_tally: Option<tg_accounting::IngestTally>,
    /// Online observability report (`Some` only when
    /// [`RunOptions::live_stats`] or a live-stats path was set):
    /// analyzer-aligned span-latency sketch tables plus the windowed
    /// operational series. Deterministic — byte-identical at any thread
    /// count — unlike `profile`.
    pub stats: Option<crate::sim::StatsReport>,
    /// Data-grid outcome (`Some` only when the config carried a non-trivial
    /// data spec): per-site cache hit rates, WAN bytes moved by dataset
    /// fetches, eviction counts. Deterministic at any thread count.
    pub data_report: Option<DataReport>,
}

impl SimOutput {
    /// Ground-truth modality of a recorded job.
    pub fn truth_of(&self, id: JobId) -> Option<Modality> {
        self.truth.get(&id).copied()
    }

    /// Mean queue wait over all jobs, seconds.
    pub fn mean_wait_secs(&self) -> f64 {
        tg_accounting::query::mean_wait_secs(&self.db.jobs)
    }

    /// Federation-wide average utilization, core-weighted.
    pub fn average_utilization(&self) -> f64 {
        let total_cs: f64 = self.site_stats.iter().map(|s| s.core_seconds).sum();
        let total_cap: f64 = self
            .site_stats
            .iter()
            .map(|s| {
                if s.utilization > 0.0 {
                    s.core_seconds / s.utilization
                } else {
                    0.0
                }
            })
            .sum();
        if total_cap <= 0.0 {
            0.0
        } else {
            total_cs / total_cap
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> ScenarioConfig {
        let mut cfg = ScenarioConfig::baseline(80, 7);
        // Shrink the machines so the test exercises queueing.
        cfg.sites[0].batch_nodes = 64;
        cfg.sites[1].batch_nodes = 128;
        cfg.sites[2].batch_nodes = 32;
        cfg
    }

    #[test]
    fn baseline_scenario_runs_end_to_end() {
        let out = small().build().run(42);
        assert!(!out.db.jobs.is_empty(), "jobs completed");
        assert!(out.end > SimTime::from_days(6), "ran through the window");
        assert!(out.events_delivered > out.db.jobs.len() as u64);
        // Every recorded job has a truth label.
        for r in &out.db.jobs {
            assert!(out.truth_of(r.job).is_some());
        }
        // All seven modalities appear in the truth.
        for m in Modality::ALL {
            assert!(
                out.truth.values().any(|&t| t == m),
                "modality {m} missing from workload"
            );
        }
        // RC site saw fabric activity.
        let carol = &out.site_stats[2];
        assert!(carol.rc_stats.completed > 0, "RC tasks ran on fabric");
        assert!(carol.rc_busy_area_seconds > 0.0);
    }

    #[test]
    fn same_seed_reproduces_exactly() {
        let a = small().build().run(7);
        let b = small().build().run(7);
        assert_eq!(a.db.jobs, b.db.jobs);
        assert_eq!(a.end, b.end);
        assert_eq!(a.events_delivered, b.events_delivered);
        let c = small().build().run(8);
        assert_ne!(a.db.jobs.len(), 0);
        assert!(a.db.jobs != c.db.jobs || a.end != c.end);
    }

    #[test]
    fn utilization_is_sane() {
        let out = small().build().run(3);
        let u = out.average_utilization();
        assert!(u > 0.0 && u <= 1.0, "utilization {u}");
        for s in &out.site_stats {
            assert!(s.utilization >= 0.0 && s.utilization <= 1.0);
        }
    }

    #[test]
    #[should_panic(expected = "disagree on site count")]
    fn mismatched_site_count_rejected() {
        let mut cfg = ScenarioConfig::baseline(10, 1);
        cfg.sites.pop();
        cfg.build();
    }

    #[test]
    fn sampling_produces_monotone_bounded_series() {
        let mut cfg = small();
        cfg.sample_interval = Some(tg_des::SimDuration::from_hours(6));
        let out = cfg.build().run(11);
        assert!(
            out.samples.len() >= 7 * 4 - 2,
            "expected ~4 samples/day over 7 days, got {}",
            out.samples.len()
        );
        for w in out.samples.windows(2) {
            assert!(w[0].at < w[1].at, "sample times must increase");
        }
        for row in &out.samples {
            assert_eq!(row.busy_fraction.len(), 3);
            assert_eq!(row.queue_len.len(), 3);
            for &f in &row.busy_fraction {
                assert!((0.0..=1.0).contains(&f));
            }
        }
        // Something was busy at some point.
        assert!(out
            .samples
            .iter()
            .any(|r| r.busy_fraction.iter().any(|&f| f > 0.0)));
        // Disabled sampling stays empty.
        let out2 = small().build().run(11);
        assert!(out2.samples.is_empty());
    }

    #[test]
    fn metrics_do_not_perturb_the_simulation() {
        let mut cfg = small();
        cfg.sample_interval = Some(tg_des::SimDuration::from_hours(6));
        let plain = cfg.clone().build().run(5);
        let observed = cfg.build().run_with(5, &RunOptions::with_metrics());
        assert_eq!(
            plain.db.jobs, observed.db.jobs,
            "metrics are pure observers"
        );
        assert_eq!(plain.end, observed.end);
        assert_eq!(plain.events_delivered, observed.events_delivered);
        assert!(plain.metrics.is_none());
        let snap = observed.metrics.expect("metrics requested");
        assert_eq!(
            snap.counter_sum("completed.site."),
            observed.db.jobs.len() as u64,
            "per-site completions conserve the job count"
        );
        assert_eq!(
            snap.counter_sum("completed.modality."),
            observed.db.jobs.len() as u64
        );
        let profile = snap.engine.expect("profile attached");
        assert_eq!(profile.events_delivered, observed.events_delivered);
        assert!(profile.peak_queue_len > 0);
        assert!(profile.wall_seconds >= 0.0);
    }

    #[test]
    fn profile_is_always_measured() {
        let out = small().build().run(2);
        assert_eq!(out.profile.events_delivered, out.events_delivered);
        assert!(out.profile.peak_queue_len > 0);
    }

    /// The parallel path's RSS is sampled after the scoped worker join, so
    /// it must cover at least the job arena every participant replicates
    /// (each shard clones the full workload). A sample taken before the
    /// join could legally miss the workers' footprint; this pins the fix.
    #[test]
    fn parallel_peak_rss_covers_the_job_arena() {
        let scenario = small().build();
        let out = scenario.run_with(3, &RunOptions::with_threads(3));
        let Some(rss) = out.profile.peak_rss_bytes else {
            return; // non-Linux: VmHWM unavailable, nothing to assert
        };
        let arena = out.truth.len() * std::mem::size_of::<Option<tg_workload::Job>>();
        assert!(arena > 0, "scenario generated jobs");
        assert!(
            rss as usize >= arena,
            "parallel peak RSS {rss} below the serial arena size {arena}"
        );
    }

    #[test]
    fn faulted_scenario_runs_reports_and_roundtrips() {
        let mut cfg = small();
        cfg.faults = Some(FaultSpec {
            site_outages: vec![tg_fault::OutageWindow {
                site: 1,
                start_hours: 48.0,
                duration_hours: 12.0,
                notice_hours: 2.0,
            }],
            ..FaultSpec::default()
        });
        // The spec rides the config through JSON untouched.
        let json = serde_json::to_string(&cfg).unwrap();
        let back: ScenarioConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back.faults, cfg.faults);
        let out = cfg.clone().build().run(42);
        let report = out.fault_report.expect("fault layer attached");
        assert_eq!(report.site_outages, 1);
        assert!(report.total_downtime_s() >= 12.0 * 3600.0 - 1.0);
        // A trivial spec leaves the run untouched and unreported.
        cfg.faults = Some(FaultSpec::default());
        let trivial = cfg.build().run(42);
        assert!(trivial.fault_report.is_none());
        let plain = small().build().run(42);
        assert_eq!(plain.db.jobs, trivial.db.jobs);
        assert_eq!(plain.end, trivial.end);
    }

    /// `configs/million-1000000u-365d.json` is the serialized form of
    /// [`ScenarioConfig::million`]. Regenerate after changing either side:
    /// `REGEN_CONFIGS=1 cargo test -p tg-core million_config_file`.
    #[test]
    fn million_config_file_is_in_sync() {
        let path = concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../configs/million-1000000u-365d.json"
        );
        let cfg = ScenarioConfig::million(1_000_000, 365);
        let want = serde_json::to_string_pretty(&cfg).unwrap();
        if std::env::var_os("REGEN_CONFIGS").is_some() {
            std::fs::write(path, &want).unwrap();
        }
        let text =
            std::fs::read_to_string(path).expect("config file exists (REGEN_CONFIGS=1 writes it)");
        let on_disk: ScenarioConfig = serde_json::from_str(&text).expect("config parses");
        assert_eq!(
            serde_json::to_string_pretty(&on_disk).unwrap(),
            want,
            "configs/million-1000000u-365d.json drifted from ScenarioConfig::million"
        );
    }

    /// `configs/datagrid-300u-14d.json` is the serialized form of
    /// [`ScenarioConfig::datagrid`]. Regenerate after changing either side:
    /// `REGEN_CONFIGS=1 cargo test -p tg-core datagrid_config_file`.
    #[test]
    fn datagrid_config_file_is_in_sync() {
        let path = concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../configs/datagrid-300u-14d.json"
        );
        let cfg = ScenarioConfig::datagrid(300, 14);
        cfg.data
            .as_ref()
            .expect("datagrid carries a catalog")
            .validate(cfg.sites.len())
            .expect("catalog is valid");
        let want = serde_json::to_string_pretty(&cfg).unwrap();
        if std::env::var_os("REGEN_CONFIGS").is_some() {
            std::fs::write(path, &want).unwrap();
        }
        let text =
            std::fs::read_to_string(path).expect("config file exists (REGEN_CONFIGS=1 writes it)");
        let on_disk: ScenarioConfig = serde_json::from_str(&text).expect("config parses");
        assert_eq!(
            serde_json::to_string_pretty(&on_disk).unwrap(),
            want,
            "configs/datagrid-300u-14d.json drifted from ScenarioConfig::datagrid"
        );
    }

    #[test]
    fn scenario_config_json_roundtrip() {
        let cfg = small();
        let json = serde_json::to_string_pretty(&cfg).unwrap();
        let back: ScenarioConfig = serde_json::from_str(&json).unwrap();
        // Round-tripped config produces an identical simulation.
        let a = cfg.build().run(3);
        let b = back.build().run(3);
        assert_eq!(a.db.jobs, b.db.jobs);
        assert_eq!(a.end, b.end);
    }
}
